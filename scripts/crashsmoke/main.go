// Command crashsmoke is the CI crash-restart gate for the durable service
// (docs/DURABILITY.md). scripts/ci.sh boots selfheal-server with -durable,
// runs `crashsmoke seed` to submit workflows and capture the store, kills
// the server with SIGKILL, restarts it on the same WAL directory, and runs
// `crashsmoke dump`: the two /api/v1/store documents must be byte-identical
// (Go's JSON encoder sorts map keys, so the raw bodies are comparable).
//
//	crashsmoke seed http://host:port   submit runs, wait, print the store
//	crashsmoke dump http://host:port   print the store
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"selfheal/internal/shard"
	"selfheal/internal/wfjson"
)

func main() {
	if len(os.Args) != 3 || (os.Args[1] != "seed" && os.Args[1] != "dump") {
		log.Fatal("usage: crashsmoke seed|dump http://host:port")
	}
	mode, base := os.Args[1], os.Args[2]

	if mode == "seed" {
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("crash%d", i)
			status, body := do("POST", base+"/api/v1/runs",
				map[string]any{"id": id, "spec": chainDoc(id, 6)})
			if status != http.StatusCreated {
				log.Fatalf("submit %s: status %d body %s", id, status, body)
			}
		}
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("crash%d", i)
			poll("completion of "+id, func() bool {
				status, body := do("GET", base+"/api/v1/runs/"+id, nil)
				if status != http.StatusOK {
					log.Fatalf("get %s: status %d body %s", id, status, body)
				}
				var info shard.RunInfo
				must(json.Unmarshal(body, &info))
				return info.Status == "done"
			})
		}
	}

	status, body := do("GET", base+"/api/v1/store", nil)
	if status != http.StatusOK {
		log.Fatalf("store: status %d body %s", status, body)
	}
	os.Stdout.Write(body)
}

func chainDoc(name string, n int) *wfjson.SpecJSON {
	sj := &wfjson.SpecJSON{Name: name, Start: "t1"}
	for i := 1; i <= n; i++ {
		tj := wfjson.TaskJSON{
			ID:     fmt.Sprintf("t%d", i),
			Writes: []string{fmt.Sprintf("%s.k%d", name, i)},
			Bias:   int64(i),
		}
		if i > 1 {
			tj.Reads = []string{fmt.Sprintf("%s.k%d", name, i-1)}
		}
		if i < n {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	return sj
}

func do(method, url string, payload any) (int, []byte) {
	var buf bytes.Buffer
	if payload != nil {
		must(json.NewEncoder(&buf).Encode(payload))
	}
	req, err := http.NewRequest(method, url, &buf)
	must(err)
	resp, err := http.DefaultClient.Do(req)
	must(err)
	defer resp.Body.Close()
	var out bytes.Buffer
	_, err = out.ReadFrom(resp.Body)
	must(err)
	return resp.StatusCode, out.Bytes()
}

// poll retries cond every 50ms for up to 30s, failing the smoke test on
// timeout.
func poll(what string, cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
