// Command apismoke is the CI smoke test for the versioned workflow API
// (docs/API.md). Pointed at a running selfheal-server it exercises the full
// loop through the wire:
//
//  1. POST /api/v1/runs      submit a 6-task chain workflow
//  2. GET  /api/v1/runs/{id} poll until the run completes
//  3. POST /api/v1/alerts    report a committed instance as malicious
//  4. GET  /api/v1/state     poll until recovery executed and state is NORMAL
//  5. GET  /api/v1/runs/none assert the 404 error envelope
//
// Exits 0 and prints "API SMOKE OK" on success; any deviation is fatal.
// scripts/ci.sh boots selfheal-server on an ephemeral port and runs this
// against it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"selfheal/internal/shard"
	"selfheal/internal/wfjson"
)

func main() {
	if len(os.Args) != 2 {
		log.Fatal("usage: apismoke http://host:port")
	}
	base := os.Args[1]

	spec := wfjson.SpecJSON{Name: "smoke", Start: "t1"}
	for i := 1; i <= 6; i++ {
		tj := wfjson.TaskJSON{
			ID:     fmt.Sprintf("t%d", i),
			Writes: []string{fmt.Sprintf("smoke.k%d", i)},
			Bias:   int64(i),
		}
		if i > 1 {
			tj.Reads = []string{fmt.Sprintf("smoke.k%d", i-1)}
		}
		if i < 6 {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		spec.Tasks = append(spec.Tasks, tj)
	}

	status, body := do("POST", base+"/api/v1/runs",
		map[string]any{"id": "smoke", "spec": spec})
	if status != http.StatusCreated {
		log.Fatalf("submit run: status %d body %s", status, body)
	}
	log.Printf("submitted run: %s", bytes.TrimSpace(body))

	var info shard.RunInfo
	poll("run completion", func() bool {
		status, body = do("GET", base+"/api/v1/runs/smoke", nil)
		if status != http.StatusOK {
			log.Fatalf("get run: status %d body %s", status, body)
		}
		must(json.Unmarshal(body, &info))
		return info.Status == "done"
	})
	log.Printf("run done after %d steps on shard %d", info.Steps, info.Shard)

	status, body = do("POST", base+"/api/v1/alerts",
		map[string]any{"bad": []string{"smoke/t2#1"}})
	if status != http.StatusAccepted {
		log.Fatalf("alert: status %d body %s", status, body)
	}
	log.Printf("alert accepted: %s", bytes.TrimSpace(body))

	var st struct {
		State   string        `json:"state"`
		Metrics shard.Metrics `json:"metrics"`
	}
	poll("recovery", func() bool {
		status, body = do("GET", base+"/api/v1/state", nil)
		if status != http.StatusOK {
			log.Fatalf("state: status %d body %s", status, body)
		}
		must(json.Unmarshal(body, &st))
		return st.State == "NORMAL" && st.Metrics.UnitsExecuted >= 1
	})
	if st.Metrics.Undone < 1 || st.Metrics.Redone < 1 {
		log.Fatalf("recovery did no undo/redo work: %+v", st.Metrics)
	}
	log.Printf("recovered: undone=%d redone=%d alerts_analyzed=%d",
		st.Metrics.Undone, st.Metrics.Redone, st.Metrics.AlertsAnalyzed)

	status, body = do("GET", base+"/api/v1/runs/no-such-run", nil)
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	must(json.Unmarshal(body, &env))
	if status != http.StatusNotFound || env.Error.Code != "not_found" {
		log.Fatalf("unknown run: status %d body %s", status, body)
	}

	fmt.Println("API SMOKE OK")
}

func do(method, url string, payload any) (int, []byte) {
	var buf bytes.Buffer
	if payload != nil {
		must(json.NewEncoder(&buf).Encode(payload))
	}
	req, err := http.NewRequest(method, url, &buf)
	must(err)
	resp, err := http.DefaultClient.Do(req)
	must(err)
	defer resp.Body.Close()
	var out bytes.Buffer
	_, err = out.ReadFrom(resp.Body)
	must(err)
	return resp.StatusCode, out.Bytes()
}

// poll retries cond every 50ms for up to 30s, failing the smoke test on
// timeout.
func poll(what string, cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
