// Command openapidrift is the CI gate that keeps the served OpenAPI
// document and the route table in lock-step, through the wire. Pointed at a
// running selfheal-server it fetches GET /api/v1/openapi.json and compares
// the path/method inventory against httpapi.MountedRoutes for the families
// named on the command line, in both directions:
//
//   - every versioned route the server mounts must appear in the document;
//   - every operation the document describes must exist in the route table.
//
// The generator derives the document from the same table the mux registers
// from, so this should be impossible to break — which is exactly why it is
// cheap to assert: a drift here means the generation pipeline itself broke.
//
// Usage: openapidrift http://host:port [family...]   (default: legacy v1 metrics)
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"

	"selfheal/internal/httpapi"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: openapidrift http://host:port [family...]")
	}
	base := os.Args[1]
	families := os.Args[2:]
	if len(families) == 0 {
		families = []string{httpapi.FamLegacy, httpapi.FamV1, httpapi.FamMetrics}
	}

	resp, err := http.Get(base + "/api/v1/openapi.json")
	if err != nil {
		log.Fatalf("fetch openapi.json: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("fetch openapi.json: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		OpenAPI string                    `json:"openapi"`
		Paths   map[string]map[string]any `json:"paths"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Fatalf("decode openapi.json: %v", err)
	}
	if !strings.HasPrefix(doc.OpenAPI, "3.1") {
		log.Fatalf("document version %q, want 3.1.x", doc.OpenAPI)
	}

	served := map[string]bool{}
	for path, ops := range doc.Paths {
		for method := range ops {
			served[strings.ToUpper(method)+" "+path] = true
		}
	}
	declared := map[string]bool{}
	for _, r := range httpapi.MountedRoutes(families...) {
		if !strings.HasPrefix(r.Pattern, "/api/v1/") && r.Pattern != "/api/v1" {
			continue // unversioned surfaces are outside the OpenAPI contract
		}
		declared[r.Key()] = true
	}

	var drift []string
	for key := range declared {
		if !served[key] {
			drift = append(drift, "missing from document: "+key)
		}
	}
	for key := range served {
		if !declared[key] {
			drift = append(drift, "undeclared in route table: "+key)
		}
	}
	if len(drift) > 0 {
		sort.Strings(drift)
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "openapidrift: "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("OPENAPI DRIFT OK (%d operations)\n", len(declared))
}
