#!/bin/sh
# CI gate: formatting, build, vet, race-enabled tests, and the
# observability doc-drift check. Equivalent to `make ci` for environments
# without make.
set -eux
cd "$(dirname "$0")/.."

# Formatting gate: gofmt must produce no diffs.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Benchmark smoke: the parallel-repair, mid-recovery and alert-storm
# benchmarks must run to completion (one iteration each; EXPERIMENTS.md
# records real numbers).
go test -run '^$' -bench '^Benchmark(Repair|AlertStorm)' -benchtime=1x .

# Doc-drift gate: every metric name declared in the obs catalog must be
# documented in docs/OBSERVABILITY.md (TestCatalogDocumented enforces the
# same pairing from Go; this catches it even when tests are skipped).
names=$(sed -n 's/^\tM[A-Za-z]* *= "\([a-z_]*\)"$/\1/p' internal/obs/catalog.go)
count=$(echo "$names" | grep -c .)
if [ "$count" -lt 30 ]; then
    echo "doc-drift gate: extracted only $count metric names from internal/obs/catalog.go; extraction broken?" >&2
    exit 1
fi
for name in $names; do
    if ! grep -q "\`$name\`" docs/OBSERVABILITY.md; then
        echo "doc-drift gate: metric $name is not documented in docs/OBSERVABILITY.md" >&2
        exit 1
    fi
done

# API smoke test: boot selfheal-server on an ephemeral port, then drive the
# versioned workflow API through the wire — submit a run, inject an alert,
# assert recovery via /api/v1/state (scripts/apismoke).
tmpdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/selfheal-server" ./cmd/selfheal-server
go build -o "$tmpdir/apismoke" ./scripts/apismoke
"$tmpdir/selfheal-server" -addr 127.0.0.1:0 -shards 4 > "$tmpdir/server.out" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^selfheal-server listening on //p' "$tmpdir/server.out" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "selfheal-server never reported its address:" >&2
    cat "$tmpdir/server.out" >&2
    exit 1
fi
"$tmpdir/apismoke" "http://$addr"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
