#!/bin/sh
# CI gate: formatting, build, vet, race-enabled tests, and the
# observability doc-drift check. Equivalent to `make ci` for environments
# without make.
set -eux
cd "$(dirname "$0")/.."

# Formatting gate: gofmt must produce no diffs.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Doc-drift gate: every metric name declared in the obs catalog must be
# documented in docs/OBSERVABILITY.md (TestCatalogDocumented enforces the
# same pairing from Go; this catches it even when tests are skipped).
names=$(sed -n 's/^\tM[A-Za-z]* *= "\([a-z_]*\)"$/\1/p' internal/obs/catalog.go)
count=$(echo "$names" | grep -c .)
if [ "$count" -lt 30 ]; then
    echo "doc-drift gate: extracted only $count metric names from internal/obs/catalog.go; extraction broken?" >&2
    exit 1
fi
for name in $names; do
    if ! grep -q "\`$name\`" docs/OBSERVABILITY.md; then
        echo "doc-drift gate: metric $name is not documented in docs/OBSERVABILITY.md" >&2
        exit 1
    fi
done
