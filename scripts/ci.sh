#!/bin/sh
# CI gate: formatting, build, vet, race-enabled tests, and the
# observability doc-drift check. Equivalent to `make ci` for environments
# without make.
set -eux
cd "$(dirname "$0")/.."

# Formatting gate: gofmt must produce no diffs.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Benchmark smoke: the parallel-repair, mid-recovery and alert-storm
# benchmarks must run to completion (one iteration each; EXPERIMENTS.md
# records real numbers).
go test -run '^$' -bench '^Benchmark(Repair|AlertStorm)' -benchtime=1x .

# Durability benchmark smoke: WAL append (group-commit) and restore
# (snapshot-bounded replay) must run; BENCH_durability.json records real
# numbers.
go test -run '^$' -bench '^Benchmark(Append|Replay)$' -benchtime=1x ./internal/durable/

# Cluster commit-path benchmark smoke: group-stamped batch submission and
# the binary replication codec must run; BENCH_cluster.json records real
# numbers.
go test -run '^$' -bench '^Benchmark(ClusterCommit|ReplicationCodec)' -benchtime=1x ./internal/cluster/

# Godoc gate: every internal package and every command must carry a package
# doc comment ("// Package <name> ..." / "// Command <name> ...") so the
# architecture stays self-describing (docs/ARCHITECTURE.md maps the same
# packages).
for d in internal/*/ cmd/*/; do
    if ! grep -q '^// Package \|^// Command ' "$d"*.go 2>/dev/null; then
        echo "godoc gate: $d has no package doc comment" >&2
        exit 1
    fi
done

# Doc-drift gate: every metric name declared in the obs catalog must be
# documented in docs/OBSERVABILITY.md (TestCatalogDocumented enforces the
# same pairing from Go; this catches it even when tests are skipped).
names=$(sed -n 's/^\tM[A-Za-z]* *= "\([a-z_]*\)"$/\1/p' internal/obs/catalog.go)
count=$(echo "$names" | grep -c .)
if [ "$count" -lt 30 ]; then
    echo "doc-drift gate: extracted only $count metric names from internal/obs/catalog.go; extraction broken?" >&2
    exit 1
fi
for name in $names; do
    if ! grep -q "\`$name\`" docs/OBSERVABILITY.md; then
        echo "doc-drift gate: metric $name is not documented in docs/OBSERVABILITY.md" >&2
        exit 1
    fi
done

# API smoke test: boot selfheal-server on an ephemeral port, then drive the
# versioned workflow API through the wire — submit a run, inject an alert,
# assert recovery via /api/v1/state (scripts/apismoke).
tmpdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/selfheal-server" ./cmd/selfheal-server
go build -o "$tmpdir/apismoke" ./scripts/apismoke
go build -o "$tmpdir/openapidrift" ./scripts/openapidrift
go build -o "$tmpdir/clustersmoke" ./scripts/clustersmoke
"$tmpdir/selfheal-server" -addr 127.0.0.1:0 -shards 4 > "$tmpdir/server.out" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^selfheal-server listening on //p' "$tmpdir/server.out" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "selfheal-server never reported its address:" >&2
    cat "$tmpdir/server.out" >&2
    exit 1
fi
"$tmpdir/apismoke" "http://$addr"
# OpenAPI drift gate: the served /api/v1/openapi.json must match the route
# table in both directions (scripts/openapidrift).
"$tmpdir/openapidrift" "http://$addr"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true

# Crash-restart smoke (docs/DURABILITY.md): boot with -durable, load
# workflows, SIGKILL the process mid-life, restart on the same WAL
# directory, and require the restored store to be byte-identical.
go build -o "$tmpdir/crashsmoke" ./scripts/crashsmoke
"$tmpdir/selfheal-server" -addr 127.0.0.1:0 -shards 2 -durable "$tmpdir/wal" > "$tmpdir/server2.out" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^selfheal-server listening on //p' "$tmpdir/server2.out" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "durable selfheal-server never came up" >&2; cat "$tmpdir/server2.out" >&2; exit 1; }
"$tmpdir/crashsmoke" seed "http://$addr" > "$tmpdir/store-before.json"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
"$tmpdir/selfheal-server" -addr 127.0.0.1:0 -shards 2 -durable "$tmpdir/wal" > "$tmpdir/server3.out" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^selfheal-server listening on //p' "$tmpdir/server3.out" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "restarted selfheal-server never came up" >&2; cat "$tmpdir/server3.out" >&2; exit 1; }
"$tmpdir/crashsmoke" dump "http://$addr" > "$tmpdir/store-after.json"
cmp "$tmpdir/store-before.json" "$tmpdir/store-after.json" || {
    echo "crash-restart smoke: restored store differs from pre-kill store" >&2
    exit 1
}
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "CRASH SMOKE OK"

# Cluster smoke (docs/CLUSTER.md): a 3-node cluster of real processes —
# cross-node run, forged attack, SIGKILL a follower mid-repair, rejoin it
# with -join, a batched commit storm with a SIGKILL mid-batch, and a
# windowed chain run, each ending with byte-identical stores on every node
# (scripts/clustersmoke orchestrates the processes itself).
"$tmpdir/clustersmoke" "$tmpdir/selfheal-server"

# Fuzz smoke (docs/FUZZING.md): a fixed-seed campaign against the healthy
# service must report zero oracle violations, and the mutation smoke must
# prove the fuzzer's teeth — with the skip-repair fault injected, the
# campaign must find a violation and shrink it to a reproducer.
go build -o "$tmpdir/selfheal-fuzz" ./cmd/selfheal-fuzz
"$tmpdir/selfheal-fuzz" -episodes 40 -seed 1
"$tmpdir/selfheal-fuzz" -durable -episodes 8 -seed 1
"$tmpdir/selfheal-fuzz" -fault-skip-repair -expect-fail -episodes 1 -seed 1 -corpus "$tmpdir/corpus"
[ -f "$tmpdir/corpus/seed-1.json" ] || {
    echo "fuzz smoke: mutation campaign wrote no corpus entry" >&2
    exit 1
}
echo "FUZZ SMOKE OK"

# Nightly campaign (opt-in): a longer randomized sweep across the durable,
# strict and triage configurations.
if [ "${CI_NIGHTLY:-0}" = "1" ]; then
    "$tmpdir/selfheal-fuzz" -duration 120s -seed "$(date +%s)"
    "$tmpdir/selfheal-fuzz" -durable -episodes 200 -seed "$(date +%s)"
    "$tmpdir/selfheal-fuzz" -durable -strict -episodes 60 -seed 7
    "$tmpdir/selfheal-fuzz" -durable -triage -episodes 60 -seed 11
    echo "NIGHTLY FUZZ OK"
fi
