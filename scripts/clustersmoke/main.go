// Command clustersmoke is the CI smoke test for cluster mode
// (docs/CLUSTER.md). Given the selfheal-server binary it boots a 3-node
// cluster on ephemeral ports and drives the full distributed loop through
// real processes:
//
//  1. submit a 3-task workflow through a follower whose tasks' write keys
//     are owned by three different nodes (the control token crosses every
//     process), and wait for it to complete;
//  2. snapshot the byte-exact /api/v1/store of every node as the baseline;
//  3. inject a forged commit corrupting the workflow's data and report it,
//     both through a follower (submission proxying + leader routing);
//  4. SIGKILL that follower mid-repair — inside the incident's quiesce
//     window, widened by -quiesce-hold — while the survivors finish the
//     repair without it;
//  5. restart the killed node on its journal with -join and drain;
//  6. require every node's store to be byte-identical to the baseline:
//     the attack fully undone, the rejoined replica fully converged;
//  7. stream batched submissions into the stamper's group-commit path
//     (16-entry POSTs to /internal/v1/submit) and SIGKILL a follower in
//     the middle of the stream — mid-batch, while binary replication
//     frames are in flight to it — then keep submitting: the survivors
//     commit everything, the rejoined node replays its (possibly torn)
//     binary journal, catches up with -join, and converges byte-identically;
//  8. drive a long owner-contiguous chain run so the pipelined executors
//     form real multi-entry windows across processes, and require the
//     final stores byte-identical with the chain's last value in place.
//
// Exits 0 and prints "CLUSTER SMOKE OK" on success; any deviation is fatal.
//
// Usage: clustersmoke /path/to/selfheal-server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"selfheal/internal/cluster"
	"selfheal/internal/data"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

var ids = []string{"a", "b", "c"}

type smoke struct {
	serverBin string
	tmp       string
	addrs     map[string]string
	peersFlag string
	procs     map[string]*exec.Cmd
}

func main() {
	log.SetFlags(0)
	if len(os.Args) != 2 {
		log.Fatal("usage: clustersmoke /path/to/selfheal-server")
	}
	tmp, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		log.Fatal(err)
	}
	s := &smoke{serverBin: os.Args[1], tmp: tmp, addrs: map[string]string{}, procs: map[string]*exec.Cmd{}}
	defer s.cleanup()
	s.run()
	fmt.Println("CLUSTER SMOKE OK")
}

func (s *smoke) cleanup() {
	for _, cmd := range s.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	os.RemoveAll(s.tmp)
}

func (s *smoke) run() {
	// Reserve one loopback port per node: the static -peers membership
	// needs concrete addresses before any process starts.
	var lns []net.Listener
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns = append(lns, ln)
		s.addrs[id] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	s.peersFlag = ""
	for _, id := range ids {
		if s.peersFlag != "" {
			s.peersFlag += ","
		}
		s.peersFlag += id + "=" + s.addrs[id]
	}
	for _, id := range ids {
		s.startNode(id, false)
	}
	for _, id := range ids {
		s.waitUp(id)
	}

	// Derive the same ownership ring the nodes use, and pick one write key
	// per member plus a run ID whose incident leader survives the kill.
	ring := cluster.NewRing(ids)
	keyOf := map[string]string{}
	for i := 0; len(keyOf) < len(ids); i++ {
		k := fmt.Sprintf("cs%04d", i)
		owner := ring.OwnerOfKey(data.Key(k))
		if _, ok := keyOf[owner]; !ok {
			keyOf[owner] = k
		}
	}
	run := ""
	for i := 0; ; i++ {
		run = fmt.Sprintf("smoke%d", i)
		if ring.OwnerOfRun(run) != "c" {
			break // the leader must not be the node we SIGKILL
		}
	}

	// A chain crossing all three nodes, submitted through follower b.
	chain := []string{keyOf["a"], keyOf["b"], keyOf["c"]}
	spec := wfjson.SpecJSON{Name: "clustersmoke", Start: "t0"}
	for i, k := range chain {
		tj := wfjson.TaskJSON{ID: fmt.Sprintf("t%d", i), Writes: []string{k}, Bias: int64(i + 1)}
		if i > 0 {
			tj.Reads = []string{chain[i-1]}
		}
		if i+1 < len(chain) {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		spec.Tasks = append(spec.Tasks, tj)
	}
	s.post("b", "/api/v1/runs", map[string]any{"id": run, "spec": spec}, nil)
	deadline := time.Now().Add(15 * time.Second)
	for {
		var info struct {
			Status string `json:"status"`
		}
		s.get("b", "/api/v1/runs/"+run, &info)
		if info.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("run %s never completed (status %q)", run, info.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	s.drain("a")

	baseline := s.store("a")
	for _, id := range ids {
		if got := s.store(id); !bytes.Equal(got, baseline) {
			log.Fatalf("pre-attack divergence: node %s store differs from node a:\n%s\n---\n%s", id, got, baseline)
		}
	}

	// Attack through the follower we will kill: forge a corrupt commit,
	// report it (c routes the alert to the surviving leader), then SIGKILL
	// c inside the quiesce window.
	s.post("c", "/api/v1/chaos/forge", map[string]any{
		"run": run, "task": "x", "writes": map[string]int64{chain[0]: 9999},
	}, nil)
	inst := string(wlog.FormatInstance(run, "x", 1))
	var ack struct {
		Admitted int `json:"admitted"`
		Dropped  int `json:"dropped"`
	}
	s.post("c", "/api/v1/alerts", map[string]any{"batch": [][]string{{inst}}}, &ack)
	if ack.Admitted != 1 || ack.Dropped != 0 {
		log.Fatalf("alert not admitted: %+v", ack)
	}
	proc := s.procs["c"]
	if err := proc.Process.Kill(); err != nil {
		log.Fatalf("SIGKILL node c: %v", err)
	}
	proc.Wait()
	delete(s.procs, "c")

	// The survivors must finish the repair without c: rejoin it on its
	// journal and require cluster-wide byte equality with the baseline.
	time.Sleep(500 * time.Millisecond)
	s.startNode("c", true)
	s.waitUp("c")
	s.drain("a")
	for _, id := range ids {
		if got := s.store(id); !bytes.Equal(got, baseline) {
			log.Fatalf("post-repair divergence: node %s store differs from the pre-attack baseline:\n%s\n---\n%s", id, got, baseline)
		}
	}

	s.batchedCommitStorm()
	s.windowedChainRun(ring)
}

// batchedCommitStorm drives the group-commit path directly: sequential
// 16-entry batches into the stamper's internal submit endpoint, with
// follower c SIGKILLed in the middle of the stream. Every batch must be
// stamped "ok" (stamping needs no follower), and after a -join restart c's
// journal replay + catch-up must converge byte-identically.
func (s *smoke) batchedCommitStorm() {
	const batches, batch = 30, 16
	kill := batches / 3
	for bi := 0; bi < batches; bi++ {
		if bi == kill {
			proc := s.procs["c"]
			if err := proc.Process.Kill(); err != nil {
				log.Fatalf("SIGKILL node c mid-batch: %v", err)
			}
			proc.Wait()
			delete(s.procs, "c")
		}
		entries := make([]map[string]any, batch)
		for i := range entries {
			n := bi*batch + i
			entries[i] = map[string]any{
				"run": "storm", "task": fmt.Sprintf("f%06d", n), "visit": 1,
				"forged": true, "writes": map[string]int64{"stormk": int64(n)},
			}
		}
		var resp struct {
			Results []struct {
				Status string `json:"status"`
				Seq    int    `json:"seq"`
			} `json:"results"`
		}
		s.post("a", "/internal/v1/submit", map[string]any{"origin": "smoke", "entries": entries}, &resp)
		if len(resp.Results) != batch {
			log.Fatalf("batch %d: %d results for %d entries", bi, len(resp.Results), batch)
		}
		for i, r := range resp.Results {
			if r.Status != "ok" {
				log.Fatalf("batch %d entry %d: status %q", bi, i, r.Status)
			}
			if i > 0 && r.Seq != resp.Results[i-1].Seq+1 {
				log.Fatalf("batch %d: seqs not dense (%d after %d)", bi, r.Seq, resp.Results[i-1].Seq)
			}
		}
	}
	s.startNode("c", true)
	s.waitUp("c")
	s.drain("a")
	ref := s.store("a")
	for _, id := range ids {
		if got := s.store(id); !bytes.Equal(got, ref) {
			log.Fatalf("post-storm divergence: node %s store differs from node a:\n%s\n---\n%s", id, got, ref)
		}
	}
}

// windowedChainRun submits a long chain whose write keys come in
// owner-contiguous segments, so each node's pipelined executor forms real
// multi-entry submission windows across process boundaries.
func (s *smoke) windowedChainRun(ring *cluster.Ring) {
	segment := map[string][]string{}
	for i := 0; shortestSeg(segment) < 6; i++ {
		k := fmt.Sprintf("wk%04d", i)
		owner := ring.OwnerOfKey(data.Key(k))
		segment[owner] = append(segment[owner], k)
	}
	var chain []string
	for _, id := range ids {
		chain = append(chain, segment[id][:6]...)
	}
	spec := wfjson.SpecJSON{Name: "windowed", Start: "t0"}
	for i, k := range chain {
		tj := wfjson.TaskJSON{ID: fmt.Sprintf("t%d", i), Writes: []string{k}, Bias: int64(i + 1)}
		if i > 0 {
			tj.Reads = []string{chain[i-1]}
		}
		if i+1 < len(chain) {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		spec.Tasks = append(spec.Tasks, tj)
	}
	s.post("b", "/api/v1/runs", map[string]any{"id": "windowed", "spec": spec}, nil)
	deadline := time.Now().Add(20 * time.Second)
	for {
		var info struct {
			Status string `json:"status"`
		}
		s.get("b", "/api/v1/runs/windowed", &info)
		if info.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("windowed run never completed (status %q)", info.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	s.drain("a")
	ref := s.store("a")
	for _, id := range ids {
		if got := s.store(id); !bytes.Equal(got, ref) {
			log.Fatalf("windowed-run divergence: node %s store differs from node a:\n%s\n---\n%s", id, got, ref)
		}
	}
	var snap map[string]int64
	if err := json.Unmarshal(ref, &snap); err != nil {
		log.Fatalf("store decode: %v", err)
	}
	if snap[chain[len(chain)-1]] == 0 {
		log.Fatalf("windowed chain's last key %s missing from store", chain[len(chain)-1])
	}
}

func shortestSeg(m map[string][]string) int {
	if len(m) < len(ids) {
		return 0
	}
	min := 1 << 30
	for _, id := range ids {
		if len(m[id]) < min {
			min = len(m[id])
		}
	}
	return min
}

func (s *smoke) startNode(id string, join bool) {
	args := []string{
		"-addr", s.addrs[id],
		"-node-id", id,
		"-peers", s.peersFlag,
		"-cluster-dir", filepath.Join(s.tmp, "node-"+id),
		"-quiesce-hold", "2s",
	}
	if join {
		args = append(args, "-join")
	}
	cmd := exec.Command(s.serverBin, args...)
	out, err := os.Create(filepath.Join(s.tmp, "node-"+id+".out"))
	if err != nil {
		log.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		log.Fatalf("start node %s: %v", id, err)
	}
	s.procs[id] = cmd
}

func (s *smoke) waitUp(id string) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(s.url(id) + "/api/v1/cluster")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			out, _ := os.ReadFile(filepath.Join(s.tmp, "node-"+id+".out"))
			log.Fatalf("node %s never came up; log:\n%s", id, out)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (s *smoke) url(id string) string { return "http://" + s.addrs[id] }

func (s *smoke) post(id, path string, payload, out any) {
	body, err := json.Marshal(payload)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(s.url(id)+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s %s: %v", id, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s %s: HTTP %d: %s", id, path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("POST %s %s: decode: %v", id, path, err)
		}
	}
}

func (s *smoke) get(id, path string, out any) {
	resp, err := http.Get(s.url(id) + path)
	if err != nil {
		log.Fatalf("GET %s %s: %v", id, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s %s: HTTP %d: %s", id, path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("GET %s %s: decode: %v", id, path, err)
		}
	}
}

func (s *smoke) drain(id string) {
	resp, err := http.Post(s.url(id)+"/api/v1/chaos/drain?wait=idle&timeout=60s", "application/json", nil)
	if err != nil {
		log.Fatalf("drain via %s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("drain via %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
}

func (s *smoke) store(id string) []byte {
	resp, err := http.Get(s.url(id) + "/api/v1/store")
	if err != nil {
		log.Fatalf("store %s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("store %s: HTTP %d err %v", id, resp.StatusCode, err)
	}
	return raw
}
