// Benchmark harness: one benchmark per reproduced table/figure of the
// paper's evaluation (§V), plus scaling benchmarks for the recovery analyzer
// and repair engine and a baseline comparison. Domain results (loss
// probabilities, undo/redo set sizes, discarded work) are attached to each
// benchmark via ReportMetric so `go test -bench` output doubles as the
// experiment record; EXPERIMENTS.md catalogs the series themselves
// (regenerate with cmd/ctmc-solve).
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"selfheal/internal/baseline"
	"selfheal/internal/campaign"
	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/design"
	"selfheal/internal/dist"
	"selfheal/internal/engine"
	"selfheal/internal/figures"
	"selfheal/internal/rates"
	"selfheal/internal/recovery"
	"selfheal/internal/rtsim"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/shard"
	"selfheal/internal/sim"
	"selfheal/internal/stg"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// benchFigure regenerates one paper figure per iteration and reports a
// headline number from it.
func benchFigure(b *testing.B, id string, series string, pick func([]float64) float64) {
	b.Helper()
	var headline float64
	for i := 0; i < b.N; i++ {
		fig, err := figures.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			if s.Name == series {
				headline = pick(s.Y)
			}
		}
	}
	// ReportMetric rejects units containing whitespace.
	unit := strings.ReplaceAll(series, " ", "_") + "/headline"
	b.ReportMetric(headline, unit)
}

func last(y []float64) float64 { return y[len(y)-1] }

func minOf(y []float64) float64 {
	m := y[0]
	for _, v := range y {
		if v < m {
			m = v
		}
	}
	return m
}

// Figure 4: loss probability vs buffer size (§V.A.1).

func BenchmarkFig4aSlowDegradation(b *testing.B) {
	benchFigure(b, "4a", "f=g=sqrt", last) // loss at buffer 30: keeps falling
}

func BenchmarkFig4bLinearDegradation(b *testing.B) {
	benchFigure(b, "4b", "f=g=linear", minOf) // the interior optimum
}

func BenchmarkFig4cFastDegradation(b *testing.B) {
	benchFigure(b, "4c", "f=g=quad", minOf)
}

func BenchmarkFig4dMuFasterThanXi(b *testing.B) {
	benchFigure(b, "4d", "f=quad g=linear", minOf)
}

// Figure 5: steady-state sweeps (§V.A.2, Cases 2-4).

func BenchmarkFig5aLambdaSweepProbabilities(b *testing.B) {
	benchFigure(b, "5a", "loss probability", last) // loss at λ=4
}

func BenchmarkFig5bLambdaSweepExpectations(b *testing.B) {
	benchFigure(b, "5b", "E[recovery units]", last)
}

func BenchmarkFig5cMuSweepProbabilities(b *testing.B) {
	benchFigure(b, "5c", "P(NORMAL)", last) // P(NORMAL) at μ₁=20
}

func BenchmarkFig5dMuSweepExpectations(b *testing.B) {
	benchFigure(b, "5d", "E[alerts]", last)
}

func BenchmarkFig5eXiSweepProbabilities(b *testing.B) {
	benchFigure(b, "5e", "P(NORMAL)", last)
}

func BenchmarkFig5fXiSweepExpectations(b *testing.B) {
	benchFigure(b, "5f", "E[recovery units]", last)
}

// Figure 6: transient behavior (§V.B, Cases 5-6).

func BenchmarkFig6aGoodSystemTransient(b *testing.B) {
	benchFigure(b, "6a", "P(NORMAL)", last) // P(NORMAL) at t=4
}

func BenchmarkFig6bGoodSystemCumulative(b *testing.B) {
	benchFigure(b, "6b", "time in NORMAL", last)
}

func BenchmarkFig6cPoorSystemTransient(b *testing.B) {
	benchFigure(b, "6c", "loss probability", last) // loss at t=100 ∈ [0.9,1]
}

func BenchmarkFig6dPoorSystemCumulative(b *testing.B) {
	benchFigure(b, "6d", "time at right edge", last)
}

// Figure 1: the worked recovery example (§I, §III.B).

func BenchmarkFig1Recovery(b *testing.B) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		b.Fatal(err)
	}
	var res *recovery.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Undone)), "undone")
	b.ReportMetric(float64(len(res.Redone)), "redone")
	b.ReportMetric(float64(len(res.NewExecuted)), "new")
}

// CTMC engine primitives.

func BenchmarkSteadyStateBuffer15(b *testing.B) {
	m, err := stg.New(stg.Square(1, 15, 20, 15))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateBuffer30(b *testing.B) {
	m, err := stg.New(stg.Square(1, 15, 20, 30))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientUniformization(b *testing.B) {
	m, err := stg.New(stg.Square(1, 2, 3, 15))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transient(100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCumulativeTime(b *testing.B) {
	m, err := stg.New(stg.Square(1, 2, 3, 15))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CumulativeTime(100); err != nil {
			b.Fatal(err)
		}
	}
}

// §V validation: discrete-event simulation vs analytic steady state.

func BenchmarkSimVsCTMC(b *testing.B) {
	p := stg.Square(1, 15, 20, 8)
	m, err := stg.New(p)
	if err != nil {
		b.Fatal(err)
	}
	ss, err := m.SteadyState()
	if err != nil {
		b.Fatal(err)
	}
	var tv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, 5000, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		tv = sim.TotalVariation(res.Distribution(m), ss)
	}
	b.ReportMetric(tv, "total-variation")
}

// Recovery engine scaling: analyzer (μ) and repair (ξ) cost vs workload
// size — the quantities §VI says to measure when designing a system.

func benchRepairScale(b *testing.B, tasks, runs int) {
	cfg := scenario.RandomConfig{
		Runs:    runs,
		Gen:     wf.GenConfig{Tasks: tasks, Keys: tasks / 2, MaxReads: 3, BranchProb: 0.35},
		Attacks: 2,
		Forged:  1,
	}
	attacked, err := scenario.Random(11, cfg, true)
	if err != nil {
		b.Fatal(err)
	}
	var res *recovery.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(attacked.Log().Len()), "log-entries")
	b.ReportMetric(float64(len(res.Undone)), "undone")
}

func BenchmarkRepairSmall(b *testing.B)  { benchRepairScale(b, 10, 2) }
func BenchmarkRepairMedium(b *testing.B) { benchRepairScale(b, 20, 4) }
func BenchmarkRepairLarge(b *testing.B)  { benchRepairScale(b, 40, 8) }

func BenchmarkAnalyzeMedium(b *testing.B) {
	cfg := scenario.RandomConfig{
		Runs:    4,
		Gen:     wf.GenConfig{Tasks: 20, Keys: 10, MaxReads: 3, BranchProb: 0.35},
		Attacks: 2,
		Forged:  1,
	}
	attacked, err := scenario.Random(11, cfg, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recovery.Analyze(attacked.Log(), attacked.Specs, attacked.Bad)
	}
}

// Incremental dependence analysis (the perf tentpole): per-alert damage
// assessment over the commit-time-maintained IncrementalGraph snapshot vs
// the batch path that rescans the whole log. The Batch/Incremental pairs
// share identical synthetic logs; EXPERIMENTS.md records the measured ratio.

// buildBenchLog commits n synthetic entries over a 256-key pool: entry i
// (run br(i%64), task n(i/64)) reads key (13i+7)%256 observing its latest
// writer and overwrites key (17i+3)%256, producing long tangled writer
// chains with nontrivial flow, anti and output dependence. The reported bad
// instance sits mid-log so the damage cone is realistic, not degenerate.
func buildBenchLog(b *testing.B, n int) (*wlog.Log, []wlog.InstanceID) {
	b.Helper()
	const keys = 256
	l := wlog.New()
	lastW := make([]string, keys)
	lastPos := make([]float64, keys)
	var bad []wlog.InstanceID
	for i := 0; i < n; i++ {
		e := &wlog.Entry{
			Run:   fmt.Sprintf("br%d", i%64),
			Task:  wf.TaskID(fmt.Sprintf("n%d", i/64)),
			Visit: 1,
		}
		rk := (i*13 + 7) % keys
		obs := wlog.ReadObs{WriterPos: wlog.MissingPos}
		if lastW[rk] != "" {
			obs = wlog.ReadObs{Writer: lastW[rk], WriterPos: lastPos[rk]}
		}
		e.Reads = map[data.Key]wlog.ReadObs{data.Key(fmt.Sprintf("k%d", rk)): obs}
		wk := (i*17 + 3) % keys
		e.Writes = map[data.Key]data.Value{data.Key(fmt.Sprintf("k%d", wk)): data.Value(i)}
		lsn, err := l.Append(e)
		if err != nil {
			b.Fatal(err)
		}
		lastW[wk] = string(e.ID())
		lastPos[wk] = float64(lsn)
		if i == n/2 {
			bad = []wlog.InstanceID{e.ID()}
		}
	}
	return l, bad
}

func benchAnalyzeBatch(b *testing.B, n int) {
	l, bad := buildBenchLog(b, n)
	var an *recovery.Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an = recovery.Analyze(l, nil, bad)
	}
	b.ReportMetric(float64(len(an.DefiniteUndo)), "undo-set")
}

func benchAnalyzeIncremental(b *testing.B, n int) {
	l, bad := buildBenchLog(b, n)
	g := deps.NewIncremental(l) // maintained at commit time; built before the timer
	var an *recovery.Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an = recovery.AnalyzeGraph(g.Snapshot(), l, nil, bad)
	}
	b.ReportMetric(float64(len(an.DefiniteUndo)), "undo-set")
}

func BenchmarkAnalyzeBatch1k(b *testing.B)         { benchAnalyzeBatch(b, 1_000) }
func BenchmarkAnalyzeBatch10k(b *testing.B)        { benchAnalyzeBatch(b, 10_000) }
func BenchmarkAnalyzeBatch100k(b *testing.B)       { benchAnalyzeBatch(b, 100_000) }
func BenchmarkAnalyzeIncremental1k(b *testing.B)   { benchAnalyzeIncremental(b, 1_000) }
func BenchmarkAnalyzeIncremental10k(b *testing.B)  { benchAnalyzeIncremental(b, 10_000) }
func BenchmarkAnalyzeIncremental100k(b *testing.B) { benchAnalyzeIncremental(b, 100_000) }

// The other side of the ledger: what the O(Δ) hook costs each commit.
func BenchmarkIncrementalAppend(b *testing.B) {
	const keys = 256
	l := wlog.New()
	deps.NewIncremental(l)
	lastW := make([]string, keys)
	lastPos := make([]float64, keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &wlog.Entry{
			Run:   fmt.Sprintf("br%d", i%64),
			Task:  wf.TaskID(fmt.Sprintf("n%d", i/64)),
			Visit: 1,
		}
		rk := (i*13 + 7) % keys
		obs := wlog.ReadObs{WriterPos: wlog.MissingPos}
		if lastW[rk] != "" {
			obs = wlog.ReadObs{Writer: lastW[rk], WriterPos: lastPos[rk]}
		}
		e.Reads = map[data.Key]wlog.ReadObs{data.Key(fmt.Sprintf("k%d", rk)): obs}
		wk := (i*17 + 3) % keys
		e.Writes = map[data.Key]data.Value{data.Key(fmt.Sprintf("k%d", wk)): data.Value(i)}
		lsn, err := l.Append(e)
		if err != nil {
			b.Fatal(err)
		}
		lastW[wk] = string(e.ID())
		lastPos[wk] = float64(lsn)
	}
}

// Sharded execution throughput (the concurrency tentpole, §III.D): commit
// throughput of the internal/shard group-commit pipeline as the worker-shard
// count grows. Tasks carry real latency (a sleep in each compute body) the
// way production workflow steps wait on I/O — that wait is what concurrent
// shards overlap, so throughput scales with shards even on a single-core
// host where pure-CPU workloads cannot. EXPERIMENTS.md records the measured
// series and the ≥2× claim at 4 shards.

// benchChainSpec is a key-disjoint linear chain (so runs land on distinct
// shards) whose every task sleeps for delay before writing.
func benchChainSpec(name string, n int, delay time.Duration) *wf.Spec {
	b := wf.NewBuilder(name, "t1")
	for i := 1; i <= n; i++ {
		out := data.Key(fmt.Sprintf("%s.k%d", name, i))
		tb := b.Task(wf.TaskID(fmt.Sprintf("t%d", i))).Writes(out)
		if i > 1 {
			tb.Reads(data.Key(fmt.Sprintf("%s.k%d", name, i-1)))
		}
		if i < n {
			tb.Then(wf.TaskID(fmt.Sprintf("t%d", i+1)))
		}
		step := int64(i)
		tb.Compute(func(in map[data.Key]data.Value) map[data.Key]data.Value {
			time.Sleep(delay)
			var sum data.Value
			for _, v := range in {
				sum += v
			}
			return map[data.Key]data.Value{out: sum + data.Value(step)}
		})
	}
	return b.MustBuild()
}

func benchShardedThroughput(b *testing.B, shards int) {
	const (
		runs      = 8
		chain     = 16
		taskDelay = 200 * time.Microsecond
	)
	var commits int64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := shard.New(shard.Config{Shards: shards, BatchMax: 8}, nil)
		if err != nil {
			b.Fatal(err)
		}
		svc.Start()
		start := time.Now()
		for r := 0; r < runs; r++ {
			name := fmt.Sprintf("w%d", r)
			if err := svc.SubmitRun(name, benchChainSpec(name, chain, taskDelay)); err != nil {
				b.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := svc.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		elapsed += time.Since(start)
		m := svc.Metrics()
		if m.CommitEntries != runs*chain {
			b.Fatalf("committed %d entries, want %d", m.CommitEntries, runs*chain)
		}
		commits += int64(m.CommitEntries)
		svc.Stop()
	}
	b.StopTimer()
	b.ReportMetric(float64(commits)/elapsed.Seconds(), "commits/s")
}

func BenchmarkShardedThroughput1(b *testing.B) { benchShardedThroughput(b, 1) }
func BenchmarkShardedThroughput2(b *testing.B) { benchShardedThroughput(b, 2) }
func BenchmarkShardedThroughput4(b *testing.B) { benchShardedThroughput(b, 4) }
func BenchmarkShardedThroughput8(b *testing.B) { benchShardedThroughput(b, 8) }

// Parallel DAG-driven repair (the §IV perf tentpole): 64 key-disjoint
// attacked chains form 64 independent key-footprint components, and the
// component executor replays them over a worker pool. Each compute sleeps —
// replay re-executes the computes, and that wait is what the workers
// overlap, so the executor scales even on a single-core host. EXPERIMENTS.md
// records the serial vs parallel series and the ≥2× claim.

func benchParallelRepairWorkload(b *testing.B) (*engine.Engine, map[string]*wf.Spec, []wlog.InstanceID) {
	b.Helper()
	const (
		runs  = 64
		chain = 4
		delay = time.Millisecond
	)
	eng := engine.New(data.NewStore(), wlog.New())
	specs := map[string]*wf.Spec{}
	var bad []wlog.InstanceID
	var rlist []*engine.Run
	for r := 0; r < runs; r++ {
		name := fmt.Sprintf("p%d", r)
		specs[name] = benchChainSpec(name, chain, delay)
		k1 := data.Key(name + ".k1")
		eng.AddAttack(engine.Attack{
			Run: name, Task: "t1", Visit: 1,
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{k1: -1}
			},
		})
		run, err := eng.NewRun(name, specs[name])
		if err != nil {
			b.Fatal(err)
		}
		rlist = append(rlist, run)
		bad = append(bad, wlog.FormatInstance(name, "t1", 1))
	}
	if err := eng.RunAll(context.Background(), rlist...); err != nil {
		b.Fatal(err)
	}
	return eng, specs, bad
}

func benchRepairWorkers(b *testing.B, workers int) {
	eng, specs, bad := benchParallelRepairWorkload(b)
	var res *recovery.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = recovery.Repair(eng.Store(), eng.Log(), specs, bad, recovery.Options{Parallel: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Components), "components")
	b.ReportMetric(float64(res.Workers), "workers")
	b.ReportMetric(float64(len(res.Undone)), "undone")
}

func BenchmarkRepairSerial(b *testing.B)    { benchRepairWorkers(b, 0) }
func BenchmarkRepairParallel2(b *testing.B) { benchRepairWorkers(b, 2) }
func BenchmarkRepairParallel4(b *testing.B) { benchRepairWorkers(b, 4) }
func BenchmarkRepairParallel8(b *testing.B) { benchRepairWorkers(b, 8) }

// Mid-recovery service latency (§IV partial quiescence): how long a clean
// run submitted during an in-flight repair takes to complete. Strict mode
// gates every shard for the whole repair; partial quiescence pauses only the
// damaged component's owners, so the clean run's latency is independent of
// the repair duration.

func benchRepairMidRecovery(b *testing.B, strict bool) {
	const delay = 2 * time.Millisecond
	var clean time.Duration
	for i := 0; i < b.N; i++ {
		svc, err := shard.New(shard.Config{Shards: 2, Strict: strict}, nil)
		if err != nil {
			b.Fatal(err)
		}
		svc.Start()
		svc.Engine().AddAttack(engine.Attack{
			Run: "d", Task: "t2", Visit: 1,
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{"d.k2": -1}
			},
		})
		if err := svc.SubmitRun("d", benchChainSpec("d", 16, delay)); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := svc.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
		if err := svc.Report([]wlog.InstanceID{wlog.FormatInstance("d", "t2", 1)}); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for svc.State() != stg.Recovery {
			if time.Now().After(deadline) {
				b.Fatal("service never entered RECOVERY")
			}
			time.Sleep(50 * time.Microsecond)
		}
		start := time.Now()
		name := fmt.Sprintf("c%d", i)
		if err := svc.SubmitRun(name, benchChainSpec(name, 8, 0)); err != nil {
			b.Fatal(err)
		}
		for {
			info, err := svc.RunInfo(name)
			if err != nil {
				b.Fatal(err)
			}
			if info.Status == "done" {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("clean run stuck %q mid-recovery", info.Status)
			}
			time.Sleep(50 * time.Microsecond)
		}
		clean += time.Since(start)
		if err := svc.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		if m := svc.Metrics(); m.RecoveryErrors > 0 {
			b.Fatalf("recovery failed: %v", svc.LastRecoveryError())
		}
		svc.Stop()
	}
	b.ReportMetric(clean.Seconds()/float64(b.N)*1e3, "clean-run-ms")
}

func BenchmarkRepairMidRecoveryPartial(b *testing.B) { benchRepairMidRecovery(b, false) }
func BenchmarkRepairMidRecoveryStrict(b *testing.B)  { benchRepairMidRecovery(b, true) }

// Baseline comparison (§I, §VII): dependency-based recovery vs
// checkpoint/rollback on the same attacked history. The reported metrics
// show rollback discarding far more committed work than recovery undoes.

func BenchmarkBaselineVsRecovery(b *testing.B) {
	cfg := scenario.RandomConfig{
		Runs:    4,
		Gen:     wf.GenConfig{Tasks: 20, Keys: 10, MaxReads: 3, BranchProb: 0.35},
		Attacks: 1,
	}
	attacked, err := scenario.Random(23, cfg, true)
	if err != nil {
		b.Fatal(err)
	}
	if len(attacked.Bad) == 0 {
		b.Skip("seed produced no committed attack")
	}
	var undone, discarded int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cp, err := baseline.LastCheckpointBefore(attacked.Log(), attacked.Bad, 10)
		if err != nil {
			b.Fatal(err)
		}
		undone = len(rec.Undone)
		discarded = attacked.Log().Len() - cp
	}
	b.ReportMetric(float64(undone), "recovery-undone")
	b.ReportMetric(float64(discarded), "rollback-discarded")
}

// §VI design procedure.

func BenchmarkGuidelinesChoose(b *testing.B) {
	req := design.Requirements{Lambda: 1, Epsilon: 1e-3, MaxBuffer: 20}
	var buf int
	for i := 0; i < b.N; i++ {
		c, err := design.Choose(req, 15, 20, stg.DegradeLinear, stg.DegradeLinear)
		if err != nil {
			b.Fatal(err)
		}
		buf = c.Buffer
	}
	b.ReportMetric(float64(buf), "chosen-buffer")
}

// State occupancy across the paper's named cases (the implicit table of
// §V.A.2).

func BenchmarkStateOccupancy(b *testing.B) {
	cases := []struct {
		name string
		p    stg.Params
	}{
		{"case2-good", stg.Square(0.5, 15, 20, 15)},
		{"case2-overload", stg.Square(4, 15, 20, 15)},
		{"case5-good", stg.Square(1, 15, 20, 15)},
		{"case6-poor", stg.Square(1, 2, 3, 15)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m, err := stg.New(c.p)
			if err != nil {
				b.Fatal(err)
			}
			var met stg.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err = m.SteadyMetrics()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(met.PNormal, "P(NORMAL)")
			b.ReportMetric(met.Loss, "loss")
		})
	}
}

// Example-scale sanity: keep the examples' workloads benchmarked so
// regressions in the recovery path surface here.

func BenchmarkSelfhealUnitExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		attacked, err := scenario.Fig1(true)
		if err != nil {
			b.Fatal(err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Undone) != 7 {
			b.Fatalf("undo set drifted: %v", res.Undone)
		}
	}
}

func TestFigureInventoryComplete(t *testing.T) {
	// Every reproduced figure must be regenerable by ID.
	if got := len(figures.IDs()); got != 15 {
		t.Fatalf("figure inventory has %d entries, want 15", got)
	}
}

// Real-runtime validation (integration of the production state machine with
// the CTMC, internal/rtsim).

func BenchmarkRealRuntimeVsCTMC(b *testing.B) {
	p := stg.Square(1, 6, 8, 4)
	m, err := stg.New(p)
	if err != nil {
		b.Fatal(err)
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		b.Fatal(err)
	}
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rtsim.Run(p, 2000, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.LossOccupancy() - met.Loss
		if gap < 0 {
			gap = -gap
		}
	}
	b.ReportMetric(gap, "loss-gap-vs-model")
}

// §VI step 1: measuring μ_k and ξ_k on the real implementation.

func BenchmarkMeasureRates(b *testing.B) {
	cfg := rates.Config{MaxK: 4, Repeats: 1, Tasks: 8, Seed: 1}
	var name string
	for i := 0; i < b.N; i++ {
		mu, err := rates.MeasureAnalyzer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fam, _, err := rates.FitDegradation(mu)
		if err != nil {
			b.Fatal(err)
		}
		name = fam.Name
	}
	b.Logf("analyzer degradation classified as %q", name)
}

// Ablation: strict (Theorem-4 gating) vs concurrent (§III.D strategy 3)
// runtime on the Figure 1 workload with a mid-run alert.

func BenchmarkStrategyAblation(b *testing.B) {
	for _, mode := range []struct {
		name       string
		concurrent bool
	}{{"strict", false}, {"concurrent", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var overlap int
			for i := 0; i < b.N; i++ {
				sys := mustFig1System(b, mode.concurrent)
				if err := sys.Tick(); err != nil {
					b.Fatal(err)
				}
				sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
				if err := sys.RunToCompletion(context.Background(), 300); err != nil {
					b.Fatal(err)
				}
				overlap = sys.Metrics().ConcurrentNormalSteps
			}
			b.ReportMetric(float64(overlap), "overlap-steps")
		})
	}
}

func mustFig1System(b *testing.B, concurrent bool) *selfheal.System {
	b.Helper()
	st := data.NewStore()
	st.Init("e", 0)
	sys, err := selfheal.New(selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, Concurrent: concurrent}, st)
	if err != nil {
		b.Fatal(err)
	}
	wf1, wf2 := wf.Fig1Specs()
	sys.Engine().AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	if err := sys.StartRun("r1", wf1); err != nil {
		b.Fatal(err)
	}
	if err := sys.StartRun("r2", wf2); err != nil {
		b.Fatal(err)
	}
	return sys
}

// Extension experiment E1: asymmetric buffer sizing (§VI advice).

func BenchmarkFigE1BufferGrid(b *testing.B) {
	benchFigure(b, "e1", "recovery buffer 15", minOf)
}

// Distributed recovery (§VII): the Figure 1 workload over three nodes.

func BenchmarkDistributedRecovery(b *testing.B) {
	wf1, wf2 := wf.Fig1Specs()
	var undone int
	for i := 0; i < b.N; i++ {
		st := data.NewStore()
		st.Init("e", 0)
		c, err := dist.NewCluster(st, "P1", "P2", "P3")
		if err != nil {
			b.Fatal(err)
		}
		c.AddAttack(dist.Attack{
			Run: "r1", Task: "t1",
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{"a": 100}
			},
		})
		a1 := dist.Assignment{"t1": "P1", "t2": "P1", "t3": "P2", "t4": "P2", "t5": "P2", "t6": "P1"}
		a2 := dist.Assignment{"t7": "P3", "t8": "P3", "t9": "P3", "t10": "P3"}
		ch1, err := c.Submit("r1", wf1, a1)
		if err != nil {
			b.Fatal(err)
		}
		if err := <-ch1; err != nil {
			b.Fatal(err)
		}
		ch2, err := c.Submit("r2", wf2, a2)
		if err != nil {
			b.Fatal(err)
		}
		if err := <-ch2; err != nil {
			b.Fatal(err)
		}
		res, _, err := c.Recover([]wlog.InstanceID{"r1/t1#1"}, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
		undone = len(res.Undone)
		c.Close()
	}
	b.ReportMetric(float64(undone), "undone")
}

// Alert-storm triage (the streaming-triage tentpole, docs/TRIAGE.md): the
// sharded service under an IDS alert storm at 1×, 10× and 100× the base
// rate, with the full triage front-end on (cone coalescing, covered-alert
// prefilter, Report-time dedupe) versus the naive per-alert pipeline. The
// reported metrics are the acceptance numbers: loss-rate must stay within
// 2× of the 1× baseline at 100×, analyses/alert must fall below 0.2 (a
// coalesce fold ≥ 5). EXPERIMENTS.md records the measured series next to
// the §V CTMC prediction for the same arrival ratio.

func benchAlertStorm(b *testing.B, scale int, opts triage.Options) {
	const (
		alerts    = 200
		baseGap   = 200 * time.Microsecond
		runs      = 4
		chain     = 8
		taskDelay = 100 * time.Microsecond
	)
	gap := baseGap / time.Duration(scale)
	var reported, lost, analyses, deduped, prefiltered int
	for i := 0; i < b.N; i++ {
		svc, err := shard.New(shard.Config{Shards: 2, AlertBuf: 32, Triage: opts}, nil)
		if err != nil {
			b.Fatal(err)
		}
		svc.Start()
		var bad []wlog.InstanceID
		for r := 0; r < runs; r++ {
			name := fmt.Sprintf("st%d", r)
			key := data.Key(name + ".k2")
			svc.Engine().AddAttack(engine.Attack{
				Run: name, Task: "t2", Visit: 1,
				Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
					return map[data.Key]data.Value{key: -1}
				},
			})
			if err := svc.SubmitRun(name, benchChainSpec(name, chain, taskDelay)); err != nil {
				b.Fatal(err)
			}
			bad = append(bad, wlog.FormatInstance(name, "t2", 1))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		if err := svc.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
		// The storm: alerts cycle over the attacked instances at the scaled
		// arrival rate. Drops surface in the metrics, not as test failures —
		// loss under pressure is exactly what is being measured.
		for a := 0; a < alerts; a++ {
			_ = svc.Report([]wlog.InstanceID{bad[a%len(bad)]})
			time.Sleep(gap)
		}
		if err := svc.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		m := svc.Metrics()
		if m.RecoveryErrors > 0 {
			b.Fatalf("recovery failed under storm: %v", svc.LastRecoveryError())
		}
		reported += m.AlertsReported
		lost += m.AlertsLost
		analyses += m.ConesAnalyzed
		deduped += m.AlertsDeduped
		prefiltered += m.AlertsPrefiltered
		svc.Stop()
	}
	b.ReportMetric(float64(lost)/float64(reported), "loss-rate")
	b.ReportMetric(float64(analyses)/float64(reported), "analyses/alert")
	if analyses > 0 {
		b.ReportMetric(float64(reported)/float64(analyses), "coalesce-ratio")
	}
	b.ReportMetric(float64(deduped)/float64(b.N), "deduped")
	b.ReportMetric(float64(prefiltered)/float64(b.N), "prefiltered")
}

func BenchmarkAlertStorm1x(b *testing.B)   { benchAlertStorm(b, 1, triage.All()) }
func BenchmarkAlertStorm10x(b *testing.B)  { benchAlertStorm(b, 10, triage.All()) }
func BenchmarkAlertStorm100x(b *testing.B) { benchAlertStorm(b, 100, triage.All()) }

// The contrast series: the same storms with the front-end off — one
// degraded analysis per admitted alert, bounded-queue drops under pressure.
func BenchmarkAlertStormNaive1x(b *testing.B)   { benchAlertStorm(b, 1, triage.Options{}) }
func BenchmarkAlertStormNaive100x(b *testing.B) { benchAlertStorm(b, 100, triage.Options{}) }

// End-to-end campaign (workload + attacks + IDS + on-line recovery).

func BenchmarkCampaign(b *testing.B) {
	var undone int
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(campaign.DefaultConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Verified {
			b.Fatalf("campaign %d produced an invalid history", i)
		}
		undone = rep.Metrics.Undone
	}
	b.ReportMetric(float64(undone), "undone")
}
