# Standard gates for every change. `make ci` is what a PR must pass:
# build, vet, and the full test suite under the race detector (the
# incremental dependence graph is maintained from commit-time log hooks,
# so the race run is not optional).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The incremental-vs-batch analyzer comparison (EXPERIMENTS.md).
bench:
	$(GO) test -run xxx -bench 'BenchmarkAnalyze(Batch|Incremental)(1k|10k|100k)$$|BenchmarkIncrementalAppend' -benchtime 3x .
	$(GO) test -run xxx -bench 'BenchmarkAppend$$' -benchtime 100000x ./internal/durable/
	$(GO) test -run xxx -bench 'BenchmarkReplay$$' -benchtime 5x ./internal/durable/

ci: build vet race
