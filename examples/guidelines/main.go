// Guidelines walks through the system design procedure of §VI of the paper:
// given a target attack rate λ and a target ε-convergence, evaluate the
// degradation of the analysis and scheduling algorithms, sweep the
// recovery-task buffer size across the low-loss range, pick the smallest
// configuration that meets ε, locate the cost-effective range of μ₁ and ξ₁,
// and inspect the transient resistance to a peak attack rate.
package main

import (
	"errors"
	"fmt"
	"log"

	"selfheal/internal/design"
	"selfheal/internal/stg"
)

func main() {
	req := design.Requirements{Lambda: 1, Epsilon: 1e-4, MaxBuffer: 30}
	const mu1, xi1 = 15.0, 20.0

	fmt.Printf("design targets: λ=%g, ε=%g (buffer sweep up to %d)\n\n",
		req.Lambda, req.Epsilon, req.MaxBuffer)

	// Step 1 (§VI): evaluate the degradation of the algorithms. We show
	// the sweep for two families; a real system would measure μ_k and
	// ξ_k on its own analyzer and scheduler implementations.
	for _, fam := range []struct {
		name string
		f, g stg.Degradation
	}{
		{"linear (μ_k=μ₁/k, ξ_k=ξ₁/k)", stg.DegradeLinear, stg.DegradeLinear},
		{"quadratic (fast degradation)", stg.DegradeQuad, stg.DegradeQuad},
	} {
		fmt.Printf("degradation family: %s\n", fam.name)
		cands, err := design.SweepBuffers(req, mu1, xi1, fam.f, fam.g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  buffer  loss-probability  P(NORMAL)")
		for _, c := range cands {
			if c.Buffer%4 != 0 && c.Buffer != 2 {
				continue // print a readable subset
			}
			fmt.Printf("  %6d  %16.3e  %9.4f\n", c.Buffer, c.Epsilon, c.Metrics.PNormal)
		}

		// Step 2: choose the smallest buffer meeting ε.
		chosen, err := design.Choose(req, mu1, xi1, fam.f, fam.g)
		var inf *design.ErrInfeasible
		switch {
		case errors.As(err, &inf):
			fmt.Printf("  → infeasible: best ε=%.3e at buffer %d; redesign the algorithms (§VI)\n\n",
				inf.Best.Epsilon, inf.Best.Buffer)
			continue
		case err != nil:
			log.Fatal(err)
		}
		fmt.Printf("  → chosen buffer %d with ε=%.3e, P(NORMAL)=%.4f\n\n",
			chosen.Buffer, chosen.Epsilon, chosen.Metrics.PNormal)
	}

	// Step 3: cost-effective range of μ₁ and ξ₁ (Cases 3 and 4).
	base := stg.Square(req.Lambda, mu1, xi1, 15)
	kneeMu, err := design.CostEffectiveRange(base, design.SweepMu1, 1, 20, 1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	kneeXi, err := design.CostEffectiveRange(base, design.SweepXi1, 1, 20, 1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-effective range: improving μ₁ beyond ≈%g or ξ₁ beyond ≈%g buys <5%% NORMAL probability\n\n",
		kneeMu, kneeXi)

	// Step 4: peak-rate resistance (the Case 6 inspection). How long does
	// a modest system (designed for λ=0.1) withstand a 10× peak?
	modest := stg.Square(0.1, 2, 3, 15)
	rt, exceeded, err := design.ResistanceTime(modest, 1, 0.01, 100, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	if exceeded {
		fmt.Printf("a λ=0.1 design under a λ=1 peak: loss probability passes 1%% after ≈%.1f time units\n", rt)
		fmt.Println("(the paper's Case 6: \"the system can resist such high attacking rate about 5 time-units\")")
	} else {
		fmt.Println("the modest design absorbed the peak for the whole horizon")
	}

	// The chosen production design shrugs the same peak off entirely.
	strong := stg.Square(req.Lambda, mu1, xi1, 15)
	rt, exceeded, err = design.ResistanceTime(strong, 1, 0.01, 100, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	if exceeded {
		fmt.Printf("the chosen design breaks after %.1f units — unexpected!\n", rt)
	} else {
		fmt.Println("the chosen design (μ₁=15, ξ₁=20) holds the same peak for 100+ time units ✓")
	}

	// First-passage view of the same question: the expected time until
	// the first alert is actually lost, starting from NORMAL, with the
	// λ=1 peak applied to both designs.
	peakOf := func(base stg.Params) float64 {
		p := base
		p.Lambda = 1
		m, err := stg.New(p)
		if err != nil {
			log.Fatal(err)
		}
		mttl, err := m.MeanTimeToLoss()
		if err != nil {
			log.Fatal(err)
		}
		return mttl
	}
	fmt.Printf("mean time to first lost alert under the peak: modest design %.1f units, chosen design %.3g units\n",
		peakOf(modest), peakOf(strong))
}
