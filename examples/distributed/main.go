// Distributed demonstrates de-centralized workflow processing (§VII): an
// order workflow whose tasks are spread over three processing nodes, each
// keeping its own log segment. An attacker corrupts the inventory check on
// one node, steering the order down the approval path it should not have
// taken. Recovery gathers the per-node segments, merges them into the global
// system log by commit stamp, runs the standard dependency-based analysis,
// and installs the repaired store cluster-wide.
package main

import (
	"fmt"
	"log"

	"selfheal/internal/data"
	"selfheal/internal/dist"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func orderSpec() *wf.Spec {
	return wf.NewBuilder("order", "receive").
		Task("receive").Writes("qty").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"qty": 70} // customer wants 70 units
		}).Then("check-stock").End().
		Task("check-stock").Reads("qty", "stock").Writes("avail").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			avail := data.Value(0)
			if r["stock"] >= r["qty"] {
				avail = 1
			}
			return map[data.Key]data.Value{"avail": avail}
		}).Then("backorder", "reserve").
		ChooseBy(func(r map[data.Key]data.Value) wf.TaskID {
			if r["stock"] >= r["qty"] {
				return "reserve"
			}
			return "backorder"
		}).End().
		Task("reserve").Reads("qty", "stock").Writes("stock", "reserved").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{
				"stock":    r["stock"] - r["qty"],
				"reserved": r["qty"],
			}
		}).Then("invoice").End().
		Task("invoice").Reads("reserved").Writes("invoice").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"invoice": r["reserved"] * 12}
		}).End().
		Task("backorder").Reads("qty").Writes("backlog").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"backlog": r["qty"]}
		}).End().
		MustBuild()
}

func main() {
	st := data.NewStore()
	st.Init("stock", 40) // only 40 units on hand: the order must backorder

	cluster, err := dist.NewCluster(st, "intake", "warehouse", "billing")
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The attacker compromises the warehouse node's stock check so the
	// 70-unit order is "available".
	cluster.AddAttack(dist.Attack{
		Run: "order-1", Task: "check-stock",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"avail": 1}
		},
		Choose: func(map[data.Key]data.Value) wf.TaskID { return "reserve" },
	})

	assign := dist.Assignment{
		"receive":     "intake",
		"check-stock": "warehouse",
		"reserve":     "warehouse",
		"backorder":   "warehouse",
		"invoice":     "billing",
	}
	done, err := cluster.Submit("order-1", orderSpec(), assign)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	snap := cluster.Store().Snapshot()
	fmt.Printf("after the attack: stock=%d reserved=%d invoice=%d\n",
		snap["stock"], snap["reserved"], snap["invoice"])

	merged, err := cluster.MergedLog()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global log reconstructed from %d node segments: %d commits\n", 3, merged.Len())

	res, _, err := cluster.Recover([]wlog.InstanceID{"order-1/check-stock#1"}, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("undone:", res.Undone)
	fmt.Println("redone:", res.Redone)
	fmt.Println("newly executed (corrected path):", res.NewExecuted)

	snap = cluster.Store().Snapshot()
	fmt.Printf("after recovery: stock=%d backlog=%d\n", snap["stock"], snap["backlog"])
	if snap["stock"] != 40 || snap["backlog"] != 70 {
		log.Fatal("recovery did not restore the honest state")
	}
	if _, leaked := snap["invoice"]; leaked {
		log.Fatal("fraudulent invoice survived")
	}
	fmt.Println("inventory restored and order correctly backordered across all nodes ✓")
}
