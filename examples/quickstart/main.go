// Quickstart: the smallest end-to-end use of the self-healing workflow
// library — define a workflow, execute it under an attack, report the
// malicious task, and repair the damage with dependency-based recovery.
package main

import (
	"context"
	"fmt"
	"log"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func main() {
	// A four-task pipeline: ingest → transform → aggregate → publish.
	spec, err := wf.NewBuilder("pipeline", "ingest").
		Task("ingest").Writes("raw").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"raw": 10}
		}).Then("transform").End().
		Task("transform").Reads("raw").Writes("cooked").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"cooked": r["raw"] * 2}
		}).Then("aggregate").End().
		Task("aggregate").Reads("cooked").Writes("total").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"total": r["cooked"] + 1}
		}).Then("publish").End().
		Task("publish").Reads("total").Writes("report").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"report": r["total"] * 100}
		}).End().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Execute with the "transform" task corrupted by an attacker.
	eng := engine.New(data.NewStore(), wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "job1", Task: "transform",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"cooked": -999}
		},
	})
	run, err := eng.NewRun("job1", spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after the attack:", eng.Store().Snapshot())

	// The IDS reports the malicious instance; recovery finds everything
	// it infected (aggregate, publish) and repairs on-line.
	bad := []wlog.InstanceID{wlog.FormatInstance("job1", "transform", 1)}
	res, err := recovery.Repair(eng.Store(), eng.Log(), map[string]*wf.Spec{"job1": spec}, bad, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("undone:", res.Undone)
	fmt.Println("redone:", res.Redone)
	fmt.Println("after recovery:", res.Store.Snapshot())

	if errs := recovery.VerifyResult(res, eng.Log(), map[string]*wf.Spec{"job1": spec}); len(errs) != 0 {
		log.Fatal("recovery invalid: ", errs)
	}
	fmt.Println("recovery verified: complete, value-consistent, spec-consistent")
}
