// Campaign runs a full end-to-end attack campaign against the live
// self-healing runtime: a generated multi-workflow workload executes while
// an attacker corrupts tasks, the simulated IDS reports each committed
// attack after a detection delay (§IV.D), and the system scans and repairs
// on-line. The final corrected history is verified intrinsically.
package main

import (
	"fmt"
	"log"

	"selfheal/internal/campaign"
)

func main() {
	for _, mode := range []struct {
		name string
		mut  func(*campaign.Config)
	}{
		{"strict (Theorem-4 gating)", func(*campaign.Config) {}},
		{"concurrent (§III.D strategy 3)", func(c *campaign.Config) { c.System.Concurrent = true }},
		{"eager (§III.D strategy 2)", func(c *campaign.Config) { c.System.EagerRecovery = true }},
	} {
		cfg := campaign.DefaultConfig(7)
		cfg.Attacks = 4
		mode.mut(&cfg)
		rep, err := campaign.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", mode.name)
		fmt.Printf("  committed tasks: %d, attacks committed: %d/%d\n",
			rep.Committed, rep.AttacksCommitted, rep.AttacksPlanted)
		fmt.Printf("  IDS reports: %d delivered, %d lost\n", rep.Reported, rep.Lost)
		fmt.Printf("  recovery: %d units, %d undone, %d redone, %d new\n",
			rep.Metrics.UnitsExecuted, rep.Metrics.Undone, rep.Metrics.Redone, rep.Metrics.NewExecuted)
		if rep.Metrics.ConcurrentNormalSteps > 0 {
			fmt.Printf("  normal tasks overlapped with recovery: %d\n", rep.Metrics.ConcurrentNormalSteps)
		}
		if rep.Metrics.EagerUnits > 0 {
			fmt.Printf("  units executed during SCAN (eager): %d\n", rep.Metrics.EagerUnits)
		}
		if !rep.Verified {
			log.Fatalf("final history invalid: %v", rep.VerifyErrors)
		}
		fmt.Println("  final corrected history verified ✓")
	}
}
