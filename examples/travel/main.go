// Travel demonstrates the paper's second §I motivation — "the attacker may
// schedule a travel with forged credit card information" — with control-
// dependence recovery front and center. A booking workflow pulls the
// customer's credit score, and the score gates the execution path: approved
// bookings reserve a seat and a room; denials only notify. The attacker
// corrupts the score-pull so a bad customer gets approved, consuming
// inventory. Recovery re-decides the branch, undoes the bookings (restoring
// the seat and room counters — work that "computed correctly" but should
// never have run, the paper's condition 2), and routes the corrected
// execution down the denial path.
package main

import (
	"context"
	"fmt"
	"log"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func bookingSpec() *wf.Spec {
	return wf.NewBuilder("booking", "pull-score").
		Task("pull-score").Reads("bureau:alice").Writes("score").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"score": r["bureau:alice"]}
		}).Then("credit-check").End().
		Task("credit-check").Reads("score").Writes("decision").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			d := data.Value(0)
			if r["score"] >= 600 {
				d = 1
			}
			return map[data.Key]data.Value{"decision": d}
		}).Then("deny", "book-flight").
		ChooseBy(wf.ThresholdChoose("score", 600, "deny", "book-flight")).End().
		Task("book-flight").Reads("seats").Writes("seats", "flight-ref").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{
				"seats":      r["seats"] - 1,
				"flight-ref": 7000 + r["seats"],
			}
		}).Then("book-hotel").End().
		Task("book-hotel").Reads("rooms").Writes("rooms", "hotel-ref").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{
				"rooms":     r["rooms"] - 1,
				"hotel-ref": 8000 + r["rooms"],
			}
		}).Then("invoice").End().
		Task("invoice").Reads("flight-ref", "hotel-ref").Writes("invoice").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"invoice": r["flight-ref"] + r["hotel-ref"]}
		}).End().
		Task("deny").Reads("score").Writes("notice").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"notice": 1}
		}).End().
		MustBuild()
}

func main() {
	st := data.NewStore()
	st.Init("bureau:alice", 480) // a score that must be denied
	st.Init("seats", 100)
	st.Init("rooms", 50)

	eng := engine.New(st, wlog.New())
	// The attacker forges the credit information: the score pull reports
	// a stellar 810 instead of the real 480.
	eng.AddAttack(engine.Attack{
		Run: "trip1", Task: "pull-score",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"score": 810}
		},
	})
	spec := bookingSpec()
	run, err := eng.NewRun("trip1", spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		log.Fatal(err)
	}
	snap := eng.Store().Snapshot()
	fmt.Printf("after the forged booking: seats=%d rooms=%d invoice=%d\n",
		snap["seats"], snap["rooms"], snap["invoice"])

	// IDS reports the forged score pull.
	bad := []wlog.InstanceID{wlog.FormatInstance("trip1", "pull-score", 1)}
	specs := map[string]*wf.Spec{"trip1": spec}
	a := recovery.Analyze(eng.Log(), specs, bad)
	fmt.Println("\ndamage analysis:")
	fmt.Println("  flow-damaged:", a.FlowDamaged)
	for g, c := range a.CandidateUndo {
		fmt.Printf("  on the wrong branch if redo(%s) decides otherwise: %v\n", g, c)
	}

	res, err := recovery.Repair(eng.Store(), eng.Log(), specs, bad, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecovery outcome:")
	fmt.Println("  undone:", res.Undone)
	fmt.Println("  redone:", res.Redone)
	fmt.Println("  newly executed (denial path):", res.NewExecuted)
	fmt.Println("  bookings dropped without redo:", res.DroppedNotRedone)

	snap = res.Store.Snapshot()
	fmt.Printf("\nafter recovery: seats=%d rooms=%d notice=%d\n",
		snap["seats"], snap["rooms"], snap["notice"])
	if snap["seats"] != 100 || snap["rooms"] != 50 {
		log.Fatal("inventory not restored")
	}
	if _, stillBooked := snap["invoice"]; stillBooked {
		log.Fatal("fraudulent invoice survived recovery")
	}
	fmt.Println("inventory restored, trip denied — the corrected history is the honest one ✓")
}
