// Paperfig1 reproduces the worked example of Figure 1 of "Self-Healing
// Workflow Systems under Attacks" (Yu, Liu, Zang; ICDCS 2004) end to end:
// two interleaved workflows, task t1 corrupted by the attacker, the IDS
// reporting B = {t1}, and the recovery analyzer deriving exactly the paper's
// undo/redo sets — including the counter-intuitive results that t3 and t6
// must be undone although they computed correctly, and that t4 is undone but
// never redone.
package main

import (
	"fmt"
	"log"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
)

func main() {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("system log L1 (commit order):")
	for _, e := range attacked.Log().Entries() {
		mark := " "
		switch e.Task {
		case "t1":
			mark = "B" // corrupted directly by the attacker
		case "t2", "t4", "t8", "t10":
			mark = "A" // infected via flow dependence
		}
		fmt.Printf("  %3d  [%s] %-10s", e.LSN, mark, e.ID())
		if e.Chosen != "" {
			fmt.Printf("  chose %s", e.Chosen)
		}
		fmt.Println()
	}
	fmt.Println("\nattacked final state:", attacked.Store().Snapshot())

	// Static analysis: the recovery analyzer's damage assessment.
	a := recovery.Analyze(attacked.Log(), attacked.Specs, attacked.Bad)
	fmt.Println("\nTheorem 1 damage assessment for B =", a.Bad)
	fmt.Println("  condition 3 (flow closure, the 'A' marks):", a.FlowDamaged)
	for g, c := range a.CandidateUndo {
		fmt.Printf("  condition 2 candidates under redo(%s): %v\n", g, c)
	}
	for _, c := range a.Cond4 {
		fmt.Printf("  condition 4: %s is stale if %s ∈ succ(redo(%s))\n",
			c.Reader, c.Unexecuted, c.Guard)
	}
	fmt.Println("Theorem 2 redo classification:")
	fmt.Println("  definite redo (cond 1):", a.DefiniteRedo)
	for g, c := range a.CandidateRedo {
		fmt.Printf("  candidate redo under %s (cond 2): %v\n", g, c)
	}
	fmt.Printf("Theorem 3: %d partial-order edges derived\n", len(a.Orders))
	order, err := recovery.ScheduleActions(attacked.Log(), a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("scheduler's serialization of the definite recovery tasks (minimal(S,≺)):\n  ")
	for i, ref := range order {
		if i > 0 {
			fmt.Print(" ≺ ")
		}
		fmt.Printf("%s(%s)", ref.Kind, ref.Inst)
	}
	fmt.Println()

	// Execute the repair.
	res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepair outcome:")
	fmt.Println("  undone:           ", res.Undone)
	fmt.Println("  redone:           ", res.Redone)
	fmt.Println("  newly executed:   ", res.NewExecuted)
	fmt.Println("  dropped, not redone:", res.DroppedNotRedone)
	fmt.Printf("  fixpoint iterations: %d, kept verifications: %d\n", res.Iterations, res.KeptVerified)
	fmt.Println("  repaired state:", res.Store.Snapshot())

	// Compare against the attack-free twin: strict correctness.
	clean, err := scenario.Fig1(false)
	if err != nil {
		log.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrict correctness: repaired state equals the clean execution ✓")
	if errs := recovery.AuditSchedule(res); len(errs) != 0 {
		log.Fatal("Theorem-3 audit failed: ", errs)
	}
	fmt.Println("Theorem-3 partial-order audit: schedule compliant ✓")
}
