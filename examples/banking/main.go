// Banking demonstrates the paper's §I motivation — "an attacker may forge
// bank transactions to steal money from accounts of others" — on the
// self-healing runtime. Legitimate transfer workflows run concurrently; the
// attacker injects a forged task that drains Alice's account into Eve's.
// Later legitimate transfers read the corrupted balances and spread the
// damage. When the IDS reports the forged task, the recovery system undoes
// it, finds every infected transfer through flow dependences, and repairs
// them — restoring exactly the balances of the attack-free history.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// transfer builds a transfer workflow: validate checks the source balance
// and routes to debit→credit→receipt when covered, or to reject.
func transfer(name, from, to string, amount data.Value) *wf.Spec {
	src := data.Key("acct:" + from)
	dst := data.Key("acct:" + to)
	rcpt := data.Key("receipt:" + name)
	return wf.NewBuilder(name, "validate").
		Task("validate").Reads(src).Writes(data.Key("ok:"+name)).
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			ok := data.Value(0)
			if r[src] >= amount {
				ok = 1
			}
			return map[data.Key]data.Value{data.Key("ok:" + name): ok}
		}).Then("debit", "reject").
		ChooseBy(wf.ThresholdChoose(src, amount, "reject", "debit")).End().
		Task("debit").Reads(src).Writes(src).
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{src: r[src] - amount}
		}).Then("credit").End().
		Task("credit").Reads(dst).Writes(dst).
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{dst: r[dst] + amount}
		}).Then("receipt").End().
		Task("receipt").Reads(src, dst).Writes(rcpt).
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{rcpt: r[src] + r[dst]}
		}).End().
		Task("reject").Writes(rcpt).
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{rcpt: -1}
		}).End().
		MustBuild()
}

func printBalances(label string, sys *selfheal.System) {
	snap := sys.Store().Snapshot()
	var keys []data.Key
	for k := range snap {
		if len(k) > 5 && k[:5] == "acct:" {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Printf("%-28s", label)
	for _, k := range keys {
		fmt.Printf("  %s=%d", k[5:], snap[k])
	}
	fmt.Println()
}

func main() {
	st := data.NewStore()
	st.Init("acct:alice", 1000)
	st.Init("acct:bob", 500)
	st.Init("acct:carol", 200)
	st.Init("acct:eve", 0)

	sys, err := selfheal.New(selfheal.Config{AlertBuf: 8, RecoveryBuf: 8}, st)
	if err != nil {
		log.Fatal(err)
	}
	// Two legitimate transfers processed concurrently.
	if err := sys.StartRun("tx1", transfer("tx1", "alice", "bob", 300)); err != nil {
		log.Fatal(err)
	}
	if err := sys.StartRun("tx2", transfer("tx2", "bob", "carol", 100)); err != nil {
		log.Fatal(err)
	}
	printBalances("initial balances:", sys)

	// tx1 commits its validate step...
	if err := sys.Tick(); err != nil {
		log.Fatal(err)
	}
	// ...then the attacker forges a task draining Alice into Eve.
	alice, _ := sys.Store().Get("acct:alice")
	eve, _ := sys.Store().Get("acct:eve")
	forged, err := sys.Engine().InjectForged("", "forged-transfer",
		[]data.Key{"acct:alice", "acct:eve"},
		map[data.Key]data.Value{
			"acct:alice": alice.Value - 400,
			"acct:eve":   eve.Value + 400,
		})
	if err != nil {
		log.Fatal(err)
	}
	// Normal processing continues, reading the corrupted balances.
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		log.Fatal(err)
	}
	printBalances("after forged transfer:", sys)
	fmt.Printf("committed tasks: %d (forged: %s)\n\n", sys.Log().Len(), forged)

	// The IDS reports the forged task; the system scans and recovers.
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{forged}})
	if err := sys.DrainRecovery(context.Background(), 20); err != nil {
		log.Fatal(err)
	}
	m := sys.Metrics()
	fmt.Printf("recovery: %d undone, %d redone, %d newly executed\n",
		m.Undone, m.Redone, m.NewExecuted)
	printBalances("after recovery:", sys)

	// Cross-check against the attack-free twin.
	cleanStore := data.NewStore()
	cleanStore.Init("acct:alice", 1000)
	cleanStore.Init("acct:bob", 500)
	cleanStore.Init("acct:carol", 200)
	cleanStore.Init("acct:eve", 0)
	cleanSys, err := selfheal.New(selfheal.Config{AlertBuf: 8, RecoveryBuf: 8}, cleanStore)
	if err != nil {
		log.Fatal(err)
	}
	if err := cleanSys.StartRun("tx1", transfer("tx1", "alice", "bob", 300)); err != nil {
		log.Fatal(err)
	}
	if err := cleanSys.StartRun("tx2", transfer("tx2", "bob", "carol", 100)); err != nil {
		log.Fatal(err)
	}
	if err := cleanSys.RunToCompletion(context.Background(), 100); err != nil {
		log.Fatal(err)
	}
	for _, acct := range []data.Key{"acct:alice", "acct:bob", "acct:carol", "acct:eve"} {
		want, _ := cleanSys.Store().Get(acct)
		got, _ := sys.Store().Get(acct)
		if want.Value != got.Value {
			log.Fatalf("%s: recovered %d, clean %d", acct, got.Value, want.Value)
		}
	}
	fmt.Println("\nall balances match the attack-free execution ✓")
}
