// Command selfheal-server exposes the self-healing workflow system over
// HTTP: the versioned workflow API backed by the concurrent sharded
// execution layer (internal/shard), plus the legacy CTMC analysis routes.
//
//	POST /api/v1/runs                submit a workflow run (wfjson spec)
//	GET  /api/v1/runs                list run statuses
//	GET  /api/v1/runs/{id}           one run's status
//	POST /api/v1/alerts              deliver an IDS alert {"bad": [...]}
//	GET  /api/v1/state               NORMAL/SCAN/RECOVERY, queues, metrics
//	GET  /api/v1/store               committed store snapshot
//
//	GET /healthz                     liveness
//	GET /figures                     list of reproducible figure IDs
//	GET /figure/{id}?format=csv      one figure (table, csv or json)
//	GET /solve?lambda=1&mu=15&xi=20&buf=15&f=linear&g=linear[&t=4]
//	                                 steady-state (and transient) metrics
//	GET /stg.dot?buf=4               the Fig 3 STG as Graphviz DOT
//	POST /repair                     remote recovery: {snapshot, specs, runs, bad}
//	                                 → undo/redo sets + repaired final state
//	GET /metrics                     Prometheus text exposition (internal/obs)
//	GET /varz                        expvar-style key-sorted JSON snapshot
//
// With -chaos, the white-box fuzzing hooks mount under /api/v1/chaos
// (forge, checkpoint, drain, log, verify — docs/FUZZING.md); -audit
// validates every installed repair against the Theorem-3 partial orders,
// and -fault-skip-repair injects the mutation-smoke fault (the recovery
// worker discards units without repairing). None of these belong in
// production configurations.
//
// Routes and error envelope are documented in docs/API.md; the metric
// catalog served by /metrics and /varz is docs/OBSERVABILITY.md.
//
// Example:
//
//	selfheal-server -addr :8080 -shards 4 &
//	curl -X POST localhost:8080/api/v1/runs -d '{"id":"r1","spec":{...}}'
//	curl 'localhost:8080/api/v1/state'
//
// With -addr 127.0.0.1:0 the kernel picks a free port; the first stdout
// line ("selfheal-server listening on <addr>") names it, which is how
// scripts/ci.sh boots the API smoke test on an ephemeral port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfheal/internal/durable"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	shards := flag.Int("shards", 4, "worker shards for the execution layer")
	strict := flag.Bool("strict", false, "Theorem-4 strict mode: quiesce shards for whole SCAN+RECOVERY")
	triageOn := flag.Bool("triage", false, "streaming alert triage: cone coalescing, covered-alert prefilter, Report-time dedupe (docs/TRIAGE.md)")
	durableDir := flag.String("durable", "", "WAL directory: persist all state and restore it on boot (docs/DURABILITY.md)")
	snapEvery := flag.Int("snapshot-every", 4096, "with -durable, checkpoint once this many entries committed past the latest snapshot (0 disables)")
	chaos := flag.Bool("chaos", false, "mount the white-box chaos routes under /api/v1/chaos (fuzzing only, docs/FUZZING.md)")
	audit := flag.Bool("audit", false, "validate every repair schedule against the Theorem-3 partial orders (GET /api/v1/chaos/verify)")
	faultSkipRepair := flag.Bool("fault-skip-repair", false, "FAULT INJECTION: recovery worker discards units without repairing (mutation smoke only)")
	flag.Parse()

	cfg := shard.Config{Shards: *shards, Strict: *strict, AuditRepairs: *audit}
	cfg.Fault.SkipRepair = *faultSkipRepair
	if *triageOn {
		cfg.Triage = triage.All()
	}
	reg := obs.NewRegistry()
	var svc *shard.Service
	var err error
	if *durableDir != "" {
		cfg.SnapshotEvery = *snapEvery
		svc, err = shard.NewDurable(cfg, *durableDir, durable.Options{})
		if err == nil {
			if n, d := svc.ReplayStats(); n > 0 || d > 0 {
				fmt.Fprintf(os.Stderr, "selfheal-server restored %d WAL records in %s\n", n, d)
			}
		}
	} else {
		svc, err = shard.New(cfg, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	svc.Observe(reg)
	svc.Start()
	defer svc.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	handler := httpapi.Server(reg, svc)
	if *chaos {
		handler = httpapi.ServerWithChaos(reg, svc)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// The resolved address line is a machine-readable contract (see package
	// comment); keep it the first thing on stdout.
	fmt.Printf("selfheal-server listening on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("selfheal-server shutting down (%v)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
