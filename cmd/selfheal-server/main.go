// Command selfheal-server exposes the self-healing workflow system over
// HTTP: the versioned workflow API backed by the concurrent sharded
// execution layer (internal/shard), plus the legacy CTMC analysis routes.
//
//	POST /api/v1/runs                submit a workflow run (wfjson spec)
//	GET  /api/v1/runs                list run statuses
//	GET  /api/v1/runs/{id}           one run's status
//	POST /api/v1/alerts              deliver an IDS alert {"bad": [...]}
//	GET  /api/v1/state               NORMAL/SCAN/RECOVERY, queues, metrics
//	GET  /api/v1/store               committed store snapshot
//
//	GET /healthz                     liveness
//	GET /figures                     list of reproducible figure IDs
//	GET /figure/{id}?format=csv      one figure (table, csv or json)
//	GET /solve?lambda=1&mu=15&xi=20&buf=15&f=linear&g=linear[&t=4]
//	                                 steady-state (and transient) metrics
//	GET /stg.dot?buf=4               the Fig 3 STG as Graphviz DOT
//	POST /repair                     remote recovery: {snapshot, specs, runs, bad}
//	                                 → undo/redo sets + repaired final state
//	GET /metrics                     Prometheus text exposition (internal/obs)
//	GET /varz                        expvar-style key-sorted JSON snapshot
//
// With -chaos, the white-box fuzzing hooks mount under /api/v1/chaos
// (forge, checkpoint, drain, log, verify — docs/FUZZING.md); -audit
// validates every installed repair against the Theorem-3 partial orders,
// and -fault-skip-repair injects the mutation-smoke fault (the recovery
// worker discards units without repairing). None of these belong in
// production configurations.
//
// With -node-id and -peers the process boots as one member of a networked
// cluster (internal/cluster, docs/CLUSTER.md) instead of a single-process
// shard service: the node-to-node API mounts under /internal/v1/ next to
// the public surface, GET /api/v1/cluster reports the topology, and every
// node answers the full v1 API regardless of which node owns a run.
// -cluster-dir persists the replicated record journal, -join catches the
// replica up from the peers before serving (restart/rejoin), and
// -quiesce-hold artificially extends an incident's partial-quiescence
// window so the mid-repair behaviour can be observed. Cluster nodes always
// mount the chaos routes (the cluster test harness drives them); do not
// expose them publicly.
//
// Routes and error envelope are documented in docs/API.md; the metric
// catalog served by /metrics and /varz is docs/OBSERVABILITY.md.
//
// Example:
//
//	selfheal-server -addr :8080 -shards 4 &
//	curl -X POST localhost:8080/api/v1/runs -d '{"id":"r1","spec":{...}}'
//	curl 'localhost:8080/api/v1/state'
//
// With -addr 127.0.0.1:0 the kernel picks a free port; the first stdout
// line ("selfheal-server listening on <addr>") names it, which is how
// scripts/ci.sh boots the API smoke test on an ephemeral port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfheal/internal/cluster"
	"selfheal/internal/durable"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
)

// parsePeers decodes the -peers flag: "id=host:port,id=host:port,...".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// serveCluster boots the process as one cluster member and blocks until a
// termination signal.
func serveCluster(addr, nodeID, peersFlag, dir string, join bool, hold time.Duration, window int) {
	peers, err := parsePeers(peersFlag)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	node, err := cluster.New(cluster.Config{
		NodeID:       nodeID,
		Peers:        peers,
		Dir:          dir,
		Join:         join,
		QuiesceHold:  hold,
		SubmitWindow: window,
		Registry:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/internal/", node.InternalHandler())
	mux.Handle("/", httpapi.ClusterServer(reg, node))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	// Keep the resolved address the first line on stdout (boot contract).
	fmt.Printf("selfheal-server listening on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// Start after the listener is up: -join pulls from peers that may in
	// turn be probing us.
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selfheal-server cluster node %s up (stamper %v)\n", node.ID(), node.IsStamper())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("selfheal-server shutting down (%v)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		node.Stop()
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	shards := flag.Int("shards", 4, "worker shards for the execution layer")
	strict := flag.Bool("strict", false, "Theorem-4 strict mode: quiesce shards for whole SCAN+RECOVERY")
	triageOn := flag.Bool("triage", false, "streaming alert triage: cone coalescing, covered-alert prefilter, Report-time dedupe (docs/TRIAGE.md)")
	durableDir := flag.String("durable", "", "WAL directory: persist all state and restore it on boot (docs/DURABILITY.md)")
	snapEvery := flag.Int("snapshot-every", 4096, "with -durable, checkpoint once this many entries committed past the latest snapshot (0 disables)")
	chaos := flag.Bool("chaos", false, "mount the white-box chaos routes under /api/v1/chaos (fuzzing only, docs/FUZZING.md)")
	audit := flag.Bool("audit", false, "validate every repair schedule against the Theorem-3 partial orders (GET /api/v1/chaos/verify)")
	faultSkipRepair := flag.Bool("fault-skip-repair", false, "FAULT INJECTION: recovery worker discards units without repairing (mutation smoke only)")
	nodeID := flag.String("node-id", "", "cluster mode: this node's member ID (requires -peers)")
	peersFlag := flag.String("peers", "", "cluster mode: static membership as id=host:port,... (must include -node-id)")
	join := flag.Bool("join", false, "cluster mode: catch the replica up from the peers before serving")
	clusterDir := flag.String("cluster-dir", "", "cluster mode: directory for the replicated record journal")
	quiesceHold := flag.Duration("quiesce-hold", 0, "cluster mode: extend each incident's partial-quiescence window (testing)")
	submitWindow := flag.Int("submit-window", 0, "cluster mode: executor pipelining window, entries per batched submission (0 = default 32, 1 = per-record)")
	flag.Parse()

	if *nodeID != "" || *peersFlag != "" {
		if *nodeID == "" || *peersFlag == "" {
			log.Fatal("cluster mode needs both -node-id and -peers")
		}
		serveCluster(*addr, *nodeID, *peersFlag, *clusterDir, *join, *quiesceHold, *submitWindow)
		return
	}

	cfg := shard.Config{Shards: *shards, Strict: *strict, AuditRepairs: *audit}
	cfg.Fault.SkipRepair = *faultSkipRepair
	if *triageOn {
		cfg.Triage = triage.All()
	}
	reg := obs.NewRegistry()
	var svc *shard.Service
	var err error
	if *durableDir != "" {
		cfg.SnapshotEvery = *snapEvery
		svc, err = shard.NewDurable(cfg, *durableDir, durable.Options{})
		if err == nil {
			if n, d := svc.ReplayStats(); n > 0 || d > 0 {
				fmt.Fprintf(os.Stderr, "selfheal-server restored %d WAL records in %s\n", n, d)
			}
		}
	} else {
		svc, err = shard.New(cfg, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	svc.Observe(reg)
	svc.Start()
	defer svc.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	handler := httpapi.Server(reg, svc)
	if *chaos {
		handler = httpapi.ServerWithChaos(reg, svc)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// The resolved address line is a machine-readable contract (see package
	// comment); keep it the first thing on stdout.
	fmt.Printf("selfheal-server listening on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("selfheal-server shutting down (%v)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
