// Command selfheal-server exposes the recovery-system analysis engine over
// HTTP:
//
//	GET /healthz                     liveness
//	GET /figures                     list of reproducible figure IDs
//	GET /figure/{id}?format=csv      one figure (table, csv or json)
//	GET /solve?lambda=1&mu=15&xi=20&buf=15&f=linear&g=linear[&t=4]
//	                                 steady-state (and transient) metrics
//	GET /stg.dot?buf=4               the Fig 3 STG as Graphviz DOT
//	POST /repair                     remote recovery: {snapshot, specs, runs, bad}
//	                                 → undo/redo sets + repaired final state
//	GET /metrics                     Prometheus text exposition (internal/obs)
//	GET /varz                        expvar-style key-sorted JSON snapshot
//
// The metric catalog served by /metrics and /varz is docs/OBSERVABILITY.md.
//
// Example:
//
//	selfheal-server -addr :8080 &
//	curl 'localhost:8080/solve?lambda=1&mu=2&xi=3&t=100'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.ObservedHandler(obs.NewRegistry()),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("selfheal-server listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
