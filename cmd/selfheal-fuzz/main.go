// Command selfheal-fuzz is the stateful API fuzzer (docs/FUZZING.md): it
// generates randomized attack schedules — workflow submissions, forged
// task commits, IDS alert batches, checkpoints, crash-restarts — replays
// them against a fresh service per episode over /api/v1, and checks the
// paper's soundness oracles after every drained episode (repaired store ≡
// attack-free execution, index integrity, Theorem-3 repair ordering, run
// completion). Failing episodes are shrunk to minimal reproducers and,
// with -corpus, serialized as regression seeds.
//
//	selfheal-fuzz -episodes 25 -seed 1            fixed-seed campaign
//	selfheal-fuzz -duration 30s                   time-bounded campaign
//	selfheal-fuzz -durable -episodes 5            child-process target,
//	                                              SIGKILL crash-restarts
//	selfheal-fuzz -fault-skip-repair -expect-fail mutation smoke: the
//	                                              injected bug must be
//	                                              found and shrunk
//
// In -durable mode each episode boots the fuzzer binary itself as a child
// server process (the hidden -serve mode) on a fresh WAL directory;
// restart ops kill it with SIGKILL mid-flight and reboot it on the same
// directory, so WAL replay and repair are exercised under real crashes.
//
// Exit status: 0 when the campaign matches expectation (no violations, or
// with -expect-fail at least one found-and-shrunk failure), 1 otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"selfheal/internal/durable"
	"selfheal/internal/fuzz"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
)

func main() {
	seed := flag.Int64("seed", 1, "first schedule seed")
	episodes := flag.Int("episodes", 0, "episodes to run (0: run until -duration elapses)")
	duration := flag.Duration("duration", 30*time.Second, "campaign budget when -episodes is 0")
	timeout := flag.Duration("timeout", 30*time.Second, "per-episode deadline")
	durableMode := flag.Bool("durable", false, "run each episode against a child-process server with SIGKILL crash-restarts")
	strict := flag.Bool("strict", false, "fuzz the Theorem-4 strict-gating configuration")
	triageOn := flag.Bool("triage", false, "fuzz the streaming-triage configuration")
	corpusDir := flag.String("corpus", "", "write shrunk reproducers into this directory")
	faultSkip := flag.Bool("fault-skip-repair", false, "inject the skip-repair soundness fault into every target (mutation smoke)")
	expectFail := flag.Bool("expect-fail", false, "succeed only if the campaign finds and shrinks at least one violation")

	serve := flag.Bool("serve", false, "internal: run as a child server process")
	serveDir := flag.String("serve-dir", "", "internal: WAL directory for -serve")
	flag.Parse()

	if *serve {
		serveChild(*serveDir, *faultSkip, *strict, *triageOn)
		return
	}

	params := fuzz.DefaultParams()
	factory := func() (fuzz.Target, error) {
		return fuzz.NewInProcTarget(fuzz.InProcOptions{
			Strict: *strict, Triage: *triageOn,
			Fault: shard.FaultInjection{SkipRepair: *faultSkip},
		})
	}
	if *durableMode {
		params.Checkpoints, params.Restarts = 1, 2
		self, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		factory = func() (fuzz.Target, error) {
			return newProcTarget(self, *faultSkip, *strict, *triageOn)
		}
	}

	runner := &fuzz.Runner{Timeout: *timeout}
	start := time.Now()
	var res *fuzz.CampaignResult
	var err error
	if *episodes > 0 {
		seeds := make([]int64, *episodes)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		res, err = runner.Campaign(factory, seeds, params)
	} else {
		res, err = runner.CampaignUntil(factory, *seed, start.Add(*duration), params)
	}
	if err != nil {
		log.Fatalf("selfheal-fuzz: harness error: %v", err)
	}

	fmt.Printf("selfheal-fuzz: %d episodes in %s, %d failures\n",
		res.Episodes, time.Since(start).Truncate(time.Millisecond), len(res.Failures))
	for _, f := range res.Failures {
		fmt.Printf("seed %d: %s\n", f.Seed, f.Violations[0])
		fmt.Printf("  shrunk to %d ops in %d steps\n", len(f.Shrunk.Ops), f.ShrinkSteps)
		if *corpusDir != "" {
			path, werr := fuzz.WriteCorpusEntry(*corpusDir, f.Entry())
			if werr != nil {
				log.Fatalf("selfheal-fuzz: corpus: %v", werr)
			}
			fmt.Printf("  reproducer: %s\n", path)
		}
	}

	failed := len(res.Failures) > 0
	if failed != *expectFail {
		if *expectFail {
			fmt.Println("selfheal-fuzz: FAIL: expected the campaign to find a violation and it found none")
		} else {
			fmt.Println("selfheal-fuzz: FAIL: oracle violations found")
		}
		os.Exit(1)
	}
	fmt.Println("selfheal-fuzz: OK")
}

// serveChild runs the hidden child-server mode: a durable service with the
// chaos surface on an ephemeral port. The parent reads the first stdout
// line for the address and SIGKILLs the process to simulate crashes.
func serveChild(dir string, faultSkip, strict, triageOn bool) {
	if dir == "" {
		log.Fatal("selfheal-fuzz: -serve requires -serve-dir")
	}
	cfg := shard.Config{
		Strict:       strict,
		AuditRepairs: true,
		Fault:        shard.FaultInjection{SkipRepair: faultSkip},
	}
	if triageOn {
		cfg.Triage = triage.All()
	}
	svc, err := shard.NewDurable(cfg, dir, durable.Options{})
	if err != nil {
		log.Fatal(err)
	}
	svc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selfheal-fuzz serving on %s\n", ln.Addr())
	srv := &http.Server{
		Handler:           httpapi.ServerWithChaos(obs.NewRegistry(), svc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.Serve(ln))
}

// procTarget drives a child selfheal-fuzz -serve process; Restart kills it
// with SIGKILL and reboots on the same WAL directory.
type procTarget struct {
	self     string
	dir      string
	fault    bool
	strict   bool
	triageOn bool
	cmd      *exec.Cmd
	url      string
}

func newProcTarget(self string, fault, strict, triageOn bool) (*procTarget, error) {
	dir, err := os.MkdirTemp("", "selfheal-fuzz-*")
	if err != nil {
		return nil, err
	}
	t := &procTarget{self: self, dir: dir, fault: fault, strict: strict, triageOn: triageOn}
	if err := t.boot(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return t, nil
}

func (t *procTarget) boot() error {
	args := []string{"-serve", "-serve-dir", t.dir}
	if t.fault {
		args = append(args, "-fault-skip-repair")
	}
	if t.strict {
		args = append(args, "-strict")
	}
	if t.triageOn {
		args = append(args, "-triage")
	}
	cmd := exec.Command(t.self, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("selfheal-fuzz: child produced no address line: %w", err)
	}
	const marker = "serving on "
	i := strings.LastIndex(strings.TrimSpace(line), marker)
	if i < 0 {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("selfheal-fuzz: unexpected child banner %q", line)
	}
	t.cmd = cmd
	t.url = "http://" + strings.TrimSpace(line)[i+len(marker):]
	// Wait for the listener to actually answer before running ops.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(t.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("selfheal-fuzz: child never became healthy: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (t *procTarget) kill() {
	if t.cmd == nil {
		return
	}
	_ = t.cmd.Process.Kill() // SIGKILL: no shutdown hooks, no final fsync
	_ = t.cmd.Wait()
	t.cmd = nil
}

func (t *procTarget) BaseURL() string { return t.url }
func (t *procTarget) Durable() bool   { return true }

func (t *procTarget) Restart() error {
	t.kill()
	return t.boot()
}

func (t *procTarget) Close() error {
	t.kill()
	return os.RemoveAll(t.dir)
}
