// Command ctmc-solve regenerates the paper's evaluation figures (§V) from
// the CTMC model, or solves a custom recovery-system configuration.
//
// Regenerate a figure (text table or CSV):
//
//	ctmc-solve -fig 5a
//	ctmc-solve -fig 4c -format csv
//	ctmc-solve -fig all
//
// Solve a custom configuration:
//
//	ctmc-solve -lambda 1 -mu 15 -xi 20 -buf 15 -f linear -g linear
//	ctmc-solve -lambda 1 -mu 2 -xi 3 -buf 15 -t 100       # add transient π(t)
package main

import (
	"flag"
	"fmt"
	"os"

	"selfheal/internal/dot"
	"selfheal/internal/figures"
	"selfheal/internal/stg"
)

func main() {
	var (
		fig    = flag.String("fig", "", "figure to regenerate (4a..4d, 5a..5f, 6a..6d, or 'all')")
		format = flag.String("format", "table", "output format: table or csv")
		lambda = flag.Float64("lambda", 1, "IDS alert arrival rate λ")
		mu     = flag.Float64("mu", 15, "alert analysis rate μ₁")
		xi     = flag.Float64("xi", 20, "recovery execution rate ξ₁")
		buf    = flag.Int("buf", 15, "buffer size (alerts and recovery units)")
		fName  = flag.String("f", "linear", "μ degradation family: none, sqrt, linear, quad")
		gName  = flag.String("g", "linear", "ξ degradation family: none, sqrt, linear, quad")
		tPoint = flag.Float64("t", 0, "also report transient metrics at time t (0 = steady state only)")
		stgDot = flag.Bool("stg", false, "print the state transition graph (the paper's Fig 3) as Graphviz DOT and exit")
	)
	flag.Parse()

	if *stgDot {
		if err := printSTG(*lambda, *mu, *xi, *buf, *fName, *gName); err != nil {
			fmt.Fprintln(os.Stderr, "ctmc-solve:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *format, *lambda, *mu, *xi, *buf, *fName, *gName, *tPoint); err != nil {
		fmt.Fprintln(os.Stderr, "ctmc-solve:", err)
		os.Exit(1)
	}
}

func run(fig, format string, lambda, mu, xi float64, buf int, fName, gName string, tPoint float64) error {
	if fig != "" {
		ids := []string{fig}
		if fig == "all" {
			ids = figures.IDs()
		}
		for _, id := range ids {
			f, err := figures.ByID(id)
			if err != nil {
				return err
			}
			switch format {
			case "table":
				fmt.Println(f.Table())
			case "csv":
				fmt.Printf("# Figure %s: %s\n%s\n", f.ID, f.Title, f.CSV())
			default:
				return fmt.Errorf("unknown format %q", format)
			}
		}
		return nil
	}

	f, err := stg.DegradationByName(fName)
	if err != nil {
		return err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g
	m, err := stg.New(p)
	if err != nil {
		return err
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		return err
	}
	fmt.Printf("configuration: λ=%g μ₁=%g ξ₁=%g buffer=%d f=%s g=%s (%d states)\n",
		lambda, mu, xi, buf, fName, gName, m.N())
	fmt.Println("steady state (Equation 1):")
	printMetrics(met)
	eps, err := m.EpsilonConvergence()
	if err != nil {
		return err
	}
	fmt.Printf("  ε-convergence (Definition 4):  %.6g\n", eps)
	if lambda > 0 {
		mttl, err := m.MeanTimeToLoss()
		if err != nil {
			return err
		}
		fmt.Printf("  mean time to first lost alert (from NORMAL): %.6g\n", mttl)
	}

	if tPoint > 0 {
		pi, err := m.Transient(tPoint)
		if err != nil {
			return err
		}
		fmt.Printf("transient state at t=%g (Equation 2):\n", tPoint)
		printMetrics(m.MetricsOf(pi))
		l, err := m.CumulativeTime(tPoint)
		if err != nil {
			return err
		}
		cm := stg.Metrics{}
		for i, s := range m.States() {
			switch s.Classify() {
			case stg.Normal:
				cm.PNormal += l[i]
			case stg.Scan:
				cm.PScan += l[i]
			case stg.Recovery:
				cm.PRecovery += l[i]
			}
			if s.Alerts == p.AlertBuf {
				cm.Loss += l[i]
			}
		}
		fmt.Printf("cumulative time over [0,%g) (Equation 3):\n", tPoint)
		fmt.Printf("  NORMAL %.4g  SCAN %.4g  RECOVERY %.4g  right-edge %.4g\n",
			cm.PNormal, cm.PScan, cm.PRecovery, cm.Loss)
	}
	return nil
}

func printSTG(lambda, mu, xi float64, buf int, fName, gName string) error {
	f, err := stg.DegradationByName(fName)
	if err != nil {
		return err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g
	m, err := stg.New(p)
	if err != nil {
		return err
	}
	fmt.Print(dot.STG(m))
	return nil
}

func printMetrics(met stg.Metrics) {
	fmt.Printf("  P(NORMAL)   %.6g\n", met.PNormal)
	fmt.Printf("  P(SCAN)     %.6g\n", met.PScan)
	fmt.Printf("  P(RECOVERY) %.6g\n", met.PRecovery)
	fmt.Printf("  loss probability (Definition 3): %.6g\n", met.Loss)
	fmt.Printf("  recovery buffer full:            %.6g\n", met.RecoveryFull)
	fmt.Printf("  E[alerts] %.4g  E[recovery units] %.4g\n", met.EAlerts, met.ERecovery)
}
