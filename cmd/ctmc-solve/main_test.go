package main

import "testing"

func TestRunFigure(t *testing.T) {
	if err := run("4b", "table", 0, 0, 0, 0, "", "", 0); err != nil {
		t.Fatal(err)
	}
	if err := run("4b", "csv", 0, 0, 0, 0, "", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureErrors(t *testing.T) {
	if err := run("9z", "table", 0, 0, 0, 0, "", "", 0); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("4b", "xml", 0, 0, 0, 0, "", "", 0); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunCustomConfiguration(t *testing.T) {
	if err := run("", "table", 1, 15, 20, 6, "linear", "linear", 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomConfigurationErrors(t *testing.T) {
	if err := run("", "table", 1, 15, 20, 6, "cubic", "linear", 0); err == nil {
		t.Error("unknown μ family accepted")
	}
	if err := run("", "table", 1, 15, 20, 6, "linear", "cubic", 0); err == nil {
		t.Error("unknown ξ family accepted")
	}
	if err := run("", "table", 1, 0, 20, 6, "linear", "linear", 0); err == nil {
		t.Error("invalid rates accepted")
	}
}

func TestPrintSTG(t *testing.T) {
	if err := printSTG(1, 15, 20, 2, "linear", "linear"); err != nil {
		t.Fatal(err)
	}
	if err := printSTG(1, 15, 20, 2, "cubic", "linear"); err == nil {
		t.Error("unknown family accepted")
	}
}
