package main

import "testing"

func TestRunQueueing(t *testing.T) {
	if err := runQueueing(1, 15, 20, 4, "linear", "linear", 200, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueueingErrors(t *testing.T) {
	if err := runQueueing(1, 15, 20, 4, "cubic", "linear", 200, 1); err == nil {
		t.Error("unknown μ family accepted")
	}
	if err := runQueueing(1, 15, 20, 4, "linear", "cubic", 200, 1); err == nil {
		t.Error("unknown ξ family accepted")
	}
	if err := runQueueing(1, 0, 20, 4, "linear", "linear", 200, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunRuntime(t *testing.T) {
	if err := runRuntime(3, 2, 2, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetrics(t *testing.T) {
	if err := runMetrics(1, 6, 8, 4, "linear", "linear", 300, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsErrors(t *testing.T) {
	if err := runMetrics(1, 15, 20, 4, "cubic", "linear", 200, 1); err == nil {
		t.Error("unknown μ family accepted")
	}
	if err := runMetrics(1, 15, 20, 4, "linear", "cubic", 200, 1); err == nil {
		t.Error("unknown ξ family accepted")
	}
	if err := runMetrics(1, 0, 20, 4, "linear", "linear", 200, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestMetricsMatchCTMC is the acceptance gate for the -metrics mode: on a
// long deterministic run of the real runtime in virtual time, every measured
// quantity — π_N, π_S, π_R and the loss probability, all derived from the
// observability snapshot — must sit within 10% relative error of the CTMC
// steady-state prediction. The parameters are chosen so each state holds
// nontrivial probability mass (predicted π_N≈0.103, π_S≈0.759, π_R≈0.138,
// P_l≈0.466), making relative error a meaningful bound for all four.
func TestMetricsMatchCTMC(t *testing.T) {
	if testing.Short() {
		t.Skip("long virtual-time run")
	}
	measured, predicted, res, err := measureVsModel(1, 2, 2, 2, "linear", "linear", 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, meas, pred float64) {
		t.Helper()
		if pred == 0 {
			t.Fatalf("%s: predicted mass is zero; pick parameters with nontrivial occupancy", name)
		}
		if rel := (meas - pred) / pred; rel < -0.10 || rel > 0.10 {
			t.Errorf("%s: measured %.6f vs predicted %.6f (rel err %+.2f%%, want within ±10%%)",
				name, meas, pred, 100*rel)
		}
	}
	check("π_N", measured.PNormal, predicted.PNormal)
	check("π_S", measured.PScan, predicted.PScan)
	check("π_R", measured.PRecovery, predicted.PRecovery)
	check("P_l", measured.Loss, predicted.Loss)
	// The loss-edge occupancy must also agree with the directly counted
	// dropped fraction (PASTA): both estimate the same probability.
	if rel := (res.LostFraction() - measured.Loss) / measured.Loss; rel < -0.10 || rel > 0.10 {
		t.Errorf("dropped fraction %.6f diverges from loss-edge occupancy %.6f", res.LostFraction(), measured.Loss)
	}
}
