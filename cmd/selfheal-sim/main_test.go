package main

import "testing"

func TestRunQueueing(t *testing.T) {
	if err := runQueueing(1, 15, 20, 4, "linear", "linear", 200, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueueingErrors(t *testing.T) {
	if err := runQueueing(1, 15, 20, 4, "cubic", "linear", 200, 1); err == nil {
		t.Error("unknown μ family accepted")
	}
	if err := runQueueing(1, 15, 20, 4, "linear", "cubic", 200, 1); err == nil {
		t.Error("unknown ξ family accepted")
	}
	if err := runQueueing(1, 0, 20, 4, "linear", "linear", 200, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunRuntime(t *testing.T) {
	if err := runRuntime(3, 2, 2, 5); err != nil {
		t.Fatal(err)
	}
}
