// Command selfheal-sim validates the analytical CTMC model against
// simulation, in two modes.
//
// Queueing mode (default) runs the discrete-event simulator over the same
// transition semantics as the STG model and compares time-average occupancy
// with the analytic steady state:
//
//	selfheal-sim -lambda 1 -mu 15 -xi 20 -buf 15 -horizon 50000 -seed 7
//
// Runtime mode (-runtime) drives the actual self-healing workflow system:
// randomized workloads executed by the real engine, attacks injected and
// corrupted, IDS alerts scheduled as a Poisson process, and every alert
// analyzed and repaired by the real recovery analyzer:
//
//	selfheal-sim -runtime -attacks 5 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"selfheal/internal/ids"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/sim"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
)

func main() {
	var (
		lambda  = flag.Float64("lambda", 1, "IDS alert arrival rate λ")
		mu      = flag.Float64("mu", 15, "alert analysis rate μ₁")
		xi      = flag.Float64("xi", 20, "recovery execution rate ξ₁")
		buf     = flag.Int("buf", 15, "buffer size")
		fName   = flag.String("f", "linear", "μ degradation family")
		gName   = flag.String("g", "linear", "ξ degradation family")
		horizon = flag.Float64("horizon", 50000, "simulated time units")
		seed    = flag.Int64("seed", 1, "rng seed")
		runtime = flag.Bool("runtime", false, "drive the real workflow engine and recovery analyzer instead")
		attacks = flag.Int("attacks", 3, "runtime mode: number of attacks to inject")
		runs    = flag.Int("runs", 4, "runtime mode: number of concurrent workflow runs")
	)
	flag.Parse()

	var err error
	if *runtime {
		err = runRuntime(*seed, *runs, *attacks, *lambda)
	} else {
		err = runQueueing(*lambda, *mu, *xi, *buf, *fName, *gName, *horizon, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-sim:", err)
		os.Exit(1)
	}
}

func runQueueing(lambda, mu, xi float64, buf int, fName, gName string, horizon float64, seed int64) error {
	f, err := stg.DegradationByName(fName)
	if err != nil {
		return err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g

	m, err := stg.New(p)
	if err != nil {
		return err
	}
	ss, err := m.SteadyState()
	if err != nil {
		return err
	}
	analytic := m.MetricsOf(ss)

	res, err := sim.Run(p, horizon, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	simulated := res.Metrics()

	fmt.Printf("λ=%g μ₁=%g ξ₁=%g buffer=%d f=%s g=%s, horizon=%g, seed=%d\n",
		lambda, mu, xi, buf, fName, gName, horizon, seed)
	fmt.Printf("%-22s %12s %12s\n", "metric", "analytic", "simulated")
	row := func(name string, a, s float64) {
		fmt.Printf("%-22s %12.6f %12.6f\n", name, a, s)
	}
	row("P(NORMAL)", analytic.PNormal, simulated.PNormal)
	row("P(SCAN)", analytic.PScan, simulated.PScan)
	row("P(RECOVERY)", analytic.PRecovery, simulated.PRecovery)
	row("loss probability", analytic.Loss, simulated.Loss)
	row("recovery buffer full", analytic.RecoveryFull, simulated.RecoveryFull)
	row("E[alerts]", analytic.EAlerts, simulated.EAlerts)
	row("E[recovery units]", analytic.ERecovery, simulated.ERecovery)
	fmt.Printf("arrivals: %d total, %d lost (%.4f); total variation vs CTMC: %.5f\n",
		res.ArrivalsTotal, res.ArrivalsLost, res.LostFraction(),
		sim.TotalVariation(res.Distribution(m), ss))
	return nil
}

func runRuntime(seed int64, runs, attacks int, rate float64) error {
	cfg := scenario.RandomConfig{
		Runs:    runs,
		Gen:     wf.GenConfig{Tasks: 14, Keys: 10, MaxReads: 3, BranchProb: 0.35},
		Attacks: attacks,
		Forged:  1,
	}
	attacked, err := scenario.Random(seed, cfg, true)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d runs, %d committed tasks, %d malicious instances\n",
		runs, attacked.Log().Len(), len(attacked.Bad))

	events, err := ids.Schedule(attacked.Bad, rate, 0.5, 1e6, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	store := attacked.Store()
	totalUndone, totalRedone, totalNew := 0, 0, 0
	for i, ev := range events {
		res, err := recovery.Repair(store, attacked.Log(), attacked.Specs, ev.Bad, recovery.Options{})
		if err != nil {
			return fmt.Errorf("alert %d: %w", i, err)
		}
		store = res.Store
		totalUndone += len(res.Undone)
		totalRedone += len(res.Redone)
		totalNew += len(res.NewExecuted)
		fmt.Printf("t=%8.3f alert %d (%v): undo %d, redo %d, new %d, %d iterations\n",
			ev.Time, i+1, ev.Bad, len(res.Undone), len(res.Redone), len(res.NewExecuted), res.Iterations)
	}
	fmt.Printf("totals: undone %d, redone %d, newly executed %d\n", totalUndone, totalRedone, totalNew)

	// Verify against the final cumulative repair.
	final, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		return err
	}
	if errs := recovery.VerifyResult(final, attacked.Log(), attacked.Specs); len(errs) != 0 {
		for _, e := range errs {
			fmt.Println("  VERIFY FAIL:", e)
		}
		return fmt.Errorf("corrected history invalid")
	}
	fmt.Println("corrected history verified: complete, value-consistent, spec-consistent")
	return nil
}
