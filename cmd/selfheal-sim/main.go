// Command selfheal-sim validates the analytical CTMC model against
// simulation, in two modes.
//
// Queueing mode (default) runs the discrete-event simulator over the same
// transition semantics as the STG model and compares time-average occupancy
// with the analytic steady state:
//
//	selfheal-sim -lambda 1 -mu 15 -xi 20 -buf 15 -horizon 50000 -seed 7
//
// Runtime mode (-runtime) drives the actual self-healing workflow system:
// randomized workloads executed by the real engine, attacks injected and
// corrupted, IDS alerts scheduled as a Poisson process, and every alert
// analyzed and repaired by the real recovery analyzer:
//
//	selfheal-sim -runtime -attacks 5 -seed 3
//
// Metrics mode (-metrics) drives the real runtime in virtual time through
// the observability layer (internal/obs via internal/rtsim) and prints the
// measured state occupancies π_N, π_S, π_R and loss rate side by side with
// the CTMC steady-state predictions, including the relative error:
//
//	selfheal-sim -metrics -lambda 2 -mu 4 -xi 5 -buf 4 -horizon 20000 -seed 7
//
// Every metric read in this mode is documented in docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"selfheal/internal/ids"
	"selfheal/internal/obs"
	"selfheal/internal/recovery"
	"selfheal/internal/rtsim"
	"selfheal/internal/scenario"
	"selfheal/internal/sim"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
)

func main() {
	var (
		lambda  = flag.Float64("lambda", 1, "IDS alert arrival rate λ")
		mu      = flag.Float64("mu", 15, "alert analysis rate μ₁")
		xi      = flag.Float64("xi", 20, "recovery execution rate ξ₁")
		buf     = flag.Int("buf", 15, "buffer size")
		fName   = flag.String("f", "linear", "μ degradation family")
		gName   = flag.String("g", "linear", "ξ degradation family")
		horizon = flag.Float64("horizon", 50000, "simulated time units")
		seed    = flag.Int64("seed", 1, "rng seed")
		runtime = flag.Bool("runtime", false, "drive the real workflow engine and recovery analyzer instead")
		metrics = flag.Bool("metrics", false, "measure the real runtime via the observability layer and compare with CTMC predictions")
		attacks = flag.Int("attacks", 3, "runtime mode: number of attacks to inject")
		runs    = flag.Int("runs", 4, "runtime mode: number of concurrent workflow runs")
	)
	flag.Parse()

	var err error
	switch {
	case *metrics:
		err = runMetrics(*lambda, *mu, *xi, *buf, *fName, *gName, *horizon, *seed)
	case *runtime:
		err = runRuntime(*seed, *runs, *attacks, *lambda)
	default:
		err = runQueueing(*lambda, *mu, *xi, *buf, *fName, *gName, *horizon, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-sim:", err)
		os.Exit(1)
	}
}

func runQueueing(lambda, mu, xi float64, buf int, fName, gName string, horizon float64, seed int64) error {
	f, err := stg.DegradationByName(fName)
	if err != nil {
		return err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g

	m, err := stg.New(p)
	if err != nil {
		return err
	}
	ss, err := m.SteadyState()
	if err != nil {
		return err
	}
	analytic := m.MetricsOf(ss)

	res, err := sim.Run(p, horizon, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	simulated := res.Metrics()

	fmt.Printf("λ=%g μ₁=%g ξ₁=%g buffer=%d f=%s g=%s, horizon=%g, seed=%d\n",
		lambda, mu, xi, buf, fName, gName, horizon, seed)
	fmt.Printf("%-22s %12s %12s\n", "metric", "analytic", "simulated")
	row := func(name string, a, s float64) {
		fmt.Printf("%-22s %12.6f %12.6f\n", name, a, s)
	}
	row("P(NORMAL)", analytic.PNormal, simulated.PNormal)
	row("P(SCAN)", analytic.PScan, simulated.PScan)
	row("P(RECOVERY)", analytic.PRecovery, simulated.PRecovery)
	row("loss probability", analytic.Loss, simulated.Loss)
	row("recovery buffer full", analytic.RecoveryFull, simulated.RecoveryFull)
	row("E[alerts]", analytic.EAlerts, simulated.EAlerts)
	row("E[recovery units]", analytic.ERecovery, simulated.ERecovery)
	fmt.Printf("arrivals: %d total, %d lost (%.4f); total variation vs CTMC: %.5f\n",
		res.ArrivalsTotal, res.ArrivalsLost, res.LostFraction(),
		sim.TotalVariation(res.Distribution(m), ss))
	return nil
}

// measureVsModel runs the real runtime in virtual time with the
// observability layer attached and derives the measured counterpart of each
// CTMC steady-state quantity from the metric snapshot: the per-class
// occupancy sums selfheal_time_{normal,scan,recovery}_seconds_total divided
// by the horizon give the measured π_N/π_S/π_R, and the loss-edge occupancy
// selfheal_time_loss_edge_seconds_total gives the measured loss probability
// (by PASTA, the fraction of time the alert buffer is full equals the
// fraction of Poisson arrivals that are dropped).
func measureVsModel(lambda, mu, xi float64, buf int, fName, gName string, horizon float64, seed int64) (measured, predicted stg.Metrics, res *rtsim.Result, err error) {
	f, err := stg.DegradationByName(fName)
	if err != nil {
		return measured, predicted, nil, err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return measured, predicted, nil, err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g

	m, err := stg.New(p)
	if err != nil {
		return measured, predicted, nil, err
	}
	predicted, err = m.SteadyMetrics()
	if err != nil {
		return measured, predicted, nil, err
	}

	reg := obs.NewRegistry()
	res, err = rtsim.RunObserved(p, horizon, seed, reg)
	if err != nil {
		return measured, predicted, nil, err
	}
	snap := reg.Snapshot()
	measured = stg.Metrics{
		PNormal:   snap[obs.MTimeNormalSeconds] / horizon,
		PScan:     snap[obs.MTimeScanSeconds] / horizon,
		PRecovery: snap[obs.MTimeRecoverySeconds] / horizon,
		Loss:      snap[obs.MTimeLossEdgeSeconds] / horizon,
	}
	return measured, predicted, res, nil
}

// relErr formats the relative error of a measurement against its prediction.
func relErr(measured, predicted float64) string {
	if predicted == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*math.Abs(measured-predicted)/predicted)
}

func runMetrics(lambda, mu, xi float64, buf int, fName, gName string, horizon float64, seed int64) error {
	measured, predicted, res, err := measureVsModel(lambda, mu, xi, buf, fName, gName, horizon, seed)
	if err != nil {
		return err
	}
	fmt.Printf("real runtime in virtual time: λ=%g μ₁=%g ξ₁=%g buffer=%d f=%s g=%s, horizon=%g, seed=%d\n",
		lambda, mu, xi, buf, fName, gName, horizon, seed)
	fmt.Printf("%-24s %12s %12s %10s\n", "metric", "predicted", "measured", "rel.err")
	row := func(name string, pred, meas float64) {
		fmt.Printf("%-24s %12.6f %12.6f %10s\n", name, pred, meas, relErr(meas, pred))
	}
	row("π_N  P(NORMAL)", predicted.PNormal, measured.PNormal)
	row("π_S  P(SCAN)", predicted.PScan, measured.PScan)
	row("π_R  P(RECOVERY)", predicted.PRecovery, measured.PRecovery)
	row("P_l  loss probability", predicted.Loss, measured.Loss)
	fmt.Printf("alerts: %d reported, %d lost (dropped fraction %.4f)\n",
		res.Reported, res.Lost, res.LostFraction())
	fmt.Printf("runtime work: %d alerts analyzed, %d recovery units executed, %d undone, %d redone\n",
		res.Runtime.AlertsAnalyzed, res.Runtime.UnitsExecuted, res.Runtime.Undone, res.Runtime.Redone)
	return nil
}

func runRuntime(seed int64, runs, attacks int, rate float64) error {
	cfg := scenario.RandomConfig{
		Runs:    runs,
		Gen:     wf.GenConfig{Tasks: 14, Keys: 10, MaxReads: 3, BranchProb: 0.35},
		Attacks: attacks,
		Forged:  1,
	}
	attacked, err := scenario.Random(seed, cfg, true)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d runs, %d committed tasks, %d malicious instances\n",
		runs, attacked.Log().Len(), len(attacked.Bad))

	events, err := ids.Schedule(attacked.Bad, rate, 0.5, 1e6, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	store := attacked.Store()
	totalUndone, totalRedone, totalNew := 0, 0, 0
	for i, ev := range events {
		res, err := recovery.Repair(store, attacked.Log(), attacked.Specs, ev.Bad, recovery.Options{})
		if err != nil {
			return fmt.Errorf("alert %d: %w", i, err)
		}
		store = res.Store
		totalUndone += len(res.Undone)
		totalRedone += len(res.Redone)
		totalNew += len(res.NewExecuted)
		fmt.Printf("t=%8.3f alert %d (%v): undo %d, redo %d, new %d, %d iterations\n",
			ev.Time, i+1, ev.Bad, len(res.Undone), len(res.Redone), len(res.NewExecuted), res.Iterations)
	}
	fmt.Printf("totals: undone %d, redone %d, newly executed %d\n", totalUndone, totalRedone, totalNew)

	// Verify against the final cumulative repair.
	final, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		return err
	}
	if errs := recovery.VerifyResult(final, attacked.Log(), attacked.Specs); len(errs) != 0 {
		for _, e := range errs {
			fmt.Println("  VERIFY FAIL:", e)
		}
		return fmt.Errorf("corrected history invalid")
	}
	fmt.Println("corrected history verified: complete, value-consistent, spec-consistent")
	return nil
}
