// Command wfrun executes a JSON workflow specification, optionally corrupts
// one of its tasks, and runs the dependency-based attack recovery over the
// resulting history — a REPL-sized demonstration of the full pipeline.
//
//	wfrun -spec workflow.json
//	wfrun -spec workflow.json -attack t1 -value 999
//
// With -attack, the named task's writes are overwritten with -value, the
// recovery analyzer is invoked with the task reported malicious, and the
// tool prints the damage analysis, the recovery schedule, and the repaired
// final state.
//
// The specification format (see internal/wfjson):
//
//	{
//	  "name": "demo", "start": "t1",
//	  "init": {"e": 0},
//	  "tasks": [
//	    {"id": "t1", "writes": ["a"], "bias": 1, "next": ["t2"]},
//	    {"id": "t2", "reads": ["a"], "writes": ["b"], "bias": 1,
//	     "next": ["t3", "t5"],
//	     "choose": {"key": "a", "threshold": 50, "low": "t5", "high": "t3"}},
//	    ...
//	  ]
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
	"selfheal/internal/wlogio"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the JSON workflow specification (required)")
		attack   = flag.String("attack", "", "task to corrupt (visit 1)")
		value    = flag.Int64("value", 9999, "value the corrupted task writes")
		dump     = flag.String("dump", "", "write a JSON snapshot of the post-execution log and store to this file")
	)
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*specPath, *attack, data.Value(*value), *dump); err != nil {
		fmt.Fprintln(os.Stderr, "wfrun:", err)
		os.Exit(1)
	}
}

func run(specPath, attack string, corrupt data.Value, dump string) error {
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	defer f.Close()
	spec, init, err := wfjson.Decode(f)
	if err != nil {
		return err
	}

	for _, w := range wf.Lint(spec) {
		fmt.Println("lint:", w)
	}

	st := data.NewStore()
	for k, v := range init {
		st.Init(k, v)
	}
	eng := engine.New(st, wlog.New())
	if attack != "" {
		task, ok := spec.Tasks[wf.TaskID(attack)]
		if !ok {
			return fmt.Errorf("attack target %q not in workflow", attack)
		}
		writes := append([]data.Key(nil), task.Writes...)
		eng.AddAttack(engine.Attack{
			Run: "main", Task: task.ID,
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				out := make(map[data.Key]data.Value, len(writes))
				for _, k := range writes {
					out[k] = corrupt
				}
				return out
			},
		})
	}

	r, err := eng.NewRun("main", spec)
	if err != nil {
		return err
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		return err
	}

	fmt.Printf("workflow %s executed: %d tasks committed\n", spec.Name, eng.Log().Len())
	fmt.Println("system log:")
	for _, e := range eng.Log().Entries() {
		fmt.Printf("  %3d  %-14s reads %v writes %v", e.LSN, e.ID(), readsOf(e), e.Writes)
		if e.Chosen != "" {
			fmt.Printf("  chose %s", e.Chosen)
		}
		fmt.Println()
	}
	printState("final state", eng.Store())

	if dump != "" {
		df, err := os.Create(dump)
		if err != nil {
			return err
		}
		if err := wlogio.Encode(df, eng.Log(), eng.Store()); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", dump)
	}

	if attack == "" {
		return nil
	}

	bad := []wlog.InstanceID{wlog.FormatInstance("main", wf.TaskID(attack), 1)}
	specs := map[string]*wf.Spec{"main": spec}
	res, err := recovery.Repair(eng.Store(), eng.Log(), specs, bad, recovery.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nrecovery from IDS report %v:\n", bad)
	fmt.Printf("  worst-case undo bound: %d instances\n", len(res.Analysis.WorstCaseUndo()))
	fmt.Printf("  flow-damaged (Thm 1 cond 3): %v\n", res.Analysis.FlowDamaged)
	for g, c := range res.Analysis.CandidateUndo {
		fmt.Printf("  candidate undo under %s (cond 2): %v\n", g, c)
	}
	for _, c := range res.Analysis.Cond4 {
		fmt.Printf("  cond-4 candidate: %s stale if %s executes after redo(%s)\n",
			c.Reader, c.Unexecuted, c.Guard)
	}
	fmt.Printf("  undone: %v\n", res.Undone)
	fmt.Printf("  redone: %v\n", res.Redone)
	fmt.Printf("  newly executed: %v\n", res.NewExecuted)
	fmt.Printf("  dropped (not redone): %v\n", res.DroppedNotRedone)
	fmt.Printf("  fixpoint iterations: %d\n", res.Iterations)
	fmt.Println("  recovery schedule:")
	for _, a := range res.Schedule {
		if a.Kind == recovery.ActKeep {
			continue
		}
		fmt.Printf("    %-8s %-14s at position %.4g\n", a.Kind, a.Inst, a.Epos)
	}
	if errs := recovery.VerifyResult(res, eng.Log(), specs); len(errs) != 0 {
		for _, e := range errs {
			fmt.Println("  VERIFY FAIL:", e)
		}
		return fmt.Errorf("corrected history invalid")
	}
	printState("repaired state", res.Store)
	return nil
}

func readsOf(e *wlog.Entry) map[data.Key]data.Value {
	out := make(map[data.Key]data.Value, len(e.Reads))
	for k, o := range e.Reads {
		out[k] = o.Value
	}
	return out
}

func printState(label string, st *data.Store) {
	snap := st.Snapshot()
	keys := make([]data.Key, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Printf("%s:", label)
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, snap[k])
	}
	fmt.Println()
}
