package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanSpec(t *testing.T) {
	if err := run("testdata/fig1.json", "", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAttackAndRecovery(t *testing.T) {
	if err := run("testdata/fig1.json", "t1", 100, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDump(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "snap.json")
	if err := run("testdata/fig1.json", "t1", 100, dump); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"format"`) {
		t.Error("snapshot missing format header")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("testdata/missing.json", "", 0, ""); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run("testdata/fig1.json", "ghost", 1, ""); err == nil {
		t.Error("unknown attack target accepted")
	}
}
