package baseline_test

import (
	"testing"

	"selfheal/internal/baseline"
	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wlog"
)

func fig1Initial() map[data.Key]data.Value {
	return map[data.Key]data.Value{"e": 0}
}

func TestLastCheckpointBefore(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	// Attack at LSN 1 (t1): every interval yields checkpoint 0.
	cp, err := baseline.LastCheckpointBefore(s.Log(), s.Bad, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 0 {
		t.Errorf("cp = %d, want 0", cp)
	}
	// A later attack: t9 at LSN 7 with interval 4 → checkpoint 4.
	cp, err = baseline.LastCheckpointBefore(s.Log(), []wlog.InstanceID{"r2/t9#1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 4 {
		t.Errorf("cp = %d, want 4", cp)
	}
	if _, err := baseline.LastCheckpointBefore(s.Log(), []wlog.InstanceID{"r9/x#1"}, 4); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := baseline.LastCheckpointBefore(s.Log(), s.Bad, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

// TestRollbackFromInitialMatchesClean: rolling back to the initial state and
// re-executing everything benignly reproduces the clean final state — at the
// cost of discarding all nine committed tasks.
func TestRollbackFromInitialMatchesClean(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.RollbackRecover(attacked.Log(), attacked.Specs, fig1Initial(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded != 9 {
		t.Errorf("discarded = %d, want all 9", res.Discarded)
	}
	if res.ReExecuted != 8 {
		t.Errorf("re-executed = %d, want 8 (both clean paths)", res.ReExecuted)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Error(err)
	}
}

// TestRollbackAfterAttackStaysCorrupt: a checkpoint taken after the
// malicious commit preserves the corruption — the §I argument for
// dependency-based recovery over checkpoints.
func TestRollbackAfterAttackStaysCorrupt(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint at LSN 2 (after corrupt t1 and clean t7).
	res, err := baseline.RollbackRecover(attacked.Log(), attacked.Specs, fig1Initial(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Store.Get("a"); v.Value != 100 {
		t.Fatalf("a = %d; checkpoint after attack should retain corruption", v.Value)
	}
	// The re-execution therefore walks the wrong path again.
	if _, ok := res.Store.Get("c"); !ok {
		t.Error("corrupt branch not re-taken; expected t3 to run again")
	}
}

// TestRedoAllSinceAttack: the perfect-checkpoint best case discards
// everything from the first malicious commit onwards.
func TestRedoAllSinceAttack(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.RedoAllSinceAttack(attacked.Log(), attacked.Specs, fig1Initial(), attacked.Bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointLSN != 0 {
		t.Errorf("cp = %d, want 0 (attack at LSN 1)", res.CheckpointLSN)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Error(err)
	}
}

// TestBaselineDiscardsMoreThanDependencyRecovery quantifies §I: for an
// attack detected late (t9), rollback discards clean work that
// dependency-based recovery keeps untouched.
func TestBaselineDiscardsMoreThanDependencyRecovery(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	bad := []wlog.InstanceID{"r2/t9#1"} // pretend t9 was the malicious one
	cp, err := baseline.LastCheckpointBefore(attacked.Log(), bad, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.RollbackRecover(attacked.Log(), attacked.Specs, fig1Initial(), cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// t9 infects only t10's read of i? (t10 reads h, not i) — recovery
	// undoes {t9} alone, while rollback discards 5 entries (LSN 5..9).
	if len(rec.Undone) >= res.Discarded {
		t.Errorf("dependency recovery undid %d, rollback discarded %d; expected strictly less",
			len(rec.Undone), res.Discarded)
	}
}

func TestRollbackValidatesRange(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.RollbackRecover(attacked.Log(), attacked.Specs, fig1Initial(), -1, 0); err == nil {
		t.Error("negative checkpoint accepted")
	}
	if _, err := baseline.RollbackRecover(attacked.Log(), attacked.Specs, fig1Initial(), 99, 0); err == nil {
		t.Error("checkpoint beyond log accepted")
	}
}
