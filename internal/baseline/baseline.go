// Package baseline implements the recovery strategies the paper compares
// against (§I, §VII): checkpoint/rollback recovery, which rewinds the whole
// system to a snapshot and discards every piece of work committed after it —
// malicious and legitimate alike — and the degenerate "redo everything since
// the attack" strategy (a perfect checkpoint taken exactly before the first
// malicious commit).
//
// Benchmarks compare the work these baselines discard and re-execute with
// the undo/redo sets of the dependency-based recovery of internal/recovery.
package baseline

import (
	"context"
	"fmt"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Result reports one rollback recovery.
type Result struct {
	// CheckpointLSN is the restore point (0 = initial state).
	CheckpointLSN int
	// Discarded counts the committed entries rolled away.
	Discarded int
	// ReExecuted counts the task executions performed to complete the
	// workload again after the rollback.
	ReExecuted int
	// Store is the post-recovery store.
	Store *data.Store
	// Log is the post-recovery log (prefix + re-execution).
	Log *wlog.Log
}

// LastCheckpointBefore returns the largest checkpoint LSN (a multiple of
// interval) strictly below the earliest malicious commit. It returns 0 (the
// initial state) when no checkpoint precedes the attack.
func LastCheckpointBefore(log *wlog.Log, bad []wlog.InstanceID, interval int) (int, error) {
	if interval < 1 {
		return 0, fmt.Errorf("baseline: checkpoint interval must be ≥ 1, got %d", interval)
	}
	minBad := log.Len() + 1
	for _, id := range bad {
		e, ok := log.Get(id)
		if !ok {
			return 0, fmt.Errorf("baseline: malicious instance %s not in log", id)
		}
		if e.LSN < minBad {
			minBad = e.LSN
		}
	}
	cp := ((minBad - 1) / interval) * interval
	return cp, nil
}

// RollbackRecover rewinds the system to checkpointLSN and re-executes every
// registered run from its checkpointed frontier to completion with benign
// task code. initial supplies the pre-history values (the same Init calls
// the original execution used).
func RollbackRecover(log *wlog.Log, specs map[string]*wf.Spec, initial map[data.Key]data.Value, checkpointLSN int, maxSteps int) (*Result, error) {
	if checkpointLSN < 0 || checkpointLSN > log.Len() {
		return nil, fmt.Errorf("baseline: checkpoint LSN %d out of range [0,%d]", checkpointLSN, log.Len())
	}
	st := data.NewStore()
	for k, v := range initial {
		st.Init(k, v)
	}
	newLog := wlog.New()
	eng := engine.New(st, newLog)

	// Rebuild the checkpoint prefix verbatim: entries keep their LSNs
	// (the new log assigns them densely in the same order) and their
	// recorded writes land at the same positions.
	entries := log.Entries()
	res := &Result{CheckpointLSN: checkpointLSN, Store: st, Log: newLog}
	for _, e := range entries {
		if e.LSN > checkpointLSN {
			res.Discarded++
			continue
		}
		cp := &wlog.Entry{
			Run:    e.Run,
			Task:   e.Task,
			Visit:  e.Visit,
			Forged: e.Forged,
			Reads:  e.Reads,
			Writes: e.Writes,
			Chosen: e.Chosen,
		}
		lsn, err := newLog.Append(cp)
		if err != nil {
			return nil, fmt.Errorf("baseline: rebuild prefix: %w", err)
		}
		if lsn != e.LSN {
			return nil, fmt.Errorf("baseline: prefix LSN drifted: %d != %d", lsn, e.LSN)
		}
		for k, v := range e.Writes {
			st.Write(k, v, float64(lsn), string(cp.ID()), false)
		}
	}

	// Restart every run from its checkpointed frontier and complete it.
	var runs []*engine.Run
	for _, runID := range log.Runs() {
		spec, ok := specs[runID]
		if !ok {
			continue // forged-only pseudo-runs have nothing to re-execute
		}
		r, err := eng.NewRun(runID, spec)
		if err != nil {
			return nil, err
		}
		cur, done := frontierAt(newLog, runID, spec)
		if err := eng.Resync(r, cur, done); err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	before := newLog.Len()
	if err := eng.Interleave(context.Background(), runs, nil, maxSteps); err != nil {
		return nil, fmt.Errorf("baseline: re-execution: %w", err)
	}
	res.ReExecuted = newLog.Len() - before
	return res, nil
}

// frontierAt computes where a run stood in the (rebuilt prefix) log: the
// task it would execute next, or done.
func frontierAt(log *wlog.Log, run string, spec *wf.Spec) (wf.TaskID, bool) {
	trace := log.Trace(run, false)
	if len(trace) == 0 {
		return spec.Start, false
	}
	last := trace[len(trace)-1]
	task := spec.Tasks[last.Task]
	switch {
	case len(task.Next) == 0:
		return "", true
	case len(task.Next) == 1:
		return task.Next[0], false
	default:
		return last.Chosen, false
	}
}

// RedoAllSinceAttack is the best case for rollback recovery: a perfect
// checkpoint taken immediately before the first malicious commit.
func RedoAllSinceAttack(log *wlog.Log, specs map[string]*wf.Spec, initial map[data.Key]data.Value, bad []wlog.InstanceID, maxSteps int) (*Result, error) {
	cp, err := LastCheckpointBefore(log, bad, 1)
	if err != nil {
		return nil, err
	}
	return RollbackRecover(log, specs, initial, cp, maxSteps)
}
