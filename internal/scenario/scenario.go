// Package scenario builds ready-to-run attack/recovery scenarios shared by
// tests, examples and benchmarks: the paper's Figure 1 workload, randomized
// workloads over generated workflows, and the clean (attack-free) reference
// execution used as the strict-correctness oracle.
package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Scenario is one executed workload: an engine whose log and store hold the
// committed history, the run→spec map the recovery analyzer needs, and the
// set of malicious instances the IDS reports.
type Scenario struct {
	Engine *engine.Engine
	Specs  map[string]*wf.Spec
	// Bad lists the malicious instances (the IDS report B).
	Bad []wlog.InstanceID
}

// Store returns the scenario's store.
func (s *Scenario) Store() *data.Store { return s.Engine.Store() }

// Log returns the scenario's log.
func (s *Scenario) Log() *wlog.Log { return s.Engine.Log() }

// Fig1 executes the paper's Figure 1 workload. With attack=true, task t1 of
// run r1 is corrupted (writes a=100 instead of a=1), which drives run r1
// down the wrong path P1 = t1 t2 t3 t4 t6 and infects t2, t4, t8 and t10 —
// reproducing the system log L1 = t1 t7 t2 t8 t3 t4 t9 t6 t10. With
// attack=false the clean history (path P2 = t1 t2 t5 t6) is produced.
func Fig1(attack bool) (*Scenario, error) {
	wf1, wf2 := wf.Fig1Specs()
	st := data.NewStore()
	st.Init("e", 0) // read by t6 when t5 never ran
	eng := engine.New(st, wlog.New())
	if attack {
		eng.AddAttack(engine.Attack{
			Run: "r1", Task: "t1",
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{"a": 100}
			},
		})
	}
	r1, err := eng.NewRun("r1", wf1)
	if err != nil {
		return nil, err
	}
	r2, err := eng.NewRun("r2", wf2)
	if err != nil {
		return nil, err
	}
	// L1 interleaving: t1 t7 t2 t8 [t3 t4 | t5] t9 t6 t10.
	order := []int{0, 1, 0, 1, 0, 0, 1, 0, 1}
	if !attack {
		order = []int{0, 1, 0, 1, 0, 1, 0, 1}
	}
	if err := eng.Interleave(context.Background(), []*engine.Run{r1, r2}, order, 0); err != nil {
		return nil, err
	}
	s := &Scenario{
		Engine: eng,
		Specs:  map[string]*wf.Spec{"r1": wf1, "r2": wf2},
	}
	if attack {
		s.Bad = []wlog.InstanceID{wlog.FormatInstance("r1", "t1", 1)}
	}
	return s, nil
}

// RandomConfig controls random scenario generation.
type RandomConfig struct {
	// Runs is the number of concurrent workflow runs.
	Runs int
	// Gen configures each generated workflow.
	Gen wf.GenConfig
	// Attacks is the number of task corruptions to inject.
	Attacks int
	// Forged is the number of forged (non-spec) tasks to inject.
	Forged int
}

// DefaultRandomConfig returns a medium-sized randomized workload.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{Runs: 3, Gen: wf.DefaultGenConfig(), Attacks: 2, Forged: 1}
}

// Random builds and executes a randomized workload from seed: cfg.Runs
// generated workflows over a shared key pool, interleaved pseudo-randomly,
// with cfg.Attacks task corruptions and cfg.Forged forged tasks. The same
// seed with attack=false executes the identical workload cleanly (same
// specs, same interleaving, no corruption) for use as the strict-correctness
// oracle.
func Random(seed int64, cfg RandomConfig, attack bool) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))

	// Build specs and initial values first, identically for both modes.
	specs := make([]*wf.Spec, cfg.Runs)
	for i := range specs {
		specs[i] = wf.Generate(fmt.Sprintf("gwf%d", i), cfg.Gen, rng)
	}
	st := data.NewStore()
	for i := 0; i < cfg.Gen.Keys; i++ {
		st.Init(wf.GenKey(i), data.Value(rng.Intn(20)))
	}
	eng := engine.New(st, wlog.New())

	s := &Scenario{Engine: eng, Specs: make(map[string]*wf.Spec, cfg.Runs)}
	runs := make([]*engine.Run, cfg.Runs)
	for i, spec := range specs {
		id := fmt.Sprintf("run%d", i)
		r, err := eng.NewRun(id, spec)
		if err != nil {
			return nil, err
		}
		runs[i] = r
		s.Specs[id] = spec
	}

	// Attack plan: drawn from rng identically in both modes so the clean
	// twin consumes the same random stream.
	type hit struct {
		run  int
		task wf.TaskID
	}
	var hits []hit
	for i := 0; i < cfg.Attacks; i++ {
		run := rng.Intn(cfg.Runs)
		ids := taskIDs(specs[run])
		hits = append(hits, hit{run: run, task: ids[rng.Intn(len(ids))]})
	}
	if attack {
		for _, h := range hits {
			h := h
			corrupt := data.Value(1000 + rng.Intn(1000))
			eng.AddAttack(engine.Attack{
				Run:  fmt.Sprintf("run%d", h.run),
				Task: h.task,
				Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
					out := make(map[data.Key]data.Value)
					for _, k := range specs[h.run].Tasks[h.task].Writes {
						out[k] = corrupt
					}
					return out
				},
			})
		}
	} else {
		// Burn the same number of rng draws to keep the streams aligned.
		for range hits {
			rng.Intn(1000)
		}
	}

	// Pseudo-random interleaving, identical for both modes.
	order := make([]int, 0, cfg.Runs*cfg.Gen.Tasks*2)
	for i := 0; i < cfg.Runs*cfg.Gen.Tasks*2; i++ {
		order = append(order, rng.Intn(cfg.Runs))
	}
	if err := eng.Interleave(context.Background(), runs, order, 0); err != nil {
		return nil, err
	}

	// Forged injections commit after the workload (the attacker writing
	// trash that later reads may consume requires interleaved injection;
	// appending keeps the clean twin's history identical while still
	// corrupting every later read — recovery must delete them).
	if attack {
		for i := 0; i < cfg.Forged; i++ {
			k := wf.GenKey(rng.Intn(cfg.Gen.Keys))
			inst, err := eng.InjectForged("", wf.TaskID(fmt.Sprintf("forged%d", i)),
				nil, map[data.Key]data.Value{k: data.Value(-9000 - i)})
			if err != nil {
				return nil, err
			}
			s.Bad = append(s.Bad, inst)
		}
		// The IDS reports every instance whose execution was corrupted.
		// A hit on a task the run never executed (wrong branch) simply
		// never fires.
		for _, h := range hits {
			id := wlog.FormatInstance(fmt.Sprintf("run%d", h.run), h.task, 1)
			if _, ok := eng.Log().Get(id); ok {
				s.Bad = append(s.Bad, id)
			}
		}
		s.Bad = dedupe(s.Bad)
	}
	return s, nil
}

func taskIDs(s *wf.Spec) []wf.TaskID {
	out := make([]wf.TaskID, 0, len(s.Tasks))
	for i := 0; i < len(s.Tasks); i++ {
		out = append(out, wf.TaskID(fmt.Sprintf("t%d", i)))
	}
	return out
}

func dedupe(ids []wlog.InstanceID) []wlog.InstanceID {
	seen := make(map[wlog.InstanceID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
