package scenario

import (
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

func TestFig1AttackedVsClean(t *testing.T) {
	attacked, err := Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if attacked.Log().Len() != 9 {
		t.Errorf("attacked log %d entries, want 9 (L1)", attacked.Log().Len())
	}
	if clean.Log().Len() != 8 {
		t.Errorf("clean log %d entries, want 8", clean.Log().Len())
	}
	if len(attacked.Bad) != 1 || attacked.Bad[0] != "r1/t1#1" {
		t.Errorf("bad = %v", attacked.Bad)
	}
	if len(clean.Bad) != 0 {
		t.Errorf("clean scenario reports attacks: %v", clean.Bad)
	}
	if data.Equal(attacked.Store(), clean.Store()) {
		t.Error("attack left no trace in the store")
	}
	if len(attacked.Specs) != 2 {
		t.Errorf("specs = %v", attacked.Specs)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cfg := DefaultRandomConfig()
	a, err := Random(5, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(5, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Log().Len() != b.Log().Len() {
		t.Fatal("same seed produced different logs")
	}
	ea, eb := a.Log().Entries(), b.Log().Entries()
	for i := range ea {
		if ea[i].ID() != eb[i].ID() {
			t.Fatalf("entry %d differs: %s vs %s", i, ea[i].ID(), eb[i].ID())
		}
	}
	if !data.Equal(a.Store(), b.Store()) {
		t.Error("same seed produced different stores")
	}
}

func TestRandomCleanTwinAlignment(t *testing.T) {
	// The clean twin must execute the same workflows over the same
	// initial values — only the corruption differs.
	cfg := DefaultRandomConfig()
	for seed := int64(0); seed < 10; seed++ {
		attacked, err := Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := Random(seed, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(attacked.Specs) != len(clean.Specs) {
			t.Fatalf("seed %d: spec counts differ", seed)
		}
		for run, sa := range attacked.Specs {
			sc, ok := clean.Specs[run]
			if !ok {
				t.Fatalf("seed %d: run %s missing in clean twin", seed, run)
			}
			if len(sa.Tasks) != len(sc.Tasks) {
				t.Fatalf("seed %d run %s: task counts differ", seed, run)
			}
			for id, ta := range sa.Tasks {
				tc := sc.Tasks[id]
				if tc == nil || len(ta.Next) != len(tc.Next) {
					t.Fatalf("seed %d run %s task %s: structure differs", seed, run, id)
				}
			}
		}
		if len(clean.Bad) != 0 {
			t.Errorf("seed %d: clean twin has attacks", seed)
		}
	}
}

func TestRandomAttacksCommitted(t *testing.T) {
	// Reported instances must exist in the log, and forged entries must
	// be flagged.
	cfg := DefaultRandomConfig()
	foundForged := false
	for seed := int64(0); seed < 20; seed++ {
		s, err := Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range s.Bad {
			e, ok := s.Log().Get(b)
			if !ok {
				t.Fatalf("seed %d: reported %s not in log", seed, b)
			}
			if e.Forged {
				foundForged = true
			}
		}
	}
	if !foundForged {
		t.Error("no forged instance reported across 20 seeds")
	}
}

func TestRandomValidatesSpecs(t *testing.T) {
	cfg := RandomConfig{
		Runs:    2,
		Gen:     wf.GenConfig{Tasks: 6, Keys: 4, MaxReads: 2, BranchProb: 0.5},
		Attacks: 1,
	}
	s, err := Random(3, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	for run, spec := range s.Specs {
		if err := spec.Validate(); err != nil {
			t.Errorf("run %s: %v", run, err)
		}
	}
}
