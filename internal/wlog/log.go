// Package wlog implements the workflow system log of §II.A: the commit-
// ordered sequence of task executions across all concurrently processed
// workflows. Each entry records the exact versions a task read (so data
// dependencies can be computed precisely, §II.C), the values it wrote, and —
// for choice nodes — the successor it selected (so control-dependence
// recovery can re-check the execution path, §III.B).
//
// The log is an instrumentation point of the observability layer
// (internal/obs, docs/OBSERVABILITY.md): Observe wires an append counter, a
// length gauge, and the cumulative time spent in OnAppend commit hooks —
// the maintenance cost of the incremental dependence graph. Instrumentation
// is off (and free beyond a nil check) until Observe is called.
package wlog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/obs"
	"selfheal/internal/wf"
)

// InstanceID uniquely names one execution of a task: run, task and visit
// number (t_i^k in the paper's notation).
type InstanceID string

// FormatInstance builds the canonical instance ID "run/task#visit".
func FormatInstance(run string, task wf.TaskID, visit int) InstanceID {
	return InstanceID(fmt.Sprintf("%s/%s#%d", run, task, visit))
}

// ParseInstance splits a canonical instance ID back into its run, task and
// visit parts, validating the "run/task#visit" shape FormatInstance emits:
// a non-empty run (everything before the first '/'), a non-empty task, and
// a positive decimal visit after the last '#'. It is the syntactic gate the
// alert-admission path uses to tell a malformed ID (400) from a well-formed
// ID that simply is not in the log (404).
func ParseInstance(id InstanceID) (run string, task wf.TaskID, visit int, err error) {
	s := string(id)
	slash := strings.Index(s, "/")
	if slash <= 0 {
		return "", "", 0, fmt.Errorf("wlog: instance %q: want run/task#visit", s)
	}
	hash := strings.LastIndex(s, "#")
	if hash < slash+2 || hash == len(s)-1 {
		return "", "", 0, fmt.Errorf("wlog: instance %q: want run/task#visit", s)
	}
	visit, err = strconv.Atoi(s[hash+1:])
	if err != nil || visit < 1 {
		return "", "", 0, fmt.Errorf("wlog: instance %q: visit must be a positive integer", s)
	}
	return s[:slash], wf.TaskID(s[slash+1 : hash]), visit, nil
}

// ReadObs records one observed read: the value and the identity of the
// version that supplied it. WriterPos < data.InitPos (i.e. MissingPos) means
// the key had no version at all and the read defaulted to zero.
type ReadObs struct {
	Value     data.Value
	Writer    string  // instance ID of the writing task; "" for initial versions
	WriterPos float64 // position of the observed version
}

// MissingPos is the WriterPos recorded when a read found no version.
const MissingPos = -1.0

// Entry is one committed task execution.
type Entry struct {
	// LSN is the commit sequence number (1-based, dense, ascending).
	LSN int
	// Run identifies the workflow instance; empty for standalone forged
	// tasks injected outside any workflow.
	Run string
	// Task and Visit identify the task instance within the run.
	Task  wf.TaskID
	Visit int
	// Forged marks a task injected by the attacker that is not part of
	// the workflow specification at all. Forged tasks are undone, never
	// redone.
	Forged bool
	// Reads maps each key read to the observed version.
	Reads map[data.Key]ReadObs
	// Writes maps each key written to the committed value.
	Writes map[data.Key]data.Value
	// Chosen is the successor a choice node selected; empty otherwise.
	Chosen wf.TaskID
}

// ID returns the entry's instance ID.
func (e *Entry) ID() InstanceID {
	return FormatInstance(e.Run, e.Task, e.Visit)
}

// Log is the append-only system log. Safe for concurrent use.
type Log struct {
	mu sync.RWMutex
	// base is the LSN of the last entry truncated away beneath this log
	// (0 for a complete log): entries holds LSNs base+1..base+len(entries).
	base    int
	entries []*Entry
	byInst  map[InstanceID]*Entry
	// byRun indexes entries per run (forged included) so Trace and Succ
	// are O(run length) instead of O(log length).
	byRun map[string][]*Entry
	// hooks are commit observers registered via OnAppend.
	hooks []func(*Entry)
	// o holds the optional instrumentation (Observe); zero means off, and
	// the nil-safe obs primitives make every update a no-op.
	o logObs
}

// logObs is the log's instrumentation: commit counter, current length, and
// the cumulative time spent in commit hooks (the incremental dependence
// maintenance cost the EXPERIMENTS.md append benchmark measures).
type logObs struct {
	appends     *obs.Counter
	entries     *obs.Gauge
	hookSeconds *obs.Sum
}

// Observe wires the log's instrumentation into reg (see docs/OBSERVABILITY.md
// for the metric catalog). A nil registry leaves instrumentation off — the
// default, which keeps Append at its uninstrumented cost.
func (l *Log) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o = logObs{
		appends:     reg.Counter(obs.MWlogAppends),
		entries:     reg.Gauge(obs.MWlogEntries),
		hookSeconds: reg.Sum(obs.MWlogHookSeconds),
	}
	l.o.entries.Set(int64(len(l.entries)))
}

// New returns an empty log.
func New() *Log {
	return NewAt(0)
}

// NewAt returns an empty log whose first appended entry will receive LSN
// base+1. A nonzero base reconstructs a log whose prefix has been truncated
// at a durable-snapshot boundary (internal/durable): the entries at or below
// base live only inside the snapshot's store state, so lookups for them miss
// and traces cover only the suffix — exactly the compaction semantics of
// data.Store.CompactBefore, applied to the log.
func NewAt(base int) *Log {
	if base < 0 {
		base = 0
	}
	return &Log{
		base:   base,
		byInst: make(map[InstanceID]*Entry),
		byRun:  make(map[string][]*Entry),
	}
}

// Append commits e, assigning the next LSN. It returns the assigned LSN and
// rejects duplicate instance IDs.
func (l *Log) Append(e *Entry) (int, error) {
	return l.AppendBatch([]*Entry{e})
}

// AppendBatch is the group-commit path: it commits the entries in order
// under a single lock acquisition, assigning dense consecutive LSNs, and
// runs the OnAppend hooks entry by entry in LSN order — so a hook-fed
// consumer (the incremental dependence graph) observes exactly the same
// sequence a series of single Appends would have produced, while the
// per-commit lock and hook-dispatch overhead is amortized across the batch.
// The batch is atomic with respect to duplicates: if any entry's instance
// ID collides with a committed entry or with an earlier entry of the same
// batch, nothing is appended. It returns the LSN assigned to the first
// entry (0 for an empty batch).
func (l *Log) AppendBatch(entries []*Entry) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[InstanceID]bool, len(entries))
	for _, e := range entries {
		id := e.ID()
		if _, dup := l.byInst[id]; dup || seen[id] {
			return 0, fmt.Errorf("wlog: duplicate instance %s", id)
		}
		seen[id] = true
	}
	first := l.base + len(l.entries) + 1
	for i, e := range entries {
		e.LSN = first + i
		l.entries = append(l.entries, e)
		l.byInst[e.ID()] = e
		l.byRun[e.Run] = append(l.byRun[e.Run], e)
	}
	l.o.appends.Add(int64(len(entries)))
	l.o.entries.Set(int64(len(l.entries)))
	var hookStart time.Time
	if l.o.hookSeconds != nil {
		hookStart = time.Now()
	}
	for _, e := range entries {
		for _, h := range l.hooks {
			h(e)
		}
	}
	if l.o.hookSeconds != nil {
		l.o.hookSeconds.Add(time.Since(hookStart).Seconds())
	}
	return first, nil
}

// OnAppend registers fn as a commit observer: it is first invoked, in LSN
// order, for every entry already committed, and then synchronously for each
// future Append, still in LSN order. Registration and catch-up are atomic
// with respect to concurrent appends, so observers never miss or reorder an
// entry. fn runs while the log's lock is held and must not call back into
// the log. The incremental dependence graph (internal/deps) is the primary
// consumer.
func (l *Log) OnAppend(fn func(*Entry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		fn(e)
	}
	l.hooks = append(l.hooks, fn)
}

// Len returns the highest assigned LSN: the number of entries ever
// committed, including any truncated prefix beneath a base offset (NewAt).
// For a complete log this is simply the entry count.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base + len(l.entries)
}

// Base returns the LSN beneath which entries have been truncated away
// (0 for a complete log). Entries, Trace and Get cover only LSNs above it.
func (l *Log) Base() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// Range invokes fn for each committed entry in LSN order until fn returns
// false, without materializing a copy of the entry slice — the streaming
// iteration the snapshot encoders use. fn runs under the log's read lock and
// must not call back into the log.
func (l *Log) Range(fn func(*Entry) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, e := range l.entries {
		if !fn(e) {
			return
		}
	}
}

// Entries returns the committed entries in LSN order. The slice is a copy;
// the entries are shared and must be treated as immutable.
func (l *Log) Entries() []*Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Get returns the entry for an instance ID.
func (l *Log) Get(id InstanceID) (*Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.byInst[id]
	return e, ok
}

// Trace returns the subsequence of the log belonging to the given run
// (§II.A), in LSN order, excluding forged entries when withForged is false.
// The per-run index makes this O(run length), not O(log length).
func (l *Log) Trace(run string, withForged bool) []*Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seq := l.byRun[run]
	out := make([]*Entry, 0, len(seq))
	for _, e := range seq {
		if e.Forged && !withForged {
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Runs returns the distinct non-empty run IDs appearing in the log, sorted.
func (l *Log) Runs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.byRun))
	for r := range l.byRun {
		if r != "" {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// Succ returns succ(t): the set of instances committed after id within the
// same run's trace (§II.A). Forged entries are excluded.
func (l *Log) Succ(id InstanceID) map[InstanceID]bool {
	l.mu.RLock()
	e, ok := l.byInst[id]
	l.mu.RUnlock()
	out := make(map[InstanceID]bool)
	if !ok {
		return out
	}
	for _, s := range l.Trace(e.Run, false) {
		if s.LSN > e.LSN {
			out[s.ID()] = true
		}
	}
	return out
}

// Precedes reports a ≺ b: a committed before b (§II.B). Unknown instances
// never precede anything.
func (l *Log) Precedes(a, b InstanceID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ea, oka := l.byInst[a]
	eb, okb := l.byInst[b]
	return oka && okb && ea.LSN < eb.LSN
}
