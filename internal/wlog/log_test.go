package wlog

import (
	"testing"
)

func mustAppend(t *testing.T, l *Log, e *Entry) {
	t.Helper()
	if _, err := l.Append(e); err != nil {
		t.Fatal(err)
	}
}

func TestFormatInstance(t *testing.T) {
	id := FormatInstance("r1", "t3", 2)
	if id != "r1/t3#2" {
		t.Errorf("id = %s", id)
	}
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	l := New()
	for i := 1; i <= 5; i++ {
		e := &Entry{Run: "r", Task: "t", Visit: i}
		lsn, err := l.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != i || e.LSN != i {
			t.Errorf("append %d: lsn = %d", i, lsn)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestAppendRejectsDuplicates(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r", Task: "t1", Visit: 1})
	if _, err := l.Append(&Entry{Run: "r", Task: "t1", Visit: 1}); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	// Same task, different visit is fine.
	mustAppend(t, l, &Entry{Run: "r", Task: "t1", Visit: 2})
}

func TestTraceAndRuns(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r2", Task: "t7", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "t2", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "evil", Visit: 1, Forged: true})

	tr := l.Trace("r1", false)
	if len(tr) != 2 || tr[0].Task != "t1" || tr[1].Task != "t2" {
		t.Errorf("trace = %v", tr)
	}
	if got := len(l.Trace("r1", true)); got != 3 {
		t.Errorf("trace with forged: %d entries, want 3", got)
	}
	runs := l.Runs()
	if len(runs) != 2 || runs[0] != "r1" || runs[1] != "r2" {
		t.Errorf("runs = %v", runs)
	}
}

func TestSucc(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r2", Task: "t7", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "t2", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "t3", Visit: 1})

	succ := l.Succ(FormatInstance("r1", "t1", 1))
	// succ is within the run's trace only (§II.A): t7 excluded.
	if len(succ) != 2 || !succ[FormatInstance("r1", "t2", 1)] || !succ[FormatInstance("r1", "t3", 1)] {
		t.Errorf("succ = %v", succ)
	}
	if len(l.Succ("r9/tx#1")) != 0 {
		t.Error("succ of unknown instance not empty")
	}
}

func TestPrecedes(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r2", Task: "t7", Visit: 1})

	a := FormatInstance("r1", "t1", 1)
	b := FormatInstance("r2", "t7", 1)
	if !l.Precedes(a, b) {
		t.Error("t1 should precede t7 (cross-workflow precedence, §II.B)")
	}
	if l.Precedes(b, a) {
		t.Error("precedence is asymmetric")
	}
	if l.Precedes(a, "r9/zz#1") {
		t.Error("unknown instance cannot be preceded")
	}
}

func TestEntriesIsCopy(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	es := l.Entries()
	es[0] = nil
	if got := l.Entries(); got[0] == nil {
		t.Error("Entries exposes internal slice")
	}
}

func TestGet(t *testing.T) {
	l := New()
	e := &Entry{Run: "r1", Task: "t1", Visit: 1}
	mustAppend(t, l, e)
	got, ok := l.Get(e.ID())
	if !ok || got != e {
		t.Error("Get did not return the appended entry")
	}
	if _, ok := l.Get("nope"); ok {
		t.Error("Get on unknown instance reported ok")
	}
}

func TestOnAppendBackfillAndOrder(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "t2", Visit: 1})

	var seen []int
	l.OnAppend(func(e *Entry) { seen = append(seen, e.LSN) })
	// Backfill: existing entries replayed in LSN order at subscription.
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("backfill delivered %v, want [1 2]", seen)
	}
	mustAppend(t, l, &Entry{Run: "r1", Task: "t3", Visit: 1})
	if len(seen) != 3 || seen[2] != 3 {
		t.Fatalf("live append delivered %v, want [1 2 3]", seen)
	}
}

func TestOnAppendMultipleHooks(t *testing.T) {
	l := New()
	var a, b int
	l.OnAppend(func(e *Entry) { a++ })
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	l.OnAppend(func(e *Entry) { b++ })
	mustAppend(t, l, &Entry{Run: "r1", Task: "t2", Visit: 1})
	if a != 2 || b != 2 {
		t.Fatalf("hook call counts a=%d b=%d, want 2 and 2", a, b)
	}
}
