package wlog

import (
	"fmt"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

func batchEntry(run string, task string, visit int) *Entry {
	return &Entry{
		Run:   run,
		Task:  wf.TaskID("t" + task),
		Visit: visit,
		Reads: map[data.Key]ReadObs{},
		Writes: map[data.Key]data.Value{
			data.Key("k" + task): data.Value(visit),
		},
	}
}

// AppendBatch must be observationally identical to a series of single
// Appends: same LSNs, same hook sequence, same indexes.
func TestAppendBatchMatchesSingleAppends(t *testing.T) {
	single := New()
	batched := New()
	var singleSeen, batchSeen []string
	single.OnAppend(func(e *Entry) { singleSeen = append(singleSeen, fmt.Sprintf("%s@%d", e.ID(), e.LSN)) })
	batched.OnAppend(func(e *Entry) { batchSeen = append(batchSeen, fmt.Sprintf("%s@%d", e.ID(), e.LSN)) })

	mk := func() []*Entry {
		return []*Entry{
			batchEntry("r1", "a", 1),
			batchEntry("r2", "b", 1),
			batchEntry("r1", "c", 1),
		}
	}
	for _, e := range mk() {
		if _, err := single.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	first, err := batched.AppendBatch(mk())
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first LSN = %d, want 1", first)
	}
	if len(singleSeen) != len(batchSeen) {
		t.Fatalf("hook sequences differ: %v vs %v", singleSeen, batchSeen)
	}
	for i := range singleSeen {
		if singleSeen[i] != batchSeen[i] {
			t.Fatalf("hook %d: %s vs %s", i, singleSeen[i], batchSeen[i])
		}
	}
	if single.Len() != batched.Len() {
		t.Fatalf("lengths differ: %d vs %d", single.Len(), batched.Len())
	}
	for _, e := range single.Entries() {
		b, ok := batched.Get(e.ID())
		if !ok || b.LSN != e.LSN {
			t.Fatalf("entry %s: batched LSN %v, want %d", e.ID(), b, e.LSN)
		}
	}
	if got := batched.Trace("r1", true); len(got) != 2 || got[0].LSN != 1 || got[1].LSN != 3 {
		t.Fatalf("per-run index wrong after batch: %v", got)
	}
}

// A duplicate anywhere in the batch must reject the whole batch atomically.
func TestAppendBatchAtomicOnDuplicate(t *testing.T) {
	l := New()
	if _, err := l.Append(batchEntry("r1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	hooks := 0
	l.OnAppend(func(*Entry) { hooks++ })
	hooks = 0 // catch-up replay of the existing entry does not count

	// Duplicate against a committed entry.
	_, err := l.AppendBatch([]*Entry{batchEntry("r1", "b", 1), batchEntry("r1", "a", 1)})
	if err == nil {
		t.Fatal("want duplicate error")
	}
	// Duplicate within the batch itself.
	_, err = l.AppendBatch([]*Entry{batchEntry("r1", "c", 1), batchEntry("r1", "c", 1)})
	if err == nil {
		t.Fatal("want intra-batch duplicate error")
	}
	if l.Len() != 1 {
		t.Fatalf("failed batches must append nothing; log has %d entries", l.Len())
	}
	if hooks != 0 {
		t.Fatalf("failed batches must not fire hooks; fired %d", hooks)
	}
	if first, err := l.AppendBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch = (%d, %v), want (0, nil)", first, err)
	}
}
