package wlog

import (
	"fmt"
	"sort"
)

// StampedEntry pairs a log entry with the global commit stamp its segment
// recorded. The paper notes (§II.A, footnote) that a distributed workflow
// system may store the log in segments; as long as commit times are
// distinguishable, the global log is the stamp-ordered merge.
type StampedEntry struct {
	// Stamp is the globally comparable commit time.
	Stamp float64
	// Entry is the committed execution. LSN is ignored on input; the
	// merge assigns fresh dense LSNs in stamp order.
	Entry *Entry
}

// MergeSegments reconstructs the global system log from per-node segments.
// Stamps must be unique across all segments (the paper's assumption that
// committing times are distinguishable); entries are copied, so the input
// segments remain untouched.
func MergeSegments(segments ...[]StampedEntry) (*Log, error) {
	var all []StampedEntry
	for i, seg := range segments {
		for j, se := range seg {
			if se.Entry == nil {
				return nil, fmt.Errorf("wlog: segment %d entry %d is nil", i, j)
			}
			all = append(all, se)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Stamp < all[j].Stamp })
	for i := 1; i < len(all); i++ {
		if all[i].Stamp == all[i-1].Stamp {
			return nil, fmt.Errorf("wlog: duplicate commit stamp %g (%s and %s)",
				all[i].Stamp, all[i-1].Entry.ID(), all[i].Entry.ID())
		}
	}
	merged := New()
	for _, se := range all {
		e := se.Entry
		cp := &Entry{
			Run:    e.Run,
			Task:   e.Task,
			Visit:  e.Visit,
			Forged: e.Forged,
			Reads:  e.Reads,
			Writes: e.Writes,
			Chosen: e.Chosen,
		}
		if _, err := merged.Append(cp); err != nil {
			return nil, fmt.Errorf("wlog: merge: %w", err)
		}
	}
	return merged, nil
}

// SegmentByRun splits a log into per-run segments stamped with the original
// LSNs — the shape a de-centralized deployment would persist, with each
// processing node holding the trace of the workflows it executed.
func SegmentByRun(l *Log) map[string][]StampedEntry {
	out := make(map[string][]StampedEntry)
	for _, e := range l.Entries() {
		out[e.Run] = append(out[e.Run], StampedEntry{Stamp: float64(e.LSN), Entry: e})
	}
	return out
}
