package wlog

import (
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

func stamped(stamp float64, run, task string, visit int) StampedEntry {
	return StampedEntry{
		Stamp: stamp,
		Entry: &Entry{
			Run:    run,
			Task:   wf.TaskID(task),
			Visit:  visit,
			Reads:  map[data.Key]ReadObs{},
			Writes: map[data.Key]data.Value{},
		},
	}
}

func TestMergeSegmentsOrdersByStamp(t *testing.T) {
	segA := []StampedEntry{stamped(1, "r1", "t1", 1), stamped(3, "r1", "t2", 1)}
	segB := []StampedEntry{stamped(2, "r2", "t7", 1), stamped(4, "r2", "t8", 1)}
	merged, err := MergeSegments(segA, segB)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range merged.Entries() {
		got = append(got, string(e.Task))
	}
	want := []string{"t1", "t7", "t2", "t8"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order %v, want %v", got, want)
		}
	}
	// Dense fresh LSNs.
	for i, e := range merged.Entries() {
		if e.LSN != i+1 {
			t.Errorf("entry %d has LSN %d", i, e.LSN)
		}
	}
}

func TestMergeSegmentsRejectsDuplicateStamps(t *testing.T) {
	segA := []StampedEntry{stamped(1, "r1", "t1", 1)}
	segB := []StampedEntry{stamped(1, "r2", "t7", 1)}
	if _, err := MergeSegments(segA, segB); err == nil {
		t.Fatal("duplicate stamps accepted")
	}
}

func TestMergeSegmentsRejectsNil(t *testing.T) {
	if _, err := MergeSegments([]StampedEntry{{Stamp: 1}}); err == nil {
		t.Fatal("nil entry accepted")
	}
}

func TestMergeSegmentsDoesNotMutateInput(t *testing.T) {
	se := stamped(5, "r1", "t1", 1)
	se.Entry.LSN = 99
	if _, err := MergeSegments([]StampedEntry{se}); err != nil {
		t.Fatal(err)
	}
	if se.Entry.LSN != 99 {
		t.Error("merge mutated the input entry")
	}
}

func TestSegmentByRunRoundTrip(t *testing.T) {
	l := New()
	mustAppend(t, l, &Entry{Run: "r1", Task: "t1", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r2", Task: "t7", Visit: 1})
	mustAppend(t, l, &Entry{Run: "r1", Task: "t2", Visit: 1})

	segs := SegmentByRun(l)
	if len(segs) != 2 || len(segs["r1"]) != 2 || len(segs["r2"]) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	merged, err := MergeSegments(segs["r1"], segs["r2"])
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != l.Len() {
		t.Fatalf("merged %d entries, want %d", merged.Len(), l.Len())
	}
	for i, e := range merged.Entries() {
		o := l.Entries()[i]
		if e.ID() != o.ID() || e.LSN != o.LSN {
			t.Errorf("entry %d: %s/%d != %s/%d", i, e.ID(), e.LSN, o.ID(), o.LSN)
		}
	}
}
