// Package rtsim validates the self-healing runtime's queueing discipline
// against the analytical STG model by driving the real selfheal.System — the
// real analyzer, the real repair engine, the real bounded queues — in
// virtual time: IDS alerts arrive as a Poisson process, and every SCAN and
// RECOVERY action consumes an exponential virtual duration with the same
// queue-length-dependent rates the CTMC assumes (μ_a = F(μ₁, a),
// ξ_r = G(ξ₁, r)).
//
// Unlike internal/sim, which simulates the transition rules directly, rtsim
// exercises the production code path end to end, so a divergence between the
// implementation's state machine and the model (for example in the
// full-buffer drain rule or the Theorem-4 gating) shows up as a loss or
// occupancy mismatch.
package rtsim

import (
	"fmt"
	"math/rand"

	"selfheal/internal/obs"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/stg"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Result aggregates one virtual-time run of the real system.
type Result struct {
	// Horizon is the simulated virtual time.
	Horizon float64
	// TimeNormal, TimeScan, TimeRecovery split the horizon by the
	// system's state.
	TimeNormal, TimeScan, TimeRecovery float64
	// TimeAlertFull is the time the alert buffer was full (arrivals in
	// this window are lost): the loss probability estimate.
	TimeAlertFull float64
	// Reported and Lost count alerts delivered to the system.
	Reported, Lost int
	// Runtime is the system's own accounting.
	Runtime selfheal.Metrics
}

// LossOccupancy returns the fraction of time the alert buffer was full.
func (r *Result) LossOccupancy() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return r.TimeAlertFull / r.Horizon
}

// LostFraction returns the fraction of delivered alerts that were dropped.
func (r *Result) LostFraction() float64 {
	if r.Reported == 0 {
		return 0
	}
	return float64(r.Lost) / float64(r.Reported)
}

// Run drives the real runtime for the given virtual horizon. The workload is
// a completed randomized scenario (seeded); alerts cycle over its malicious
// instances, so every analysis and repair is real work.
func Run(p stg.Params, horizon float64, seed int64) (*Result, error) {
	return RunObserved(p, horizon, seed, nil)
}

// RunObserved is Run with the observability layer wired in: the system, its
// engine and its log register their metrics in reg (see
// docs/OBSERVABILITY.md), and the driver accumulates the virtual-time
// occupancy sums (selfheal_time_*_seconds_total) whose ratios to the
// horizon are the measured π_N/π_S/π_R and loss-edge occupancy that
// `selfheal-sim -metrics` compares against the CTMC predictions. A nil
// registry degrades to Run.
func RunObserved(p stg.Params, horizon float64, seed int64, reg *obs.Registry) (*Result, error) {
	return run(p, horizon, seed, triage.Options{}, reg)
}

// RunTriaged drives the runtime with the streaming triage front-end enabled
// (docs/TRIAGE.md) under the same virtual-time discipline the CTMC assumes
// for the per-alert pipeline. With Coalesce on, one SCAN service drains the
// whole alert queue in a single batched pass charged at the degraded
// single-alert rate μ_a = F(μ₁, a) — the batched walk touches the same
// damage cones one alert's analysis would — and each additional cone the
// partition produced is charged one further exponential service at the base
// rate μ₁ (arrivals during those windows queue without preempting). The gap
// between RunTriaged's measured loss and the model's prediction for the
// same parameters is exactly the coalescing win: the CTMC charges one
// degraded service per alert, triage pays per cone.
func RunTriaged(p stg.Params, horizon float64, seed int64, opts triage.Options, reg *obs.Registry) (*Result, error) {
	return run(p, horizon, seed, opts, reg)
}

func run(p stg.Params, horizon float64, seed int64, opts triage.Options, reg *obs.Registry) (*Result, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("rtsim: horizon must be positive, got %g", horizon)
	}
	if _, err := stg.New(p); err != nil {
		return nil, err
	}
	f, g := p.F, p.G
	if f == nil {
		f = stg.DegradeLinear
	}
	if g == nil {
		g = stg.DegradeLinear
	}

	// A small attacked workload: its bad instances feed the alert stream.
	sc, err := attackedWorkload(seed)
	if err != nil {
		return nil, err
	}
	sys, err := selfheal.NewWithEngine(
		selfheal.Config{
			AlertBuf:         p.AlertBuf,
			RecoveryBuf:      p.RecoveryBuf,
			CoalesceAlerts:   opts.Coalesce,
			PrefilterCovered: opts.Prefilter,
			DedupeAlerts:     opts.Dedupe,
		},
		sc.Engine, sc.Specs)
	if err != nil {
		return nil, err
	}
	sys.Observe(reg)
	// Virtual-time occupancy sums; nil when reg is nil, and the nil-safe
	// obs primitives swallow the Adds.
	timeByClass := [3]*obs.Sum{
		stg.Normal:   reg.Sum(obs.MTimeNormalSeconds),
		stg.Scan:     reg.Sum(obs.MTimeScanSeconds),
		stg.Recovery: reg.Sum(obs.MTimeRecoverySeconds),
	}
	timeLossEdge := reg.Sum(obs.MTimeLossEdgeSeconds)

	rng := rand.New(rand.NewSource(seed))
	res := &Result{Horizon: horizon}
	clock := 0.0
	nextArrival := clock + rng.ExpFloat64()/p.Lambda
	badIdx := 0

	account := func(dt float64) {
		cls := sys.State()
		timeByClass[cls].Add(dt)
		switch cls {
		case stg.Normal:
			res.TimeNormal += dt
		case stg.Scan:
			res.TimeScan += dt
		case stg.Recovery:
			res.TimeRecovery += dt
		}
		if a, _ := sys.QueueLengths(); a == p.AlertBuf {
			res.TimeAlertFull += dt
			timeLossEdge.Add(dt)
		}
	}

	prevCones := 0
	for clock < horizon {
		// Determine the system's next action and its virtual duration.
		a, r := sys.QueueLengths()
		var rate float64
		scanAction := false
		switch {
		case r >= p.RecoveryBuf: // forced drain
			rate = g(p.Xi1, r)
		case a > 0: // scan
			rate = f(p.Mu1, a)
			scanAction = true
		case r > 0: // recovery
			rate = g(p.Xi1, r)
		default:
			// Idle: jump to the next arrival.
			dt := nextArrival - clock
			if clock+dt > horizon {
				account(horizon - clock)
				clock = horizon
				continue
			}
			account(dt)
			clock = nextArrival
			deliver(sys, sc, &badIdx, res)
			nextArrival = clock + rng.ExpFloat64()/p.Lambda
			continue
		}
		dur := rng.ExpFloat64() / rate
		end := clock + dur
		// An arrival during the service interval changes the state — and
		// with it which transition is enabled (recovery is disabled once
		// an alert is queued, §IV.C). Mirror the CTMC exactly: deliver
		// the alert and re-evaluate the action. Exponential
		// memorylessness makes abandoning the in-flight service
		// statistically identical to suspending it.
		if nextArrival < end && nextArrival < horizon {
			account(nextArrival - clock)
			clock = nextArrival
			deliver(sys, sc, &badIdx, res)
			nextArrival = clock + rng.ExpFloat64()/p.Lambda
			continue
		}
		if end > horizon {
			account(horizon - clock)
			clock = horizon
			break
		}
		account(end - clock)
		clock = end
		if err := sys.Tick(); err != nil {
			return nil, fmt.Errorf("rtsim: tick at t=%g: %w", clock, err)
		}
		// A coalesced SCAN pass already paid one degraded service; charge
		// each additional damage cone it produced a base-rate analysis.
		// Arrivals inside these windows queue without preempting — the
		// batched pass is one uninterruptible walk.
		if scanAction && opts.Coalesce {
			m := sys.Metrics()
			extra := m.ConesAnalyzed - prevCones - 1
			prevCones = m.ConesAnalyzed
			for ; extra > 0 && clock < horizon; extra-- {
				end := clock + rng.ExpFloat64()/p.Mu1
				for nextArrival < end && nextArrival < horizon {
					account(nextArrival - clock)
					clock = nextArrival
					deliver(sys, sc, &badIdx, res)
					nextArrival = clock + rng.ExpFloat64()/p.Lambda
				}
				if end > horizon {
					account(horizon - clock)
					clock = horizon
					break
				}
				account(end - clock)
				clock = end
			}
		}
	}
	res.Runtime = sys.Metrics()
	return res, nil
}

func deliver(sys *selfheal.System, sc *scenario.Scenario, badIdx *int, res *Result) {
	bad := sc.Bad[*badIdx%len(sc.Bad)]
	*badIdx++
	res.Reported++
	if !sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{bad}}) {
		res.Lost++
	}
}

func attackedWorkload(seed int64) (*scenario.Scenario, error) {
	cfg := scenario.RandomConfig{
		Runs:    2,
		Gen:     wf.GenConfig{Tasks: 8, Keys: 6, MaxReads: 2, BranchProb: 0.3},
		Attacks: 3,
		Forged:  1,
	}
	for attempt := int64(0); attempt < 20; attempt++ {
		sc, err := scenario.Random(seed+attempt*7919, cfg, true)
		if err != nil {
			return nil, err
		}
		if len(sc.Bad) > 0 {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("rtsim: no committed attacks for seed %d", seed)
}
