package rtsim

import (
	"math"
	"testing"

	"selfheal/internal/stg"
	"selfheal/internal/triage"
)

func TestRunValidates(t *testing.T) {
	if _, err := Run(stg.Square(1, 5, 6, 4), 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(stg.Square(1, 0, 6, 4), 10, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTimeAccounting(t *testing.T) {
	res, err := Run(stg.Square(1, 5, 6, 4), 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := res.TimeNormal + res.TimeScan + res.TimeRecovery
	if math.Abs(total-res.Horizon) > 1e-9 {
		t.Errorf("state times sum to %g of %g", total, res.Horizon)
	}
	if res.Reported == 0 {
		t.Error("no alerts delivered in 500 time units at λ=1")
	}
	if res.Runtime.AlertsAnalyzed == 0 || res.Runtime.UnitsExecuted == 0 {
		t.Errorf("real recovery work never ran: %+v", res.Runtime)
	}
}

// TestRealRuntimeMatchesCTMC is the integration headline: the production
// state machine under Poisson alerts must reproduce the analytical model's
// occupancy and loss within statistical tolerance.
func TestRealRuntimeMatchesCTMC(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon virtual-time simulation")
	}
	cases := []struct {
		name string
		p    stg.Params
	}{
		{"healthy", stg.Square(1, 6, 8, 4)},
		{"overloaded", stg.Square(4, 6, 8, 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := stg.New(c.p)
			if err != nil {
				t.Fatal(err)
			}
			met, err := m.SteadyMetrics()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(c.p, 20000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.TimeNormal/res.Horizon, met.PNormal; math.Abs(got-want) > 0.03 {
				t.Errorf("P(NORMAL): runtime %g vs model %g", got, want)
			}
			if got, want := res.LossOccupancy(), met.Loss; math.Abs(got-want) > 0.03 {
				t.Errorf("loss occupancy: runtime %g vs model %g", got, want)
			}
			// PASTA: dropped fraction ≈ loss occupancy.
			if math.Abs(res.LostFraction()-res.LossOccupancy()) > 0.03 {
				t.Errorf("lost fraction %g vs occupancy %g", res.LostFraction(), res.LossOccupancy())
			}
		})
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	p := stg.Square(2, 5, 6, 3)
	a, err := Run(p, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reported != b.Reported || a.TimeScan != b.TimeScan {
		t.Error("same seed diverged")
	}
}

// TestCoalescedTriageBeatsCTMCLoss is the §V validation of the triage
// front-end: under overload parameters where the analytical CTMC (which
// models the per-alert pipeline) predicts substantial alert loss, the same
// runtime with cone coalescing, covered-alert prefiltering and dedupe on
// loses a decisively smaller fraction of arrivals — each SCAN service
// drains the whole queue instead of one alert.
func TestCoalescedTriageBeatsCTMCLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon virtual-time simulation")
	}
	p := stg.Square(4, 6, 8, 4) // overloaded: the model predicts real loss
	m, err := stg.New(p)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if met.Loss < 0.02 {
		t.Fatalf("test premise broken: model loss %g too small to measure against", met.Loss)
	}
	res, err := RunTriaged(p, 20000, 7, triage.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model loss %.4f; triaged lost fraction %.4f (reported %d, lost %d)",
		met.Loss, res.LostFraction(), res.Reported, res.Lost)
	t.Logf("alerts analyzed %d, prefiltered %d, deduped %d, cones %d",
		res.Runtime.AlertsAnalyzed, res.Runtime.AlertsPrefiltered,
		res.Runtime.AlertsDeduped, res.Runtime.ConesAnalyzed)
	if res.LostFraction() > met.Loss/2 {
		t.Errorf("triaged loss %g did not beat the un-coalesced CTMC prediction %g by 2x",
			res.LostFraction(), met.Loss)
	}
	if res.Runtime.ConesAnalyzed == 0 {
		t.Error("no cones analyzed")
	}
	handled := res.Runtime.AlertsAnalyzed + res.Runtime.AlertsPrefiltered + res.Runtime.AlertsDeduped
	if handled <= res.Runtime.ConesAnalyzed {
		t.Errorf("no coalescing fold: %d alerts handled across %d analyses", handled, res.Runtime.ConesAnalyzed)
	}

	// Same seed, same virtual history: the triaged driver stays
	// deterministic.
	res2, err := RunTriaged(p, 20000, 7, triage.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reported != res.Reported || res2.TimeScan != res.TimeScan {
		t.Error("same seed diverged under triage")
	}
}
