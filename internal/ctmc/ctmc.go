// Package ctmc implements the finite-state Continuous-Time Markov Chain
// analysis of §V of the paper: steady-state probabilities (Equation 1,
// π·Q = 0 with Σπ = 1), transient state probabilities (Equation 2,
// dπ/dt = π·Q) via uniformization, and the cumulative time spent in each
// state (Equation 3) via the integrated uniformization series. A fixed-step
// RK4 integrator provides an independent cross-check of the uniformization
// results.
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/mat"
)

// Chain is a finite-state CTMC defined by its generator matrix.
type Chain struct {
	q *mat.Dense
	n int
	// uniformization cache
	unifRate float64
	unifP    *mat.Dense
}

// rateTolerance bounds the acceptable row-sum deviation of a generator.
const rateTolerance = 1e-9

// New validates q as a CTMC generator (square, non-negative off-diagonal
// rates, rows summing to zero) and returns the chain.
func New(q *mat.Dense) (*Chain, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("ctmc: generator must be square, got %dx%d", q.Rows(), q.Cols())
	}
	n := q.Rows()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := q.At(i, j)
			if i != j && v < 0 {
				return nil, fmt.Errorf("ctmc: negative rate q[%d,%d] = %g", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum) > rateTolerance {
			return nil, fmt.Errorf("ctmc: row %d sums to %g, want 0", i, sum)
		}
	}
	return &Chain{q: q.Clone(), n: n}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// Generator returns a copy of the generator matrix.
func (c *Chain) Generator() *mat.Dense { return c.q.Clone() }

// SteadyState solves Equation 1: π·Q = 0 with Σπ = 1. The chain must be
// irreducible for the solution to be unique.
func (c *Chain) SteadyState() ([]float64, error) {
	pi, err := mat.NullVectorStochastic(c.q)
	if err != nil {
		return nil, fmt.Errorf("ctmc: %w", err)
	}
	return pi, nil
}

// uniformize lazily builds the uniformized DTMC P = I + Q/Λ with
// Λ slightly above the largest exit rate.
func (c *Chain) uniformize() (float64, *mat.Dense) {
	if c.unifP != nil {
		return c.unifRate, c.unifP
	}
	var maxExit float64
	for i := 0; i < c.n; i++ {
		if v := -c.q.At(i, i); v > maxExit {
			maxExit = v
		}
	}
	rate := maxExit * 1.02
	if rate == 0 {
		rate = 1 // absorbing-everything chain: P = I
	}
	p := mat.Identity(c.n)
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			p.Add(i, j, c.q.At(i, j)/rate)
		}
	}
	c.unifRate, c.unifP = rate, p
	return rate, p
}

// Transient solves Equation 2: the state distribution at time t starting
// from pi0, computed by uniformization with truncation error below eps
// (default 1e-12).
func (c *Chain) Transient(pi0 []float64, t, eps float64) ([]float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, errors.New("ctmc: negative time")
	}
	rate, p := c.uniformize()
	w := mat.PoissonWeights(rate*t, eps)
	out := make([]float64, c.n)
	cur := append([]float64(nil), pi0...)
	for k, wk := range w {
		if k > 0 {
			cur = mat.VecMul(cur, p)
		}
		mat.AXPY(wk, cur, out)
	}
	normalize(out)
	return out, nil
}

// TransientSeries evaluates Transient at each time point.
func (c *Chain) TransientSeries(pi0 []float64, times []float64, eps float64) ([][]float64, error) {
	out := make([][]float64, len(times))
	for i, t := range times {
		pi, err := c.Transient(pi0, t, eps)
		if err != nil {
			return nil, err
		}
		out[i] = pi
	}
	return out, nil
}

// CumulativeTime solves Equation 3: l(t) = ∫₀ᵗ π(s) ds, the expected time
// spent in each state during [0, t), using the integrated uniformization
// series l(t) = (1/Λ) Σ_k (1 − Σ_{j≤k} w_j) π₀ Pᵏ.
func (c *Chain) CumulativeTime(pi0 []float64, t, eps float64) ([]float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, errors.New("ctmc: negative time")
	}
	if eps <= 0 {
		eps = 1e-12
	}
	rate, p := c.uniformize()
	// Tighter truncation: the cumulative series converges more slowly
	// than the point series.
	w := mat.PoissonWeights(rate*t, eps*1e-3)
	out := make([]float64, c.n)
	cur := append([]float64(nil), pi0...)
	cum := 0.0
	for k, wk := range w {
		if k > 0 {
			cur = mat.VecMul(cur, p)
		}
		cum += wk
		coeff := (1 - cum) / rate
		if coeff <= 0 {
			break
		}
		mat.AXPY(coeff, cur, out)
	}
	// The exact coefficients sum to t; rescale the truncated series so
	// Σ l_i(t) = t holds to machine precision.
	if s := mat.Sum(out); s > 0 {
		scale := t / s
		for i := range out {
			out[i] *= scale
		}
	}
	return out, nil
}

// MeanFirstPassage returns, for every state, the expected time until the
// chain first enters any target state. Target states report zero. The
// standard absorption argument gives the linear system
//
//	Σ_j q_ij·h_j = −1   for non-target i,   h_t = 0 for targets,
//
// solved by Gaussian elimination over the non-target block. States that
// cannot reach a target make the system singular, which is reported as an
// error.
func (c *Chain) MeanFirstPassage(target []bool) ([]float64, error) {
	if len(target) != c.n {
		return nil, fmt.Errorf("ctmc: target length %d != %d states", len(target), c.n)
	}
	var free []int
	idx := make([]int, c.n)
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < c.n; i++ {
		if !target[i] {
			idx[i] = len(free)
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return make([]float64, c.n), nil
	}
	a := mat.NewDense(len(free), len(free))
	b := make([]float64, len(free))
	for r, i := range free {
		b[r] = -1
		for j := 0; j < c.n; j++ {
			if cidx := idx[j]; cidx >= 0 {
				a.Set(r, cidx, c.q.At(i, j))
			}
		}
	}
	h, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: first passage: %w", err)
	}
	out := make([]float64, c.n)
	for r, i := range free {
		if h[r] < 0 {
			return nil, fmt.Errorf("ctmc: negative hitting time %g at state %d", h[r], i)
		}
		out[i] = h[r]
	}
	return out, nil
}

// TransientRK4 integrates Equation 2 with classical RK4 as an independent
// cross-check of the uniformization solver.
func (c *Chain) TransientRK4(pi0 []float64, t float64, steps int) ([]float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return nil, err
	}
	deriv := func(_ float64, y, dst []float64) {
		r := mat.VecMul(y, c.q)
		copy(dst, r)
	}
	out := mat.RK4(deriv, pi0, 0, t, steps)
	normalize(out)
	return out, nil
}

func (c *Chain) checkDist(pi0 []float64) error {
	if len(pi0) != c.n {
		return fmt.Errorf("ctmc: distribution length %d != %d states", len(pi0), c.n)
	}
	var sum float64
	for i, v := range pi0 {
		if v < 0 {
			return fmt.Errorf("ctmc: negative probability %g at state %d", v, i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ctmc: initial distribution sums to %g", sum)
	}
	return nil
}

func normalize(x []float64) {
	var sum float64
	for i, v := range x {
		if v < 0 && v > -1e-12 {
			x[i] = 0
			continue
		}
		sum += v
	}
	if sum > 0 {
		for i := range x {
			x[i] /= sum
		}
	}
}
