package ctmc

import (
	"math"
	"math/rand"
	"testing"

	"selfheal/internal/mat"
)

// twoState returns the generator of a two-state chain with rates a (0→1)
// and b (1→0), whose transient solution is known in closed form.
func twoState(a, b float64) *mat.Dense {
	return mat.NewDenseFrom([][]float64{
		{-a, a},
		{b, -b},
	})
}

func TestNewValidates(t *testing.T) {
	if _, err := New(mat.NewDense(2, 3)); err == nil {
		t.Error("non-square generator accepted")
	}
	bad := mat.NewDenseFrom([][]float64{{-1, 1}, {2, -1}})
	if _, err := New(bad); err == nil {
		t.Error("non-zero row sum accepted")
	}
	neg := mat.NewDenseFrom([][]float64{{1, -1}, {2, -2}})
	if _, err := New(neg); err == nil {
		t.Error("negative off-diagonal rate accepted")
	}
	if _, err := New(twoState(1, 2)); err != nil {
		t.Errorf("valid generator rejected: %v", err)
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	c, err := New(twoState(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if mat.L1Dist(pi, []float64{0.6, 0.4}) > 1e-12 {
		t.Errorf("π = %v, want [0.6 0.4]", pi)
	}
}

func TestTransientClosedForm(t *testing.T) {
	// Two-state chain: p₀(t) = b/(a+b) + a/(a+b)·e^{-(a+b)t}.
	a, b := 2.0, 3.0
	c, err := New(twoState(a, b))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 0.1, 0.5, 1, 2, 10} {
		pi, err := c.Transient([]float64{1, 0}, tm, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*tm)
		if math.Abs(pi[0]-want) > 1e-9 {
			t.Errorf("t=%g: p0 = %g, want %g", tm, pi[0], want)
		}
	}
}

func TestTransientMatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		q := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				r := rng.Float64() * 5
				q.Set(i, j, r)
				sum += r
			}
			q.Set(i, i, -sum)
		}
		c, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		pi0 := make([]float64, n)
		pi0[0] = 1
		tm := 0.5 + rng.Float64()*2
		u, err := c.Transient(pi0, tm, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := c.TransientRK4(pi0, tm, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if d := mat.L1Dist(u, r4); d > 1e-6 {
			t.Errorf("trial %d: uniformization vs RK4 distance %g", trial, d)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c, err := New(twoState(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Transient([]float64{1, 0}, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if mat.L1Dist(pi, ss) > 1e-9 {
		t.Errorf("π(100) = %v, steady = %v", pi, ss)
	}
}

func TestTransientSeriesMonotoneTimes(t *testing.T) {
	c, err := New(twoState(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.5, 1, 2}
	series, err := c.TransientSeries([]float64{1, 0}, times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(times) {
		t.Fatalf("series has %d points", len(series))
	}
	if series[0][0] != 1 {
		t.Errorf("π(0) = %v, want initial", series[0])
	}
	// p0 decays monotonically toward 0.5 for the symmetric chain.
	for i := 1; i < len(series); i++ {
		if series[i][0] >= series[i-1][0] {
			t.Errorf("p0 not decaying: %v", series)
		}
	}
}

func TestCumulativeTimeClosedForm(t *testing.T) {
	// ∫₀ᵗ p₀(s) ds = b/(a+b)·t + a/(a+b)²·(1 − e^{-(a+b)t}).
	a, b := 2.0, 3.0
	c, err := New(twoState(a, b))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.5, 1, 5, 20} {
		l, err := c.CumulativeTime([]float64{1, 0}, tm, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		s := a + b
		want := b/s*tm + a/(s*s)*(1-math.Exp(-s*tm))
		if math.Abs(l[0]-want) > 1e-6*tm {
			t.Errorf("t=%g: l0 = %g, want %g", tm, l[0], want)
		}
		if math.Abs(mat.Sum(l)-tm) > 1e-9 {
			t.Errorf("t=%g: Σl = %g, want %g", tm, mat.Sum(l), tm)
		}
	}
}

func TestCumulativeTimeViaQuadrature(t *testing.T) {
	// Independent check: trapezoid-integrate the transient solution.
	c, err := New(twoState(0.7, 1.9))
	if err != nil {
		t.Fatal(err)
	}
	pi0 := []float64{0.3, 0.7}
	const tm = 3.0
	const steps = 3000
	acc := make([]float64, 2)
	prev, err := c.Transient(pi0, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	h := tm / steps
	for i := 1; i <= steps; i++ {
		cur, err := c.Transient(pi0, h*float64(i), 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for j := range acc {
			acc[j] += h / 2 * (prev[j] + cur[j])
		}
		prev = cur
	}
	l, err := c.CumulativeTime(pi0, tm, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.L1Dist(l, acc); d > 1e-5 {
		t.Errorf("cumulative vs quadrature distance %g (%v vs %v)", d, l, acc)
	}
}

func TestBadInputs(t *testing.T) {
	c, err := New(twoState(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transient([]float64{1}, 1, 0); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if _, err := c.Transient([]float64{0.5, 0.4}, 1, 0); err == nil {
		t.Error("non-normalized distribution accepted")
	}
	if _, err := c.Transient([]float64{1, 0}, -1, 0); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.CumulativeTime([]float64{-1, 2}, 1, 0); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestGeneratorReturnsCopy(t *testing.T) {
	c, err := New(twoState(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := c.Generator()
	g.Set(0, 0, 99)
	if c.Generator().At(0, 0) == 99 {
		t.Error("Generator exposes internal matrix")
	}
	if c.N() != 2 {
		t.Errorf("N = %d", c.N())
	}
}

func TestMeanFirstPassageTwoState(t *testing.T) {
	// From state 0 with exit rate a to target state 1: E[T] = 1/a.
	c, err := New(twoState(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.MeanFirstPassage([]bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-0.5) > 1e-12 || h[1] != 0 {
		t.Errorf("h = %v, want [0.5 0]", h)
	}
}

func TestMeanFirstPassageBirthDeath(t *testing.T) {
	// Pure birth chain 0→1→2 with rate 1 each: E[T₀→2] = 2.
	q := mat.NewDenseFrom([][]float64{
		{-1, 1, 0},
		{0, -1, 1},
		{0, 0, 0},
	})
	c, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.MeanFirstPassage([]bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-2) > 1e-12 || math.Abs(h[1]-1) > 1e-12 {
		t.Errorf("h = %v, want [2 1 0]", h)
	}
}

func TestMeanFirstPassageMatchesSimulationShape(t *testing.T) {
	// M/M/1/3: passage 0→3 must exceed passage 1→3.
	q := mat.NewDense(4, 4)
	for i := 0; i < 3; i++ {
		q.Add(i, i+1, 1)
		q.Add(i, i, -1)
	}
	for i := 1; i <= 3; i++ {
		q.Add(i, i-1, 2)
		q.Add(i, i, -2)
	}
	c, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.MeanFirstPassage([]bool{false, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !(h[0] > h[1] && h[1] > h[2] && h[2] > 0) {
		t.Errorf("hitting times not monotone: %v", h)
	}
}

func TestMeanFirstPassageErrors(t *testing.T) {
	c, err := New(twoState(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MeanFirstPassage([]bool{true}); err == nil {
		t.Error("wrong-length target accepted")
	}
	// All-target: zero vector.
	h, err := c.MeanFirstPassage([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("all-target h = %v", h)
	}
	// Unreachable target: state 1 absorbs, target is state 0 ⇒ from
	// state 1 the target is unreachable and the system is singular.
	q := mat.NewDenseFrom([][]float64{{-1, 1}, {0, 0}})
	c2, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.MeanFirstPassage([]bool{true, false}); err == nil {
		t.Error("unreachable target accepted")
	}
}
