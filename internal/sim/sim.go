// Package sim is a discrete-event simulator of the attack-recovery system's
// queueing semantics (§IV.C–E). It simulates the same transition rules the
// STG model encodes analytically — Poisson alert arrivals, exponential scan
// and recovery service times with queue-length-dependent rates, the blocked
// analyzer at a full recovery buffer, and alert loss at a full alert buffer
// — and estimates state occupancy, loss probability and queue lengths by
// time averaging. Tests and benchmarks cross-validate the CTMC solutions of
// §V against these estimates.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"selfheal/internal/stg"
)

// Result aggregates one simulation.
type Result struct {
	// Horizon is the simulated time.
	Horizon float64
	// TimeNormal, TimeScan, TimeRecovery split the horizon by class.
	TimeNormal, TimeScan, TimeRecovery float64
	// TimeLossEdge is the time spent with a full alert buffer.
	TimeLossEdge float64
	// TimeRecoveryFull is the time spent with a full recovery buffer.
	TimeRecoveryFull float64
	// ArrivalsTotal and ArrivalsLost count IDS alerts.
	ArrivalsTotal, ArrivalsLost int
	// AlertArea and RecoveryArea are ∫queue·dt, for expected lengths.
	AlertArea, RecoveryArea float64
	// StateTime maps (alerts, recovery) to occupancy time.
	StateTime map[stg.State]float64
}

// Metrics converts the time averages into the same observables the STG
// model computes analytically.
func (r *Result) Metrics() stg.Metrics {
	h := r.Horizon
	if h == 0 {
		return stg.Metrics{}
	}
	return stg.Metrics{
		PNormal:      r.TimeNormal / h,
		PScan:        r.TimeScan / h,
		PRecovery:    r.TimeRecovery / h,
		Loss:         r.TimeLossEdge / h,
		RecoveryFull: r.TimeRecoveryFull / h,
		EAlerts:      r.AlertArea / h,
		ERecovery:    r.RecoveryArea / h,
	}
}

// LostFraction returns the fraction of arrivals that were dropped.
func (r *Result) LostFraction() float64 {
	if r.ArrivalsTotal == 0 {
		return 0
	}
	return float64(r.ArrivalsLost) / float64(r.ArrivalsTotal)
}

// Run simulates the system for the given horizon starting from the NORMAL
// state (empty queues).
func Run(p stg.Params, horizon float64, rng *rand.Rand) (*Result, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %g", horizon)
	}
	if rng == nil {
		return nil, fmt.Errorf("sim: nil rng")
	}
	// Validate parameters by building the model once.
	if _, err := stg.New(p); err != nil {
		return nil, err
	}
	f, g := p.F, p.G
	if f == nil {
		f = stg.DegradeLinear
	}
	if g == nil {
		g = stg.DegradeLinear
	}

	res := &Result{Horizon: horizon, StateTime: make(map[stg.State]float64)}
	var a, r int // queue lengths
	t := 0.0
	exp := func(rate float64) float64 {
		return rng.ExpFloat64() / rate
	}
	for t < horizon {
		// Enabled transitions and their rates, mirroring stg.New.
		type trans struct {
			rate  float64
			apply func()
		}
		var ts []trans
		if p.Lambda > 0 {
			ts = append(ts, trans{p.Lambda, func() {
				res.ArrivalsTotal++
				if a < p.AlertBuf {
					a++
				} else {
					res.ArrivalsLost++
				}
			}})
		}
		if a > 0 && r < p.RecoveryBuf {
			ts = append(ts, trans{f(p.Mu1, a), func() { a--; r++ }})
		}
		if r > 0 && (a == 0 || r == p.RecoveryBuf) {
			ts = append(ts, trans{g(p.Xi1, r), func() { r-- }})
		}
		if len(ts) == 0 {
			// Absorbed (λ=0 and empty queues): spend the rest of the
			// horizon here.
			accumulate(res, a, r, horizon-t, p)
			t = horizon
			break
		}
		var total float64
		for _, tr := range ts {
			total += tr.rate
		}
		dwell := exp(total)
		if t+dwell > horizon {
			accumulate(res, a, r, horizon-t, p)
			t = horizon
			break
		}
		accumulate(res, a, r, dwell, p)
		t += dwell
		// Pick the transition proportionally to its rate.
		u := rng.Float64() * total
		for _, tr := range ts {
			if u < tr.rate {
				tr.apply()
				break
			}
			u -= tr.rate
		}
	}
	return res, nil
}

func accumulate(res *Result, a, r int, dt float64, p stg.Params) {
	if dt <= 0 {
		return
	}
	s := stg.State{Alerts: a, Recovery: r}
	res.StateTime[s] += dt
	switch s.Classify() {
	case stg.Normal:
		res.TimeNormal += dt
	case stg.Scan:
		res.TimeScan += dt
	case stg.Recovery:
		res.TimeRecovery += dt
	}
	if a == p.AlertBuf {
		res.TimeLossEdge += dt
	}
	if r == p.RecoveryBuf {
		res.TimeRecoveryFull += dt
	}
	res.AlertArea += float64(a) * dt
	res.RecoveryArea += float64(r) * dt
}

// Distribution returns the time-average occupancy as a distribution over the
// given model's state indexing, suitable for direct comparison with the
// analytic steady state.
func (r *Result) Distribution(m *stg.Model) []float64 {
	pi := make([]float64, m.N())
	for s, dt := range r.StateTime {
		pi[m.Index(s.Alerts, s.Recovery)] = dt / r.Horizon
	}
	return pi
}

// TotalVariation returns ½·Σ|a_i − b_i|, the standard distance between two
// distributions.
func TotalVariation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sim: distribution length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / 2
}
