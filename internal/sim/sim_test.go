package sim

import (
	"math"
	"math/rand"
	"testing"

	"selfheal/internal/stg"
)

func TestRunValidatesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(stg.Square(1, 15, 20, 4), 0, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(stg.Square(1, 15, 20, 4), 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Run(stg.Square(1, 0, 20, 4), 10, rng); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTimeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := Run(stg.Square(1, 15, 20, 5), 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TimeNormal + res.TimeScan + res.TimeRecovery; math.Abs(got-res.Horizon) > 1e-9 {
		t.Errorf("class times sum to %g, want %g", got, res.Horizon)
	}
	var total float64
	for _, dt := range res.StateTime {
		total += dt
	}
	if math.Abs(total-res.Horizon) > 1e-9 {
		t.Errorf("state times sum to %g", total)
	}
	if res.ArrivalsTotal == 0 {
		t.Error("no arrivals simulated in 200 time units at λ=1")
	}
}

func TestNoArrivalsStaysNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res, err := Run(stg.Square(0, 15, 20, 5), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeNormal != res.Horizon {
		t.Errorf("λ=0 spent %g NORMAL of %g", res.TimeNormal, res.Horizon)
	}
	if res.ArrivalsTotal != 0 || res.ArrivalsLost != 0 {
		t.Error("λ=0 produced arrivals")
	}
}

// TestMatchesCTMCSteadyState is the headline validation: the long-run
// simulated occupancy must agree with the analytic steady state of the same
// parameters, for both a healthy and an overloaded configuration.
func TestMatchesCTMCSteadyState(t *testing.T) {
	cases := []struct {
		name string
		p    stg.Params
	}{
		{"good", stg.Square(1, 15, 20, 8)},
		{"overloaded", stg.Square(4, 15, 20, 8)},
		{"poor", stg.Square(1, 2, 3, 8)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := stg.New(c.p)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := m.SteadyState()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			res, err := Run(c.p, 60000, rng)
			if err != nil {
				t.Fatal(err)
			}
			simPi := res.Distribution(m)
			if tv := TotalVariation(simPi, ss); tv > 0.02 {
				t.Errorf("total variation sim vs CTMC = %g, want < 0.02", tv)
			}
			am, sm := m.MetricsOf(ss), res.Metrics()
			if math.Abs(am.Loss-sm.Loss) > 0.02 {
				t.Errorf("loss: analytic %g vs simulated %g", am.Loss, sm.Loss)
			}
			if math.Abs(am.PNormal-sm.PNormal) > 0.02 {
				t.Errorf("P(NORMAL): analytic %g vs simulated %g", am.PNormal, sm.PNormal)
			}
			if math.Abs(am.EAlerts-sm.EAlerts) > 0.3 {
				t.Errorf("E[alerts]: analytic %g vs simulated %g", am.EAlerts, sm.EAlerts)
			}
		})
	}
}

// TestLostFractionTracksEdgeOccupancy: by PASTA, the fraction of dropped
// Poisson arrivals equals the loss-edge occupancy in the long run.
func TestLostFractionTracksEdgeOccupancy(t *testing.T) {
	p := stg.Square(3, 4, 5, 4)
	rng := rand.New(rand.NewSource(7))
	res, err := Run(p, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	met := res.Metrics()
	if math.Abs(res.LostFraction()-met.Loss) > 0.02 {
		t.Errorf("lost fraction %g vs edge occupancy %g (PASTA)", res.LostFraction(), met.Loss)
	}
	if res.ArrivalsLost == 0 {
		t.Error("overloaded system lost no arrivals")
	}
}

// TestDeterministicPerSeed: the simulator is reproducible.
func TestDeterministicPerSeed(t *testing.T) {
	p := stg.Square(1, 15, 20, 5)
	a, err := Run(p, 500, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, 500, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.ArrivalsTotal != b.ArrivalsTotal || a.TimeNormal != b.TimeNormal {
		t.Error("same seed produced different simulations")
	}
}

func TestTotalVariationBasics(t *testing.T) {
	if tv := TotalVariation([]float64{1, 0}, []float64{0, 1}); tv != 1 {
		t.Errorf("disjoint distributions: tv = %g, want 1", tv)
	}
	if tv := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); tv != 0 {
		t.Errorf("identical distributions: tv = %g, want 0", tv)
	}
}
