package selfheal

import (
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/stg"
)

// sysObs is the runtime's instrumentation. The zero value is "off": every
// metric pointer is nil and the nil-safe obs primitives swallow all
// updates, so an uninstrumented System pays only the enabled check on the
// paths that need a time.Now or a State() computation.
type sysObs struct {
	enabled bool

	reported, lost, analyzed    *obs.Counter
	units, normalSteps          *obs.Counter
	concurrentSteps, eagerUnit  *obs.Counter
	undone, redone, newExec     *obs.Counter
	cones, prefiltered, deduped *obs.Counter
	coneSize, coalesceRatio     *obs.Histogram

	// ticks counts processed ticks per state class, indexed by stg.Class.
	ticks [3]*obs.Counter
	// dwell observes consecutive ticks spent in a state before leaving it.
	dwell [3]*obs.Histogram

	alertDepth, recoveryDepth, state *obs.Gauge
	transitions                      *obs.Counter

	analyzeSeconds                  *obs.Histogram
	repairSeconds, repairAnalyze    *obs.Histogram
	repairUndo, repairRedo          *obs.Histogram
	repairComponents, repairWorkers *obs.Histogram
	prevState                       stg.Class
	ticksInState                    int64
}

// Observe wires the runtime, its engine and its log into reg — the metric
// catalog is docs/OBSERVABILITY.md. Call it before driving the system; a
// nil registry leaves instrumentation off (the default).
func (s *System) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.eng.Observe(reg)
	s.eng.Log().Observe(reg)
	s.o = sysObs{
		enabled:         true,
		reported:        reg.Counter(obs.MAlertsReported),
		lost:            reg.Counter(obs.MAlertsLost),
		analyzed:        reg.Counter(obs.MAlertsAnalyzed),
		units:           reg.Counter(obs.MUnitsExecuted),
		normalSteps:     reg.Counter(obs.MNormalSteps),
		concurrentSteps: reg.Counter(obs.MConcurrentNormalSteps),
		eagerUnit:       reg.Counter(obs.MEagerUnits),
		undone:          reg.Counter(obs.MUndone),
		redone:          reg.Counter(obs.MRedone),
		newExec:         reg.Counter(obs.MNewExecuted),
		cones:           reg.Counter(obs.MTriageCones),
		prefiltered:     reg.Counter(obs.MTriagePrefilterHits),
		deduped:         reg.Counter(obs.MTriageDeduped),
		coneSize:        reg.Histogram(obs.MTriageConeSize, obs.TickBuckets),
		coalesceRatio:   reg.Histogram(obs.MTriageCoalesceRatio, obs.TickBuckets),
		ticks: [3]*obs.Counter{
			stg.Normal:   reg.Counter(obs.MTicksNormal),
			stg.Scan:     reg.Counter(obs.MTicksScan),
			stg.Recovery: reg.Counter(obs.MTicksRecovery),
		},
		dwell: [3]*obs.Histogram{
			stg.Normal:   reg.Histogram(obs.MDwellNormalTicks, obs.TickBuckets),
			stg.Scan:     reg.Histogram(obs.MDwellScanTicks, obs.TickBuckets),
			stg.Recovery: reg.Histogram(obs.MDwellRecoveryTicks, obs.TickBuckets),
		},
		alertDepth:       reg.Gauge(obs.MAlertQueueDepth),
		recoveryDepth:    reg.Gauge(obs.MRecoveryQueueDepth),
		state:            reg.Gauge(obs.MState),
		transitions:      reg.Counter(obs.MStateTransitions),
		analyzeSeconds:   reg.Histogram(obs.MAnalyzeSeconds, obs.LatencyBuckets),
		repairSeconds:    reg.Histogram(obs.MRepairSeconds, obs.LatencyBuckets),
		repairAnalyze:    reg.Histogram(obs.MRepairAnalyzeSeconds, obs.LatencyBuckets),
		repairUndo:       reg.Histogram(obs.MRepairUndoSeconds, obs.LatencyBuckets),
		repairRedo:       reg.Histogram(obs.MRepairRedoSeconds, obs.LatencyBuckets),
		repairComponents: reg.Histogram(obs.MRepairComponents, obs.TickBuckets),
		repairWorkers:    reg.Histogram(obs.MRepairWorkers, obs.TickBuckets),
		prevState:        s.State(),
	}
	s.o.state.Set(int64(s.o.prevState))
	s.o.alertDepth.Set(int64(len(s.alertQ)))
	s.o.recoveryDepth.Set(int64(len(s.recoveryQ)))
}

// now returns the wall clock only when instrumentation is on, so the
// uninstrumented hot paths never call time.Now.
func (o *sysObs) now() time.Time {
	if !o.enabled {
		return time.Time{}
	}
	return time.Now()
}

// observeLatency records the elapsed time since a now() stamp.
func (o *sysObs) observeLatency(h *obs.Histogram, start time.Time) {
	if !o.enabled {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// queues refreshes the depth gauges (STG coordinates a and r).
func (o *sysObs) queues(alerts, units int) {
	o.alertDepth.Set(int64(alerts))
	o.recoveryDepth.Set(int64(units))
}

// checkState records a NORMAL/SCAN/RECOVERY transition: the dwell time (in
// ticks) of the state being left, the transition count, and the new class.
func (o *sysObs) checkState(now stg.Class) {
	if !o.enabled || now == o.prevState {
		return
	}
	o.dwell[o.prevState].Observe(float64(o.ticksInState))
	o.ticksInState = 0
	o.prevState = now
	o.transitions.Inc()
	o.state.Set(int64(now))
}

// afterTick attributes one processed tick to the current state and detects
// transitions the tick caused.
func (o *sysObs) afterTick(now stg.Class) {
	if !o.enabled {
		return
	}
	o.ticksInState++
	o.checkState(now)
}
