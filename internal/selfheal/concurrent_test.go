package selfheal_test

import (
	"context"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/stg"
	"selfheal/internal/wlog"
)

// TestConcurrentModeKeepsServingNormalTasks: with the §III.D concurrency
// strategy, normal tasks advance while recovery work is pending — the
// defining difference from the strict strategy's Theorem-4 gating.
func TestConcurrentModeKeepsServingNormalTasks(t *testing.T) {
	cfg := selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, Concurrent: true}
	sys := newFig1System(t, cfg, true)
	// Commit the first two tasks, then report while work remains.
	for i := 0; i < 2; i++ {
		if err := sys.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Metrics().NormalSteps
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if sys.State() != stg.Scan {
		t.Fatal("not in SCAN after report")
	}
	// Alternating ticks: normal work must advance before recovery fully
	// drains.
	for i := 0; i < 4 && sys.State() != stg.Normal; i++ {
		if err := sys.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := sys.Metrics()
	if m.NormalSteps <= before {
		t.Error("concurrent mode gated normal tasks")
	}
	if m.ConcurrentNormalSteps == 0 {
		t.Error("ConcurrentNormalSteps not accounted")
	}
}

// TestConcurrentModeConverges: even though normal tasks transiently consume
// corrupt data during the recovery window, the final state after the last
// repair equals the clean execution — the repair analyzes the full log, so
// window-corrupted normal tasks are folded into the damage closure.
func TestConcurrentModeConverges(t *testing.T) {
	cfg := selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, Concurrent: true}
	sys := newFig1System(t, cfg, true)

	// Report the attack as soon as t1 commits; the rest of the workload
	// races the recovery.
	if err := sys.Tick(); err != nil { // commits r1/t1#1
		t.Fatal(err)
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.RunToCompletion(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	// A final follow-up report heals anything corrupted inside the
	// window (in a deployment the IDS keeps reporting; one repair over
	// the full log suffices here).
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.DrainRecovery(context.Background(), 20); err != nil {
		t.Fatal(err)
	}

	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Errorf("concurrent strategy did not converge: %v", err)
	}
	if sys.Metrics().ConcurrentNormalSteps == 0 {
		t.Error("no overlap achieved; test exercised nothing")
	}
}

// TestConcurrentVsStrictWorkAccounting: the ablation the paper's §III.D
// predicts — concurrency buys normal-task progress during recovery but can
// only increase total recovery work (more tasks executed → more tasks
// corrupted).
func TestConcurrentVsStrictWorkAccounting(t *testing.T) {
	run := func(concurrent bool) selfheal.Metrics {
		cfg := selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, Concurrent: concurrent}
		sys := newFig1System(t, cfg, true)
		if err := sys.Tick(); err != nil {
			t.Fatal(err)
		}
		sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
		if err := sys.RunToCompletion(context.Background(), 200); err != nil {
			t.Fatal(err)
		}
		sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
		if err := sys.DrainRecovery(context.Background(), 20); err != nil {
			t.Fatal(err)
		}
		return sys.Metrics()
	}
	strict := run(false)
	conc := run(true)
	if strict.ConcurrentNormalSteps != 0 {
		t.Error("strict mode overlapped normal work with recovery")
	}
	if conc.ConcurrentNormalSteps == 0 {
		t.Error("concurrent mode achieved no overlap")
	}
	if conc.Undone < strict.Undone {
		t.Errorf("concurrent mode undid less (%d) than strict (%d); risk accounting inverted",
			conc.Undone, strict.Undone)
	}
}

// TestConcurrentModeWithCleanWorkload: concurrency must not change anything
// when there are no attacks.
func TestConcurrentModeWithCleanWorkload(t *testing.T) {
	cfg := selfheal.Config{AlertBuf: 4, RecoveryBuf: 4, Concurrent: true}
	sys := newFig1System(t, cfg, false)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if !data.Equal(clean.Store(), sys.Store()) {
		t.Error("clean concurrent execution diverged")
	}
	if sys.Metrics().ConcurrentNormalSteps != 0 {
		t.Error("overlap counted with no recovery pending")
	}
}

// TestCoalesceAlertsBatchesAnalysis: with CoalesceAlerts, a burst of queued
// alerts becomes one unit of recovery tasks covering the union of reports,
// and the final state is identical to per-alert processing.
func TestCoalesceAlertsBatchesAnalysis(t *testing.T) {
	mk := func(coalesce bool) *selfheal.System {
		cfg := selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, CoalesceAlerts: coalesce}
		sys := newFig1System(t, cfg, true)
		if err := sys.RunToCompletion(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
		// A burst of three alerts: the attack plus two flow-damaged
		// instances an IDS might flag independently.
		for _, id := range []wlog.InstanceID{"r1/t1#1", "r1/t2#1", "r2/t8#1"} {
			sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{id}})
		}
		if err := sys.DrainRecovery(context.Background(), 20); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	batched := mk(true)
	serial := mk(false)

	bm, sm := batched.Metrics(), serial.Metrics()
	if bm.AlertsAnalyzed != 3 || sm.AlertsAnalyzed != 3 {
		t.Errorf("alerts analyzed: batched %d serial %d, want 3/3", bm.AlertsAnalyzed, sm.AlertsAnalyzed)
	}
	if bm.UnitsExecuted != 1 {
		t.Errorf("batched units = %d, want 1", bm.UnitsExecuted)
	}
	if sm.UnitsExecuted != 3 {
		t.Errorf("serial units = %d, want 3", sm.UnitsExecuted)
	}
	if !data.Equal(batched.Store(), serial.Store()) {
		t.Error("coalesced and serial recovery disagree on the final state")
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), batched.Store()); err != nil {
		t.Error(err)
	}
}

// TestEagerRecoveryStrategy: §III.D strategy 2 — units execute while alerts
// are still queued. The system converges (every repair analyzes the full
// log) and the eager work is accounted; the total units executed can only
// grow relative to the strict discipline.
func TestEagerRecoveryStrategy(t *testing.T) {
	mk := func(eager bool) *selfheal.System {
		cfg := selfheal.Config{AlertBuf: 8, RecoveryBuf: 8, EagerRecovery: eager}
		sys := newFig1System(t, cfg, true)
		if err := sys.RunToCompletion(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
		// A burst of three alerts queues up before any tick.
		for _, id := range []wlog.InstanceID{"r1/t1#1", "r1/t2#1", "r2/t8#1"} {
			sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{id}})
		}
		if err := sys.DrainRecovery(context.Background(), 30); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	eager := mk(true)
	strict := mk(false)

	em, sm := eager.Metrics(), strict.Metrics()
	if em.EagerUnits == 0 {
		t.Error("eager mode executed no units during SCAN")
	}
	if sm.EagerUnits != 0 {
		t.Error("strict mode executed eager units")
	}
	if em.UnitsExecuted < sm.UnitsExecuted {
		t.Errorf("eager executed fewer units (%d) than strict (%d)", em.UnitsExecuted, sm.UnitsExecuted)
	}
	if !data.Equal(eager.Store(), strict.Store()) {
		t.Error("eager and strict recovery disagree on the final state")
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), eager.Store()); err != nil {
		t.Error(err)
	}
}
