package selfheal_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// newFig1System builds a system hosting the Fig 1 workload, optionally
// attacked at t1, without running anything yet.
func newFig1System(t *testing.T, cfg selfheal.Config, attack bool) *selfheal.System {
	t.Helper()
	st := data.NewStore()
	st.Init("e", 0)
	sys, err := selfheal.New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	wf1, wf2 := wf.Fig1Specs()
	if attack {
		sys.Engine().AddAttack(engine.Attack{
			Run: "r1", Task: "t1",
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{"a": 100}
			},
		})
	}
	if err := sys.StartRun("r1", wf1); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartRun("r2", wf2); err != nil {
		t.Fatal(err)
	}
	return sys
}

func defaultCfg() selfheal.Config {
	return selfheal.Config{AlertBuf: 8, RecoveryBuf: 8}
}

func TestNewValidatesBuffers(t *testing.T) {
	if _, err := selfheal.New(selfheal.Config{AlertBuf: 0, RecoveryBuf: 1}, nil); err == nil {
		t.Error("zero alert buffer accepted")
	}
	if _, err := selfheal.New(selfheal.Config{AlertBuf: 1, RecoveryBuf: 0}, nil); err == nil {
		t.Error("zero recovery buffer accepted")
	}
}

func TestNormalProcessingWithoutAlerts(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), false)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.NormalSteps != 8 {
		t.Errorf("normal steps = %d, want 8 (two clean runs)", m.NormalSteps)
	}
	if m.TicksScan != 0 || m.TicksRecovery != 0 {
		t.Errorf("idle system spent ticks in SCAN/RECOVERY: %+v", m)
	}
	if v, _ := sys.Store().Get("f"); v.Value != 14 {
		t.Errorf("f = %d, want clean 14", v.Value)
	}
}

func TestStateMachineTransitions(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if sys.State() != stg.Normal {
		t.Fatalf("state = %v after normal completion", sys.State())
	}
	ok := sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if !ok {
		t.Fatal("alert lost with empty buffer")
	}
	if sys.State() != stg.Scan {
		t.Fatalf("state = %v after report, want SCAN", sys.State())
	}
	if err := sys.Tick(); err != nil { // analyze
		t.Fatal(err)
	}
	if sys.State() != stg.Recovery {
		t.Fatalf("state = %v after analysis, want RECOVERY", sys.State())
	}
	if err := sys.Tick(); err != nil { // execute unit
		t.Fatal(err)
	}
	if sys.State() != stg.Normal {
		t.Fatalf("state = %v after recovery, want NORMAL", sys.State())
	}
	m := sys.Metrics()
	if m.AlertsAnalyzed != 1 || m.UnitsExecuted != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestEndToEndRecoveryMatchesClean: the flagship runtime test — attack,
// complete the workload, report, recover, and compare with the clean twin.
func TestEndToEndRecoveryMatchesClean(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
	m := sys.Metrics()
	if m.Undone != 7 || m.Redone != 5 || m.NewExecuted != 1 {
		t.Errorf("recovery sizes = undone %d redone %d new %d, want 7/5/1", m.Undone, m.Redone, m.NewExecuted)
	}
}

// TestMidRunRecoveryResync: report the attack while the damaged run is still
// in flight; recovery must reroute the run onto the corrected path, and its
// completion must match the clean state.
func TestMidRunRecoveryResync(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	// Execute only the first five normal steps: t1 t7 t2 t8 t3 — r1 is
	// now heading down the wrong path P1 with t4 pending.
	for i := 0; i < 5; i++ {
		if err := sys.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := sys.Log().Get("r1/t3#1"); !ok {
		t.Fatal("setup: t3 not committed yet; interleaving drifted")
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	// Let the runs finish normally from the corrected frontier.
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Final values must be the clean ones.
	for _, c := range []struct {
		key  data.Key
		want data.Value
	}{{"a", 1}, {"b", 2}, {"f", 14}, {"h", 4}, {"j", 8}} {
		v, ok := sys.Store().Get(c.key)
		if !ok || v.Value != c.want {
			t.Errorf("%s = %v (ok=%v), want %d", c.key, v.Value, ok, c.want)
		}
	}
	// The wrong path must not have been resumed after recovery.
	if _, ok := sys.Log().Get("r1/t4#1"); ok {
		t.Error("run continued down the stale path: t4 executed after recovery")
	}
}

func TestAlertBufferOverflowLosesAlerts(t *testing.T) {
	cfg := selfheal.Config{AlertBuf: 2, RecoveryBuf: 2}
	sys := newFig1System(t, cfg, true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	bad := []wlog.InstanceID{"r1/t1#1"}
	for i := 0; i < 4; i++ {
		sys.Report(selfheal.Alert{Bad: bad})
	}
	m := sys.Metrics()
	if m.AlertsReported != 4 || m.AlertsLost != 2 {
		t.Errorf("reported %d lost %d, want 4/2", m.AlertsReported, m.AlertsLost)
	}
	a, _ := sys.QueueLengths()
	if a != 2 {
		t.Errorf("alert queue = %d, want 2", a)
	}
}

// TestRecoveryBufferFullForcesDrain: with RecoveryBuf=1 and two alerts, the
// analyzer blocks after the first unit and the scheduler drains it even
// though an alert is still queued (the §IV.E completion).
func TestRecoveryBufferFullForcesDrain(t *testing.T) {
	cfg := selfheal.Config{AlertBuf: 4, RecoveryBuf: 1}
	sys := newFig1System(t, cfg, true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	bad := []wlog.InstanceID{"r1/t1#1"}
	sys.Report(selfheal.Alert{Bad: bad})
	sys.Report(selfheal.Alert{Bad: bad})

	if err := sys.Tick(); err != nil { // analyze alert 1 → unit buffer full
		t.Fatal(err)
	}
	a, r := sys.QueueLengths()
	if a != 1 || r != 1 {
		t.Fatalf("queues = %d/%d, want 1/1", a, r)
	}
	if sys.State() != stg.Scan {
		t.Fatalf("state = %v, want SCAN (alert still queued)", sys.State())
	}
	if err := sys.Tick(); err != nil { // forced drain executes the unit
		t.Fatal(err)
	}
	a, r = sys.QueueLengths()
	if a != 1 || r != 0 {
		t.Fatalf("after drain: queues = %d/%d, want 1/0", a, r)
	}
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().UnitsExecuted != 2 {
		t.Errorf("units executed = %d, want 2", sys.Metrics().UnitsExecuted)
	}
}

// TestTheorem4Gating: normal tasks do not execute while alerts or recovery
// units are pending.
func TestTheorem4Gating(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	// Two normal steps commit t1 (r1) and t7 (r2).
	for i := 0; i < 2; i++ {
		if err := sys.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Metrics().NormalSteps
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.Tick(); err != nil { // must analyze, not step normal
		t.Fatal(err)
	}
	if err := sys.Tick(); err != nil { // must execute recovery, not step normal
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.NormalSteps != before {
		t.Errorf("normal steps advanced during SCAN/RECOVERY: %d → %d", before, m.NormalSteps)
	}
	if m.AlertsAnalyzed != 1 || m.UnitsExecuted != 1 {
		t.Errorf("recovery did not progress: %+v", m)
	}
}

func TestAlertUnknownInstanceFails(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), false)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r9/ghost#1"}})
	if err := sys.Tick(); err == nil {
		t.Error("alert for unknown instance analyzed without error")
	}
}

func TestRepeatedAlertsSameAttackIdempotent(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	bad := []wlog.InstanceID{"r1/t1#1"}
	sys.Report(selfheal.Alert{Bad: bad})
	sys.Report(selfheal.Alert{Bad: bad})
	if err := sys.DrainRecovery(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Errorf("double recovery broke the state: %v", err)
	}
}

// TestRepeatedAlertsDedupedAtReport extends the idempotent-repeat property:
// with DedupeAlerts on, the second identical report is absorbed at Report
// time — it still returns true (the alert IS accounted for), but only one
// copy occupies the bounded queue and only one analysis runs, and the repair
// is exactly as correct as the double-analysis path.
func TestRepeatedAlertsDedupedAtReport(t *testing.T) {
	cfg := defaultCfg()
	cfg.DedupeAlerts = true
	sys := newFig1System(t, cfg, true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	bad := []wlog.InstanceID{"r1/t1#1"}
	if !sys.Report(selfheal.Alert{Bad: bad}) {
		t.Fatal("first alert rejected")
	}
	if !sys.Report(selfheal.Alert{Bad: bad}) {
		t.Fatal("duplicate alert rejected instead of absorbed")
	}
	if m := sys.Metrics(); m.AlertsDeduped != 1 {
		t.Fatalf("AlertsDeduped = %d, want 1", m.AlertsDeduped)
	}
	if err := sys.DrainRecovery(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.AlertsAnalyzed != 1 || m.ConesAnalyzed != 1 {
		t.Errorf("duplicate reached the analyzer: analyzed %d alerts, %d cones, want 1 and 1",
			m.AlertsAnalyzed, m.ConesAnalyzed)
	}
	if m.AlertsLost != 0 {
		t.Errorf("dedupe counted the duplicate as lost: AlertsLost = %d", m.AlertsLost)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Errorf("deduped recovery broke the state: %v", err)
	}
}

// TestSequentialDistinctAlerts: two separate attacks reported one after the
// other, each repaired cumulatively.
func TestSequentialDistinctAlerts(t *testing.T) {
	st := data.NewStore()
	st.Init("e", 0)
	sys, err := selfheal.New(defaultCfg(), st)
	if err != nil {
		t.Fatal(err)
	}
	wf1, wf2 := wf.Fig1Specs()
	sys.Engine().AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	sys.Engine().AddAttack(engine.Attack{
		Run: "r2", Task: "t9",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"i": -5}
		},
	})
	if err := sys.StartRun("r1", wf1); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartRun("r2", wf2); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r2/t9#1"}})
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
	if sys.Metrics().UnitsExecuted != 2 {
		t.Errorf("units = %d, want 2", sys.Metrics().UnitsExecuted)
	}
}

func TestServeProcessesAlertsAndStops(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	alerts := make(chan selfheal.Alert, 1)
	alerts <- selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}}
	close(alerts)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := sys.Serve(ctx, alerts)
	if err != nil {
		t.Fatal(err)
	}
	if m.AlertsAnalyzed != 1 || m.UnitsExecuted != 1 {
		t.Errorf("serve metrics = %+v", m)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
}

func TestServeHonorsContextCancel(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), false)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	alerts := make(chan selfheal.Alert) // never closed, never sent
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sys.Serve(ctx, alerts)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}
