package selfheal_test

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// TestPropertyRuntimeMidRunRecovery drives the full runtime over random
// single-run workloads: execute a random number of steps, report the attack
// the moment it is committed, let recovery reroute the in-flight run, finish
// normally, and compare with the attack-free twin.
func TestPropertyRuntimeMidRunRecovery(t *testing.T) {
	healed := 0
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		spec, init, target := buildRandomWorkloadFixed(seed)
		attackInst := wlog.FormatInstance("r", target, 1)

		// Clean twin through a bare engine.
		cleanStore := data.NewStore()
		for k, v := range init {
			cleanStore.Init(k, v)
		}
		cleanEng := engine.New(cleanStore, wlog.New())
		cleanRun, err := cleanEng.NewRun("r", spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := cleanEng.RunAll(context.Background(), cleanRun); err != nil {
			t.Fatal(err)
		}

		// Attacked run through the runtime.
		st := data.NewStore()
		for k, v := range init {
			st.Init(k, v)
		}
		sys, err := selfheal.New(selfheal.Config{AlertBuf: 8, RecoveryBuf: 8}, st)
		if err != nil {
			t.Fatal(err)
		}
		writes := append([]data.Key(nil), spec.Tasks[target].Writes...)
		sys.Engine().AddAttack(engine.Attack{
			Run: "r", Task: target,
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				out := make(map[data.Key]data.Value, len(writes))
				for _, k := range writes {
					out[k] = 4242
				}
				return out
			},
		})
		if err := sys.StartRun("r", spec); err != nil {
			t.Fatal(err)
		}

		// Execute a random prefix, then look for the committed attack.
		prefix := 1 + rng.Intn(12)
		for i := 0; i < prefix; i++ {
			if err := sys.Tick(); err != nil {
				break // idle: run completed early
			}
		}
		if _, committed := sys.Log().Get(attackInst); committed {
			sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{attackInst}})
			if err := sys.DrainRecovery(context.Background(), 50); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := sys.RunToCompletion(context.Background(), 500); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Catch-up report in case the attack committed after the prefix.
		if _, committed := sys.Log().Get(attackInst); committed {
			sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{attackInst}})
			if err := sys.DrainRecovery(context.Background(), 50); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			healed++
		}

		if err := recovery.CheckStrictCorrectness(cleanEng.Store(), sys.Store()); err != nil {
			t.Errorf("seed %d (attack %s, prefix %d): %v", seed, attackInst, prefix, err)
		}
	}
	if healed < 30 {
		t.Errorf("only %d/120 seeds exercised recovery (want ≥30); workload generator too tame", healed)
	}
}

// buildRandomWorkloadFixed wraps buildRandomWorkload with correct two-digit
// task naming for small indices.
func buildRandomWorkloadFixed(seed int64) (*wf.Spec, map[data.Key]data.Value, wf.TaskID) {
	rng := rand.New(rand.NewSource(seed))
	cfg := wf.GenConfig{Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.4}
	spec := wf.Generate("w", cfg, rng)
	init := make(map[data.Key]data.Value, cfg.Keys)
	for i := 0; i < cfg.Keys; i++ {
		init[wf.GenKey(i)] = data.Value(rng.Intn(20))
	}
	ids := make([]wf.TaskID, 0, len(spec.Tasks))
	for id := range spec.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	target := ids[rng.Intn(len(ids))]
	return spec, init, target
}
