package selfheal

import (
	"context"
	"errors"
)

// Serve runs the system as a goroutine-friendly loop: alerts arriving on the
// channel are enqueued (and lost if the alert buffer is full, exactly like
// Report), and the system ticks continuously — analyzing, recovering and
// executing normal tasks per the state discipline. Serve returns the final
// metrics when ctx is cancelled or the alert channel is closed and all work
// has drained.
//
// Serve owns the System's tick loop while it runs; Report, State,
// QueueLengths and Metrics remain safe to call from other goroutines (so
// IDS sensors may bypass the channel and call Report directly).
func (s *System) Serve(ctx context.Context, alerts <-chan Alert) (Metrics, error) {
	open := true
	for {
		// Drain any pending alerts without blocking.
		for open {
			select {
			case a, ok := <-alerts:
				if !ok {
					open = false
					break
				}
				s.Report(a)
				continue
			default:
			}
			break
		}
		select {
		case <-ctx.Done():
			return s.Metrics(), ctx.Err()
		default:
		}

		err := s.Tick()
		switch {
		case errors.Is(err, ErrIdle):
			if !open {
				return s.Metrics(), nil
			}
			// Nothing to do: block until an alert arrives or we stop.
			select {
			case <-ctx.Done():
				return s.Metrics(), ctx.Err()
			case a, ok := <-alerts:
				if !ok {
					open = false
					continue
				}
				s.Report(a)
			}
		case err != nil:
			return s.Metrics(), err
		}
	}
}
