// Package selfheal implements the attack-recovery system architecture of
// Fig 2 of the paper as a running component: a bounded queue of IDS alerts,
// the recovery analyzer that turns each alert into a unit of recovery tasks,
// a bounded queue of recovery-task units, and a scheduler that executes
// normal workflow tasks and recovery tasks under the state discipline of
// §IV.C:
//
//   - NORMAL: no alerts and no recovery units queued; normal tasks execute.
//   - SCAN: alerts queued; the analyzer processes them; recovery tasks and
//     normal tasks wait (Theorem 4: a normal task cannot run before all
//     recovery tasks are known).
//   - RECOVERY: alert queue empty, recovery units queued; the scheduler
//     executes recovery units; normal tasks still wait.
//
// When the recovery-unit buffer is full the analyzer blocks (§IV.E) and the
// scheduler drains recovery units even though alerts are queued — the same
// deadlock completion the STG model uses (DESIGN.md).
//
// The core is a deterministic Tick-driven state machine so tests and
// simulations control time; Serve wraps it in a goroutine with channels for
// production-style use.
//
// The runtime is fully instrumented through the observability layer
// (internal/obs): Observe wires alert/loss/analysis counters, queue-depth
// gauges, NORMAL/SCAN/RECOVERY tick counts and dwell-time histograms, and
// per-repair latency split into analyze/undo/redo phases — the measured
// side of the CTMC comparison printed by `selfheal-sim -metrics`. The
// catalog is docs/OBSERVABILITY.md; instrumentation is off (nil-safe,
// near-zero cost) until Observe is called.
package selfheal

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/stg"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Alert is one IDS report: the set of instances found malicious.
type Alert struct {
	// Bad lists the malicious task instances.
	Bad []wlog.InstanceID
}

// Unit is one unit of recovery tasks: the analysis produced for one alert
// or one coalesced damage cone (§IV.C: "1 unit of recovery tasks
// corresponds to a set of tasks for repairing damages caused by 1 attack").
type Unit struct {
	// Alert is the originating report (with CoalesceAlerts, the folded
	// union of the cone's member reports).
	Alert Alert
	// Analysis is the static damage assessment for the alert.
	Analysis *recovery.Analysis
	// release re-arms the covered-alert prefilter when the unit completes;
	// nil when PrefilterCovered is off.
	release func()
}

// Config sizes the system.
type Config struct {
	// AlertBuf bounds the IDS-alert queue; alerts reported while it is
	// full are lost.
	AlertBuf int
	// RecoveryBuf bounds the recovery-unit queue; a full buffer blocks
	// the analyzer.
	RecoveryBuf int
	// Repair tunes the recovery executor.
	Repair recovery.Options
	// Concurrent selects the third recovery strategy of §III.D ("obtain
	// concurrency while taking risks of corrupting only normal tasks"):
	// normal tasks keep executing during SCAN and RECOVERY instead of
	// waiting for the damage analysis (multi-version data makes this
	// safe for the recovery itself). Normal tasks that consume corrupt
	// data in the window are folded into the damage closure when the
	// recovery unit executes, because the repair always analyzes the
	// full log — so the final state converges to the strict-correct one,
	// at the cost of some transiently wrong normal results and extra
	// recovery work. The default (false) is the paper's strict
	// correctness strategy: Theorem-4 gating.
	Concurrent bool
	// CoalesceAlerts makes the analyzer drain the whole alert queue per
	// SCAN tick and partition the drained batch into damage cones
	// (triage.Partition over an epoch-pinned dependence snapshot): one
	// unit of recovery tasks per cone instead of one per alert. Under
	// bursts this trades many redundant analyses for a few independent
	// ones — the §IV.D observation that analysis cost grows with queued
	// work, turned into an optimization. Alerts from independent attacks
	// stay in separate units, preserving the §IV.C unit-per-attack
	// discipline. The analyzer may transiently push the recovery queue
	// past RecoveryBuf when one batch yields several cones; the forced
	// drain (§IV.E) reclaims the excess before the next analysis.
	CoalesceAlerts bool
	// PrefilterCovered drops a drained alert without analysis when its
	// bad set lies entirely inside the damage closure (DefiniteUndo) of a
	// queued or executing recovery unit: that unit's repair re-analyzes
	// the full log at execution time, so the alert's damage is already
	// scheduled for undo and (Theorem 2) redo. The signature re-arms on
	// unit completion, so later alerts trigger fresh analyses.
	PrefilterCovered bool
	// DedupeAlerts absorbs a Report whose bad set is already queued
	// (order- and multiplicity-insensitive) instead of consuming buffer
	// space and an analysis on the repeat. Off by default: the CTMC
	// baseline and the drop-accounting tests count every repeat
	// individually.
	DedupeAlerts bool
	// EagerRecovery selects the second strategy of §III.D ("obtain
	// concurrency while taking risks of corrupting tasks"): recovery
	// units execute even while IDS alerts are still queued, instead of
	// waiting for the SCAN phase to drain (§IV.C's restriction). A later
	// alert can invalidate work an eager unit already repaired, which
	// the paper warns "introduces more recovery tasks and costs"; here
	// each unit re-analyzes the full log, so the system still converges
	// — the risk materializes purely as redundant recovery work.
	EagerRecovery bool
}

// Metrics counts the system's activity.
type Metrics struct {
	// AlertsReported, AlertsLost, AlertsAnalyzed count IDS reports.
	AlertsReported, AlertsLost, AlertsAnalyzed int
	// UnitsExecuted counts recovery units completed.
	UnitsExecuted int
	// NormalSteps counts normal workflow task executions.
	NormalSteps int
	// TicksNormal, TicksScan, TicksRecovery split the ticks by the state
	// the system was in when the tick was processed.
	TicksNormal, TicksScan, TicksRecovery int
	// Undone, Redone, NewExecuted accumulate recovery work sizes.
	Undone, Redone, NewExecuted int
	// ConcurrentNormalSteps counts normal tasks executed while recovery
	// work was pending (only nonzero in Concurrent mode).
	ConcurrentNormalSteps int
	// EagerUnits counts recovery units executed while alerts were still
	// queued (only nonzero in EagerRecovery mode).
	EagerUnits int
	// ConesAnalyzed counts damage-cone analyses (AnalyzeGraph calls) made
	// by the triage front-end; AlertsAnalyzed/ConesAnalyzed is the
	// achieved coalescing fold.
	ConesAnalyzed int
	// AlertsPrefiltered counts alerts dropped because an in-flight
	// recovery unit's damage closure already covered their bad set.
	AlertsPrefiltered int
	// AlertsDeduped counts Report-time absorptions of bad sets already
	// queued (only nonzero with DedupeAlerts).
	AlertsDeduped int
}

// System is the self-healing workflow system.
//
// Concurrency contract: one goroutine owns the tick loop (Tick, Serve,
// DrainRecovery, RunToCompletion, StartRun), while Report, State,
// QueueLengths and Metrics are safe to call from any goroutine at any time
// — IDS sensors report asynchronously, exactly like the paper's
// architecture assumes. The fully concurrent execution layer (normal
// processing on worker shards while recovery proceeds) is internal/shard.
type System struct {
	cfg    Config
	eng    *engine.Engine
	specs  map[string]*wf.Spec
	runs   []*engine.Run
	nextRn int

	// graph is the incrementally maintained dependence graph: every commit
	// folds into it at Append time (O(Δ)), so alert analysis reads a
	// consistent snapshot instead of rescanning the log — alert handling no
	// longer scales with total log length.
	graph *deps.IncrementalGraph

	// mu guards the queues, the metrics and the in-progress flags; the
	// expensive analysis and repair work runs outside the lock so a
	// concurrent Report never blocks behind a recovery unit.
	mu        sync.Mutex
	alertQ    []Alert
	recoveryQ []*Unit
	metrics   Metrics
	// analyzing/executing mark a dequeued alert (unit) whose work is still
	// in flight, so State never transiently under-classifies the system
	// while the lock is released for the heavy lifting.
	analyzing, executing bool

	// cover holds the damage-closure signatures of queued and executing
	// units for the covered-alert prefilter (PrefilterCovered).
	cover *triage.Coverage
	// pendingKeys refcounts the canonical bad-set keys sitting unanalyzed
	// in alertQ for Report-time dedupe (DedupeAlerts); guarded by mu.
	pendingKeys map[string]int

	// o is the optional observability wiring (Observe); zero means off.
	o sysObs
	// flip alternates recovery and normal work in concurrent mode.
	flip bool
	// eagerFlip alternates analysis and unit execution in eager mode.
	eagerFlip bool
}

// New builds a system over a fresh store and log.
func New(cfg Config, store *data.Store) (*System, error) {
	if store == nil {
		store = data.NewStore()
	}
	return NewWithEngine(cfg, engine.New(store, wlog.New()), nil)
}

// NewWithEngine builds a system that adopts an existing engine (and its
// committed history) together with the specs of the runs already in its
// log. Used to put the self-healing runtime in charge of a workload that
// executed before the runtime started.
func NewWithEngine(cfg Config, eng *engine.Engine, specs map[string]*wf.Spec) (*System, error) {
	if cfg.AlertBuf < 1 || cfg.RecoveryBuf < 1 {
		return nil, fmt.Errorf("selfheal: buffers must be ≥ 1, got %d/%d", cfg.AlertBuf, cfg.RecoveryBuf)
	}
	if eng == nil {
		return nil, fmt.Errorf("selfheal: nil engine")
	}
	s := &System{
		cfg:         cfg,
		eng:         eng,
		specs:       make(map[string]*wf.Spec),
		cover:       triage.NewCoverage(),
		pendingKeys: make(map[string]int),
	}
	for run, spec := range specs {
		s.specs[run] = spec
	}
	// Subscribe the incremental dependence graph to the engine's log:
	// history already committed is folded in now, future commits fold in
	// at Append time.
	s.graph = deps.NewIncremental(eng.Log())
	return s, nil
}

// Engine exposes the underlying engine (attack injection in tests and
// examples goes through it).
func (s *System) Engine() *engine.Engine { return s.eng }

// Store returns the current (possibly repaired) store.
func (s *System) Store() *data.Store { return s.eng.Store() }

// Log returns the system log.
func (s *System) Log() *wlog.Log { return s.eng.Log() }

// Metrics returns a copy of the counters. Safe from any goroutine.
func (s *System) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// StartRun registers a workflow run for normal processing. Reusing a run ID
// returns an error wrapping engine.ErrRunExists.
func (s *System) StartRun(id string, spec *wf.Spec) error {
	if _, dup := s.specs[id]; dup {
		return fmt.Errorf("selfheal: run %s: %w", id, engine.ErrRunExists)
	}
	r, err := s.eng.NewRun(id, spec)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, r)
	s.specs[id] = spec
	return nil
}

// State classifies the system per §IV.C.
func (s *System) State() stg.Class {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked()
}

func (s *System) stateLocked() stg.Class {
	switch {
	case len(s.alertQ) > 0 || s.analyzing:
		return stg.Scan
	case len(s.recoveryQ) > 0 || s.executing:
		return stg.Recovery
	default:
		return stg.Normal
	}
}

// QueueLengths returns (alerts, recovery units) currently queued.
func (s *System) QueueLengths() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.alertQ), len(s.recoveryQ)
}

// Report delivers an IDS alert. It returns false when the alert buffer is
// full and the alert is lost. With DedupeAlerts, a repeat of a bad set
// already queued is absorbed without consuming buffer space and reports
// true: the queued twin's analysis covers it. Report is safe to call from
// any goroutine, concurrently with the tick loop.
func (s *System) Report(a Alert) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.AlertsReported++
	s.o.reported.Inc()
	if s.cfg.DedupeAlerts {
		if s.pendingKeys[triage.Key(a.Bad)] > 0 {
			s.metrics.AlertsDeduped++
			s.o.deduped.Inc()
			return true
		}
	}
	if len(s.alertQ) >= s.cfg.AlertBuf {
		s.metrics.AlertsLost++
		s.o.lost.Inc()
		return false
	}
	s.alertQ = append(s.alertQ, a)
	if s.cfg.DedupeAlerts {
		s.pendingKeys[triage.Key(a.Bad)]++
	}
	if s.o.enabled {
		s.o.queues(len(s.alertQ), len(s.recoveryQ))
		s.o.checkState(s.stateLocked())
	}
	return true
}

// ErrIdle is returned by Tick when there is nothing to do: no alerts, no
// recovery units, and no runnable normal task.
var ErrIdle = errors.New("selfheal: idle")

// Tick performs one unit of work according to the state discipline:
// analyzing one alert in SCAN, executing one recovery unit in RECOVERY
// (including the forced drain when the unit buffer is full), or stepping one
// normal workflow task in NORMAL. In Concurrent mode (§III.D strategy 3),
// ticks alternate between recovery work and normal work whenever both are
// pending, instead of gating normal tasks.
func (s *System) Tick() error {
	err := s.tick()
	if s.o.enabled {
		s.mu.Lock()
		s.o.queues(len(s.alertQ), len(s.recoveryQ))
		s.o.afterTick(s.stateLocked())
		s.mu.Unlock()
	}
	return err
}

func (s *System) tick() error {
	s.mu.Lock()
	if s.cfg.Concurrent && s.stateLocked() != stg.Normal {
		s.flip = !s.flip
		if s.flip && s.hasNormalWork() {
			s.metrics.TicksNormal++
			s.metrics.ConcurrentNormalSteps++
			s.mu.Unlock()
			s.o.ticks[stg.Normal].Inc()
			s.o.concurrentSteps.Inc()
			return s.stepNormal()
		}
	}
	aLen, rLen := len(s.alertQ), len(s.recoveryQ)
	switch {
	case rLen >= s.cfg.RecoveryBuf:
		// Analyzer blocked: forced drain (§IV.E completion). Alerts may
		// be queued; the tick is classified as SCAN when so.
		if aLen == 0 {
			s.metrics.TicksRecovery++
			s.o.ticks[stg.Recovery].Inc()
		} else {
			s.metrics.TicksScan++
			s.o.ticks[stg.Scan].Inc()
		}
		s.mu.Unlock()
		return s.executeUnit()
	case s.cfg.EagerRecovery && rLen > 0 && aLen > 0:
		// §III.D strategy 2: alternate unit execution with analysis
		// instead of gating recovery behind an empty alert queue.
		s.eagerFlip = !s.eagerFlip
		s.metrics.TicksScan++
		s.o.ticks[stg.Scan].Inc()
		if s.eagerFlip {
			s.metrics.EagerUnits++
			s.mu.Unlock()
			s.o.eagerUnit.Inc()
			return s.executeUnit()
		}
		s.mu.Unlock()
		return s.analyzeAlert()
	case aLen > 0:
		s.metrics.TicksScan++
		s.mu.Unlock()
		s.o.ticks[stg.Scan].Inc()
		return s.analyzeAlert()
	case rLen > 0:
		s.metrics.TicksRecovery++
		s.mu.Unlock()
		s.o.ticks[stg.Recovery].Inc()
		return s.executeUnit()
	default:
		s.metrics.TicksNormal++
		s.mu.Unlock()
		s.o.ticks[stg.Normal].Inc()
		return s.stepNormal()
	}
}

// analyzeAlert drains the head alert (or, with CoalesceAlerts, the whole
// alert queue), prefilters alerts already covered by in-flight units, and
// turns each remaining damage cone into a unit of recovery tasks.
func (s *System) analyzeAlert() error {
	s.mu.Lock()
	take := 1
	if s.cfg.CoalesceAlerts {
		take = len(s.alertQ)
	}
	if len(s.alertQ) == 0 {
		s.mu.Unlock()
		return ErrIdle
	}
	// Validate every drained alert before consuming anything: an alert
	// naming an unlogged instance fails the tick with the queue intact.
	for _, a := range s.alertQ[:take] {
		for _, id := range a.Bad {
			if _, ok := s.eng.Log().Get(id); !ok {
				s.mu.Unlock()
				return fmt.Errorf("selfheal: alert names unknown instance %s", id)
			}
		}
	}
	batch := make([]triage.Alert, 0, take)
	prefiltered := 0
	for _, a := range s.alertQ[:take] {
		if s.cfg.DedupeAlerts {
			k := triage.Key(a.Bad)
			if s.pendingKeys[k]--; s.pendingKeys[k] <= 0 {
				delete(s.pendingKeys, k)
			}
		}
		if s.cfg.PrefilterCovered && s.cover.Covered(a.Bad) {
			prefiltered++
			continue
		}
		batch = append(batch, triage.Alert{Bad: a.Bad})
	}
	s.alertQ = s.alertQ[take:]
	s.metrics.AlertsPrefiltered += prefiltered
	// The heavy analysis runs outside the lock; analyzing keeps the state
	// classified SCAN so concurrent observers never see a transient gap.
	s.analyzing = true
	s.mu.Unlock()
	s.o.prefiltered.Add(int64(prefiltered))

	// Partition the surviving batch into damage cones over one epoch-pinned
	// snapshot; without coalescing the single alert is its own cone.
	g := s.graph.Snapshot()
	var cones []triage.Cone
	switch {
	case len(batch) == 0:
		// Every drained alert was covered by an in-flight unit.
	case s.cfg.CoalesceAlerts:
		cones = triage.Partition(g, batch)
	default:
		cones = []triage.Cone{triage.ConeOf(batch[0])}
	}

	units := make([]*Unit, 0, len(cones))
	for _, c := range cones {
		analyzeStart := s.o.now()
		an := recovery.AnalyzeGraph(g, s.eng.Log(), s.specs, c.Bad)
		s.o.observeLatency(s.o.analyzeSeconds, analyzeStart)
		u := &Unit{Alert: Alert{Bad: c.Bad}, Analysis: an}
		if s.cfg.PrefilterCovered {
			// Signature = DefiniteUndo: the instances this unit's repair is
			// guaranteed to undo (and, per Theorem 2, re-execute where
			// legitimate). Candidate undos are excluded — covering an alert
			// with work that might not happen would be unsound.
			u.release = s.cover.Arm(an.DefiniteUndo)
		}
		units = append(units, u)
		s.o.coneSize.Observe(float64(c.Alerts))
	}
	if len(cones) > 0 && s.o.enabled {
		s.o.coalesceRatio.Observe(float64(len(batch)) / float64(len(cones)))
	}

	s.mu.Lock()
	s.analyzing = false
	s.recoveryQ = append(s.recoveryQ, units...)
	s.metrics.AlertsAnalyzed += len(batch)
	s.metrics.ConesAnalyzed += len(cones)
	s.mu.Unlock()
	s.o.analyzed.Add(int64(len(batch)))
	s.o.cones.Add(int64(len(cones)))
	return nil
}

// executeUnit runs the repair for the head recovery unit and installs the
// repaired store.
func (s *System) executeUnit() error {
	s.mu.Lock()
	if len(s.recoveryQ) == 0 {
		s.mu.Unlock()
		return ErrIdle
	}
	u := s.recoveryQ[0]
	s.recoveryQ = s.recoveryQ[1:]
	// The repair runs outside the lock; executing keeps the state
	// classified RECOVERY for concurrent observers until it lands.
	s.executing = true
	s.mu.Unlock()
	if u.release != nil {
		// Re-arm the covered-alert prefilter once the unit is done (even on
		// a failed repair — the failed unit no longer covers anything).
		defer u.release()
	}
	defer func() {
		s.mu.Lock()
		s.executing = false
		s.mu.Unlock()
	}()
	// A fresh snapshot (not the unit's analysis-time one): normal tasks
	// may have committed since the alert was analyzed (Concurrent mode),
	// and the repair must fold them into the damage closure.
	repairStart := s.o.now()
	res, err := recovery.RepairGraph(s.graph.Snapshot(), s.eng.Store(), s.eng.Log(), s.specs, u.Alert.Bad, s.cfg.Repair)
	if err != nil {
		return fmt.Errorf("selfheal: recovery unit failed: %w", err)
	}
	s.o.observeLatency(s.o.repairSeconds, repairStart)
	if s.o.enabled {
		s.o.repairAnalyze.Observe(res.Phases.Analyze.Seconds())
		s.o.repairUndo.Observe(res.Phases.Undo.Seconds())
		s.o.repairRedo.Observe(res.Phases.Redo.Seconds())
		s.o.repairComponents.Observe(float64(res.Components))
		s.o.repairWorkers.Observe(float64(res.Workers))
	}
	s.eng.SwapStore(res.Store)
	s.mu.Lock()
	s.metrics.UnitsExecuted++
	s.metrics.Undone += len(res.Undone)
	s.metrics.Redone += len(res.Redone)
	s.metrics.NewExecuted += len(res.NewExecuted)
	s.mu.Unlock()
	s.o.units.Inc()
	s.o.undone.Add(int64(len(res.Undone)))
	s.o.redone.Add(int64(len(res.Redone)))
	s.o.newExec.Add(int64(len(res.NewExecuted)))

	// Resynchronize in-flight runs whose execution path the repair
	// rewrote: they must continue from the corrected frontier, not the
	// stale one.
	for _, r := range s.runs {
		if r.Done() {
			continue
		}
		cur, done, ok := res.Frontier(r.ID, s.specs[r.ID])
		if !ok {
			continue
		}
		if err := s.eng.Resync(r, cur, done); err != nil {
			return fmt.Errorf("selfheal: resync %s: %w", r.ID, err)
		}
	}
	return nil
}

// stepNormal advances one incomplete run round-robin.
func (s *System) stepNormal() error {
	n := len(s.runs)
	if n == 0 {
		return ErrIdle
	}
	for i := 0; i < n; i++ {
		r := s.runs[(s.nextRn+i)%n]
		if r.Done() {
			continue
		}
		s.nextRn = (s.nextRn + i + 1) % n
		if _, err := s.eng.Step(r); err != nil {
			return err
		}
		s.mu.Lock()
		s.metrics.NormalSteps++
		s.mu.Unlock()
		s.o.normalSteps.Inc()
		return nil
	}
	return ErrIdle
}

// DrainRecovery ticks until the system returns to NORMAL (all alerts
// analyzed, all units executed), with a tick budget. A cancelled ctx stops
// the loop between ticks and returns the context's error.
func (s *System) DrainRecovery(ctx context.Context, maxTicks int) error {
	for i := 0; i < maxTicks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.State() == stg.Normal {
			return nil
		}
		if err := s.Tick(); err != nil && !errors.Is(err, ErrIdle) {
			return err
		}
	}
	return fmt.Errorf("selfheal: recovery did not drain within %d ticks", maxTicks)
}

// RunToCompletion ticks until every registered run is complete and the
// system is back to NORMAL, with a tick budget. A cancelled ctx stops the
// loop between ticks and returns the context's error.
func (s *System) RunToCompletion(ctx context.Context, maxTicks int) error {
	for i := 0; i < maxTicks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := s.Tick()
		switch {
		case errors.Is(err, ErrIdle):
			if s.State() == stg.Normal && s.allDone() {
				return nil
			}
		case err != nil:
			return err
		}
	}
	return fmt.Errorf("selfheal: did not complete within %d ticks", maxTicks)
}

// hasNormalWork reports whether any registered run is incomplete.
func (s *System) hasNormalWork() bool {
	for _, r := range s.runs {
		if !r.Done() {
			return true
		}
	}
	return false
}

func (s *System) allDone() bool {
	for _, r := range s.runs {
		if !r.Done() {
			return false
		}
	}
	return true
}
