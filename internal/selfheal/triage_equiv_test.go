package selfheal_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// TestTriageEquivalentToNaive is the triage soundness property: across
// randomized attacked workloads and randomized alert schedules (bursts with
// duplicates, interleaved ticks), the fully triaged pipeline — cone
// coalescing, covered-alert prefilter and Report-time dedupe — must reach
// exactly the final store the naive per-alert pipeline reaches, with intact
// version indexes. Triage may only change how many analyses run, never what
// gets repaired. Run under -race in CI, so the Coverage refcounting and
// dedupe bookkeeping are exercised for data races too.
func TestTriageEquivalentToNaive(t *testing.T) {
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := scenario.RandomConfig{
				Runs:    2,
				Gen:     wf.GenConfig{Tasks: 7, Keys: 6, MaxReads: 2, BranchProb: 0.3},
				Attacks: 2,
				Forged:  1,
			}
			// Two independent builds of the same seed yield identical
			// engines; each system repairs its own copy.
			scA, err := scenario.Random(seed, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			scB, err := scenario.Random(seed, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			if !data.Equal(scA.Store(), scB.Store()) {
				t.Fatal("scenario build is not deterministic per seed")
			}
			if len(scA.Bad) == 0 {
				t.Skip("no committed attacks for this seed")
			}

			naive, err := selfheal.NewWithEngine(
				selfheal.Config{AlertBuf: 256, RecoveryBuf: 4},
				scA.Engine, scA.Specs)
			if err != nil {
				t.Fatal(err)
			}
			triaged, err := selfheal.NewWithEngine(
				selfheal.Config{
					AlertBuf: 256, RecoveryBuf: 4,
					CoalesceAlerts:   true,
					PrefilterCovered: true,
					DedupeAlerts:     true,
				},
				scB.Engine, scB.Specs)
			if err != nil {
				t.Fatal(err)
			}

			// Identical randomized alert schedule for both systems: bursts
			// with duplicate and overlapping bad sets, ticks interleaved so
			// coverage is armed (prefilter hits) and queues refill
			// mid-recovery. Every committed attack is reported at least
			// once at the end so both systems repair everything.
			rng := rand.New(rand.NewSource(seed*7919 + 13))
			drive := func(a selfheal.Alert) {
				if !naive.Report(selfheal.Alert{Bad: append([]wlog.InstanceID(nil), a.Bad...)}) {
					t.Fatal("naive system lost an alert (buffer sized for zero loss)")
				}
				if !triaged.Report(selfheal.Alert{Bad: append([]wlog.InstanceID(nil), a.Bad...)}) {
					t.Fatal("triaged system lost an alert (buffer sized for zero loss)")
				}
			}
			bursts := 2 + rng.Intn(4)
			for b := 0; b < bursts; b++ {
				n := 1 + rng.Intn(8)
				for i := 0; i < n; i++ {
					bad := []wlog.InstanceID{scA.Bad[rng.Intn(len(scA.Bad))]}
					if rng.Intn(3) == 0 { // multi-instance alert
						bad = append(bad, scA.Bad[rng.Intn(len(scA.Bad))])
					}
					drive(selfheal.Alert{Bad: bad})
				}
				for ticks := rng.Intn(6); ticks > 0; ticks-- {
					_ = naive.Tick()
					_ = triaged.Tick()
				}
			}
			for _, bad := range scA.Bad {
				drive(selfheal.Alert{Bad: []wlog.InstanceID{bad}})
			}

			ctx := context.Background()
			if err := naive.DrainRecovery(ctx, 100000); err != nil {
				t.Fatalf("naive drain: %v", err)
			}
			if err := triaged.DrainRecovery(ctx, 100000); err != nil {
				t.Fatalf("triaged drain: %v", err)
			}

			if !data.Equal(naive.Store(), triaged.Store()) {
				t.Errorf("final stores diverge\nnaive:   %v\ntriaged: %v",
					naive.Store().Snapshot(), triaged.Store().Snapshot())
			}
			if err := naive.Store().CheckIndex(); err != nil {
				t.Errorf("naive index: %v", err)
			}
			if err := triaged.Store().CheckIndex(); err != nil {
				t.Errorf("triaged index: %v", err)
			}

			nm, tm := naive.Metrics(), triaged.Metrics()
			if nm.AlertsLost != 0 || tm.AlertsLost != 0 {
				t.Fatalf("alert loss in a zero-loss schedule: naive %d, triaged %d",
					nm.AlertsLost, tm.AlertsLost)
			}
			// The triaged pipeline must not do more analyses than naive.
			if tm.ConesAnalyzed > nm.ConesAnalyzed {
				t.Errorf("triage increased analyses: %d > %d", tm.ConesAnalyzed, nm.ConesAnalyzed)
			}
		})
	}
}
