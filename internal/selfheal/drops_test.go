package selfheal_test

import (
	"context"
	"testing"

	"selfheal/internal/obs"
	"selfheal/internal/selfheal"
	"selfheal/internal/wlog"
)

// TestQueueDropAccounting drives the system deterministically past the alert
// buffer bound — no timing, no sleeps — and checks that every rejected
// Report is counted exactly once, in both the runtime's own Metrics and the
// observability snapshot, and that draining the backlog adds no phantom
// drops.
func TestQueueDropAccounting(t *testing.T) {
	const alertBuf, extra = 3, 5
	sys := newFig1System(t, selfheal.Config{AlertBuf: alertBuf, RecoveryBuf: 2}, true)
	reg := obs.NewRegistry()
	sys.Observe(reg)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	bad := []wlog.InstanceID{"r1/t1#1"}
	rejected := 0
	for i := 0; i < alertBuf+extra; i++ {
		if !sys.Report(selfheal.Alert{Bad: bad}) {
			rejected++
		}
	}
	if rejected != extra {
		t.Fatalf("rejected = %d, want %d (%d reports into buffer %d)", rejected, extra, alertBuf+extra, alertBuf)
	}
	if m := sys.Metrics(); m.AlertsReported != alertBuf+extra || m.AlertsLost != extra {
		t.Fatalf("metrics: reported %d lost %d, want %d/%d", m.AlertsReported, m.AlertsLost, alertBuf+extra, extra)
	}
	snap := reg.Snapshot()
	if got := snap[obs.MAlertsReported]; got != float64(alertBuf+extra) {
		t.Errorf("%s = %g, want %d", obs.MAlertsReported, got, alertBuf+extra)
	}
	if got := snap[obs.MAlertsLost]; got != float64(extra) {
		t.Errorf("%s = %g, want %d", obs.MAlertsLost, got, extra)
	}
	if got := snap[obs.MAlertQueueDepth]; got != float64(alertBuf) {
		t.Errorf("%s = %g, want %d (buffer full)", obs.MAlertQueueDepth, got, alertBuf)
	}

	// Drain the backlog: the queues must empty and the drop counter must
	// not move — processing never loses alerts, only Report at a full
	// buffer does.
	if err := sys.DrainRecovery(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap[obs.MAlertQueueDepth] != 0 || snap[obs.MRecoveryQueueDepth] != 0 {
		t.Errorf("queues after drain: alert %g recovery %g, want 0/0",
			snap[obs.MAlertQueueDepth], snap[obs.MRecoveryQueueDepth])
	}
	if got := snap[obs.MAlertsLost]; got != float64(extra) {
		t.Errorf("%s moved during drain: %g, want %d", obs.MAlertsLost, got, extra)
	}
}

// TestRecoveryBoundObserved drives the recovery queue to its bound:
// recovery units are never dropped — at a full unit buffer the analyzer
// blocks and the scheduler force-drains (§IV.E) — so the gauge must hit the
// bound, the drop counter must stay untouched, and the forced drain must be
// visible as SCAN-state ticks.
func TestRecoveryBoundObserved(t *testing.T) {
	sys := newFig1System(t, selfheal.Config{AlertBuf: 4, RecoveryBuf: 1}, true)
	reg := obs.NewRegistry()
	sys.Observe(reg)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	bad := []wlog.InstanceID{"r1/t1#1"}
	sys.Report(selfheal.Alert{Bad: bad})
	sys.Report(selfheal.Alert{Bad: bad})
	if err := sys.Tick(); err != nil { // analyze alert 1 → unit buffer full
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap[obs.MRecoveryQueueDepth]; got != 1 {
		t.Fatalf("%s = %g, want 1 (bound reached)", obs.MRecoveryQueueDepth, got)
	}
	ticksScanBefore := snap[obs.MTicksScan]

	if err := sys.Tick(); err != nil { // forced drain executes the unit
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap[obs.MRecoveryQueueDepth]; got != 0 {
		t.Errorf("%s = %g after forced drain, want 0", obs.MRecoveryQueueDepth, got)
	}
	if got := snap[obs.MTicksScan]; got != ticksScanBefore+1 {
		t.Errorf("%s = %g, want %g (forced drain with an alert queued counts as SCAN)",
			obs.MTicksScan, got, ticksScanBefore+1)
	}
	if err := sys.DrainRecovery(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap[obs.MAlertsLost]; got != 0 {
		t.Errorf("%s = %g, want 0 (unit-buffer pressure must not drop alerts)", obs.MAlertsLost, got)
	}
	if got := snap[obs.MUnitsExecuted]; got != 2 {
		t.Errorf("%s = %g, want 2", obs.MUnitsExecuted, got)
	}
}
