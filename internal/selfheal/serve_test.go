package selfheal_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/selfheal"
	"selfheal/internal/stg"
	"selfheal/internal/wlog"
)

// TestServeCancelMidRecovery cancels Serve while a recovery unit is queued
// (state RECOVERY). Serve must return context.Canceled promptly, leave the
// queued unit intact, and the system must complete the recovery when driven
// again afterwards.
func TestServeCancelMidRecovery(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Queue the alert and run exactly the analysis tick, so a recovery
	// unit is pending before Serve ever runs.
	if !sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}}) {
		t.Fatal("alert lost")
	}
	if err := sys.Tick(); err != nil {
		t.Fatal(err)
	}
	if sys.State() != stg.Recovery {
		t.Fatalf("state = %v, want RECOVERY", sys.State())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Serve must not execute the unit
	m, err := sys.Serve(ctx, make(chan selfheal.Alert))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.UnitsExecuted != 0 {
		t.Fatalf("cancelled Serve executed %d units", m.UnitsExecuted)
	}
	if sys.State() != stg.Recovery {
		t.Fatalf("state = %v after cancel, want RECOVERY preserved", sys.State())
	}

	// The interrupted recovery resumes where it stopped.
	if err := sys.DrainRecovery(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
	if m := sys.Metrics(); m.UnitsExecuted != 1 {
		t.Errorf("units executed after resume = %d, want 1", m.UnitsExecuted)
	}
}

// TestServeDrainsQueuedUnitsOnClose closes the alert channel while units
// are still queued. Serve must not return until the recovery work has
// drained and the system is NORMAL again.
func TestServeDrainsQueuedUnitsOnClose(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if !sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}}) {
		t.Fatal("alert lost")
	}
	if err := sys.Tick(); err != nil { // analysis only: unit now queued
		t.Fatal(err)
	}
	if _, units := sys.QueueLengths(); units != 1 {
		t.Fatalf("queued units = %d, want 1", units)
	}

	alerts := make(chan selfheal.Alert)
	close(alerts) // closed with recovery work still pending

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := sys.Serve(ctx, alerts)
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitsExecuted != 1 {
		t.Fatalf("units executed = %d, want 1", m.UnitsExecuted)
	}
	if sys.State() != stg.Normal {
		t.Fatalf("state = %v after drain, want NORMAL", sys.State())
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
}

// TestServeConcurrentReport hammers Report, State, Metrics and QueueLengths
// from many goroutines while Serve owns the tick loop — the documented
// concurrency contract, checked under -race. Accounting must balance:
// every report is either analyzed or counted lost.
func TestServeConcurrentReport(t *testing.T) {
	sys := newFig1System(t, defaultCfg(), true)
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	alerts := make(chan selfheal.Alert)
	serveDone := make(chan error, 1)
	go func() {
		_, err := sys.Serve(context.Background(), alerts)
		serveDone <- err
	}()

	const goroutines, reports = 8, 25
	var wg sync.WaitGroup
	var acceptedN, rejectedN int
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reports; i++ {
				ok := sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
				mu.Lock()
				if ok {
					acceptedN++
				} else {
					rejectedN++
				}
				mu.Unlock()
				// Interleave the read-only API the contract promises is
				// safe alongside Serve.
				_ = sys.State()
				_ = sys.Metrics()
				_, _ = sys.QueueLengths()
			}
		}()
	}
	wg.Wait()
	close(alerts)

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain after channel close")
	}

	m := sys.Metrics()
	if acceptedN+rejectedN != goroutines*reports {
		t.Fatalf("accounting: accepted %d + rejected %d != %d", acceptedN, rejectedN, goroutines*reports)
	}
	if m.AlertsAnalyzed != acceptedN {
		t.Errorf("alerts analyzed = %d, want %d accepted", m.AlertsAnalyzed, acceptedN)
	}
	if m.AlertsLost != rejectedN {
		t.Errorf("alerts lost = %d, want %d rejected", m.AlertsLost, rejectedN)
	}
	if sys.State() != stg.Normal {
		t.Errorf("state = %v after drain, want NORMAL", sys.State())
	}
	// Repeated alerts for the same attack are idempotent: the store still
	// converges to the clean execution.
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), sys.Store()); err != nil {
		t.Error(err)
	}
}
