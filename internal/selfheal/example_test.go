package selfheal_test

import (
	"context"
	"fmt"
	"log"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Example shows the runtime's full loop: a workload executes under attack,
// the IDS reports, and the system scans, recovers and resumes — the Fig 2
// architecture in five calls.
func Example() {
	st := data.NewStore()
	st.Init("e", 0)
	sys, err := selfheal.New(selfheal.Config{AlertBuf: 8, RecoveryBuf: 8}, st)
	if err != nil {
		log.Fatal(err)
	}
	wf1, wf2 := wf.Fig1Specs()
	sys.Engine().AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	if err := sys.StartRun("r1", wf1); err != nil {
		log.Fatal(err)
	}
	if err := sys.StartRun("r2", wf2); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunToCompletion(context.Background(), 100); err != nil {
		log.Fatal(err)
	}

	sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{"r1/t1#1"}})
	fmt.Println("state after report:", sys.State())
	if err := sys.DrainRecovery(context.Background(), 10); err != nil {
		log.Fatal(err)
	}
	m := sys.Metrics()
	fmt.Println("state after recovery:", sys.State())
	fmt.Printf("undone %d, redone %d, newly executed %d\n", m.Undone, m.Redone, m.NewExecuted)
	v, _ := sys.Store().Get("f")
	fmt.Println("f =", v.Value)
	// Output:
	// state after report: SCAN
	// state after recovery: NORMAL
	// undone 7, redone 5, newly executed 1
	// f = 14
}
