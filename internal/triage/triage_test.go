package triage_test

import (
	"fmt"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// buildTwoChains commits two key-disjoint three-task chains (runs "a" and
// "b"): each task reads its predecessor's key and writes its own, so flow
// damage propagates down each chain but never across.
func buildTwoChains(t *testing.T) (*wlog.Log, *deps.IncrementalGraph) {
	t.Helper()
	l := wlog.New()
	g := deps.NewIncremental(l)
	for _, run := range []string{"a", "b"} {
		var lastWriter string
		var lastPos float64
		for i := 1; i <= 3; i++ {
			e := &wlog.Entry{Run: run, Task: wf.TaskID(fmt.Sprintf("t%d", i)), Visit: 1}
			if i > 1 {
				e.Reads = map[data.Key]wlog.ReadObs{
					data.Key(fmt.Sprintf("%s.k%d", run, i-1)): {Writer: lastWriter, WriterPos: lastPos},
				}
			}
			e.Writes = map[data.Key]data.Value{data.Key(fmt.Sprintf("%s.k%d", run, i)): data.Value(i)}
			lsn, err := l.Append(e)
			if err != nil {
				t.Fatal(err)
			}
			lastWriter, lastPos = string(e.ID()), float64(lsn)
		}
	}
	return l, g
}

func id(run string, task int) wlog.InstanceID {
	return wlog.FormatInstance(run, wf.TaskID(fmt.Sprintf("t%d", task)), 1)
}

func TestPartitionSplitsDisjointCones(t *testing.T) {
	_, g := buildTwoChains(t)
	cones := triage.Partition(g.Snapshot(), []triage.Alert{
		{Bad: []wlog.InstanceID{id("a", 1)}},
		{Bad: []wlog.InstanceID{id("b", 1)}},
		{Bad: []wlog.InstanceID{id("a", 2)}}, // inside a1's cone
	})
	if len(cones) != 2 {
		t.Fatalf("cones = %d, want 2: %+v", len(cones), cones)
	}
	// Deterministic order: sorted by smallest bad instance ("a/..." < "b/...").
	if cones[0].Alerts != 2 || len(cones[0].Bad) != 2 {
		t.Errorf("chain-a cone = %+v, want 2 alerts folding {a/t1#1,a/t2#1}", cones[0])
	}
	if cones[1].Alerts != 1 || len(cones[1].Bad) != 1 || cones[1].Bad[0] != id("b", 1) {
		t.Errorf("chain-b cone = %+v", cones[1])
	}
}

// TestPartitionMergesThroughSharedClosure: two alerts that name disjoint
// instances still share a cone when one's closure reaches the other's.
func TestPartitionMergesThroughSharedClosure(t *testing.T) {
	_, g := buildTwoChains(t)
	cones := triage.Partition(g.Snapshot(), []triage.Alert{
		{Bad: []wlog.InstanceID{id("a", 1)}}, // closure: a1,a2,a3
		{Bad: []wlog.InstanceID{id("a", 3)}}, // closure: a3
	})
	if len(cones) != 1 || cones[0].Alerts != 2 {
		t.Fatalf("cones = %+v, want one cone of 2 alerts", cones)
	}
}

// TestPartitionDeduplicatesWithinCone: duplicate reports of the same bad
// set fold into one cone with the union's multiplicity removed.
func TestPartitionDeduplicatesWithinCone(t *testing.T) {
	_, g := buildTwoChains(t)
	bad := []wlog.InstanceID{id("a", 1)}
	cones := triage.Partition(g.Snapshot(), []triage.Alert{{Bad: bad}, {Bad: bad}, {Bad: bad}})
	if len(cones) != 1 || cones[0].Alerts != 3 || len(cones[0].Bad) != 1 {
		t.Fatalf("cones = %+v, want one cone, 3 alerts, 1 bad instance", cones)
	}
}

func TestPartitionEpochPinned(t *testing.T) {
	l, g := buildTwoChains(t)
	snap := g.Snapshot()
	// A later commit bridges the chains: "bridge" reads a.k3 and writes
	// b.k1. The pinned snapshot must not see it.
	a3 := id("a", 3)
	e := &wlog.Entry{Run: "bridge", Task: "x", Visit: 1,
		Reads:  map[data.Key]wlog.ReadObs{"a.k3": {Writer: string(a3), WriterPos: 3}},
		Writes: map[data.Key]data.Value{"bridge.out": 1}}
	if _, err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	alerts := []triage.Alert{
		{Bad: []wlog.InstanceID{a3}},
		{Bad: []wlog.InstanceID{e.ID()}},
	}
	if got := len(triage.Partition(snap, alerts)); got != 2 {
		t.Errorf("pinned snapshot cones = %d, want 2 (bridge entry is past the epoch)", got)
	}
	if got := len(triage.Partition(g.Snapshot(), alerts)); got != 1 {
		t.Errorf("fresh snapshot cones = %d, want 1 (bridge entry joins them)", got)
	}
}

func TestCoverageArmCoveredRelease(t *testing.T) {
	c := triage.NewCoverage()
	closure := []wlog.InstanceID{id("a", 1), id("a", 2), id("a", 3)}
	if c.Covered(closure[:1]) {
		t.Fatal("empty coverage covered an alert")
	}
	release := c.Arm(closure)
	if c.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", c.InFlight())
	}
	if !c.Covered([]wlog.InstanceID{id("a", 2), id("a", 3)}) {
		t.Error("subset of armed closure not covered")
	}
	if c.Covered([]wlog.InstanceID{id("a", 2), id("b", 1)}) {
		t.Error("alert escaping the closure reported covered")
	}
	if c.Covered(nil) {
		t.Error("empty bad set reported covered")
	}

	// Overlapping signatures refcount: the shared instance stays covered
	// until both units complete.
	release2 := c.Arm(closure[:2])
	release()
	release() // idempotent
	if !c.Covered(closure[:2]) {
		t.Error("instances of the still-armed unit uncovered after sibling release")
	}
	if c.Covered(closure[2:]) {
		t.Error("instance only the released unit covered is still covered")
	}
	release2()
	if c.InFlight() != 0 || c.Covered(closure[:1]) {
		t.Error("coverage did not re-arm after all units completed")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := triage.Key([]wlog.InstanceID{"r/t2#1", "r/t1#1"})
	b := triage.Key([]wlog.InstanceID{"r/t1#1", "r/t2#1"})
	if a != b {
		t.Errorf("order-sensitive keys: %q vs %q", a, b)
	}
	if a == triage.Key([]wlog.InstanceID{"r/t1#1"}) {
		t.Error("distinct sets share a key")
	}
}

func TestOptions(t *testing.T) {
	if (triage.Options{}).Enabled() {
		t.Error("zero Options enabled")
	}
	if all := triage.All(); !all.Coalesce || !all.Prefilter || !all.Dedupe || !all.Enabled() {
		t.Errorf("All() = %+v", all)
	}
}
