// Package triage is the streaming front-end of the alert pipeline: it turns
// a burst of raw IDS alerts into the minimum set of damage-assessment calls
// the recovery analyzer actually has to make. Under Poisson alert storms the
// per-alert pipeline is exactly the overload regime §V's CTMC predicts — the
// analyzer's service rate μ_a degrades with queue length while arrivals keep
// coming, the bounded buffer fills, and the loss probability spikes. Triage
// attacks the arrival side of that balance the way SLEUTH's real-time tag
// propagation does (PAPERS.md): aggregate provenance cheaply *before* deep
// analysis, so the expensive work scales with the number of independent
// attacks, not with the number of alerts the IDS emitted about them.
//
// Three independent mechanisms compose (each its own Options flag):
//
//   - Cone coalescing (Partition): alerts whose damage cones — the →_f*
//     flow closures of their reported bad sets over an epoch-pinned
//     deps.Graph snapshot — intersect are folded into one Cone, producing
//     one AnalyzeGraph call per cone instead of per alert. A union-find
//     over closure membership keeps the partition O(cone) per alert.
//   - Covered-alert prefilter (Coverage): a refcounted signature set over
//     the damage closures of in-flight recovery units. An alert whose bad
//     set lies entirely inside a queued or executing unit's closure is
//     dropped in O(|bad|): the unit's repair re-analyzes the log at
//     execution time, so the alert's damage is already scheduled for undo
//     and (per Theorem 2) redo. Signatures are released — the prefilter
//     re-arms — when the unit completes, so nothing is silently lost:
//     alerts arriving after completion trigger a fresh analysis.
//   - Report-time dedupe (Key): an alert whose canonical bad set is
//     already sitting in the alert queue is absorbed without consuming
//     buffer space or an analysis.
//
// The package is pure mechanism: internal/selfheal wires it into the
// deterministic tick runtime and internal/shard into the concurrent
// service. docs/TRIAGE.md maps each mechanism to the paper's loss model.
package triage

import (
	"sort"
	"strings"
	"sync"

	"selfheal/internal/deps"
	"selfheal/internal/wlog"
)

// Alert is one IDS report entering triage: the set of instances reported
// malicious.
type Alert struct {
	Bad []wlog.InstanceID
}

// Options selects the triage mechanisms. The zero value disables all of
// them — the runtime behaves exactly like the pre-triage per-alert
// pipeline (the configuration the CTMC models).
type Options struct {
	// Coalesce drains the alert queue in batches and partitions the batch
	// into damage cones, analyzing once per cone.
	Coalesce bool
	// Prefilter drops alerts whose bad set is already inside the damage
	// closure of a queued or executing recovery unit.
	Prefilter bool
	// Dedupe absorbs Report-time repeats of a bad set that is already
	// queued and unanalyzed.
	Dedupe bool
}

// All enables every triage mechanism.
func All() Options { return Options{Coalesce: true, Prefilter: true, Dedupe: true} }

// Enabled reports whether any mechanism is on.
func (o Options) Enabled() bool { return o.Coalesce || o.Prefilter || o.Dedupe }

// Key returns the canonical dedupe key of a bad set: member order and
// multiplicity do not matter. Instance IDs never contain NUL, so the join
// is unambiguous.
func Key(bad []wlog.InstanceID) string {
	ids := make([]string, len(bad))
	for i, id := range bad {
		ids[i] = string(id)
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x00")
}

// Cone is one coalesced damage cone: the union of the bad sets of every
// alert whose flow closure touches it.
type Cone struct {
	// Bad is the deduplicated, sorted union of the member alerts' bad sets.
	Bad []wlog.InstanceID
	// Alerts counts the source alerts folded into the cone.
	Alerts int
}

// Partition groups alerts into damage cones over the graph snapshot g: two
// alerts share a cone iff their →_f* closures intersect. Because the flow
// closure of a union of seeds is the union of the seeds' closures, each
// cone's eventual AnalyzeGraph call assesses exactly the damage the member
// alerts would have produced separately — coalescing changes the number of
// analyses, never the analyzed set.
//
// Cost: one closure walk per alert (each scales with that alert's cone, not
// the log) plus near-O(1) union-find folds. Cones are returned in
// deterministic order (sorted by their smallest bad instance).
func Partition(g *deps.Graph, alerts []Alert) []Cone {
	if len(alerts) == 0 {
		return nil
	}
	// Union-find over alert indices.
	parent := make([]int, len(alerts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// claimed maps each closure instance to the first alert that reached
	// it; a second alert reaching it proves the cones intersect.
	claimed := make(map[wlog.InstanceID]int)
	seed := make(map[wlog.InstanceID]bool)
	for i, a := range alerts {
		clear(seed)
		for _, id := range a.Bad {
			seed[id] = true
		}
		for id := range g.ReadersClosure(seed) {
			if j, ok := claimed[id]; ok {
				union(i, j)
			} else {
				claimed[id] = i
			}
		}
	}

	// Fold each group's bad sets into one deduplicated cone.
	byRoot := make(map[int]*Cone)
	seen := make(map[int]map[wlog.InstanceID]bool)
	for i, a := range alerts {
		r := find(i)
		c := byRoot[r]
		if c == nil {
			c = &Cone{}
			byRoot[r] = c
			seen[r] = make(map[wlog.InstanceID]bool)
		}
		c.Alerts++
		for _, id := range a.Bad {
			if !seen[r][id] {
				seen[r][id] = true
				c.Bad = append(c.Bad, id)
			}
		}
	}
	out := make([]Cone, 0, len(byRoot))
	for _, c := range byRoot {
		sort.Slice(c.Bad, func(i, j int) bool { return c.Bad[i] < c.Bad[j] })
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bad[0] < out[j].Bad[0] })
	return out
}

// ConeOf wraps a single alert as its own cone — the degenerate partition
// the per-alert pipeline uses — deduplicating and sorting its bad set
// without touching the dependence graph.
func ConeOf(a Alert) Cone {
	seen := make(map[wlog.InstanceID]bool, len(a.Bad))
	c := Cone{Alerts: 1}
	for _, id := range a.Bad {
		if !seen[id] {
			seen[id] = true
			c.Bad = append(c.Bad, id)
		}
	}
	sort.Slice(c.Bad, func(i, j int) bool { return c.Bad[i] < c.Bad[j] })
	return c
}

// Coverage tracks the damage-cone signatures of in-flight recovery units
// for the covered-alert prefilter. Membership is refcounted so overlapping
// units compose: an instance stays covered until every unit whose closure
// contains it has completed. Safe for concurrent use.
type Coverage struct {
	mu    sync.Mutex
	refs  map[wlog.InstanceID]int
	armed int
}

// NewCoverage returns an empty Coverage.
func NewCoverage() *Coverage {
	return &Coverage{refs: make(map[wlog.InstanceID]int)}
}

// Arm registers one unit's damage-closure signature (typically the
// analysis's DefiniteUndo set — the instances the unit's repair is
// guaranteed to undo and, per Theorem 2, re-execute where legitimate) and
// returns the release that re-arms the prefilter when the unit completes.
// Release is idempotent.
func (c *Coverage) Arm(closure []wlog.InstanceID) func() {
	c.mu.Lock()
	for _, id := range closure {
		c.refs[id]++
	}
	c.armed++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			for _, id := range closure {
				if c.refs[id]--; c.refs[id] <= 0 {
					delete(c.refs, id)
				}
			}
			c.armed--
			c.mu.Unlock()
		})
	}
}

// Covered reports whether every instance in bad lies inside some in-flight
// unit's signature — O(|bad|). An empty bad set is never covered.
func (c *Coverage) Covered(bad []wlog.InstanceID) bool {
	if len(bad) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range bad {
		if c.refs[id] == 0 {
			return false
		}
	}
	return true
}

// InFlight returns the number of armed, unreleased unit signatures.
func (c *Coverage) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}
