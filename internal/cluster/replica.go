package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// runState is one run's execution frontier as derived from the stream.
type runState struct {
	cur    wf.TaskID
	visits map[wf.TaskID]int
	done   bool
}

// repairStats accumulates the replica's deterministic repair accounting.
type repairStats struct {
	units, undone, redone, newExec, errors, auditViolations int
	lastErr                                                 error
	lastAudit                                               error
}

// replica is the deterministic state machine every node holds: the full
// system log, the versioned store, the run specifications and every run's
// execution frontier, all derived by applying the record stream in order.
// Two replicas at the same applied position are byte-identical — including
// after repairs, which execute at a fixed stream position with Parallel=1.
type replica struct {
	mu      sync.Mutex
	cond    *sync.Cond
	applied int
	// published is the replication cursor: the highest seq peers may see.
	// On followers it always equals applied. On the stamper, group stamping
	// applies a batch locally first (entry i+1's OCC validation reads entry
	// i's writes) and publishes only after the batch's single journal fsync
	// — so nothing non-durable on the stamper ever replicates.
	published int
	history   []Record // records 1..applied, served to catching-up peers

	log   *wlog.Log
	store *data.Store
	specs map[string]*wf.Spec
	runs  map[string]*runState

	ropts recovery.Options
	stats repairStats
}

func newReplica() *replica {
	r := &replica{
		log:   wlog.New(),
		store: data.NewStore(),
		specs: make(map[string]*wf.Spec),
		runs:  make(map[string]*runState),
		// Parallel=1 pins the repair schedule: every replica computes the
		// identical result at the identical stream position.
		ropts: recovery.Options{Parallel: 1},
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Applied returns the replication cursor.
func (r *replica) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// WaitApplied blocks until the replica has applied at least seq or the
// context dies.
func (r *replica) WaitApplied(ctx context.Context, seq int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied < seq {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: waiting for record %d (applied %d): %w", seq, r.applied, err)
		}
		// Arm a waker so cond.Wait cannot outlive the context.
		stop := context.AfterFunc(ctx, r.cond.Broadcast)
		r.cond.Wait()
		stop()
	}
	return nil
}

// Published returns the replication cursor (what peers may fetch).
func (r *replica) Published() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.published
}

// PublishTo advances the replication cursor after the stamper's batch
// journal fsync, making the batch visible to pushers and pull fetches.
func (r *replica) PublishTo(seq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.applied {
		seq = r.applied
	}
	if seq > r.published {
		r.published = seq
	}
}

// RecordsAfter returns records (after, after+len] for peer catch-up, capped
// at the published cursor: unfsynced stamper records never leave the node.
func (r *replica) RecordsAfter(after, max int) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.published
	if after >= end {
		return nil
	}
	if max > 0 && end-after > max {
		end = after + max
	}
	return append([]Record(nil), r.history[after:end]...)
}

// Apply applies one replicated (already durable at its origin) record and
// publishes it. Records must arrive in stream order; a gap or replayed
// record is reported by the boolean without touching state.
func (r *replica) Apply(rec *Record) (applied bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ok, err := r.applyLocked(rec)
	if ok && r.published < r.applied {
		r.published = r.applied
	}
	return ok, err
}

// applyStamped applies a freshly stamped record without publishing it —
// the stamper's group-commit path, which publishes the whole batch after
// its single journal fsync.
func (r *replica) applyStamped(rec *Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ok, err := r.applyLocked(rec)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("cluster: stamper replica refused record %d", rec.Seq)
	}
	return nil
}

func (r *replica) applyLocked(rec *Record) (applied bool, err error) {
	if rec.Seq <= r.applied {
		return false, nil // duplicate delivery: already applied
	}
	if rec.Seq != r.applied+1 {
		return false, nil // gap: caller must fetch the missing records
	}
	switch rec.Kind {
	case KindSpec:
		err = r.applySpec(rec)
	case KindEntry:
		err = r.applyEntry(rec)
	case KindRepair:
		r.applyRepair(rec)
	default:
		err = fmt.Errorf("cluster: record %d has unknown kind %q", rec.Seq, rec.Kind)
	}
	if err != nil {
		// A failed application is a stream-integrity error: refusing the
		// record (and everything after it) is safer than diverging.
		return false, err
	}
	r.applied = rec.Seq
	r.history = append(r.history, *rec)
	r.cond.Broadcast()
	return true, nil
}

func (r *replica) applySpec(rec *Record) error {
	spec, init, err := wfjson.Build(rec.Spec)
	if err != nil {
		return fmt.Errorf("cluster: record %d spec: %w", rec.Seq, err)
	}
	if _, dup := r.specs[rec.Run]; dup {
		return fmt.Errorf("cluster: record %d: run %s already registered", rec.Seq, rec.Run)
	}
	// First writer wins, decided at this stream position — deterministic
	// on every replica regardless of map iteration order because Init only
	// touches keys with no versions at all.
	for k, v := range init {
		if _, ok := r.store.Get(k); !ok {
			r.store.Init(k, v)
		}
	}
	r.specs[rec.Run] = spec
	r.runs[rec.Run] = &runState{cur: spec.Start, visits: make(map[wf.TaskID]int)}
	return nil
}

func (r *replica) applyEntry(rec *Record) error {
	if rec.Entry == nil {
		return fmt.Errorf("cluster: record %d: entry record without entry", rec.Seq)
	}
	e := rec.Entry.ToEntry()
	lsn, err := r.log.Append(e)
	if err != nil {
		return fmt.Errorf("cluster: record %d: %w", rec.Seq, err)
	}
	id := e.ID()
	for k, v := range e.Writes {
		r.store.Write(k, v, float64(lsn), string(id), false)
	}
	if e.Forged {
		return nil
	}
	rs := r.runs[e.Run]
	if rs == nil {
		return fmt.Errorf("cluster: record %d: entry for unregistered run %s", rec.Seq, e.Run)
	}
	spec := r.specs[e.Run]
	task := spec.Tasks[e.Task]
	if task == nil {
		return fmt.Errorf("cluster: record %d: run %s has no task %s", rec.Seq, e.Run, e.Task)
	}
	rs.visits[e.Task] = e.Visit
	switch {
	case len(task.Next) == 0:
		rs.done = true
	case len(task.Next) == 1:
		rs.cur = task.Next[0]
	default:
		rs.cur = e.Chosen
	}
	return nil
}

// applyRepair runs the deterministic repair at this stream position. A
// repair that fails to compute is recorded (the recovery-error oracle
// surfaces it) but does not poison the stream: every replica fails it
// identically, so they stay convergent.
func (r *replica) applyRepair(rec *Record) {
	bad := make([]wlog.InstanceID, len(rec.Bad))
	for i, s := range rec.Bad {
		bad[i] = wlog.InstanceID(s)
	}
	res, err := recovery.Repair(r.store, r.log, r.specsCopy(), bad, r.ropts)
	r.stats.units++
	if err != nil {
		r.stats.errors++
		r.stats.lastErr = fmt.Errorf("cluster: repair at record %d: %w", rec.Seq, err)
		return
	}
	r.store = res.Store
	r.stats.undone += len(res.Undone)
	r.stats.redone += len(res.Redone)
	r.stats.newExec += len(res.NewExecuted)
	if audit := recovery.AuditSchedule(res); len(audit) > 0 {
		r.stats.auditViolations += len(audit)
		r.stats.lastAudit = fmt.Errorf("cluster: repair schedule violates Theorem-3 orders: %w", audit[0])
	}
	// Move every rewritten run onto its corrected frontier, rebuilding
	// visit counts from the full trace (forged included) exactly like the
	// single-node engine's resync.
	for run, rs := range r.runs {
		cur, done, ok := res.Frontier(run, r.specs[run])
		if !ok {
			continue
		}
		rs.cur, rs.done = cur, done
		visits := make(map[wf.TaskID]int)
		for _, e := range r.log.Trace(run, true) {
			if e.Visit > visits[e.Task] {
				visits[e.Task] = e.Visit
			}
		}
		rs.visits = visits
	}
}

func (r *replica) specsCopy() map[string]*wf.Spec {
	out := make(map[string]*wf.Spec, len(r.specs))
	for k, v := range r.specs {
		out[k] = v
	}
	return out
}

// Frontier returns a run's current execution position: the task to execute
// next, the visit number that execution would commit, and whether the run
// exists / is done.
func (r *replica) Frontier(run string) (cur wf.TaskID, visit int, done, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.runs[run]
	if rs == nil {
		return "", 0, false, false
	}
	return rs.cur, rs.visits[rs.cur] + 1, rs.done, true
}

// NextLSN returns the LSN the next applied entry record will receive —
// the executor's prediction anchor for pipelined (windowed) submission:
// an in-window read of an earlier in-window write carries the predicted
// WriterPos, and the stamper's OCC check rejects the window's tail if any
// foreign record interleaved and shifted the LSNs.
func (r *replica) NextLSN() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Len() + 1
}

// RunVisits returns a copy of a run's committed visit counts (nil when the
// run is unknown) — the base the executor extends while speculating a
// submission window.
func (r *replica) RunVisits(run string) map[wf.TaskID]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.runs[run]
	if rs == nil {
		return nil
	}
	out := make(map[wf.TaskID]int, len(rs.visits))
	for k, v := range rs.visits {
		out[k] = v
	}
	return out
}

// Spec returns a run's specification.
func (r *replica) Spec(run string) *wf.Spec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.specs[run]
}

// HasRun reports whether the run is registered.
func (r *replica) HasRun(run string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[run] != nil
}

// ActiveRuns returns the IDs of runs that are not done, sorted.
func (r *replica) ActiveRuns() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, rs := range r.runs {
		if !rs.done {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// RunIDs returns every registered run ID, sorted.
func (r *replica) RunIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.runs))
	for id := range r.runs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunDone reports whether a run exists and has completed.
func (r *replica) RunDone(run string) (done, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.runs[run]
	if rs == nil {
		return false, false
	}
	return rs.done, true
}

// Stats returns a copy of the repair accounting.
func (r *replica) Stats() repairStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Snapshot returns the committed value of every key.
func (r *replica) Snapshot() map[data.Key]data.Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Snapshot()
}

// CheckIndex re-validates the store's writer index.
func (r *replica) CheckIndex() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.CheckIndex()
}

// Trace returns a run's committed instance IDs in LSN order.
func (r *replica) Trace(run string, withForged bool) []wlog.InstanceID {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := r.log.Trace(run, withForged)
	out := make([]wlog.InstanceID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID())
	}
	return out
}

// Steps counts a run's committed normal (non-forged) executions.
func (r *replica) Steps(run string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.log.Trace(run, false))
}

// HasInstance reports whether an instance is committed in the log.
func (r *replica) HasInstance(id wlog.InstanceID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.log.Get(id)
	return ok
}

// DamageKeys computes the damage-key closure of the accused instances on
// this replica (the distributed-assessment partition step).
func (r *replica) DamageKeys(bad []wlog.InstanceID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	closure := recovery.DamageKeyClosure(r.log, r.specsCopy(), bad)
	out := make([]string, 0, len(closure))
	for k := range closure {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// LogEntries returns the log's truncation base and committed entries.
func (r *replica) LogEntries() (int, []*wlog.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Base(), r.log.Entries()
}

// readView returns a task's read observations and plain values against the
// replica's current committed state — the executor's optimistic read set,
// revalidated by the stamper at commit time.
func (r *replica) readView(task *wf.Task) (map[data.Key]wlog.ReadObs, map[data.Key]data.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := make(map[data.Key]wlog.ReadObs, len(task.Reads))
	vals := make(map[data.Key]data.Value, len(task.Reads))
	for _, k := range task.Reads {
		v, ok := r.store.Get(k)
		if !ok {
			obs[k] = wlog.ReadObs{Value: 0, WriterPos: wlog.MissingPos}
			vals[k] = 0
			continue
		}
		obs[k] = wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
		vals[k] = v.Value
	}
	return obs, vals
}

// currentObs returns the current committed observation for one key.
func (r *replica) currentObs(k data.Key) wlog.ReadObs {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.store.Get(k)
	if !ok {
		return wlog.ReadObs{Value: 0, WriterPos: wlog.MissingPos}
	}
	return wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
}
