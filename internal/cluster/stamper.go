package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Submission statuses the stamper returns to executors.
const (
	// SubOK: the entry was stamped; Seq is its stream position.
	SubOK = "ok"
	// SubDup: the instance is already committed (a retransmit after a lost
	// response) — benign; Seq is the stamper's current position.
	SubDup = "dup"
	// SubStale: the submission's frontier or read versions no longer match
	// the stamper's replica. The executor catches its replica up to Seq
	// and re-executes.
	SubStale = "stale"
	// SubPaused: the task's footprint intersects a quiesced incident's
	// damaged keys. The executor retries after the repair releases.
	SubPaused = "paused"
)

// SubmitResult is the stamper's verdict on an entry submission.
type SubmitResult struct {
	Status string `json:"status"`
	Seq    int    `json:"seq"`
	Reason string `json:"reason,omitempty"`
}

// stamper is the cluster's single sequencer: the lowest-sorted member. It
// owns the dense record stream — every spec, entry and repair record is
// validated against the stamper's replica and stamped under one mutex, so
// the stream is a serialization of the whole cluster's commits. Entry
// submissions carry the executor's optimistic read observations; the
// stamper re-reads its own replica and rejects any submission whose
// observations are no longer current (the §VII merge discipline as OCC).
//
// Entry stamping is batch-first (the durable WAL's committer-group
// pattern): submitters enqueue jobs and block while a single stamping
// goroutine drains everything pending, validates and applies each entry
// under one s.mu acquisition, writes the whole batch to the journal with
// one write+fsync, then publishes the batch to the replication cursor and
// wakes every submitter. SubmitEntry is the degenerate one-entry batch.
type stamper struct {
	n  *Node
	mu sync.Mutex
	// pausedKeys is the admission gate of partial quiescence: while an
	// incident holds keys, no entry touching them is stamped, anywhere in
	// the cluster — even from nodes that were not asked to quiesce
	// (a clean node may own a task that READS a damaged key).
	pausedKeys map[data.Key]bool
	// err is the sticky stamping failure: once a journal write or fsync
	// fails, the stamper cannot prove durability for anything after it and
	// refuses all further stamping (mirror of the durable WAL's sticky
	// error). Guarded by mu.
	err error

	qmu   sync.Mutex
	qcond *sync.Cond
	queue []*stampJob
}

// stampJob is one submitter's pending batch: the stamping loop fills
// results (one verdict per entry, in order) and closes done.
type stampJob struct {
	origin  string
	entries []*EntryJSON
	results []SubmitResult
	err     error
	done    chan struct{}
}

func newStamper(n *Node) *stamper {
	s := &stamper{n: n, pausedKeys: make(map[data.Key]bool)}
	s.qcond = sync.NewCond(&s.qmu)
	return s
}

// wake unblocks the stamping loop (used by Node.Stop).
func (s *stamper) wake() {
	s.qmu.Lock()
	s.qcond.Broadcast()
	s.qmu.Unlock()
}

// loop is the single stamping goroutine: it drains every queued job into
// one group, stamps the group, and repeats. Batching is by absorption —
// whatever queued while the previous group was fsyncing forms the next
// group, so batch size adapts to load with no added latency when idle.
func (s *stamper) loop() {
	defer s.n.wg.Done()
	for {
		s.qmu.Lock()
		for len(s.queue) == 0 && !s.n.stopped() {
			s.qcond.Wait()
		}
		jobs := s.queue
		s.queue = nil
		s.qmu.Unlock()
		if s.n.stopped() {
			for _, job := range jobs {
				job.err = errors.New("cluster: node stopped")
				close(job.done)
			}
			return
		}
		s.stampJobs(jobs)
	}
}

// stampJobs validates, stamps and applies every entry of every job under
// one s.mu acquisition, then makes the whole group durable with a single
// journal write+fsync before publishing it to replication.
func (s *stamper) stampJobs(jobs []*stampJob) {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		for _, job := range jobs {
			job.err = s.err
			close(job.done)
		}
		return
	}
	var buf []byte
	stamped, hi := 0, 0
	for _, job := range jobs {
		job.results = make([]SubmitResult, len(job.entries))
		for i, ej := range job.entries {
			res, admit := s.validateEntryLocked(ej)
			if !admit {
				job.results[i] = res
				continue
			}
			rec := &Record{Kind: KindEntry, Origin: job.origin, Entry: ej}
			rec.Seq = s.n.rep.Applied() + 1
			if err := s.n.rep.applyStamped(rec); err != nil {
				job.results[i] = SubmitResult{Status: SubStale, Seq: s.n.rep.Applied(), Reason: err.Error()}
				continue
			}
			buf = encodeFramedRecord(buf, rec)
			stamped++
			hi = rec.Seq
			s.n.o.recordStamped(rec.Kind)
			job.results[i] = SubmitResult{Status: SubOK, Seq: rec.Seq}
		}
	}
	if stamped > 0 {
		if err := s.n.journal.appendBatch(buf); err != nil {
			// The batch was applied locally but is not durable: wedge the
			// stamper (replica stays ahead of published forever) and fail
			// every submitter — none of these entries may be reported ok.
			s.err = fmt.Errorf("cluster: stamper journal: %w", err)
			s.mu.Unlock()
			for _, job := range jobs {
				job.err = s.err
				close(job.done)
			}
			return
		}
		s.n.rep.PublishTo(hi)
		s.n.o.stampBatch(stamped)
	}
	s.mu.Unlock()
	if stamped > 0 {
		s.n.wakePushers()
	}
	for _, job := range jobs {
		close(job.done)
	}
}

// validateEntryLocked re-runs the §VII merge discipline for one submitted
// entry against the stamper's replica (which already reflects every earlier
// entry of the current group). The boolean reports whether to stamp.
func (s *stamper) validateEntryLocked(ej *EntryJSON) (SubmitResult, bool) {
	rep := s.n.rep
	inst := wlog.FormatInstance(ej.Run, wf.TaskID(ej.Task), ej.Visit)
	if rep.HasInstance(inst) {
		return SubmitResult{Status: SubDup, Seq: rep.Applied()}, false
	}
	if ej.Forged {
		// Forged entries commit outside any specification (the attacker
		// does not wait for quiescence either): existence is the only check,
		// exactly as SubmitForge admits them.
		return SubmitResult{}, true
	}
	spec := rep.Spec(ej.Run)
	if spec == nil {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(), Reason: "unknown run"}, false
	}
	task := spec.Tasks[wf.TaskID(ej.Task)]
	if task == nil {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(), Reason: "unknown task"}, false
	}
	cur, visit, done, _ := rep.Frontier(ej.Run)
	if done || cur != wf.TaskID(ej.Task) || visit != ej.Visit {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(),
			Reason: fmt.Sprintf("frontier is %s#%d", cur, visit)}, false
	}
	// Partial-quiescence admission gate: reject anything touching a
	// quiesced key (reads included — a damaged value must not leak into a
	// new commit while the repair is in flight).
	for _, k := range task.Reads {
		if s.pausedKeys[k] {
			return SubmitResult{Status: SubPaused, Seq: rep.Applied()}, false
		}
	}
	for _, k := range task.Writes {
		if s.pausedKeys[k] {
			return SubmitResult{Status: SubPaused, Seq: rep.Applied()}, false
		}
	}
	// OCC validation: every observed read version must still be the
	// current committed version on the stamper's replica.
	for _, k := range task.Reads {
		want := rep.currentObs(k)
		got, ok := ej.Reads[string(k)]
		if !ok || data.Value(got.Value) != want.Value || got.Writer != want.Writer || got.WriterPos != want.WriterPos {
			return SubmitResult{Status: SubStale, Seq: rep.Applied(),
				Reason: fmt.Sprintf("read %s is stale", k)}, false
		}
	}
	return SubmitResult{}, true
}

// SubmitEntries validates and stamps a batch of entries, returning one
// verdict per entry in submission order. The call blocks until the group-
// commit loop has made the accepted entries durable. Entries of one batch
// are validated sequentially against the evolving replica, so a pipelined
// window may read its own earlier writes.
func (s *stamper) SubmitEntries(origin string, entries []*EntryJSON) ([]SubmitResult, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	job := &stampJob{origin: origin, entries: entries, done: make(chan struct{})}
	s.qmu.Lock()
	s.queue = append(s.queue, job)
	s.qcond.Signal()
	s.qmu.Unlock()
	select {
	case <-job.done:
	case <-s.n.stop:
		return nil, errors.New("cluster: node stopped")
	}
	if job.err != nil {
		return nil, job.err
	}
	return job.results, nil
}

// stampLocked assigns the next stream position, journals (one fsync),
// applies locally and wakes the replication pushers — the direct path for
// rare control-plane records (spec, forge, repair). Callers hold s.mu.
func (s *stamper) stampLocked(rec *Record) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	rec.Seq = s.n.rep.Applied() + 1
	if err := s.n.journal.append(rec); err != nil {
		s.err = fmt.Errorf("cluster: stamper journal: %w", err)
		return 0, s.err
	}
	ok, err := s.n.rep.Apply(rec)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("cluster: stamper replica refused record %d", rec.Seq)
	}
	s.n.o.recordStamped(rec.Kind)
	s.n.wakePushers()
	return rec.Seq, nil
}

// SubmitSpec validates and stamps a run registration.
func (s *stamper) SubmitSpec(origin, run string, doc *wfjson.SpecJSON) (int, error) {
	_, init, err := wfjson.Build(doc)
	if err != nil {
		return 0, fmt.Errorf("cluster: run %s: %w: %v", run, engine.ErrBadSpec, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n.rep.HasRun(run) {
		return 0, fmt.Errorf("cluster: run %s: %w", run, engine.ErrRunExists)
	}
	initW := make(map[string]int64, len(init))
	for k, v := range init {
		initW[string(k)] = int64(v)
	}
	return s.stampLocked(&Record{Kind: KindSpec, Origin: origin, Run: run, Spec: doc, Init: initW})
}

// SubmitEntry validates an executor's optimistic submission and stamps it —
// the degenerate one-entry batch through the group-commit loop.
func (s *stamper) SubmitEntry(origin string, ej *EntryJSON) SubmitResult {
	res, err := s.SubmitEntries(origin, []*EntryJSON{ej})
	if err != nil {
		return SubmitResult{Status: SubStale, Seq: s.n.rep.Applied(), Reason: err.Error()}
	}
	return res[0]
}

// SubmitForge commits an attacker task outside any specification, reading
// the current versions of the named keys — the cluster's equivalent of the
// single-node engine's InjectForged (always visit 1).
func (s *stamper) SubmitForge(origin, run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.n.rep
	inst := wlog.FormatInstance(run, wf.TaskID(task), 1)
	if rep.HasInstance(inst) {
		return "", 0, fmt.Errorf("cluster: forged instance %s already committed: %w", inst, engine.ErrRunExists)
	}
	ej := &EntryJSON{
		Run:    run,
		Task:   task,
		Visit:  1,
		Forged: true,
		Reads:  make(map[string]ReadObsJSON, len(reads)),
		Writes: writes,
	}
	for _, k := range reads {
		o := rep.currentObs(data.Key(k))
		ej.Reads[k] = ReadObsJSON{Value: int64(o.Value), Writer: o.Writer, WriterPos: o.WriterPos}
	}
	seq, err := s.stampLocked(&Record{Kind: KindEntry, Origin: origin, Entry: ej})
	if err != nil {
		return "", 0, err
	}
	return inst, seq, nil
}

// SubmitRepair stamps a repair record for the accused instances. The caller
// (the incident leader) has already quiesced the damaged keys' owners.
func (s *stamper) SubmitRepair(origin string, bad []string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range bad {
		if !s.n.rep.HasInstance(wlog.InstanceID(id)) {
			return 0, fmt.Errorf("cluster: repair names unknown instance %s: %w", id, engine.ErrUnknownRun)
		}
	}
	return s.stampLocked(&Record{Kind: KindRepair, Origin: origin, Bad: bad})
}

// PauseKeys adds keys to the admission gate (incident quiesce).
func (s *stamper) PauseKeys(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.pausedKeys[data.Key(k)] = true
	}
	s.n.o.pausedKeys(len(s.pausedKeys))
}

// ReleaseKeys removes keys from the admission gate.
func (s *stamper) ReleaseKeys(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.pausedKeys, data.Key(k))
	}
	s.n.o.pausedKeys(len(s.pausedKeys))
}

// pusher streams new records to one peer in order, resuming from whatever
// the peer acknowledges — push is the primary replication path, with the
// follower's pull loop as the catch-up fallback. A caught-up pusher parks
// on the cond var keyed by the peer's acked position (sent) until a batch
// publishes past it: an idle cluster burns no wakeups. Records ship as
// CRC-framed binary bodies, and only published (stamper-durable) records
// are ever eligible.
func (n *Node) pusher(peerID string) {
	defer n.wg.Done()
	sent := 0
	for {
		n.pushMu.Lock()
		for sent >= n.rep.Published() && !n.stopped() {
			n.pushCond.Wait()
		}
		n.pushMu.Unlock()
		if n.stopped() {
			return
		}
		batch := n.rep.RecordsAfter(sent, 256)
		if len(batch) == 0 {
			continue
		}
		body := encodeWireRecords(batch)
		applied, err := n.client.pushCommits(n.peerAddr(peerID), body)
		if err != nil {
			n.o.replicationError(peerID)
			if !n.sleep(100 * time.Millisecond) {
				return
			}
			// Re-probe from the peer's acknowledged position next round.
			continue
		}
		n.o.replicationBytes("out", len(body))
		if applied <= sent {
			// The peer did not advance: it either restarted behind us
			// (rewind and resend) or is wedged mid-apply — back off briefly
			// so a stuck peer cannot turn this loop hot.
			if !n.sleep(20 * time.Millisecond) {
				return
			}
		}
		sent = applied
		n.o.replicationLag(peerID, n.rep.Published()-sent)
	}
}

// wakePushers signals every replication pusher that new records exist.
func (n *Node) wakePushers() {
	n.pushMu.Lock()
	n.pushCond.Broadcast()
	n.pushMu.Unlock()
}
