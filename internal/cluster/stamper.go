package cluster

import (
	"fmt"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Submission statuses the stamper returns to executors.
const (
	// SubOK: the entry was stamped; Seq is its stream position.
	SubOK = "ok"
	// SubDup: the instance is already committed (a retransmit after a lost
	// response) — benign; Seq is the stamper's current position.
	SubDup = "dup"
	// SubStale: the submission's frontier or read versions no longer match
	// the stamper's replica. The executor catches its replica up to Seq
	// and re-executes.
	SubStale = "stale"
	// SubPaused: the task's footprint intersects a quiesced incident's
	// damaged keys. The executor retries after the repair releases.
	SubPaused = "paused"
)

// SubmitResult is the stamper's verdict on an entry submission.
type SubmitResult struct {
	Status string `json:"status"`
	Seq    int    `json:"seq"`
	Reason string `json:"reason,omitempty"`
}

// stamper is the cluster's single sequencer: the lowest-sorted member. It
// owns the dense record stream — every spec, entry and repair record is
// validated against the stamper's replica and stamped under one mutex, so
// the stream is a serialization of the whole cluster's commits. Entry
// submissions carry the executor's optimistic read observations; the
// stamper re-reads its own replica and rejects any submission whose
// observations are no longer current (the §VII merge discipline as OCC).
type stamper struct {
	n  *Node
	mu sync.Mutex
	// pausedKeys is the admission gate of partial quiescence: while an
	// incident holds keys, no entry touching them is stamped, anywhere in
	// the cluster — even from nodes that were not asked to quiesce
	// (a clean node may own a task that READS a damaged key).
	pausedKeys map[data.Key]bool
}

func newStamper(n *Node) *stamper {
	return &stamper{n: n, pausedKeys: make(map[data.Key]bool)}
}

// stampLocked assigns the next stream position, journals, applies locally
// and wakes the replication pushers. Callers hold s.mu.
func (s *stamper) stampLocked(rec *Record) (int, error) {
	rec.Seq = s.n.rep.Applied() + 1
	if err := s.n.journal.append(rec); err != nil {
		return 0, fmt.Errorf("cluster: stamper journal: %w", err)
	}
	ok, err := s.n.rep.Apply(rec)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("cluster: stamper replica refused record %d", rec.Seq)
	}
	s.n.o.recordStamped(rec.Kind)
	s.n.wakePushers()
	return rec.Seq, nil
}

// SubmitSpec validates and stamps a run registration.
func (s *stamper) SubmitSpec(origin, run string, doc *wfjson.SpecJSON) (int, error) {
	_, init, err := wfjson.Build(doc)
	if err != nil {
		return 0, fmt.Errorf("cluster: run %s: %w: %v", run, engine.ErrBadSpec, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n.rep.HasRun(run) {
		return 0, fmt.Errorf("cluster: run %s: %w", run, engine.ErrRunExists)
	}
	initW := make(map[string]int64, len(init))
	for k, v := range init {
		initW[string(k)] = int64(v)
	}
	return s.stampLocked(&Record{Kind: KindSpec, Origin: origin, Run: run, Spec: doc, Init: initW})
}

// SubmitEntry validates an executor's optimistic submission and stamps it.
func (s *stamper) SubmitEntry(origin string, ej *EntryJSON) SubmitResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.n.rep

	inst := wlog.FormatInstance(ej.Run, wf.TaskID(ej.Task), ej.Visit)
	if rep.HasInstance(inst) {
		return SubmitResult{Status: SubDup, Seq: rep.Applied()}
	}
	spec := rep.Spec(ej.Run)
	if spec == nil {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(), Reason: "unknown run"}
	}
	task := spec.Tasks[wf.TaskID(ej.Task)]
	if task == nil {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(), Reason: "unknown task"}
	}
	cur, visit, done, _ := rep.Frontier(ej.Run)
	if done || cur != wf.TaskID(ej.Task) || visit != ej.Visit {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(),
			Reason: fmt.Sprintf("frontier is %s#%d", cur, visit)}
	}
	// Partial-quiescence admission gate: reject anything touching a
	// quiesced key (reads included — a damaged value must not leak into a
	// new commit while the repair is in flight).
	for _, k := range task.Reads {
		if s.pausedKeys[k] {
			return SubmitResult{Status: SubPaused, Seq: rep.Applied()}
		}
	}
	for _, k := range task.Writes {
		if s.pausedKeys[k] {
			return SubmitResult{Status: SubPaused, Seq: rep.Applied()}
		}
	}
	// OCC validation: every observed read version must still be the
	// current committed version on the stamper's replica.
	for _, k := range task.Reads {
		want := rep.currentObs(k)
		got, ok := ej.Reads[string(k)]
		if !ok || data.Value(got.Value) != want.Value || got.Writer != want.Writer || got.WriterPos != want.WriterPos {
			return SubmitResult{Status: SubStale, Seq: rep.Applied(),
				Reason: fmt.Sprintf("read %s is stale", k)}
		}
	}
	seq, err := s.stampLocked(&Record{Kind: KindEntry, Origin: origin, Entry: ej})
	if err != nil {
		return SubmitResult{Status: SubStale, Seq: rep.Applied(), Reason: err.Error()}
	}
	return SubmitResult{Status: SubOK, Seq: seq}
}

// SubmitForge commits an attacker task outside any specification, reading
// the current versions of the named keys — the cluster's equivalent of the
// single-node engine's InjectForged (always visit 1).
func (s *stamper) SubmitForge(origin, run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.n.rep
	inst := wlog.FormatInstance(run, wf.TaskID(task), 1)
	if rep.HasInstance(inst) {
		return "", 0, fmt.Errorf("cluster: forged instance %s already committed: %w", inst, engine.ErrRunExists)
	}
	ej := &EntryJSON{
		Run:    run,
		Task:   task,
		Visit:  1,
		Forged: true,
		Reads:  make(map[string]ReadObsJSON, len(reads)),
		Writes: writes,
	}
	for _, k := range reads {
		o := rep.currentObs(data.Key(k))
		ej.Reads[k] = ReadObsJSON{Value: int64(o.Value), Writer: o.Writer, WriterPos: o.WriterPos}
	}
	seq, err := s.stampLocked(&Record{Kind: KindEntry, Origin: origin, Entry: ej})
	if err != nil {
		return "", 0, err
	}
	return inst, seq, nil
}

// SubmitRepair stamps a repair record for the accused instances. The caller
// (the incident leader) has already quiesced the damaged keys' owners.
func (s *stamper) SubmitRepair(origin string, bad []string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range bad {
		if !s.n.rep.HasInstance(wlog.InstanceID(id)) {
			return 0, fmt.Errorf("cluster: repair names unknown instance %s: %w", id, engine.ErrUnknownRun)
		}
	}
	return s.stampLocked(&Record{Kind: KindRepair, Origin: origin, Bad: bad})
}

// PauseKeys adds keys to the admission gate (incident quiesce).
func (s *stamper) PauseKeys(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.pausedKeys[data.Key(k)] = true
	}
	s.n.o.pausedKeys(len(s.pausedKeys))
}

// ReleaseKeys removes keys from the admission gate.
func (s *stamper) ReleaseKeys(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.pausedKeys, data.Key(k))
	}
	s.n.o.pausedKeys(len(s.pausedKeys))
}

// pusher streams new records to one peer in order, resuming from whatever
// the peer acknowledges — push is the primary replication path, with the
// follower's pull loop as the catch-up fallback.
func (n *Node) pusher(peerID string) {
	defer n.wg.Done()
	sent := 0
	for {
		n.pushMu.Lock()
		for sent >= n.rep.Applied() && !n.stopped() {
			n.pushCond.Wait()
		}
		n.pushMu.Unlock()
		if n.stopped() {
			return
		}
		batch := n.rep.RecordsAfter(sent, 256)
		if len(batch) == 0 {
			continue
		}
		applied, err := n.client.pushCommits(n.peerAddr(peerID), batch)
		if err != nil {
			n.o.replicationError(peerID)
			if !n.sleep(100 * time.Millisecond) {
				return
			}
			// Re-probe from the peer's acknowledged position next round.
			continue
		}
		if applied > sent {
			sent = applied
		} else if applied < sent {
			sent = applied // peer restarted behind us: rewind
		} else if !n.sleep(20 * time.Millisecond) {
			return
		}
		n.o.replicationLag(peerID, n.rep.Applied()-sent)
	}
}

// wakePushers signals every replication pusher that new records exist.
func (n *Node) wakePushers() {
	n.pushMu.Lock()
	n.pushCond.Broadcast()
	n.pushMu.Unlock()
}
