package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Config boots one cluster node.
type Config struct {
	// NodeID is this process's member identity; it must appear in Peers.
	NodeID string
	// Peers maps every member ID (self included) to its host:port. The map
	// is the static membership: every node derives the same ring from it.
	Peers map[string]string
	// Dir, when set, holds the node's record journal (restart replay).
	Dir string
	// Join performs a synchronous catch-up from the peers before serving —
	// the -join boot mode for restarted or journal-less nodes.
	Join bool
	// QuiesceHold artificially extends an incident's quiesce window after
	// the repair lands, so tests can observe partial quiescence mid-flight.
	QuiesceHold time.Duration
	// AlertBuf bounds the incident alert queue (default 16).
	AlertBuf int
	// SubmitWindow bounds how many consecutive task executions the local
	// executor speculates and submits to the stamper as one batch (default
	// 32; 1 restores per-record submission). The window never crosses an
	// ownership change or a locally quiesced footprint, and a stale verdict
	// rewinds it to the stamper's state.
	SubmitWindow int
	// Registry receives the cluster metrics (nil disables them).
	Registry *obs.Registry
}

// Node is one member of the networked deployment: a full replica of the
// record stream plus the executor, replication and incident machinery. It
// implements the httpapi Backend/ChaosBackend surfaces, so any node is a
// complete client entry point; the node owning a run's current task is the
// one that actually executes it.
type Node struct {
	cfg     Config
	ring    *Ring
	rep     *replica
	journal *journal
	st      *stamper // non-nil only on the sequencer
	client  *peerClient
	o       hooks

	stop       chan struct{}
	stopCtx    context.Context
	stopCancel context.CancelFunc
	stopOnce   sync.Once
	wg         sync.WaitGroup

	pushMu   sync.Mutex
	pushCond *sync.Cond

	// applyMu serializes follower record application + journaling so
	// concurrently delivered records (push + pull fallback) journal in
	// stream order; journalFailing tracks the log-once error transition.
	applyMu        sync.Mutex
	journalFailing bool

	// Executor gate: keys quiesced on this node by an incident leader.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	paused   map[data.Key]bool

	drivingMu sync.Mutex
	driving   map[string]bool

	alertCh        chan []wlog.InstanceID
	pendingAlerts  atomic.Int64
	inIncident     atomic.Bool
	alertsReported atomic.Int64
	alertsLost     atomic.Int64
	alertsAnalyzed atomic.Int64
}

// New builds a node: ring derivation, journal replay, sequencer election.
func New(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: node ID required")
	}
	if len(cfg.Peers) == 0 {
		cfg.Peers = map[string]string{cfg.NodeID: ""}
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("cluster: node %s is not in the peer map", cfg.NodeID)
	}
	if cfg.AlertBuf <= 0 {
		cfg.AlertBuf = 16
	}
	if cfg.SubmitWindow <= 0 {
		cfg.SubmitWindow = 32
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	n := &Node{
		cfg:     cfg,
		ring:    NewRing(ids),
		rep:     newReplica(),
		client:  newPeerClient(),
		o:       hooks{cfg.Registry},
		stop:    make(chan struct{}),
		paused:  make(map[data.Key]bool),
		driving: make(map[string]bool),
		alertCh: make(chan []wlog.InstanceID, cfg.AlertBuf),
	}
	n.stopCtx, n.stopCancel = context.WithCancel(context.Background())
	n.pushCond = sync.NewCond(&n.pushMu)
	n.gateCond = sync.NewCond(&n.gateMu)
	isStamper := n.ring.Stamper() == cfg.NodeID
	if cfg.Dir != "" {
		j, recs, err := openJournal(cfg.Dir, cfg.NodeID, isStamper)
		if err != nil {
			return nil, err
		}
		n.journal = j
		for i := range recs {
			if _, err := n.rep.Apply(&recs[i]); err != nil {
				j.close()
				return nil, fmt.Errorf("cluster: journal replay: %w", err)
			}
		}
		n.o.recordsApplied(n.rep.Applied())
	}
	if isStamper {
		n.st = newStamper(n)
	}
	return n, nil
}

// ID returns the node's member identity.
func (n *Node) ID() string { return n.cfg.NodeID }

// IsStamper reports whether this node is the cluster's sequencer.
func (n *Node) IsStamper() bool { return n.st != nil }

// Ring exposes the ownership map (read-only).
func (n *Node) Ring() *Ring { return n.ring }

// Start launches replication, the incident worker and the run reconciler.
// With Config.Join set it first catches the replica up from the peers.
func (n *Node) Start() error {
	if n.cfg.Join {
		if err := n.catchUp(); err != nil {
			return err
		}
	}
	if n.st != nil {
		n.wg.Add(1)
		go n.st.loop()
		for _, id := range n.ring.Members() {
			if id == n.cfg.NodeID {
				continue
			}
			n.wg.Add(1)
			go n.pusher(id)
		}
	} else {
		n.wg.Add(1)
		go n.pullLoop()
	}
	n.wg.Add(1)
	go n.incidentWorker()
	n.wg.Add(1)
	go n.reconcileLoop()
	return nil
}

// Stop shuts the node down and waits for its goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.stopCancel()
		n.wakePushers()
		if n.st != nil {
			n.st.wake()
		}
		n.gateMu.Lock()
		n.gateCond.Broadcast()
		n.gateMu.Unlock()
		n.wg.Wait()
		n.journal.close()
	})
}

func (n *Node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// sleep waits d, returning false if the node stopped first.
func (n *Node) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-n.stop:
		return false
	case <-t.C:
		return true
	}
}

func (n *Node) peerAddr(id string) string { return n.cfg.Peers[id] }
func (n *Node) stamperAddr() string       { return n.peerAddr(n.ring.Stamper()) }

// applyRecord applies one replicated record and journals it on success.
// applyMu keeps the journal in stream order when push delivery and the
// pull fallback race.
func (n *Node) applyRecord(rec *Record) error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	ok, err := n.rep.Apply(rec)
	if err != nil {
		return err
	}
	if ok {
		// Follower journals are no-fsync: a torn tail after SIGKILL is
		// healed by the catch-up pull at restart. An append error therefore
		// does not fail the apply — but it is counted and logged once per
		// transition into the failing state, because a silently shrinking
		// journal turns every restart into a full catch-up.
		if jerr := n.journal.append(rec); jerr != nil {
			n.o.journalError()
			if !n.journalFailing {
				n.journalFailing = true
				log.Printf("cluster: node %s: record journal append failed (replica continues; -join heals the journal): %v",
					n.cfg.NodeID, jerr)
			}
		} else if n.journalFailing {
			n.journalFailing = false
			log.Printf("cluster: node %s: record journal append recovered", n.cfg.NodeID)
		}
		n.o.recordsApplied(n.rep.Applied())
	}
	return nil
}

// catchUp pulls the stream from the most advanced reachable peer until the
// replica reaches that peer's position (the -join boot mode).
func (n *Node) catchUp() error {
	target, from := 0, ""
	for _, id := range n.ring.Members() {
		if id == n.cfg.NodeID {
			continue
		}
		st, err := n.client.status(n.peerAddr(id))
		if err != nil {
			continue
		}
		if st.Applied >= target && from == "" || st.Applied > target {
			target, from = st.Applied, id
		}
	}
	for from != "" && n.rep.Applied() < target {
		recs, err := n.client.fetchCommits(n.peerAddr(from), n.rep.Applied(), 512)
		if err != nil {
			return fmt.Errorf("cluster: join catch-up from %s: %w", from, err)
		}
		if len(recs) == 0 {
			return fmt.Errorf("cluster: join catch-up stalled at %d of %d", n.rep.Applied(), target)
		}
		for i := range recs {
			if err := n.applyRecord(&recs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// pullLoop is the follower's catch-up fallback behind the stamper's push:
// it polls the stamper (then any peer) for records past the local cursor.
func (n *Node) pullLoop() {
	defer n.wg.Done()
	peers := []string{n.ring.Stamper()}
	for _, id := range n.ring.Members() {
		if id != n.cfg.NodeID && id != n.ring.Stamper() {
			peers = append(peers, id)
		}
	}
	for !n.stopped() {
		progressed := false
		for _, id := range peers {
			recs, err := n.client.fetchCommits(n.peerAddr(id), n.rep.Applied(), 512)
			if err != nil || len(recs) == 0 {
				continue
			}
			for i := range recs {
				if err := n.applyRecord(&recs[i]); err != nil {
					return
				}
			}
			progressed = true
			break
		}
		if !progressed && !n.sleep(100*time.Millisecond) {
			return
		}
	}
}

// reconcileLoop re-fires driveRun for every active run: explicit token
// handoffs are a latency optimization, the reconciler is the guarantee that
// a lost token (or a restarted node) cannot strand a workflow.
func (n *Node) reconcileLoop() {
	defer n.wg.Done()
	for n.sleep(30 * time.Millisecond) {
		for _, run := range n.rep.ActiveRuns() {
			n.driveRun(run)
		}
	}
}

// driveRun ensures exactly one local driver loop per run.
func (n *Node) driveRun(run string) {
	if n.stopped() {
		return
	}
	n.drivingMu.Lock()
	if n.driving[run] {
		n.drivingMu.Unlock()
		return
	}
	n.driving[run] = true
	n.drivingMu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.drivingMu.Lock()
			delete(n.driving, run)
			n.drivingMu.Unlock()
		}()
		n.runLoop(run)
	}()
}

// runLoop advances one run until it completes, the control token moves to
// another node, or the node stops.
func (n *Node) runLoop(run string) {
	for !n.stopped() {
		cur, visit, done, ok := n.rep.Frontier(run)
		if !ok || done {
			return
		}
		spec := n.rep.Spec(run)
		if spec == nil {
			return
		}
		task := spec.Tasks[cur]
		if task == nil {
			return
		}
		if owner := n.ring.OwnerOfTask(run, spec, cur); owner != n.cfg.NodeID {
			n.o.tokenSent()
			if err := n.client.sendToken(n.peerAddr(owner), run, n.rep.Applied()); err == nil {
				return // handed off: the owner drives from here
			}
			// Owner unreachable: execute locally. The stamper's OCC
			// serializes us against whoever else picks the run up.
		}
		if !n.gateWait(task) {
			return
		}
		if !n.executeWindow(run, spec, cur, visit) {
			if !n.sleep(25 * time.Millisecond) {
				return
			}
		}
	}
}

// executeWindow speculates up to Config.SubmitWindow consecutive task
// executions from the local replica's state and submits them to the
// stamper as one batch — the pipelined commit path. Later window entries
// read earlier entries' writes through an overlay whose WriterPos is the
// predicted dense LSN; if any foreign record interleaves at the stamper,
// its OCC check fails the window's tail as stale and the executor rewinds
// to the replica (the window's head always commits, so progress is
// guaranteed exactly as with per-record submission). It returns false when
// the window must be retried after a pause (submission error or quiesced
// footprint).
func (n *Node) executeWindow(run string, spec *wf.Spec, cur wf.TaskID, visit int) bool {
	window := n.cfg.SubmitWindow
	visits := n.rep.RunVisits(run)
	if visits == nil {
		return false
	}
	nextLSN := n.rep.NextLSN()
	overlay := make(map[data.Key]wlog.ReadObs)
	batch := make([]*EntryJSON, 0, window)
	wcur, wvisit := cur, visit
	for len(batch) < window {
		task := spec.Tasks[wcur]
		if task == nil {
			break
		}
		if len(batch) > 0 {
			// The window's head was already gated and ownership-checked by
			// runLoop; extensions stop at any boundary the head would have
			// blocked on instead of stalling the whole batch.
			if n.ring.OwnerOfTask(run, spec, wcur) != n.cfg.NodeID {
				break
			}
			if n.gateBlocked(task) {
				break
			}
		}
		obsv := make(map[data.Key]wlog.ReadObs, len(task.Reads))
		vals := make(map[data.Key]data.Value, len(task.Reads))
		for _, k := range task.Reads {
			o, ok := overlay[k]
			if !ok {
				o = n.rep.currentObs(k)
			}
			obsv[k] = o
			vals[k] = o.Value
		}
		written := make(map[string]int64, len(task.Writes))
		if task.Compute != nil {
			out := task.Compute(vals)
			for _, k := range task.Writes {
				written[string(k)] = int64(out[k])
			}
		} else {
			for _, k := range task.Writes {
				written[string(k)] = 0
			}
		}
		chosen := ""
		if len(task.Next) > 1 {
			chosen = string(task.Choose(vals))
		}
		ej := &EntryJSON{
			Run:    run,
			Task:   string(wcur),
			Visit:  wvisit,
			Reads:  make(map[string]ReadObsJSON, len(obsv)),
			Writes: written,
			Chosen: chosen,
		}
		for k, o := range obsv {
			ej.Reads[string(k)] = ReadObsJSON{Value: int64(o.Value), Writer: o.Writer, WriterPos: o.WriterPos}
		}
		batch = append(batch, ej)
		inst := wlog.FormatInstance(run, wcur, wvisit)
		for k, v := range written {
			overlay[data.Key(k)] = wlog.ReadObs{Value: data.Value(v), Writer: string(inst), WriterPos: float64(nextLSN)}
		}
		visits[wcur] = wvisit
		nextLSN++
		if len(task.Next) == 0 {
			break // the run completes inside this window
		}
		if len(task.Next) == 1 {
			wcur = task.Next[0]
		} else {
			wcur = wf.TaskID(chosen)
		}
		wvisit = visits[wcur] + 1
	}
	if len(batch) == 0 {
		return false
	}
	results, err := n.submitEntries(batch)
	if err != nil || len(results) == 0 {
		return false
	}
	maxSeq, committed := 0, 0
	paused := false
	for _, res := range results {
		if res.Seq > maxSeq {
			maxSeq = res.Seq
		}
		if res.Status == SubOK || res.Status == SubDup {
			committed++
			continue
		}
		if res.Status == SubStale {
			// Rewind: everything from here depends on a rejected entry and
			// was (or will be) rejected with it. Re-derive from the replica.
			n.o.stale()
		}
		paused = res.Status == SubPaused
		break
	}
	// Catch the local replica up to the stamper's position before reading
	// the next frontier (also how a stale executor recomputes correctly).
	ctx, cancel := context.WithTimeout(n.stopCtx, 5*time.Second)
	defer cancel()
	_ = n.rep.WaitApplied(ctx, maxSeq)
	if paused && committed == 0 {
		return false
	}
	return true
}

// gateBlocked is the non-blocking twin of gateWait, used when deciding
// whether to extend a speculation window past a task.
func (n *Node) gateBlocked(task *wf.Task) bool {
	n.gateMu.Lock()
	defer n.gateMu.Unlock()
	for _, k := range task.Reads {
		if n.paused[k] {
			return true
		}
	}
	for _, k := range task.Writes {
		if n.paused[k] {
			return true
		}
	}
	return false
}

// gateWait blocks while the task's footprint intersects this node's
// quiesced keys. Returns false when the node stopped instead.
func (n *Node) gateWait(task *wf.Task) bool {
	n.gateMu.Lock()
	defer n.gateMu.Unlock()
	for {
		if n.stopped() {
			return false
		}
		blocked := false
		for _, k := range task.Reads {
			if n.paused[k] {
				blocked = true
				break
			}
		}
		if !blocked {
			for _, k := range task.Writes {
				if n.paused[k] {
					blocked = true
					break
				}
			}
		}
		if !blocked {
			return true
		}
		n.gateCond.Wait()
	}
}

// quiesceKeys pauses the executor gate (and, on the sequencer, admission)
// for the given keys.
func (n *Node) quiesceKeys(keys []string) {
	n.gateMu.Lock()
	for _, k := range keys {
		n.paused[data.Key(k)] = true
	}
	n.gateMu.Unlock()
	if n.st != nil {
		n.st.PauseKeys(keys)
	}
}

// releaseKeys unpauses the keys once the replica has applied the repair
// (record `after`), asynchronously.
func (n *Node) releaseKeys(keys []string, after int) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(n.stopCtx, 30*time.Second)
		defer cancel()
		_ = n.rep.WaitApplied(ctx, after)
		n.gateMu.Lock()
		for _, k := range keys {
			delete(n.paused, data.Key(k))
		}
		n.gateCond.Broadcast()
		n.gateMu.Unlock()
		if n.st != nil {
			n.st.ReleaseKeys(keys)
		}
	}()
}

// Submission routing: local call on the sequencer, HTTP to it elsewhere.

func (n *Node) submitEntries(entries []*EntryJSON) ([]SubmitResult, error) {
	if n.st != nil {
		return n.st.SubmitEntries(n.cfg.NodeID, entries)
	}
	return n.client.submitEntries(n.stamperAddr(), n.cfg.NodeID, entries)
}

func (n *Node) submitSpec(run string, doc *wfjson.SpecJSON) (int, error) {
	if n.st != nil {
		return n.st.SubmitSpec(n.cfg.NodeID, run, doc)
	}
	n.o.proxied("runs")
	return n.client.submitSpec(n.stamperAddr(), n.cfg.NodeID, run, doc)
}

func (n *Node) submitForge(run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, int, error) {
	if n.st != nil {
		return n.st.SubmitForge(n.cfg.NodeID, run, task, reads, writes)
	}
	n.o.proxied("chaos/forge")
	return n.client.submitForge(n.stamperAddr(), n.cfg.NodeID, run, task, reads, writes)
}

func (n *Node) submitRepair(bad []string) (int, error) {
	if n.st != nil {
		return n.st.SubmitRepair(n.cfg.NodeID, bad)
	}
	return n.client.submitRepair(n.stamperAddr(), n.cfg.NodeID, bad)
}

// ---- httpapi.Backend ----

// SubmitRunSpec registers a run through the sequencer and waits until the
// local replica has applied it (read-your-writes for the submitting client).
func (n *Node) SubmitRunSpec(id string, doc *wfjson.SpecJSON) error {
	if id == "" {
		return fmt.Errorf("cluster: %w: empty run id", engine.ErrBadSpec)
	}
	if _, _, err := wfjson.Build(doc); err != nil {
		return fmt.Errorf("cluster: %w: %v", engine.ErrBadSpec, err)
	}
	seq, err := n.submitSpec(id, doc)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(n.stopCtx, 10*time.Second)
	defer cancel()
	if err := n.rep.WaitApplied(ctx, seq); err != nil {
		return err
	}
	n.driveRun(id)
	return nil
}

// RunInfo returns one run's view; Shard is the owner's ring position.
func (n *Node) RunInfo(id string) (shard.RunInfo, error) {
	done, ok := n.rep.RunDone(id)
	if !ok {
		return shard.RunInfo{}, fmt.Errorf("cluster: run %s: %w", id, engine.ErrUnknownRun)
	}
	status := "active"
	if done {
		status = "done"
	}
	return shard.RunInfo{ID: id, Status: status, Shard: n.ring.OwnerIndexOfRun(id), Steps: n.rep.Steps(id)}, nil
}

// Runs lists every run, sorted by ID.
func (n *Node) Runs() []shard.RunInfo {
	ids := n.rep.RunIDs()
	out := make([]shard.RunInfo, 0, len(ids))
	for _, id := range ids {
		if info, err := n.RunInfo(id); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// Trace returns a run's committed instance IDs, forged included.
func (n *Node) Trace(run string) []wlog.InstanceID { return n.rep.Trace(run, true) }

// ReportAlerts validates a batch and routes each alert to its incident
// leader (the accused run's owner), falling back to leading locally when
// the leader is unreachable.
func (n *Node) ReportAlerts(alerts []triage.Alert) (admitted, dropped int, err error) {
	// Syntax over the whole batch first: a malformed ID anywhere is a bad
	// request regardless of position.
	for _, a := range alerts {
		if len(a.Bad) == 0 {
			return 0, 0, fmt.Errorf("cluster: %w: empty alert", engine.ErrBadSpec)
		}
		for _, id := range a.Bad {
			if _, _, _, perr := wlog.ParseInstance(id); perr != nil {
				return 0, 0, fmt.Errorf("cluster: alert instance %q: %w", id, engine.ErrBadSpec)
			}
		}
	}
	// Presence next, against the full local replica.
	for _, a := range alerts {
		for _, id := range a.Bad {
			if !n.rep.HasInstance(id) {
				return 0, 0, fmt.Errorf("cluster: alert instance %q: %w", id, engine.ErrUnknownRun)
			}
		}
	}
	for _, a := range alerts {
		run, _, _, _ := wlog.ParseInstance(a.Bad[0])
		leader := n.ring.OwnerOfRun(run)
		if leader == n.cfg.NodeID {
			if n.admitAlert(a.Bad) {
				admitted++
			} else {
				dropped++
			}
			continue
		}
		n.o.proxied("alerts")
		ad, dr, ferr := n.client.forwardAlert(n.peerAddr(leader), instanceStrings(a.Bad))
		if ferr != nil {
			var ae *apiError
			if errors.As(ferr, &ae) {
				return admitted, dropped, ferr
			}
			// Leader unreachable: lead the incident from here.
			if n.admitAlert(a.Bad) {
				admitted++
			} else {
				dropped++
			}
			continue
		}
		admitted += ad
		dropped += dr
	}
	return admitted, dropped, nil
}

// admitAlert enqueues one alert on the bounded incident queue.
func (n *Node) admitAlert(bad []wlog.InstanceID) bool {
	n.pendingAlerts.Add(1)
	select {
	case n.alertCh <- append([]wlog.InstanceID(nil), bad...):
		n.alertsReported.Add(1)
		return true
	default:
		n.pendingAlerts.Add(-1)
		n.alertsLost.Add(1)
		return false
	}
}

// RetryAfterSeconds is the 429/partial-drop backpressure hint.
func (n *Node) RetryAfterSeconds() int {
	return shard.EstimateRetryAfter(int(n.pendingAlerts.Load()), shard.DefaultDrainSecPerAlert)
}

// StateString is the §IV.C classification of this node.
func (n *Node) StateString() string {
	if n.inIncident.Load() {
		return "RECOVERY"
	}
	if n.pendingAlerts.Load() > 0 {
		return "SCAN"
	}
	return "NORMAL"
}

// QueueLengths returns (alerts queued, incidents in flight, 0).
func (n *Node) QueueLengths() (int, int, int) {
	units := 0
	if n.inIncident.Load() {
		units = 1
	}
	return int(n.pendingAlerts.Load()), units, 0
}

// MetricsDoc summarizes this node's view of the cluster's accounting.
func (n *Node) MetricsDoc() shard.Metrics {
	st := n.rep.Stats()
	ids := n.rep.RunIDs()
	completed := 0
	for _, id := range ids {
		if done, _ := n.rep.RunDone(id); done {
			completed++
		}
	}
	normal := 0
	_, entries := n.rep.LogEntries()
	for _, e := range entries {
		if !e.Forged {
			normal++
		}
	}
	return shard.Metrics{
		AlertsReported: int(n.alertsReported.Load()),
		AlertsLost:     int(n.alertsLost.Load()),
		AlertsAnalyzed: int(n.alertsAnalyzed.Load()),
		UnitsExecuted:  st.units,
		RecoveryErrors: st.errors,
		Undone:         st.undone,
		Redone:         st.redone,
		NewExecuted:    st.newExec,
		RunsSubmitted:  len(ids),
		RunsCompleted:  completed,
		NormalSteps:    normal,
	}
}

// StoreSnapshot returns the committed value of every key.
func (n *Node) StoreSnapshot() map[string]int64 {
	snap := n.rep.Snapshot()
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		out[string(k)] = int64(v)
	}
	return out
}

// ---- httpapi.ChaosBackend ----

// InjectForged routes the forged commit through the sequencer and waits for
// the local replica to apply it.
func (n *Node) InjectForged(run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, error) {
	inst, seq, err := n.submitForge(run, task, reads, writes)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithTimeout(n.stopCtx, 10*time.Second)
	defer cancel()
	if err := n.rep.WaitApplied(ctx, seq); err != nil {
		return "", err
	}
	return inst, nil
}

// Checkpoint is unsupported: the replicated stream (plus per-node journals)
// is the cluster's durability story.
func (n *Node) Checkpoint(ctx context.Context) error {
	return errors.New("cluster: nodes do not checkpoint; the replicated record stream is durable")
}

// WaitIdle blocks until the whole cluster is quiescent: every member caught
// up to the sequencer, no active runs, no alerts queued, no incident —
// stable for two consecutive polls.
func (n *Node) WaitIdle(ctx context.Context) error {
	return n.waitQuiescent(ctx, true)
}

// DrainRecovery blocks until alerts and incidents have drained cluster-wide
// and every member caught up (runs may still be active).
func (n *Node) DrainRecovery(ctx context.Context) error {
	return n.waitQuiescent(ctx, false)
}

func (n *Node) waitQuiescent(ctx context.Context, wantRunsDone bool) error {
	stable := 0
	for {
		if n.clusterQuiescent(wantRunsDone) {
			stable++
			if stable >= 2 {
				return nil
			}
		} else {
			stable = 0
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-n.stop:
			return errors.New("cluster: node stopped")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (n *Node) clusterQuiescent(wantRunsDone bool) bool {
	if n.pendingAlerts.Load() > 0 || n.inIncident.Load() {
		return false
	}
	if wantRunsDone && len(n.rep.ActiveRuns()) > 0 {
		return false
	}
	applied := make(map[string]int, len(n.cfg.Peers))
	for _, id := range n.ring.Members() {
		if id == n.cfg.NodeID {
			applied[id] = n.rep.Applied()
			continue
		}
		st, err := n.client.status(n.peerAddr(id))
		if err != nil {
			return false
		}
		if st.Alerts > 0 || st.Incident {
			return false
		}
		if wantRunsDone && st.ActiveRuns > 0 {
			return false
		}
		applied[id] = st.Applied
	}
	head := applied[n.ring.Stamper()]
	for _, a := range applied {
		if a != head {
			return false
		}
	}
	return true
}

// LogDoc returns the replica's committed log.
func (n *Node) LogDoc() (int, []httpapi.LogEntry) {
	base, entries := n.rep.LogEntries()
	out := make([]httpapi.LogEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, httpapi.LogEntry{
			LSN:    e.LSN,
			ID:     string(e.ID()),
			Run:    e.Run,
			Task:   string(e.Task),
			Visit:  e.Visit,
			Forged: e.Forged,
		})
	}
	return base, out
}

// VerifyDoc returns this replica's soundness verdicts for the fuzz oracles.
func (n *Node) VerifyDoc() httpapi.VerifyDoc {
	doc := httpapi.VerifyDoc{State: n.StateString(), CheckIndex: "ok"}
	if err := n.rep.CheckIndex(); err != nil {
		doc.CheckIndex = err.Error()
	}
	st := n.rep.Stats()
	doc.AuditViolations = st.auditViolations
	if st.lastAudit != nil {
		doc.AuditError = st.lastAudit.Error()
	}
	if st.lastErr != nil {
		doc.RecoveryError = st.lastErr.Error()
	}
	return doc
}

// ---- GET /api/v1/cluster ----

// MemberStatus is one member's health in the cluster document.
type MemberStatus struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Stamper bool   `json:"stamper"`
	Alive   bool   `json:"alive"`
	Applied int    `json:"applied"`
	State   string `json:"state,omitempty"`
}

// ClusterInfo is the GET /api/v1/cluster document served by every node.
type ClusterInfo struct {
	Node    string         `json:"node"`
	Stamper string         `json:"stamper"`
	Applied int            `json:"applied"`
	Members []MemberStatus `json:"members"`
}

// ClusterDoc reports the topology and each member's replication health.
func (n *Node) ClusterDoc() any {
	info := ClusterInfo{
		Node:    n.cfg.NodeID,
		Stamper: n.ring.Stamper(),
		Applied: n.rep.Applied(),
	}
	for _, id := range n.ring.Members() {
		m := MemberStatus{ID: id, Addr: n.peerAddr(id), Stamper: id == n.ring.Stamper()}
		if id == n.cfg.NodeID {
			m.Alive, m.Applied, m.State = true, n.rep.Applied(), n.StateString()
		} else if st, err := n.client.status(n.peerAddr(id)); err == nil {
			m.Alive, m.Applied, m.State = true, st.Applied, st.State
		}
		info.Members = append(info.Members, m)
	}
	return info
}

func instanceStrings(ids []wlog.InstanceID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func sortedKeyList(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
