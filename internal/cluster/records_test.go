package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"selfheal/internal/wfjson"
)

// sampleRecords is a short, valid stream prefix exercising every record
// kind and every codec field (reads with writer observations, choices,
// forged entries, init seeding, repairs).
func sampleRecords() []Record {
	spec := &wfjson.SpecJSON{
		Name:  "m",
		Start: "t0",
		Tasks: []wfjson.TaskJSON{
			{ID: "t0", Writes: []string{"a"}, Next: []string{"t1"}, Bias: 3},
			{ID: "t1", Reads: []string{"a"}, Writes: []string{"b"}, Bias: 7},
		},
	}
	return []Record{
		{Seq: 1, Kind: KindSpec, Origin: "n1", Run: "m", Spec: spec, Init: map[string]int64{"a": 5, "b": -2}},
		{Seq: 2, Kind: KindEntry, Origin: "n2", Entry: &EntryJSON{
			Run: "m", Task: "t0", Visit: 1,
			Writes: map[string]int64{"a": 8},
		}},
		{Seq: 3, Kind: KindEntry, Origin: "n1", Entry: &EntryJSON{
			Run: "m", Task: "t1", Visit: 1,
			Reads:  map[string]ReadObsJSON{"a": {Value: 8, Writer: "m/t0#1", WriterPos: 1}},
			Writes: map[string]int64{"b": 15},
			Chosen: "",
		}},
		{Seq: 4, Kind: KindEntry, Origin: "n3", Entry: &EntryJSON{
			Run: "ghost", Task: "f", Visit: 1, Forged: true,
			Reads:  map[string]ReadObsJSON{"b": {Value: 15, Writer: "m/t1#1", WriterPos: 2}},
			Writes: map[string]int64{"b": -999},
		}},
		{Seq: 5, Kind: KindRepair, Origin: "n1", Bad: []string{"ghost/f#1"}},
	}
}

// The binary codec must round-trip every record kind exactly (Spec compares
// through its JSON form: the document is embedded as JSON bytes).
func TestRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		payload := encodeRecord(nil, &rec)
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode record %d: %v", rec.Seq, err)
		}
		wantJSON, _ := json.Marshal(rec)
		gotJSON, _ := json.Marshal(got)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("record %d round-trip mismatch:\nwant %s\ngot  %s", rec.Seq, wantJSON, gotJSON)
		}
	}
}

// A wire body is all-or-nothing: concatenated frames decode back to the
// same records, and any flipped byte fails the whole body.
func TestWireRecordsRoundTripAndCorruption(t *testing.T) {
	recs := sampleRecords()
	body := encodeWireRecords(recs)
	got, err := decodeWireRecords(body)
	if err != nil {
		t.Fatalf("decode wire body: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("wire round-trip: got %d records, want %d", len(got), len(recs))
	}
	wantJSON, _ := json.Marshal(recs)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("wire round-trip mismatch")
	}
	for i := 0; i < len(body); i += 7 {
		mut := append([]byte(nil), body...)
		mut[i] ^= 0x40
		if _, err := decodeWireRecords(mut); err == nil {
			// A flip may hit a frame's length field such that the remaining
			// bytes still parse as valid frames with intact CRCs — but then
			// the records' seqs cannot stay 1..N dense. Accept only that.
			recs2, _ := decodeWireRecords(mut)
			dense := len(recs2) == len(recs)
			for j := range recs2 {
				if recs2[j].Seq != j+1 {
					dense = false
				}
			}
			if dense {
				t.Fatalf("byte flip at %d went completely undetected", i)
			}
		}
	}
}

// journalRecords writes recs through the journal and returns the file path.
func writeJournal(t *testing.T, dir string, recs []Record) string {
	t.Helper()
	j, replayed, err := openJournal(dir, "n1", true)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	var buf []byte
	for i := range recs {
		buf = encodeFramedRecord(buf, &recs[i])
	}
	if err := j.appendBatch(buf); err != nil {
		t.Fatalf("append batch: %v", err)
	}
	j.close()
	return journalPath(dir, "n1")
}

// Per-byte torn-tail matrix (mirroring internal/durable's): for every
// truncation length L of the binary journal, reopening must replay exactly
// the complete-frame prefix within L, truncate the file to that prefix,
// and leave a journal that reopens cleanly to the same state.
func TestJournalTornTailMatrix(t *testing.T) {
	recs := sampleRecords()
	base := t.TempDir()
	path := writeJournal(t, base, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	// Complete-frame boundaries: offsets after each fully framed record.
	boundaries := []int{0}
	off := 0
	for i := range recs {
		off += 8 + len(encodeRecord(nil, &recs[i]))
		boundaries = append(boundaries, off)
	}
	if off != len(raw) {
		t.Fatalf("frame accounting: computed %d bytes, file has %d", off, len(raw))
	}
	expectAt := func(L int) int {
		n := 0
		for i, b := range boundaries {
			if b <= L {
				n = i
			}
		}
		return n
	}
	for L := 0; L <= len(raw); L++ {
		dir := t.TempDir()
		torn := filepath.Join(dir, "n1.rjournal")
		if err := os.WriteFile(torn, raw[:L], 0o644); err != nil {
			t.Fatalf("write torn journal: %v", err)
		}
		j, replayed, err := openJournal(dir, "n1", true)
		if err != nil {
			t.Fatalf("L=%d: open: %v", L, err)
		}
		j.close()
		want := expectAt(L)
		if len(replayed) != want {
			t.Fatalf("L=%d: replayed %d records, want %d", L, len(replayed), want)
		}
		for i := range replayed {
			if replayed[i].Seq != i+1 {
				t.Fatalf("L=%d: replayed record %d has seq %d", L, i, replayed[i].Seq)
			}
		}
		// The torn tail must be physically gone: a second open replays the
		// same prefix from a clean frame boundary.
		after, err := os.ReadFile(torn)
		if err != nil {
			t.Fatalf("L=%d: reread: %v", L, err)
		}
		if len(after) != boundaries[want] {
			t.Fatalf("L=%d: file is %d bytes after truncation, want %d", L, len(after), boundaries[want])
		}
		j2, replayed2, err := openJournal(dir, "n1", true)
		if err != nil {
			t.Fatalf("L=%d: reopen: %v", L, err)
		}
		j2.close()
		if len(replayed2) != want {
			t.Fatalf("L=%d: reopen replayed %d records, want %d", L, len(replayed2), want)
		}
	}
}

// A legacy JSONL journal migrates to the binary format on first open: same
// replayed records, binary file present, JSONL removed — and appends after
// migration land in the binary file.
func TestLegacyJournalMigration(t *testing.T) {
	recs := sampleRecords()
	dir := t.TempDir()
	legacy := legacyJournalPath(dir, "n1")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatalf("create legacy: %v", err)
	}
	enc := json.NewEncoder(f)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatalf("encode legacy: %v", err)
		}
	}
	_ = f.Close()

	j, replayed, err := openJournal(dir, "n1", true)
	if err != nil {
		t.Fatalf("migrating open: %v", err)
	}
	if len(replayed) != len(recs) {
		t.Fatalf("migration replayed %d records, want %d", len(replayed), len(recs))
	}
	wantJSON, _ := json.Marshal(recs)
	gotJSON, _ := json.Marshal(replayed)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("migration round-trip mismatch:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy JSONL journal still present after migration")
	}
	if _, err := os.Stat(journalPath(dir, "n1")); err != nil {
		t.Fatalf("binary journal missing after migration: %v", err)
	}
	// Appends continue in the binary format.
	extra := Record{Seq: 6, Kind: KindRepair, Origin: "n1", Bad: []string{"ghost/f#1"}}
	if err := j.append(&extra); err != nil {
		t.Fatalf("append after migration: %v", err)
	}
	j.close()
	_, replayed2, err := openJournal(dir, "n1", true)
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	if len(replayed2) != len(recs)+1 {
		t.Fatalf("reopen replayed %d records, want %d", len(replayed2), len(recs)+1)
	}
	if !reflect.DeepEqual(replayed2[len(recs)].Bad, extra.Bad) {
		t.Fatalf("appended record did not round-trip")
	}
}

// A half-written migration temp file must not shadow the legacy journal:
// the next open redoes the migration from the JSONL.
func TestLegacyJournalMigrationCrashBeforeRename(t *testing.T) {
	recs := sampleRecords()
	dir := t.TempDir()
	legacy := legacyJournalPath(dir, "n1")
	f, _ := os.Create(legacy)
	enc := json.NewEncoder(f)
	for i := range recs {
		_ = enc.Encode(&recs[i])
	}
	_ = f.Close()
	// Simulate a crash mid-migration: a torn temp file, no renamed journal.
	if err := os.WriteFile(journalPath(dir, "n1")+".tmp", []byte("torn"), 0o644); err != nil {
		t.Fatalf("write temp: %v", err)
	}
	j, replayed, err := openJournal(dir, "n1", true)
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	j.close()
	if len(replayed) != len(recs) {
		t.Fatalf("post-crash migration replayed %d records, want %d", len(replayed), len(recs))
	}
}

// ---- replication codec benchmarks ----

func benchRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Seq: i + 1, Kind: KindEntry, Origin: "n2",
			Entry: &EntryJSON{
				Run: "bench", Task: "t", Visit: i + 1,
				Reads:  map[string]ReadObsJSON{"k1": {Value: int64(i), Writer: "bench/t#1", WriterPos: float64(i)}},
				Writes: map[string]int64{"k1": int64(i), "k2": int64(-i)},
			},
		})
	}
	return recs
}

// BenchmarkReplicationCodecBinary measures encode+decode of a 256-record
// replication body in the CRC-framed binary codec; ...JSON is the PR-8
// wire format it replaced. b.ReportMetric emits bytes per record.
func BenchmarkReplicationCodecBinary(b *testing.B) {
	recs := benchRecords(256)
	var bytesPerRec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := encodeWireRecords(recs)
		got, err := decodeWireRecords(body)
		if err != nil || len(got) != len(recs) {
			b.Fatalf("round trip: %d records, err %v", len(got), err)
		}
		bytesPerRec = float64(len(body)) / float64(len(recs))
	}
	b.ReportMetric(bytesPerRec, "bytes/record")
}

func BenchmarkReplicationCodecJSON(b *testing.B) {
	recs := benchRecords(256)
	var bytesPerRec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := json.Marshal(commitsDoc{Records: recs})
		if err != nil {
			b.Fatal(err)
		}
		var doc commitsDoc
		if err := json.Unmarshal(body, &doc); err != nil || len(doc.Records) != len(recs) {
			b.Fatalf("round trip: %d records, err %v", len(doc.Records), err)
		}
		bytesPerRec = float64(len(body)) / float64(len(recs))
	}
	b.ReportMetric(bytesPerRec, "bytes/record")
}
