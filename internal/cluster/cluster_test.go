package cluster_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"selfheal/internal/cluster"
	"selfheal/internal/data"
	"selfheal/internal/fuzz"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/triage"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// ---- in-process multi-node harness ----

// handlerSlot lets the harness swap a listener's handler while the listener
// stays bound: "killing" a node swaps in a 502 handler, restarting swaps
// the new node's mux back in. This keeps peer addresses stable across
// restarts without racing on port rebinds.
type handlerSlot struct{ h atomic.Value }

type handlerBox struct{ h http.Handler }

func (s *handlerSlot) set(h http.Handler) { s.h.Store(handlerBox{h}) }

func (s *handlerSlot) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(handlerBox).h.ServeHTTP(w, r)
}

func downHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "node down", http.StatusBadGateway)
	})
}

type harness struct {
	t     testing.TB
	ids   []string
	peers map[string]string
	slots map[string]*handlerSlot
	srvs  []*http.Server
	nodes map[string]*cluster.Node
	regs  map[string]*obs.Registry
	dirs  map[string]string // set when the harness is journaled
	mut   func(id string, cfg *cluster.Config)
}

// startCluster boots len(ids) nodes on ephemeral loopback listeners, each
// serving its internal API and the public cluster surface on one port.
func startCluster(t testing.TB, ids []string, journaled bool, mut func(id string, cfg *cluster.Config)) *harness {
	t.Helper()
	h := &harness{
		t:     t,
		ids:   ids,
		peers: make(map[string]string),
		slots: make(map[string]*handlerSlot),
		nodes: make(map[string]*cluster.Node),
		regs:  make(map[string]*obs.Registry),
		dirs:  make(map[string]string),
		mut:   mut,
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		h.peers[id] = ln.Addr().String()
		slot := &handlerSlot{}
		slot.set(downHandler())
		h.slots[id] = slot
		srv := &http.Server{Handler: slot}
		h.srvs = append(h.srvs, srv)
		go srv.Serve(ln)
		if journaled {
			h.dirs[id] = t.TempDir()
		}
	}
	for _, id := range ids {
		h.bootNode(id, false)
	}
	t.Cleanup(h.close)
	return h
}

// bootNode creates, mounts and starts one node (join=true catches it up
// from the peers first — the restart path).
func (h *harness) bootNode(id string, join bool) {
	h.t.Helper()
	reg := obs.NewRegistry()
	cfg := cluster.Config{NodeID: id, Peers: h.peers, Dir: h.dirs[id], Join: join, Registry: reg}
	if h.mut != nil {
		h.mut(id, &cfg)
	}
	n, err := cluster.New(cfg)
	if err != nil {
		h.t.Fatalf("node %s: %v", id, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/internal/", n.InternalHandler())
	mux.Handle("/", httpapi.ClusterServer(reg, n))
	h.nodes[id] = n
	h.regs[id] = reg
	h.slots[id].set(mux)
	if err := n.Start(); err != nil {
		h.t.Fatalf("node %s start: %v", id, err)
	}
}

// stopNode takes one node offline: its address answers 502 until restart.
func (h *harness) stopNode(id string) {
	h.slots[id].set(downHandler())
	h.nodes[id].Stop()
	delete(h.nodes, id)
}

func (h *harness) close() {
	for _, srv := range h.srvs {
		srv.Close()
	}
	for _, n := range h.nodes {
		n.Stop()
	}
}

func (h *harness) url(id string) string { return "http://" + h.peers[id] }

// follower returns a non-sequencer member: driving the cluster through it
// exercises submission proxying and token handoff.
func (h *harness) follower() string {
	ring := cluster.NewRing(h.ids)
	for _, id := range h.ids {
		if id != ring.Stamper() {
			return id
		}
	}
	return h.ids[0]
}

// rawStore fetches the byte-exact /api/v1/store body from one node.
func (h *harness) rawStore(id string) []byte {
	h.t.Helper()
	resp, err := http.Get(h.url(id) + "/api/v1/store")
	if err != nil {
		h.t.Fatalf("store %s: %v", id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		h.t.Fatalf("store %s: status %d err %v", id, resp.StatusCode, err)
	}
	return body
}

// assertStoresIdentical checks every live node serves a byte-identical
// store snapshot.
func (h *harness) assertStoresIdentical() {
	h.t.Helper()
	var ref []byte
	var refID string
	for _, id := range h.ids {
		if _, ok := h.nodes[id]; !ok {
			continue
		}
		body := h.rawStore(id)
		if ref == nil {
			ref, refID = body, id
			continue
		}
		if string(body) != string(ref) {
			h.t.Fatalf("store divergence: node %s != node %s\n%s\n---\n%s", id, refID, body, ref)
		}
	}
}

// waitIdle drains the whole cluster through one node's chaos surface.
func (h *harness) waitIdle(id string, timeout time.Duration) {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := h.nodes[id].WaitIdle(ctx); err != nil {
		h.t.Fatalf("wait idle via %s: %v", id, err)
	}
}

// keysByOwner returns per-member lists of store keys, derived from the same
// ring the nodes use, so tests can place data on chosen nodes.
func keysByOwner(ids []string, want int) map[string][]string {
	ring := cluster.NewRing(ids)
	out := make(map[string][]string)
	for i := 0; len(out) < len(ids) || shortest(out, ids) < want; i++ {
		if i > 10000 {
			panic("cluster_test: key search did not converge")
		}
		k := fmt.Sprintf("k%04d", i)
		owner := ring.OwnerOfKey(data.Key(k))
		out[owner] = append(out[owner], k)
	}
	return out
}

func shortest(m map[string][]string, ids []string) int {
	min := 1 << 30
	for _, id := range ids {
		if len(m[id]) < min {
			min = len(m[id])
		}
	}
	return min
}

// chainSpec builds a linear workflow writing the given keys in order, one
// task per key, each biased so final values are distinguishable.
func chainSpec(keys []string, bias int64) *wfjson.SpecJSON {
	sj := &wfjson.SpecJSON{Name: "chain", Start: "t0"}
	for i, k := range keys {
		tj := wfjson.TaskJSON{ID: fmt.Sprintf("t%d", i), Writes: []string{k}, Bias: bias + int64(i)}
		if i > 0 {
			tj.Reads = []string{keys[i-1]}
		}
		if i+1 < len(keys) {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	return sj
}

func waitRunDone(t testing.TB, n *cluster.Node, run string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info, err := n.RunInfo(run)
		if err == nil && info.Status == "done" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s not done after %v (last: %+v, %v)", run, timeout, info, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- tests ----

// The ring is a pure function of the membership: every node derives the
// same ownership map, and ownership covers exactly the members.
func TestRingDeterminism(t *testing.T) {
	a := cluster.NewRing([]string{"c", "a", "b"})
	b := cluster.NewRing([]string{"b", "c", "a"})
	if a.Stamper() != "a" || b.Stamper() != "a" {
		t.Fatalf("stamper should be lowest sorted ID, got %s / %s", a.Stamper(), b.Stamper())
	}
	if !reflect.DeepEqual(a.Members(), []string{"a", "b", "c"}) {
		t.Fatalf("members: %v", a.Members())
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := data.Key(fmt.Sprintf("key%d", i))
		o1, o2 := a.OwnerOfKey(k), b.OwnerOfKey(k)
		if o1 != o2 {
			t.Fatalf("key %s: rings disagree (%s vs %s)", k, o1, o2)
		}
		seen[o1] = true
	}
	if len(seen) != 3 {
		t.Fatalf("500 keys landed on %d of 3 members", len(seen))
	}
}

// A multi-task run submitted through a follower completes with its control
// token hopping across nodes: each task executes on the owner of its write
// key, and every replica converges on the same store.
func TestCrossNodeRunTokenHandoff(t *testing.T) {
	ids := []string{"a", "b", "c"}
	h := startCluster(t, ids, false, nil)
	keys := keysByOwner(ids, 1)
	// One write key per member, in member order: the token must visit all
	// three nodes.
	chain := []string{keys["a"][0], keys["b"][0], keys["c"][0]}
	entry := h.nodes[h.follower()]
	if err := entry.SubmitRunSpec("hop", chainSpec(chain, 10)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitRunDone(t, entry, "hop", 10*time.Second)
	h.waitIdle("a", 10*time.Second)
	h.assertStoresIdentical()

	want := map[string]int64{chain[0]: 10, chain[1]: 21, chain[2]: 33}
	for _, id := range ids {
		if got := h.nodes[id].StoreSnapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %s store %v, want %v", id, got, want)
		}
	}
	sent := 0.0
	for _, id := range ids {
		sent += h.regs[id].Snapshot()[obs.MClusterTokensSent]
	}
	if sent == 0 {
		t.Fatalf("expected at least one cross-node token handoff")
	}
}

// The acceptance criterion: generated attack schedules driven through a
// follower node of a 3-node cluster must satisfy every fuzz oracle — the
// repaired store equals the attack-free single-node execution — and all
// replicas must end byte-identical.
func TestClusterFuzzEquivalence(t *testing.T) {
	ids := []string{"a", "b", "c"}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := startCluster(t, ids, false, nil)
			sch := fuzz.GenSchedule(seed, fuzz.DefaultParams())
			r := &fuzz.Runner{Timeout: 90 * time.Second}
			rep, err := r.RunEpisode(clusterTarget{h.url(h.follower())}, sch)
			if err != nil {
				t.Fatalf("episode: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("oracle %s: %s", v.Oracle, v.Detail)
			}
			h.assertStoresIdentical()
		})
	}
}

// clusterTarget adapts one cluster node's public URL to the fuzz harness.
type clusterTarget struct{ url string }

func (c clusterTarget) BaseURL() string { return c.url }
func (c clusterTarget) Durable() bool   { return false }
func (c clusterTarget) Restart() error  { return fuzz.ErrRestartUnsupported }
func (c clusterTarget) Close() error    { return nil }

// Partial quiescence: while an incident holds the damaged keys' owners
// paused, a run whose footprint avoids the damaged keys completes on the
// clean nodes, and a run touching a damaged key stalls until release.
func TestPartialQuiescence(t *testing.T) {
	ids := []string{"a", "b", "c"}
	hold := 4 * time.Second
	h := startCluster(t, ids, false, func(id string, cfg *cluster.Config) {
		cfg.QuiesceHold = hold
	})
	keys := keysByOwner(ids, 2)
	damaged := keys["a"][0] // owned by the stamper: b and c stay clean

	entry := h.nodes["b"]
	if err := entry.SubmitRunSpec("victim", chainSpec([]string{damaged}, 5)); err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	waitRunDone(t, entry, "victim", 10*time.Second)
	h.waitIdle("a", 10*time.Second)

	inst, err := entry.InjectForged("victim", "evil", nil, map[string]int64{damaged: 999})
	if err != nil {
		t.Fatalf("forge: %v", err)
	}
	leader := cluster.NewRing(ids).OwnerOfRun("victim")
	if _, _, err := entry.ReportAlerts([]triage.Alert{{Bad: []wlog.InstanceID{inst}}}); err != nil {
		t.Fatalf("alert: %v", err)
	}
	// Wait for the incident leader to enter RECOVERY and for the stamper's
	// admission gate to actually hold the damaged key (RECOVERY flips first).
	deadline := time.Now().Add(5 * time.Second)
	for h.nodes[leader].StateString() != "RECOVERY" ||
		h.regs["a"].Snapshot()[obs.MClusterPausedKeys] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leader %s never entered RECOVERY with keys paused", leader)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A clean-key run completes mid-incident: only damaged-key owners pause.
	clean := []string{keys["b"][0], keys["c"][0]}
	if err := entry.SubmitRunSpec("clean", chainSpec(clean, 100)); err != nil {
		t.Fatalf("submit clean: %v", err)
	}
	// A damaged-key run stalls at the admission gate until release.
	if err := entry.SubmitRunSpec("stalled", chainSpec([]string{damaged}, 200)); err != nil {
		t.Fatalf("submit stalled: %v", err)
	}
	waitRunDone(t, entry, "clean", hold/2)
	if got := h.nodes[leader].StateString(); got != "RECOVERY" {
		t.Fatalf("incident over before the clean run finished (leader state %s): hold too short to prove partial quiescence", got)
	}
	if info, err := entry.RunInfo("stalled"); err != nil || info.Status != "active" {
		t.Fatalf("damaged-key run should be stalled mid-incident, got %+v err %v", info, err)
	}

	// After release everything drains; the forged damage is repaired.
	h.waitIdle("b", 3*hold)
	waitRunDone(t, entry, "stalled", time.Second)
	h.assertStoresIdentical()
	got := entry.StoreSnapshot()
	// The repair restored victim's write (5); "stalled" then overwrote the
	// key with its bias (no reads, so its sole task writes exactly 200).
	if got[damaged] != 200 {
		t.Fatalf("damaged key = %d, want 200 (repair then stalled run's write)", got[damaged])
	}
}

// A journaled follower that goes down mid-attack rejoins with -join and
// converges: the surviving nodes keep serving (runs whose tasks the dead
// node owned execute via the local-fallback path), the repair lands, and
// after rejoin all replicas are byte-identical.
func TestFollowerRestartRejoin(t *testing.T) {
	ids := []string{"a", "b", "c"}
	h := startCluster(t, ids, true, nil)
	keys := keysByOwner(ids, 2)

	entry := h.nodes["b"]
	if err := entry.SubmitRunSpec("r1", chainSpec([]string{keys["a"][0], keys["c"][0]}, 1)); err != nil {
		t.Fatalf("submit r1: %v", err)
	}
	waitRunDone(t, entry, "r1", 10*time.Second)
	h.waitIdle("a", 10*time.Second)

	// Take the follower c offline; its journal holds the prefix so far.
	h.stopNode("c")

	// The cluster keeps serving: a run writing a key OWNED by the dead
	// node must still complete (owner-unreachable local fallback).
	if err := entry.SubmitRunSpec("r2", chainSpec([]string{keys["c"][1], keys["b"][0]}, 50)); err != nil {
		t.Fatalf("submit r2: %v", err)
	}
	waitRunDone(t, entry, "r2", 10*time.Second)

	// Attack + repair while the node is down (damaged key owned by the
	// dead node: quiesce/release RPCs to it fail and must be tolerated).
	inst, err := entry.InjectForged("r2", "evil", nil, map[string]int64{keys["c"][1]: 777})
	if err != nil {
		t.Fatalf("forge: %v", err)
	}
	if _, _, err := entry.ReportAlerts([]triage.Alert{{Bad: []wlog.InstanceID{inst}}}); err != nil {
		t.Fatalf("alert: %v", err)
	}
	// WaitIdle needs every peer up, so poll the two live nodes directly.
	deadline := time.Now().Add(20 * time.Second)
	for {
		sa, sb := h.nodes["a"].StateString(), h.nodes["b"].StateString()
		da := h.nodes["a"].ClusterDoc().(cluster.ClusterInfo)
		db := h.nodes["b"].ClusterDoc().(cluster.ClusterInfo)
		if sa == "NORMAL" && sb == "NORMAL" && da.Applied == db.Applied {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live nodes never settled (a=%s@%d b=%s@%d)", sa, da.Applied, sb, db.Applied)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Rejoin: journal replay plus catch-up pull must reach the head.
	h.bootNode("c", true)
	h.waitIdle("a", 10*time.Second)
	h.assertStoresIdentical()
	snap := h.nodes["c"].StoreSnapshot()
	if snap[keys["c"][1]] != 50 {
		t.Fatalf("rejoined node sees %d for repaired key, want 50", snap[keys["c"][1]])
	}
	for _, id := range ids {
		if !reflect.DeepEqual(h.nodes[id].StoreSnapshot(), snap) {
			t.Fatalf("node %s diverges after rejoin", id)
		}
	}
}
