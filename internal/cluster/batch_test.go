package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"selfheal/internal/cluster"
	"selfheal/internal/obs"
	"selfheal/internal/triage"
	"selfheal/internal/wlog"
)

// Wire mirrors of the internal submit API (the test drives the endpoint
// exactly as a peer node would, over real HTTP).
type wireEntry struct {
	Run    string           `json:"run,omitempty"`
	Task   string           `json:"task"`
	Visit  int              `json:"visit"`
	Forged bool             `json:"forged,omitempty"`
	Writes map[string]int64 `json:"writes,omitempty"`
}

type wireSubmitReq struct {
	Origin  string      `json:"origin"`
	Entries []wireEntry `json:"entries"`
}

type wireSubmitResp struct {
	Results []struct {
		Status string `json:"status"`
		Seq    int    `json:"seq"`
		Reason string `json:"reason,omitempty"`
	} `json:"results"`
}

func postSubmit(tb testing.TB, url string, req wireSubmitReq) wireSubmitResp {
	tb.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/internal/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var out wireSubmitResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		tb.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	if len(out.Results) != len(req.Entries) {
		tb.Fatalf("submit: %d results for %d entries", len(out.Results), len(req.Entries))
	}
	return out
}

func forgedBatch(prefix string, lo, n int) []wireEntry {
	entries := make([]wireEntry, n)
	for i := 0; i < n; i++ {
		entries[i] = wireEntry{
			Run: "bench", Task: fmt.Sprintf("%s%09d", prefix, lo+i), Visit: 1, Forged: true,
			Writes: map[string]int64{"bk": int64(lo + i)},
		}
	}
	return entries
}

// A batched POST /internal/v1/submit stamps every entry with dense
// consecutive seqs in submission order; resubmitting the same batch is
// fully deduplicated; and the follower converges byte-identically.
func TestBatchSubmitEndpoint(t *testing.T) {
	ids := []string{"a", "b"}
	h := startCluster(t, ids, true, nil)

	req := wireSubmitReq{Origin: "test", Entries: forgedBatch("f", 0, 24)}
	out := postSubmit(t, h.url("a"), req)
	for i, res := range out.Results {
		if res.Status != "ok" {
			t.Fatalf("entry %d: status %s (%s)", i, res.Status, res.Reason)
		}
		if i > 0 && res.Seq != out.Results[i-1].Seq+1 {
			t.Fatalf("entry %d: seq %d after %d — batch seqs must be dense and ordered",
				i, res.Seq, out.Results[i-1].Seq)
		}
	}

	// Retransmit after a (simulated) lost response: every verdict is dup.
	out2 := postSubmit(t, h.url("a"), req)
	for i, res := range out2.Results {
		if res.Status != "dup" {
			t.Fatalf("resubmitted entry %d: status %s, want dup", i, res.Status)
		}
	}

	// The whole batch replicates and both stores agree.
	deadline := time.Now().Add(5 * time.Second)
	want := out.Results[len(out.Results)-1].Seq
	for h.nodes["b"].ClusterDoc().(cluster.ClusterInfo).Applied < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached seq %d", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.assertStoresIdentical()
}

// recordStream pulls the full committed stream (JSON form) from one node,
// with Origin cleared: origins may legitimately differ between equivalent
// executions and are documented as observability-only.
func recordStream(t *testing.T, url string) []json.RawMessage {
	t.Helper()
	resp, err := http.Get(url + "/internal/v1/commits?after=0&max=100000")
	if err != nil {
		t.Fatalf("commits: %v", err)
	}
	defer resp.Body.Close()
	var doc struct {
		Records []map[string]json.RawMessage `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("commits decode: %v", err)
	}
	out := make([]json.RawMessage, len(doc.Records))
	for i, rec := range doc.Records {
		delete(rec, "origin")
		b, _ := json.Marshal(rec)
		out[i] = b
	}
	return out
}

// The acceptance invariant for the pipelined commit path: a cluster running
// with SubmitWindow=32 (batched, speculative windows) commits the exact
// same record stream — same seqs, same entries, same read observations —
// as one running with SubmitWindow=1 (the old per-record path), and every
// replica of both ends byte-identical, including through a forge + repair.
func TestBatchSerialStampingEquivalence(t *testing.T) {
	ids := []string{"a", "b", "c"}
	run := func(window int) (*harness, []json.RawMessage) {
		h := startCluster(t, ids, true, func(id string, cfg *cluster.Config) {
			cfg.SubmitWindow = window
		})
		keys := keysByOwner(ids, 8)
		// Owner-contiguous segments: 8 consecutive tasks per owner, so the
		// windowed executor actually forms multi-entry batches.
		var chain []string
		for _, id := range ids {
			chain = append(chain, keys[id][:8]...)
		}
		entry := h.nodes[h.follower()]
		if err := entry.SubmitRunSpec("eq", chainSpec(chain, 7)); err != nil {
			t.Fatalf("window %d: submit: %v", window, err)
		}
		waitRunDone(t, entry, "eq", 20*time.Second)
		h.waitIdle("a", 10*time.Second)

		// Attack + repair: the repair record must land at the same stream
		// position in both executions.
		inst, err := entry.InjectForged("eq", "evil", nil, map[string]int64{chain[3]: 4242})
		if err != nil {
			t.Fatalf("window %d: forge: %v", window, err)
		}
		if _, _, err := entry.ReportAlerts([]triage.Alert{{Bad: []wlog.InstanceID{inst}}}); err != nil {
			t.Fatalf("window %d: alert: %v", window, err)
		}
		h.waitIdle("a", 20*time.Second)
		h.assertStoresIdentical()

		// The windowed run must actually exercise group stamping: with
		// 8-task owner segments, mean batch size on the stamper is > 1.
		snap := h.regs["a"].Snapshot()
		count, sum := snap[obs.MClusterStampBatchSize+"_count"], snap[obs.MClusterStampBatchSize+"_sum"]
		if window > 1 && (count == 0 || sum/count <= 1) {
			t.Fatalf("window %d: mean stamp batch size %.2f over %v batches — windows never formed",
				window, sum/count, count)
		}
		return h, recordStream(t, h.url("a"))
	}

	hSerial, serial := run(1)
	hBatched, batched := run(32)

	if len(serial) != len(batched) {
		t.Fatalf("stream lengths differ: serial %d, batched %d", len(serial), len(batched))
	}
	for i := range serial {
		if string(serial[i]) != string(batched[i]) {
			t.Fatalf("record %d differs:\nserial  %s\nbatched %s", i+1, serial[i], batched[i])
		}
	}
	if got, want := string(hBatched.rawStore("a")), string(hSerial.rawStore("a")); got != want {
		t.Fatalf("final stores differ across windows:\nserial  %s\nbatched %s", want, got)
	}
}
