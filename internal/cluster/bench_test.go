package cluster_test

import (
	"testing"
)

// The cluster commit-path benchmarks drive a 2-node journaled cluster (one
// stamper fsyncing per batch, one replicating follower) over real loopback
// HTTP, submitting forged entries so the measurement isolates the commit
// path itself: submit RPC → group validation → journal write+fsync →
// publish. ns/op is per committed ENTRY in both, so the ratio is the
// group-commit speedup directly.

func benchClusterCommit(b *testing.B, batch int) {
	h := startCluster(b, []string{"a", "b"}, true, nil)
	url := h.url("a")
	// Warm the path (HTTP keep-alive, first fsync) outside the timer.
	postSubmit(b, url, wireSubmitReq{Origin: "bench", Entries: forgedBatch("w", 0, batch)})
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		out := postSubmit(b, url, wireSubmitReq{Origin: "bench", Entries: forgedBatch("f", i, n)})
		for j, res := range out.Results {
			if res.Status != "ok" {
				b.Fatalf("entry %d: status %s (%s)", i+j, res.Status, res.Reason)
			}
		}
	}
}

// BenchmarkClusterCommitSerial is the pre-batching baseline: one entry per
// submit call, one journal fsync per record.
func BenchmarkClusterCommitSerial(b *testing.B) { benchClusterCommit(b, 1) }

// BenchmarkClusterCommitBatched is the group-stamped path at the executor's
// default-window batch size: 16 entries per submit call, one fsync per
// batch. The acceptance bar is ≥3× over Serial per entry.
func BenchmarkClusterCommitBatched(b *testing.B) { benchClusterCommit(b, 16) }
