package cluster

import (
	"context"
	"sort"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/wlog"
)

// incidentWorker is the per-node incident leader loop: it drains the
// bounded alert queue in batches and runs each batch through the full
// assess → quiesce → repair → release sequence. A node only receives
// alerts it leads (the accused run's owner routes them here), so incident
// leadership is distributed per run.
func (n *Node) incidentWorker() {
	defer n.wg.Done()
	for {
		var first []wlog.InstanceID
		select {
		case <-n.stop:
			return
		case first = <-n.alertCh:
		}
		n.inIncident.Store(true)
		batch := [][]wlog.InstanceID{first}
	drain:
		for {
			select {
			case more := <-n.alertCh:
				batch = append(batch, more)
			default:
				break drain
			}
		}
		n.runIncident(batch)
		n.pendingAlerts.Add(-int64(len(batch)))
		n.alertsAnalyzed.Add(int64(len(batch)))
		n.inIncident.Store(false)
	}
}

// runIncident leads one incident: distributed damage assessment, partial
// quiescence of the nodes owning damaged keys, a replicated repair record,
// then release. Dead peers are tolerated at every step — the repair itself
// is sound regardless because it executes at a fixed stream position.
func (n *Node) runIncident(batch [][]wlog.InstanceID) {
	n.o.incident()
	seen := make(map[wlog.InstanceID]bool)
	var bad []wlog.InstanceID
	for _, b := range batch {
		for _, id := range b {
			if !seen[id] {
				seen[id] = true
				bad = append(bad, id)
			}
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })

	keys := n.assessDamage(bad)

	// Quiesce only the nodes owning damaged keys (§IV partial quiescence),
	// plus the sequencer's admission gate: a clean node may still own a
	// task that READS a damaged key, and admission is where that is caught.
	targets := map[string]bool{n.ring.Stamper(): true}
	for _, k := range keys {
		targets[n.ring.OwnerOfKey(data.Key(k))] = true
	}
	tlist := sortedKeyList(targets)
	for _, t := range tlist {
		if t == n.cfg.NodeID {
			n.quiesceKeys(keys)
			continue
		}
		_ = n.client.quiesce(n.peerAddr(t), keys)
	}

	seq, err := n.submitRepair(instanceStrings(bad))
	if err != nil {
		// The repair could not be stamped (e.g. the accused instances are
		// not in the log): release at the current position and move on.
		seq = n.rep.Applied()
	} else {
		ctx, cancel := context.WithTimeout(n.stopCtx, 30*time.Second)
		_ = n.rep.WaitApplied(ctx, seq)
		cancel()
	}

	if n.cfg.QuiesceHold > 0 {
		n.sleep(n.cfg.QuiesceHold)
	}

	for _, t := range tlist {
		if t == n.cfg.NodeID {
			n.releaseKeys(keys, seq)
			continue
		}
		_ = n.client.release(n.peerAddr(t), keys, seq)
	}
}

// assessDamage fans the damage-key closure out across the membership: the
// accused instances are partitioned by hash, each member computes the
// closure of its partition on its own replica, and the leader unions the
// results. Any unreachable member's partition is assessed locally instead.
func (n *Node) assessDamage(bad []wlog.InstanceID) []string {
	members := n.ring.Members()
	parts := make(map[string][]wlog.InstanceID)
	for _, id := range bad {
		m := members[int(hash32(string(id))%uint32(len(members)))]
		parts[m] = append(parts[m], id)
	}
	keys := make(map[string]bool)
	for m, part := range parts {
		var ks []string
		var err error
		if m != n.cfg.NodeID {
			ks, err = n.client.assess(n.peerAddr(m), instanceStrings(part))
		}
		if m == n.cfg.NodeID || err != nil {
			ks = n.rep.DamageKeys(part)
		}
		for _, k := range ks {
			keys[k] = true
		}
	}
	return sortedKeyList(keys)
}
