// Package cluster turns the single-process self-healing workflow service
// into a networked deployment: N selfheal-server processes, each holding a
// full replica of the system log, the versioned store and the per-run
// execution state, coordinating over an internal HTTP API
// (/internal/v1/...).
//
// The design follows §VII of the paper (per-node log segments merged into
// one global stamp order) with a single sequencer: the cluster member with
// the lowest sorted node ID — the stamper — assigns every record its dense
// stream position and validates task submissions against its replica
// (optimistic concurrency: a submission whose observed read versions are no
// longer current is rejected and re-executed by its owner). All other state
// is derived deterministically from the replicated record stream, so any
// two nodes that applied the same prefix hold byte-identical stores — the
// equivalence the cluster tests assert against a single-node deployment.
//
// Work is partitioned by a static key-range ring: each run is owned by the
// node owning the hash of its ID, and each task by the node owning the
// task's first write key, so a single workflow's control token genuinely
// travels between processes. Repairs are coordinated per incident by the
// accused run's owner (the repair leader), which fans the damage assessment
// out across the membership, quiesces only the nodes owning damaged keys
// (§IV partial quiescence), and has the stamper place a repair record in
// the stream; every node then runs the same deterministic repair at the
// same position.
package cluster

import (
	"hash/fnv"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

// Ring is the static key-range ownership map: the sorted member IDs split
// the 32-bit FNV-1a hash space into len(ids) contiguous equal ranges, range
// i owned by member i. Membership is fixed at boot (-peers), so every node
// derives the identical ring with no coordination.
type Ring struct {
	ids []string
}

// NewRing builds the ring over the given member IDs (order irrelevant).
func NewRing(ids []string) *Ring {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	return &Ring{ids: sorted}
}

// Members returns the sorted member IDs.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Stamper returns the sequencer's ID: the lowest sorted member.
func (r *Ring) Stamper() string { return r.ids[0] }

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// ownerIndex maps a hash to the member owning its range.
func (r *Ring) ownerIndex(h uint32) int {
	n := uint64(len(r.ids))
	i := int(uint64(h) * n >> 32)
	if i >= len(r.ids) { // unreachable, but keep the index safe
		i = len(r.ids) - 1
	}
	return i
}

// OwnerOfKey returns the member owning a store key's range.
func (r *Ring) OwnerOfKey(k data.Key) string {
	return r.ids[r.ownerIndex(hash32(string(k)))]
}

// OwnerIndexOfRun returns the owning member's ring position for a run.
func (r *Ring) OwnerIndexOfRun(run string) int {
	return r.ownerIndex(hash32(run))
}

// OwnerOfRun returns the member owning a run: its admission point, repair
// leader and default executor.
func (r *Ring) OwnerOfRun(run string) string {
	return r.ids[r.OwnerIndexOfRun(run)]
}

// OwnerOfTask returns the member that executes a task: the owner of the
// task's first sorted write key, or the run's owner for write-free tasks.
// Tying execution to data ownership is what makes a multi-task workflow's
// control token hop between nodes.
func (r *Ring) OwnerOfTask(run string, spec *wf.Spec, task wf.TaskID) string {
	t := spec.Tasks[task]
	if t == nil || len(t.Writes) == 0 {
		return r.OwnerOfRun(run)
	}
	first := t.Writes[0]
	for _, k := range t.Writes[1:] {
		if k < first {
			first = k
		}
	}
	return r.OwnerOfKey(first)
}
