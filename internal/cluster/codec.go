package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"selfheal/internal/durable"
	"selfheal/internal/wfjson"
)

// Binary record codec. Every record — in the per-node journal and in the
// push/fetch replication bodies — is one framed payload
// (durable.AppendFrame: [len][crc][payload]) whose payload is:
//
//	kind    byte   (1=spec 2=entry 3=repair)
//	seq     uvarint
//	origin  string (uvarint length + bytes)
//	kind-specific body
//
// Spec bodies embed the run document as canonical JSON bytes (specs are
// rare control-plane records; the hot path is entries). Entry bodies are
// fully binary with sorted map keys, so encoding is deterministic: the
// same record always produces the same bytes on every node.

const (
	recSpec   byte = 1
	recEntry  byte = 2
	recRepair byte = 3

	entryForged byte = 1 << 0
	entryChosen byte = 1 << 1
)

// recordsContentType marks a binary framed-record request/response body on
// the /internal/v1/commits wire (JSON remains the curl-able default).
const recordsContentType = "application/x-selfheal-records"

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// recReader decodes one record payload with a sticky error: after the
// first failure every further read returns zero values, so decode code
// stays linear and checks err once at the end.
type recReader struct {
	b   []byte
	err error
}

func (r *recReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: record codec: truncated %s", what)
	}
}

func (r *recReader) byteVal(what string) byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *recReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *recReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *recReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *recReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

func (r *recReader) f64(what string) float64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *recReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("cluster: record codec: %d trailing bytes", len(r.b))
	}
	return nil
}

// encodeRecord appends the binary payload (unframed) of rec to dst.
func encodeRecord(dst []byte, rec *Record) []byte {
	switch rec.Kind {
	case KindSpec:
		dst = append(dst, recSpec)
	case KindEntry:
		dst = append(dst, recEntry)
	case KindRepair:
		dst = append(dst, recRepair)
	default:
		// Unknown kinds cannot be stamped (the stamper only emits the three
		// above); encode as an explicit zero so decode rejects it loudly.
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, uint64(rec.Seq))
	dst = appendString(dst, rec.Origin)
	switch rec.Kind {
	case KindSpec:
		dst = appendString(dst, rec.Run)
		doc, err := json.Marshal(rec.Spec)
		if err != nil || rec.Spec == nil {
			doc = nil
		}
		dst = appendBytes(dst, doc)
		keys := make([]string, 0, len(rec.Init))
		for k := range rec.Init {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = appendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = appendVarint(dst, rec.Init[k])
		}
	case KindEntry:
		dst = encodeEntryJSON(dst, rec.Entry)
	case KindRepair:
		dst = appendUvarint(dst, uint64(len(rec.Bad)))
		for _, id := range rec.Bad {
			dst = appendString(dst, id)
		}
	}
	return dst
}

func encodeEntryJSON(dst []byte, ej *EntryJSON) []byte {
	dst = appendString(dst, ej.Run)
	dst = appendString(dst, ej.Task)
	dst = appendUvarint(dst, uint64(ej.Visit))
	var flags byte
	if ej.Forged {
		flags |= entryForged
	}
	if ej.Chosen != "" {
		flags |= entryChosen
	}
	dst = append(dst, flags)
	if ej.Chosen != "" {
		dst = appendString(dst, ej.Chosen)
	}
	rkeys := make([]string, 0, len(ej.Reads))
	for k := range ej.Reads {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	dst = appendUvarint(dst, uint64(len(rkeys)))
	for _, k := range rkeys {
		o := ej.Reads[k]
		dst = appendString(dst, k)
		dst = appendVarint(dst, o.Value)
		dst = appendString(dst, o.Writer)
		dst = appendF64(dst, o.WriterPos)
	}
	wkeys := make([]string, 0, len(ej.Writes))
	for k := range ej.Writes {
		wkeys = append(wkeys, k)
	}
	sort.Strings(wkeys)
	dst = appendUvarint(dst, uint64(len(wkeys)))
	for _, k := range wkeys {
		dst = appendString(dst, k)
		dst = appendVarint(dst, ej.Writes[k])
	}
	return dst
}

// decodeRecord decodes one binary record payload.
func decodeRecord(p []byte) (*Record, error) {
	r := &recReader{b: p}
	kind := r.byteVal("kind")
	rec := &Record{
		Seq:    int(r.uvarint("seq")),
		Origin: r.str("origin"),
	}
	switch kind {
	case recSpec:
		rec.Kind = KindSpec
		rec.Run = r.str("run")
		doc := r.bytes("spec")
		if r.err == nil && len(doc) > 0 {
			rec.Spec = new(wfjson.SpecJSON)
			if err := json.Unmarshal(doc, rec.Spec); err != nil {
				return nil, fmt.Errorf("cluster: record codec: spec document: %w", err)
			}
		}
		n := r.uvarint("init count")
		if r.err == nil && n > 0 {
			rec.Init = make(map[string]int64, n)
			for i := uint64(0); i < n; i++ {
				k := r.str("init key")
				rec.Init[k] = r.varint("init value")
			}
		}
	case recEntry:
		rec.Kind = KindEntry
		rec.Entry = decodeEntryJSON(r)
	case recRepair:
		rec.Kind = KindRepair
		n := r.uvarint("bad count")
		if r.err == nil {
			rec.Bad = make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				rec.Bad = append(rec.Bad, r.str("bad id"))
			}
		}
	default:
		return nil, fmt.Errorf("cluster: record codec: unknown kind byte %d", kind)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

func decodeEntryJSON(r *recReader) *EntryJSON {
	ej := &EntryJSON{
		Run:   r.str("entry run"),
		Task:  r.str("entry task"),
		Visit: int(r.uvarint("entry visit")),
	}
	flags := r.byteVal("entry flags")
	ej.Forged = flags&entryForged != 0
	if flags&entryChosen != 0 {
		ej.Chosen = r.str("entry chosen")
	}
	nr := r.uvarint("read count")
	if r.err == nil && nr > 0 {
		ej.Reads = make(map[string]ReadObsJSON, nr)
		for i := uint64(0); i < nr; i++ {
			k := r.str("read key")
			ej.Reads[k] = ReadObsJSON{
				Value:     r.varint("read value"),
				Writer:    r.str("read writer"),
				WriterPos: r.f64("read writer pos"),
			}
		}
	}
	nw := r.uvarint("write count")
	if r.err == nil && nw > 0 {
		ej.Writes = make(map[string]int64, nw)
		for i := uint64(0); i < nw; i++ {
			k := r.str("write key")
			ej.Writes[k] = r.varint("write value")
		}
	}
	return ej
}

// encodeFramedRecord appends rec as one CRC-framed payload to dst — the
// unit both the journal and the replication wire are built from.
func encodeFramedRecord(dst []byte, rec *Record) []byte {
	return durable.AppendFrame(dst, encodeRecord(nil, rec))
}

// encodeWireRecords concatenates framed records into a replication body.
func encodeWireRecords(recs []Record) []byte {
	var dst []byte
	for i := range recs {
		dst = encodeFramedRecord(dst, &recs[i])
	}
	return dst
}

// decodeWireRecords decodes a framed replication body. Unlike the journal
// (where a torn tail is expected after a crash), the wire body travels
// over TCP: any framing damage is corruption and fails the whole body.
func decodeWireRecords(b []byte) ([]Record, error) {
	payloads, validLen := durable.SplitFrames(b)
	if validLen != len(b) {
		return nil, fmt.Errorf("cluster: record stream corrupt at byte %d of %d", validLen, len(b))
	}
	recs := make([]Record, 0, len(payloads))
	for _, p := range payloads {
		rec, err := decodeRecord(p)
		if err != nil {
			return nil, err
		}
		recs = append(recs, *rec)
	}
	return recs, nil
}
