package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"selfheal/internal/engine"
	"selfheal/internal/shard"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// apiError is a structured error envelope returned by a peer's internal
// API. Unwrap maps the wire code back to the engine/shard sentinels so a
// proxying node propagates the same HTTP status its peer decided.
type apiError struct {
	Code string
	Msg  string
}

func (e *apiError) Error() string { return fmt.Sprintf("cluster: peer error %s: %s", e.Code, e.Msg) }

func (e *apiError) Unwrap() error {
	switch e.Code {
	case "bad_request":
		return engine.ErrBadSpec
	case "not_found":
		return engine.ErrUnknownRun
	case "run_exists":
		return engine.ErrRunExists
	case "queue_full":
		return shard.ErrQueueFull
	}
	return nil
}

// Wire documents of the node-to-node API.

type statusDoc struct {
	Node       string `json:"node"`
	Applied    int    `json:"applied"`
	ActiveRuns int    `json:"active_runs"`
	Alerts     int    `json:"alerts"`
	Incident   bool   `json:"incident"`
	State      string `json:"state"`
}

type commitsDoc struct {
	Records []Record `json:"records"`
}

type appliedDoc struct {
	Applied int `json:"applied"`
}

type submitReq struct {
	Origin string `json:"origin"`
	// Entry is the single-entry form; Entries is the batch form the
	// pipelined executor uses. Exactly one of them is set.
	Entry   *EntryJSON   `json:"entry,omitempty"`
	Entries []*EntryJSON `json:"entries,omitempty"`
}

type submitResp struct {
	Results []SubmitResult `json:"results"`
}

type specReq struct {
	Origin string           `json:"origin"`
	Run    string           `json:"run"`
	Spec   *wfjson.SpecJSON `json:"spec"`
}

type seqDoc struct {
	Seq int `json:"seq"`
}

type forgeReq struct {
	Origin string           `json:"origin"`
	Run    string           `json:"run"`
	Task   string           `json:"task"`
	Reads  []string         `json:"reads,omitempty"`
	Writes map[string]int64 `json:"writes,omitempty"`
}

type forgeResp struct {
	Instance string `json:"instance"`
	Seq      int    `json:"seq"`
}

type repairReq struct {
	Origin string   `json:"origin"`
	Bad    []string `json:"bad"`
}

type tokenReq struct {
	Run   string `json:"run"`
	After int    `json:"after"`
}

type assessReq struct {
	Bad []string `json:"bad"`
}

type assessResp struct {
	Keys []string `json:"keys"`
}

type quiesceReq struct {
	Keys []string `json:"keys"`
}

type releaseReq struct {
	Keys  []string `json:"keys"`
	After int      `json:"after"`
}

type alertForwardReq struct {
	Bad []string `json:"bad"`
}

type alertForwardResp struct {
	Admitted int `json:"admitted"`
	Dropped  int `json:"dropped"`
}

// InternalHandler serves the node-to-node API under /internal/v1/. It is
// mounted next to (not inside) the public API so operators can firewall it
// separately; the route set is documented in docs/CLUSTER.md.
func (n *Node) InternalHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/status", n.handleStatus)
	mux.HandleFunc("GET /internal/v1/commits", n.handleCommitsPull)
	mux.HandleFunc("POST /internal/v1/commits", n.handleCommitsPush)
	mux.HandleFunc("POST /internal/v1/submit", n.handleSubmit)
	mux.HandleFunc("POST /internal/v1/spec", n.handleSpec)
	mux.HandleFunc("POST /internal/v1/forge", n.handleForge)
	mux.HandleFunc("POST /internal/v1/repair", n.handleRepair)
	mux.HandleFunc("POST /internal/v1/tokens", n.handleToken)
	mux.HandleFunc("POST /internal/v1/assess", n.handleAssess)
	mux.HandleFunc("POST /internal/v1/quiesce", n.handleQuiesce)
	mux.HandleFunc("POST /internal/v1/release", n.handleRelease)
	mux.HandleFunc("POST /internal/v1/alerts", n.handleAlertForward)
	return mux
}

func writeInternalJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeInternalErr(w http.ResponseWriter, status int, code, msg string) {
	writeInternalJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// writeMappedErr translates sentinel-wrapped errors into the envelope the
// peer client maps back to the same sentinels.
func writeMappedErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrBadSpec):
		writeInternalErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, engine.ErrUnknownRun):
		writeInternalErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, engine.ErrRunExists):
		writeInternalErr(w, http.StatusConflict, "run_exists", err.Error())
	case errors.Is(err, shard.ErrQueueFull):
		writeInternalErr(w, http.StatusTooManyRequests, "queue_full", err.Error())
	default:
		writeInternalErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func decodeInternal(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(v); err != nil {
		writeInternalErr(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return false
	}
	return true
}

func (n *Node) statusSnapshot() statusDoc {
	return statusDoc{
		Node:       n.cfg.NodeID,
		Applied:    n.rep.Applied(),
		ActiveRuns: len(n.rep.ActiveRuns()),
		Alerts:     int(n.pendingAlerts.Load()),
		Incident:   n.inIncident.Load(),
		State:      n.StateString(),
	}
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeInternalJSON(w, http.StatusOK, n.statusSnapshot())
}

func (n *Node) handleCommitsPull(w http.ResponseWriter, r *http.Request) {
	after, _ := strconv.Atoi(r.URL.Query().Get("after"))
	max := 512
	if m, err := strconv.Atoi(r.URL.Query().Get("max")); err == nil && m > 0 {
		max = m
	}
	recs := n.rep.RecordsAfter(after, max)
	if r.URL.Query().Get("codec") == "bin" {
		// The replication codec: CRC-framed binary records. Peers always
		// request it; plain GET keeps the curl-able JSON document.
		body := encodeWireRecords(recs)
		n.o.replicationBytes("out", len(body))
		w.Header().Set("Content-Type", recordsContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	if recs == nil {
		recs = []Record{}
	}
	writeInternalJSON(w, http.StatusOK, commitsDoc{Records: recs})
}

func (n *Node) handleCommitsPush(w http.ResponseWriter, r *http.Request) {
	var recs []Record
	if strings.HasPrefix(r.Header.Get("Content-Type"), recordsContentType) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			writeInternalErr(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		n.o.replicationBytes("in", len(raw))
		recs, err = decodeWireRecords(raw)
		if err != nil {
			writeInternalErr(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
	} else {
		var doc commitsDoc
		if !decodeInternal(w, r, &doc) {
			return
		}
		recs = doc.Records
	}
	for i := range recs {
		if err := n.applyRecord(&recs[i]); err != nil {
			writeInternalErr(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
	}
	writeInternalJSON(w, http.StatusOK, appliedDoc{Applied: n.rep.Applied()})
}

func (n *Node) requireStamper(w http.ResponseWriter) bool {
	if n.st == nil {
		writeInternalErr(w, http.StatusMisdirectedRequest, "not_stamper",
			fmt.Sprintf("node %s is not the sequencer (%s is)", n.cfg.NodeID, n.ring.Stamper()))
		return false
	}
	return true
}

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !n.requireStamper(w) {
		return
	}
	var req submitReq
	if !decodeInternal(w, r, &req) {
		return
	}
	if len(req.Entries) > 0 {
		results, err := n.st.SubmitEntries(req.Origin, req.Entries)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		writeInternalJSON(w, http.StatusOK, submitResp{Results: results})
		return
	}
	if req.Entry == nil {
		writeInternalErr(w, http.StatusBadRequest, "bad_request", "submit without entry")
		return
	}
	writeInternalJSON(w, http.StatusOK, n.st.SubmitEntry(req.Origin, req.Entry))
}

func (n *Node) handleSpec(w http.ResponseWriter, r *http.Request) {
	if !n.requireStamper(w) {
		return
	}
	var req specReq
	if !decodeInternal(w, r, &req) {
		return
	}
	seq, err := n.st.SubmitSpec(req.Origin, req.Run, req.Spec)
	if err != nil {
		writeMappedErr(w, err)
		return
	}
	writeInternalJSON(w, http.StatusOK, seqDoc{Seq: seq})
}

func (n *Node) handleForge(w http.ResponseWriter, r *http.Request) {
	if !n.requireStamper(w) {
		return
	}
	var req forgeReq
	if !decodeInternal(w, r, &req) {
		return
	}
	inst, seq, err := n.st.SubmitForge(req.Origin, req.Run, req.Task, req.Reads, req.Writes)
	if err != nil {
		writeMappedErr(w, err)
		return
	}
	writeInternalJSON(w, http.StatusOK, forgeResp{Instance: string(inst), Seq: seq})
}

func (n *Node) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !n.requireStamper(w) {
		return
	}
	var req repairReq
	if !decodeInternal(w, r, &req) {
		return
	}
	seq, err := n.st.SubmitRepair(req.Origin, req.Bad)
	if err != nil {
		writeMappedErr(w, err)
		return
	}
	writeInternalJSON(w, http.StatusOK, seqDoc{Seq: seq})
}

func (n *Node) handleToken(w http.ResponseWriter, r *http.Request) {
	var req tokenReq
	if !decodeInternal(w, r, &req) {
		return
	}
	n.o.tokenReceived()
	// No need to wait for req.After: a stale frontier self-corrects — the
	// stamper rejects the stale submission and the driver catches up.
	n.driveRun(req.Run)
	writeInternalJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (n *Node) handleAssess(w http.ResponseWriter, r *http.Request) {
	var req assessReq
	if !decodeInternal(w, r, &req) {
		return
	}
	bad := make([]wlog.InstanceID, len(req.Bad))
	for i, s := range req.Bad {
		bad[i] = wlog.InstanceID(s)
	}
	writeInternalJSON(w, http.StatusOK, assessResp{Keys: n.rep.DamageKeys(bad)})
}

func (n *Node) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	var req quiesceReq
	if !decodeInternal(w, r, &req) {
		return
	}
	n.quiesceKeys(req.Keys)
	writeInternalJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseReq
	if !decodeInternal(w, r, &req) {
		return
	}
	n.releaseKeys(req.Keys, req.After)
	writeInternalJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (n *Node) handleAlertForward(w http.ResponseWriter, r *http.Request) {
	var req alertForwardReq
	if !decodeInternal(w, r, &req) {
		return
	}
	bad := make([]wlog.InstanceID, len(req.Bad))
	for i, s := range req.Bad {
		if _, _, _, err := wlog.ParseInstance(wlog.InstanceID(s)); err != nil {
			writeInternalErr(w, http.StatusBadRequest, "bad_request", "malformed instance "+s)
			return
		}
		bad[i] = wlog.InstanceID(s)
	}
	for _, id := range bad {
		if !n.rep.HasInstance(id) {
			writeInternalErr(w, http.StatusNotFound, "not_found", "unknown instance "+string(id))
			return
		}
	}
	resp := alertForwardResp{}
	if n.admitAlert(bad) {
		resp.Admitted = 1
	} else {
		resp.Dropped = 1
	}
	writeInternalJSON(w, http.StatusOK, resp)
}

// peerClient is the node-to-node HTTP client: short timeouts for the chatty
// control plane, long ones for submissions (a push may apply a repair on
// the receiving replica before responding).
type peerClient struct {
	short *http.Client
	long  *http.Client
}

func newPeerClient() *peerClient {
	return &peerClient{
		short: &http.Client{Timeout: 2 * time.Second},
		long:  &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *peerClient) call(cl *http.Client, method, addr, path string, in, out any) error {
	if addr == "" {
		return errors.New("cluster: peer has no address")
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, "http://"+addr+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
			return &apiError{Code: env.Error.Code, Msg: env.Error.Message}
		}
		return fmt.Errorf("cluster: peer %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func (c *peerClient) status(addr string) (statusDoc, error) {
	var st statusDoc
	err := c.call(c.short, http.MethodGet, addr, "/internal/v1/status", nil, &st)
	return st, err
}

// fetchCommits pulls records past `after` in the binary replication codec.
func (c *peerClient) fetchCommits(addr string, after, max int) ([]Record, error) {
	if addr == "" {
		return nil, errors.New("cluster: peer has no address")
	}
	path := fmt.Sprintf("/internal/v1/commits?after=%d&max=%d&codec=bin", after, max)
	resp, err := c.long.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("cluster: peer GET %s: HTTP %d", path, resp.StatusCode)
	}
	return decodeWireRecords(raw)
}

// pushCommits ships a pre-encoded binary replication body and returns the
// peer's acknowledged applied position.
func (c *peerClient) pushCommits(addr string, body []byte) (int, error) {
	if addr == "" {
		return 0, errors.New("cluster: peer has no address")
	}
	resp, err := c.long.Post("http://"+addr+"/internal/v1/commits", recordsContentType, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode/100 != 2 {
		return 0, fmt.Errorf("cluster: peer POST /internal/v1/commits: HTTP %d", resp.StatusCode)
	}
	var ack appliedDoc
	if err := json.Unmarshal(raw, &ack); err != nil {
		return 0, err
	}
	return ack.Applied, nil
}

func (c *peerClient) submitEntries(addr, origin string, entries []*EntryJSON) ([]SubmitResult, error) {
	var resp submitResp
	err := c.call(c.long, http.MethodPost, addr, "/internal/v1/submit", submitReq{Origin: origin, Entries: entries}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(entries) {
		return nil, fmt.Errorf("cluster: submit returned %d results for %d entries", len(resp.Results), len(entries))
	}
	return resp.Results, nil
}

func (c *peerClient) submitSpec(addr, origin, run string, doc *wfjson.SpecJSON) (int, error) {
	var resp seqDoc
	err := c.call(c.long, http.MethodPost, addr, "/internal/v1/spec", specReq{Origin: origin, Run: run, Spec: doc}, &resp)
	return resp.Seq, err
}

func (c *peerClient) submitForge(addr, origin, run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, int, error) {
	var resp forgeResp
	req := forgeReq{Origin: origin, Run: run, Task: task, Reads: reads, Writes: writes}
	err := c.call(c.long, http.MethodPost, addr, "/internal/v1/forge", req, &resp)
	return wlog.InstanceID(resp.Instance), resp.Seq, err
}

func (c *peerClient) submitRepair(addr, origin string, bad []string) (int, error) {
	var resp seqDoc
	err := c.call(c.long, http.MethodPost, addr, "/internal/v1/repair", repairReq{Origin: origin, Bad: bad}, &resp)
	return resp.Seq, err
}

func (c *peerClient) sendToken(addr, run string, after int) error {
	return c.call(c.short, http.MethodPost, addr, "/internal/v1/tokens", tokenReq{Run: run, After: after}, nil)
}

func (c *peerClient) assess(addr string, bad []string) ([]string, error) {
	var resp assessResp
	if err := c.call(c.short, http.MethodPost, addr, "/internal/v1/assess", assessReq{Bad: bad}, &resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

func (c *peerClient) quiesce(addr string, keys []string) error {
	return c.call(c.short, http.MethodPost, addr, "/internal/v1/quiesce", quiesceReq{Keys: keys}, nil)
}

func (c *peerClient) release(addr string, keys []string, after int) error {
	return c.call(c.short, http.MethodPost, addr, "/internal/v1/release", releaseReq{Keys: keys, After: after}, nil)
}

func (c *peerClient) forwardAlert(addr string, bad []string) (int, int, error) {
	var resp alertForwardResp
	err := c.call(c.short, http.MethodPost, addr, "/internal/v1/alerts", alertForwardReq{Bad: bad}, &resp)
	if err != nil {
		return 0, 0, err
	}
	return resp.Admitted, resp.Dropped, nil
}
