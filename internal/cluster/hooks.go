package cluster

import (
	"fmt"

	"selfheal/internal/obs"
)

// hooks adapts the cluster's instrumentation points to the obs registry.
// Every method is safe on a zero value (nil registry): the registry and its
// primitives are nil-safe by design, so an unobserved node pays a nil check.
type hooks struct{ reg *obs.Registry }

func (h hooks) recordStamped(kind string) {
	h.reg.Counter(fmt.Sprintf("%s{kind=%q}", obs.MClusterRecordsStamped, kind)).Inc()
}

func (h hooks) recordsApplied(n int) {
	h.reg.Gauge(obs.MClusterRecordsApplied).Set(int64(n))
}

func (h hooks) replicationError(peer string) {
	h.reg.Counter(fmt.Sprintf("%s{peer=%q}", obs.MClusterReplicationErrors, peer)).Inc()
}

func (h hooks) replicationLag(peer string, lag int) {
	h.reg.Gauge(fmt.Sprintf("%s{peer=%q}", obs.MClusterReplicationLag, peer)).Set(int64(lag))
}

func (h hooks) proxied(route string) {
	h.reg.Counter(fmt.Sprintf("%s{route=%q}", obs.MClusterProxied, route)).Inc()
}

func (h hooks) tokenSent()       { h.reg.Counter(obs.MClusterTokensSent).Inc() }
func (h hooks) tokenReceived()   { h.reg.Counter(obs.MClusterTokensReceived).Inc() }
func (h hooks) stale()           { h.reg.Counter(obs.MClusterStaleSubmissions).Inc() }
func (h hooks) pausedKeys(n int) { h.reg.Gauge(obs.MClusterPausedKeys).Set(int64(n)) }
func (h hooks) incident()        { h.reg.Counter(obs.MClusterIncidents).Inc() }
