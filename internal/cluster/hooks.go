package cluster

import (
	"fmt"

	"selfheal/internal/obs"
)

// hooks adapts the cluster's instrumentation points to the obs registry.
// Every method is safe on a zero value (nil registry): the registry and its
// primitives are nil-safe by design, so an unobserved node pays a nil check.
type hooks struct{ reg *obs.Registry }

func (h hooks) recordStamped(kind string) {
	h.reg.Counter(fmt.Sprintf("%s{kind=%q}", obs.MClusterRecordsStamped, kind)).Inc()
}

func (h hooks) recordsApplied(n int) {
	h.reg.Gauge(obs.MClusterRecordsApplied).Set(int64(n))
}

func (h hooks) replicationError(peer string) {
	h.reg.Counter(fmt.Sprintf("%s{peer=%q}", obs.MClusterReplicationErrors, peer)).Inc()
}

func (h hooks) replicationLag(peer string, lag int) {
	h.reg.Gauge(fmt.Sprintf("%s{peer=%q}", obs.MClusterReplicationLag, peer)).Set(int64(lag))
}

func (h hooks) proxied(route string) {
	h.reg.Counter(fmt.Sprintf("%s{route=%q}", obs.MClusterProxied, route)).Inc()
}

func (h hooks) stampBatch(n int) {
	h.reg.Histogram(obs.MClusterStampBatchSize, stampBatchBuckets).Observe(float64(n))
}

func (h hooks) replicationBytes(dir string, n int) {
	h.reg.Counter(fmt.Sprintf("%s{dir=%q}", obs.MClusterReplicationBytes, dir)).Add(int64(n))
}

func (h hooks) journalError() { h.reg.Counter(obs.MClusterJournalErrors).Inc() }

// stampBatchBuckets covers the group sizes the stamping loop produces:
// 1 (idle, degenerate batch) up to the whole pending queue under load.
var stampBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

func (h hooks) tokenSent()       { h.reg.Counter(obs.MClusterTokensSent).Inc() }
func (h hooks) tokenReceived()   { h.reg.Counter(obs.MClusterTokensReceived).Inc() }
func (h hooks) stale()           { h.reg.Counter(obs.MClusterStaleSubmissions).Inc() }
func (h hooks) pausedKeys(n int) { h.reg.Gauge(obs.MClusterPausedKeys).Set(int64(n)) }
func (h hooks) incident()        { h.reg.Counter(obs.MClusterIncidents).Inc() }
