package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Record kinds: the three deterministic state-machine transitions every
// replica applies in stream order.
const (
	// KindSpec registers a run (spec + first-writer-wins init seeding).
	KindSpec = "spec"
	// KindEntry commits one task instance (normal or forged) with the
	// stamper's authoritative read observations.
	KindEntry = "entry"
	// KindRepair runs the Theorem-1..4 repair for the accused instances at
	// this stream position, on every node.
	KindRepair = "repair"
)

// Record is one position of the replicated cluster stream. Seq is dense and
// 1-based; a replica at applied=N holds exactly the effects of records
// 1..N, which is what makes "applied" a complete replication cursor.
type Record struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	// Origin is the node that submitted the record (observability only —
	// never part of the applied state).
	Origin string `json:"origin,omitempty"`

	// KindSpec fields.
	Run  string           `json:"run,omitempty"`
	Spec *wfjson.SpecJSON `json:"spec,omitempty"`
	Init map[string]int64 `json:"init,omitempty"`

	// KindEntry field.
	Entry *EntryJSON `json:"entry,omitempty"`

	// KindRepair field.
	Bad []string `json:"bad,omitempty"`
}

// ReadObsJSON is the wire form of wlog.ReadObs.
type ReadObsJSON struct {
	Value     int64   `json:"value"`
	Writer    string  `json:"writer,omitempty"`
	WriterPos float64 `json:"writer_pos"`
}

// EntryJSON is the wire form of a committed task instance. The LSN is not
// carried: every replica's log assigns the same dense LSN because entry
// records occupy the same stream positions everywhere.
type EntryJSON struct {
	Run    string                 `json:"run,omitempty"`
	Task   string                 `json:"task"`
	Visit  int                    `json:"visit"`
	Forged bool                   `json:"forged,omitempty"`
	Reads  map[string]ReadObsJSON `json:"reads,omitempty"`
	Writes map[string]int64       `json:"writes,omitempty"`
	Chosen string                 `json:"chosen,omitempty"`
}

// ToEntry converts the wire form into a fresh wlog.Entry (LSN unassigned).
func (ej *EntryJSON) ToEntry() *wlog.Entry {
	e := &wlog.Entry{
		Run:    ej.Run,
		Task:   wf.TaskID(ej.Task),
		Visit:  ej.Visit,
		Forged: ej.Forged,
		Chosen: wf.TaskID(ej.Chosen),
		Reads:  make(map[data.Key]wlog.ReadObs, len(ej.Reads)),
		Writes: make(map[data.Key]data.Value, len(ej.Writes)),
	}
	for k, o := range ej.Reads {
		e.Reads[data.Key(k)] = wlog.ReadObs{
			Value:     data.Value(o.Value),
			Writer:    o.Writer,
			WriterPos: o.WriterPos,
		}
	}
	for k, v := range ej.Writes {
		e.Writes[data.Key(k)] = data.Value(v)
	}
	return e
}

// EntryToJSON converts a wlog.Entry into its wire form.
func EntryToJSON(e *wlog.Entry) *EntryJSON {
	ej := &EntryJSON{
		Run:    e.Run,
		Task:   string(e.Task),
		Visit:  e.Visit,
		Forged: e.Forged,
		Chosen: string(e.Chosen),
		Reads:  make(map[string]ReadObsJSON, len(e.Reads)),
		Writes: make(map[string]int64, len(e.Writes)),
	}
	for k, o := range e.Reads {
		ej.Reads[string(k)] = ReadObsJSON{
			Value:     int64(o.Value),
			Writer:    o.Writer,
			WriterPos: o.WriterPos,
		}
	}
	for k, v := range e.Writes {
		ej.Writes[string(k)] = int64(v)
	}
	return ej
}

// journal is the per-node JSONL record log: one applied record per line.
// Restart replays the journal, then -join pulls whatever the tail lost —
// so followers never fsync, and only the stamper (the single authority for
// stream positions) syncs each append.
type journal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
}

func openJournal(dir, nodeID string, sync bool) (*journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: journal dir: %w", err)
	}
	path := filepath.Join(dir, nodeID+".journal")
	var recs []Record
	if raw, err := os.ReadFile(path); err == nil {
		dec := json.NewDecoder(bytes.NewReader(raw))
		for dec.More() {
			var rec Record
			if err := dec.Decode(&rec); err != nil {
				// A torn tail (crash mid-write) truncates the replay here;
				// the catch-up pull re-fetches everything past it.
				break
			}
			if rec.Seq != len(recs)+1 {
				break
			}
			recs = append(recs, rec)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if len(recs) > 0 {
		// Rewrite the journal to exactly the replayable prefix, dropping
		// any torn tail so appends continue from a clean line boundary.
		if err := f.Truncate(0); err == nil {
			w := bufio.NewWriter(f)
			enc := json.NewEncoder(w)
			for i := range recs {
				_ = enc.Encode(&recs[i])
			}
			_ = w.Flush()
		}
	}
	return &journal{f: f, w: bufio.NewWriter(f), sync: sync}, recs, nil
}

func (j *journal) append(rec *Record) error {
	if j == nil {
		return nil
	}
	if err := json.NewEncoder(j.w).Encode(rec); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) close() {
	if j == nil {
		return
	}
	_ = j.w.Flush()
	_ = j.f.Close()
}
