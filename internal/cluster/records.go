package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"selfheal/internal/data"
	"selfheal/internal/durable"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Record kinds: the three deterministic state-machine transitions every
// replica applies in stream order.
const (
	// KindSpec registers a run (spec + first-writer-wins init seeding).
	KindSpec = "spec"
	// KindEntry commits one task instance (normal or forged) with the
	// stamper's authoritative read observations.
	KindEntry = "entry"
	// KindRepair runs the Theorem-1..4 repair for the accused instances at
	// this stream position, on every node.
	KindRepair = "repair"
)

// Record is one position of the replicated cluster stream. Seq is dense and
// 1-based; a replica at applied=N holds exactly the effects of records
// 1..N, which is what makes "applied" a complete replication cursor.
type Record struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	// Origin is the node that submitted the record (observability only —
	// never part of the applied state).
	Origin string `json:"origin,omitempty"`

	// KindSpec fields.
	Run  string           `json:"run,omitempty"`
	Spec *wfjson.SpecJSON `json:"spec,omitempty"`
	Init map[string]int64 `json:"init,omitempty"`

	// KindEntry field.
	Entry *EntryJSON `json:"entry,omitempty"`

	// KindRepair field.
	Bad []string `json:"bad,omitempty"`
}

// ReadObsJSON is the wire form of wlog.ReadObs.
type ReadObsJSON struct {
	Value     int64   `json:"value"`
	Writer    string  `json:"writer,omitempty"`
	WriterPos float64 `json:"writer_pos"`
}

// EntryJSON is the wire form of a committed task instance. The LSN is not
// carried: every replica's log assigns the same dense LSN because entry
// records occupy the same stream positions everywhere.
type EntryJSON struct {
	Run    string                 `json:"run,omitempty"`
	Task   string                 `json:"task"`
	Visit  int                    `json:"visit"`
	Forged bool                   `json:"forged,omitempty"`
	Reads  map[string]ReadObsJSON `json:"reads,omitempty"`
	Writes map[string]int64       `json:"writes,omitempty"`
	Chosen string                 `json:"chosen,omitempty"`
}

// ToEntry converts the wire form into a fresh wlog.Entry (LSN unassigned).
func (ej *EntryJSON) ToEntry() *wlog.Entry {
	e := &wlog.Entry{
		Run:    ej.Run,
		Task:   wf.TaskID(ej.Task),
		Visit:  ej.Visit,
		Forged: ej.Forged,
		Chosen: wf.TaskID(ej.Chosen),
		Reads:  make(map[data.Key]wlog.ReadObs, len(ej.Reads)),
		Writes: make(map[data.Key]data.Value, len(ej.Writes)),
	}
	for k, o := range ej.Reads {
		e.Reads[data.Key(k)] = wlog.ReadObs{
			Value:     data.Value(o.Value),
			Writer:    o.Writer,
			WriterPos: o.WriterPos,
		}
	}
	for k, v := range ej.Writes {
		e.Writes[data.Key(k)] = data.Value(v)
	}
	return e
}

// EntryToJSON converts a wlog.Entry into its wire form.
func EntryToJSON(e *wlog.Entry) *EntryJSON {
	ej := &EntryJSON{
		Run:    e.Run,
		Task:   string(e.Task),
		Visit:  e.Visit,
		Forged: e.Forged,
		Chosen: string(e.Chosen),
		Reads:  make(map[string]ReadObsJSON, len(e.Reads)),
		Writes: make(map[string]int64, len(e.Writes)),
	}
	for k, o := range e.Reads {
		ej.Reads[string(k)] = ReadObsJSON{
			Value:     int64(o.Value),
			Writer:    o.Writer,
			WriterPos: o.WriterPos,
		}
	}
	for k, v := range e.Writes {
		ej.Writes[string(k)] = int64(v)
	}
	return ej
}

// journal is the per-node binary record log: one CRC-framed binary record
// per applied stream position (the same [len][crc][payload] framing as the
// durable WAL, payloads per codec.go). Restart replays the journal, then
// -join pulls whatever the tail lost — so followers never fsync, and only
// the stamper (the single authority for stream positions) syncs, one fsync
// per appended batch. A mutex serializes writers so concurrently delivered
// records (push + pull fallback) cannot interleave bytes.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

// journalPath is the binary journal file; legacyJournalPath is the pre-
// binary JSONL journal, migrated once on first boot and then removed.
func journalPath(dir, nodeID string) string       { return filepath.Join(dir, nodeID+".rjournal") }
func legacyJournalPath(dir, nodeID string) string { return filepath.Join(dir, nodeID+".journal") }

func openJournal(dir, nodeID string, sync bool) (*journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: journal dir: %w", err)
	}
	path := journalPath(dir, nodeID)
	legacy := legacyJournalPath(dir, nodeID)
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		if err := migrateLegacyJournal(dir, legacy, path); err != nil {
			return nil, nil, err
		}
	}
	// A completed migration (or any boot after one) drops the stale JSONL
	// file; a crash between the binary rename and this remove is healed here.
	if _, err := os.Stat(path); err == nil {
		_ = os.Remove(legacy)
	}

	var recs []Record
	cut := 0
	if raw, err := os.ReadFile(path); err == nil {
		payloads, validLen := durable.SplitFrames(raw)
		cut = len(raw) - validLen // torn framing past the last valid frame
		off := 0
		for _, p := range payloads {
			rec, derr := decodeRecord(p)
			if derr != nil || rec.Seq != len(recs)+1 {
				// A frame that passes its CRC but decodes to garbage or a
				// seq gap ends the replayable prefix: truncate from here so
				// appends continue at a clean frame boundary (the catch-up
				// pull re-fetches everything past it).
				cut = len(raw) - off
				break
			}
			recs = append(recs, *rec)
			off += 8 + len(p) // frame header + payload
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if cut > 0 {
		fi, serr := f.Stat()
		if serr != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("cluster: journal: %w", serr)
		}
		if err := f.Truncate(fi.Size() - int64(cut)); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("cluster: journal truncate torn tail: %w", err)
		}
	}
	return &journal{f: f, sync: sync}, recs, nil
}

// migrateLegacyJournal converts a JSONL journal to the binary format in
// one shot: decode the replayable prefix, write it framed to a temp file,
// fsync, rename into place and fsync the directory. A crash anywhere
// before the rename leaves the JSONL authoritative; after it, the binary
// file is complete and the stale JSONL is removed on the next open.
func migrateLegacyJournal(dir, legacy, path string) error {
	raw, err := os.ReadFile(legacy)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil // nothing to migrate: fresh node
		}
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	recs := decodeLegacyJournal(raw)
	var buf []byte
	for i := range recs {
		buf = encodeFramedRecord(buf, &recs[i])
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: journal migration: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// decodeLegacyJournal decodes the replayable prefix of a JSONL journal —
// the same torn-tail discipline the JSONL open path used.
func decodeLegacyJournal(raw []byte) []Record {
	var recs []Record
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		if rec.Seq != len(recs)+1 {
			break
		}
		recs = append(recs, rec)
	}
	return recs
}

// appendBatch appends pre-framed record bytes with one write syscall and —
// on the stamper — one fsync, whatever the batch size. This is the journal
// half of group stamping: the fsync cost amortizes across every record the
// stamping loop drained.
func (j *journal) appendBatch(buf []byte) error {
	if j == nil || len(buf) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) append(rec *Record) error {
	if j == nil {
		return nil
	}
	return j.appendBatch(encodeFramedRecord(nil, rec))
}

func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.f.Close()
}
