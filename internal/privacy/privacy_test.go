package privacy_test

import (
	"errors"
	"reflect"
	"testing"

	"selfheal/internal/privacy"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
)

func TestProjectionValidates(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()
	for _, s := range []*wf.Spec{wf1, wf2} {
		p := privacy.Project(s)
		if err := p.Validate(); err != nil {
			t.Errorf("projection of %s invalid: %v", s.Name, err)
		}
	}
}

func TestProjectionPreservesStructure(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	p := privacy.Project(wf1)
	if p.Start != wf1.Start || len(p.Tasks) != len(wf1.Tasks) {
		t.Fatal("projection changed the graph skeleton")
	}
	for id, orig := range wf1.Tasks {
		proj := p.Tasks[id]
		if !reflect.DeepEqual(proj.Next, orig.Next) {
			t.Errorf("%s: edges differ", id)
		}
		if !reflect.DeepEqual(proj.Reads, orig.Reads) || !reflect.DeepEqual(proj.Writes, orig.Writes) {
			t.Errorf("%s: read/write sets differ", id)
		}
	}
	// Control dependence — the relation the analysis needs — is intact.
	if !p.ControlDep("t2", "t3") || p.ControlDep("t2", "t6") {
		t.Error("projection broke control dependence")
	}
}

func TestProjectionIsolatedFromOriginal(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	p := privacy.Project(wf1)
	p.Tasks["t1"].Next[0] = "t6"
	if wf1.Tasks["t1"].Next[0] != "t2" {
		t.Error("projection shares edge slices with the original")
	}
}

// TestAnalysisOnProjection: the full Theorem 1/2 damage assessment over
// dependence-only views matches the assessment over the real specifications.
func TestAnalysisOnProjection(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	full := recovery.Analyze(s.Log(), s.Specs, s.Bad)
	proj := recovery.Analyze(s.Log(), privacy.ProjectAll(s.Specs), s.Bad)

	if !reflect.DeepEqual(full.DefiniteUndo, proj.DefiniteUndo) {
		t.Errorf("undo sets differ: %v vs %v", full.DefiniteUndo, proj.DefiniteUndo)
	}
	if !reflect.DeepEqual(full.DefiniteRedo, proj.DefiniteRedo) {
		t.Errorf("redo sets differ: %v vs %v", full.DefiniteRedo, proj.DefiniteRedo)
	}
	if !reflect.DeepEqual(full.CandidateUndo, proj.CandidateUndo) {
		t.Errorf("candidates differ: %v vs %v", full.CandidateUndo, proj.CandidateUndo)
	}
	if !reflect.DeepEqual(full.Cond4, proj.Cond4) {
		t.Errorf("cond-4 candidates differ: %v vs %v", full.Cond4, proj.Cond4)
	}
	if len(full.Orders) != len(proj.Orders) {
		t.Errorf("order edge counts differ: %d vs %d", len(full.Orders), len(proj.Orders))
	}
}

// TestRepairRefusesProjection: re-execution must not be possible from the
// analysis-only view — the stub panics with ErrOpaque.
func TestRepairRefusesProjection(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("repair over a projection succeeded; bodies leaked")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		var opaque *privacy.ErrOpaque
		if !errors.As(err, &opaque) {
			t.Fatalf("panic = %v, want *ErrOpaque", err)
		}
	}()
	_, _ = recovery.Repair(s.Store(), s.Log(), privacy.ProjectAll(s.Specs), s.Bad, recovery.Options{})
}
