// Package privacy implements the specification-protection idea the paper
// closes §VII with: in decentralized deployments where workflow
// specifications must not be exposed to every node (the Chinese-wall
// setting it cites), "the specification can be best protected by exposing
// only dependence relations to the recovery system".
//
// Project strips a workflow specification down to exactly what the damage
// analysis needs — the task graph and the static read/write sets — and
// replaces the task bodies and branch logic with opaque stubs. The recovery
// analyzer (Theorems 1 and 2, the partial orders of Theorem 3) runs
// unchanged on the projection; re-execution, which needs the real bodies,
// remains with the specification's owner.
package privacy

import (
	"fmt"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

// ErrOpaque is the panic value raised when recovery execution reaches a
// projected task body: analysis-only views cannot re-execute tasks.
type ErrOpaque struct {
	Spec string
	Task wf.TaskID
}

func (e *ErrOpaque) Error() string {
	return fmt.Sprintf("privacy: task %s of %s is an analysis-only projection; re-execution requires the specification owner", e.Task, e.Spec)
}

// Project returns the dependence-only view of a specification: the same
// graph, the same read/write sets, but opaque Compute and Choose stubs.
// The projection passes wf.Spec validation, so it flows through every
// analysis API; invoking a stub panics with *ErrOpaque.
func Project(s *wf.Spec) *wf.Spec {
	out := &wf.Spec{
		Name:  s.Name,
		Start: s.Start,
		Tasks: make(map[wf.TaskID]*wf.Task, len(s.Tasks)),
	}
	for id, t := range s.Tasks {
		id, t := id, t
		nt := &wf.Task{
			ID:     id,
			Next:   append([]wf.TaskID(nil), t.Next...),
			Reads:  append([]data.Key(nil), t.Reads...),
			Writes: append([]data.Key(nil), t.Writes...),
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				panic(&ErrOpaque{Spec: s.Name, Task: id})
			},
		}
		if len(t.Next) > 1 {
			nt.Choose = func(map[data.Key]data.Value) wf.TaskID {
				panic(&ErrOpaque{Spec: s.Name, Task: id})
			}
		}
		out.Tasks[id] = nt
	}
	return out
}

// ProjectAll projects a run→spec map.
func ProjectAll(specs map[string]*wf.Spec) map[string]*wf.Spec {
	out := make(map[string]*wf.Spec, len(specs))
	for run, s := range specs {
		out[run] = Project(s)
	}
	return out
}
