package recovery_test

import (
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
)

// The tests in this file are mutation tests for the oracles: they inject
// specific violations into otherwise-valid repair results and assert that
// VerifyResult, AuditSchedule and CheckStrictCorrectness actually catch
// them. An oracle that cannot fail proves nothing.

func repairedFig1(t *testing.T) (*scenario.Scenario, *recovery.Result) {
	t.Helper()
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func requireFinding(t *testing.T, errs []error, substr string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Errorf("verifier missed the injected violation (want finding containing %q, got %v)", substr, errs)
}

// TestVerifyCatchesSurvivingUndoneVersion: completeness — a version written
// by an undone instance sneaks back into the store.
func TestVerifyCatchesSurvivingUndoneVersion(t *testing.T) {
	s, res := repairedFig1(t)
	// Resurrect the wrong-path t3's output as if the undo missed it.
	res.Store.Write("c", 42, 5, "r1/t3#1", false)
	errs := recovery.VerifyResult(res, s.Log(), s.Specs)
	requireFinding(t, errs, "undone instance")
}

// TestVerifyCatchesCorruptSurvivingValue: "no incorrect data" — a stored
// version that benign recomputation cannot reproduce.
func TestVerifyCatchesCorruptSurvivingValue(t *testing.T) {
	s, res := repairedFig1(t)
	// Tamper with the repaired value of f (t6's output).
	res.Store.DeleteWrites("r1/t6#1")
	res.Store.Write("f", -777, 8, "r1/t6#1", true)
	errs := recovery.VerifyResult(res, s.Log(), s.Specs)
	requireFinding(t, errs, "benign recomputation")
}

// TestVerifyCatchesMissingWrite: an instance in the corrected history whose
// declared write vanished.
func TestVerifyCatchesMissingWrite(t *testing.T) {
	s, res := repairedFig1(t)
	res.Store.DeleteWrites("r2/t9#1") // kept instance's write removed
	errs := recovery.VerifyResult(res, s.Log(), s.Specs)
	requireFinding(t, errs, "wrote no version")
}

// TestVerifyCatchesUnknownWriter: a version written by something outside the
// corrected history.
func TestVerifyCatchesUnknownWriter(t *testing.T) {
	s, res := repairedFig1(t)
	res.Store.Write("a", 123, 99, "ghost/task#1", false)
	errs := recovery.VerifyResult(res, s.Log(), s.Specs)
	requireFinding(t, errs, "not part of the corrected history")
}

// TestVerifyCatchesSpecViolation: the corrected sequence leaves the workflow
// graph.
func TestVerifyCatchesSpecViolation(t *testing.T) {
	s, res := repairedFig1(t)
	// Corrupt the schedule: pretend t9 ran where t8 should have.
	for i := range res.Schedule {
		if res.Schedule[i].Inst == "r2/t8#1" && res.Schedule[i].Kind != recovery.ActUndo {
			res.Schedule[i].Task = "t9"
		}
	}
	errs := recovery.VerifyResult(res, s.Log(), s.Specs)
	requireFinding(t, errs, "expected")
}

// TestAuditCatchesOrderViolation: a redo moved before its undo.
func TestAuditCatchesOrderViolation(t *testing.T) {
	_, res := repairedFig1(t)
	// Move the first redo action to the front, before all undos.
	for i, a := range res.Schedule {
		if a.Kind == recovery.ActRedo {
			moved := append([]recovery.Action{a}, append(append([]recovery.Action{}, res.Schedule[:i]...), res.Schedule[i+1:]...)...)
			res.Schedule = moved
			break
		}
	}
	errs := recovery.AuditSchedule(res)
	if len(errs) == 0 {
		t.Error("audit missed undo-before-redo violation")
	}
}

// TestAuditCatchesRedoWithoutUndo: a redo for an instance that was never
// undone.
func TestAuditCatchesRedoWithoutUndo(t *testing.T) {
	_, res := repairedFig1(t)
	res.Schedule = append(res.Schedule, recovery.Action{
		Kind: recovery.ActRedo, Inst: "r2/t9#1", Run: "r2", Task: "t9", Visit: 1, Epos: 7,
	})
	errs := recovery.AuditSchedule(res)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "redo without undo") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit missed redo-without-undo: %v", errs)
	}
}

// TestGoldenCatchesValueDrift: the strict-correctness comparison fails on a
// single drifted value.
func TestGoldenCatchesValueDrift(t *testing.T) {
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	_, res := repairedFig1(t)
	res.Store.Write("f", 999, 50, "late", false)
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err == nil {
		t.Error("golden check missed a drifted final value")
	}
	// And a missing key.
	other := data.NewStore()
	other.Init("a", 1)
	if err := recovery.CheckStrictCorrectness(clean.Store(), other); err == nil {
		t.Error("golden check missed missing keys")
	}
}
