package recovery_test

import (
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// TestPropertySingleRunGolden is the golden-oracle property: for single-run
// workloads (where the clean execution is unique), repairing an attacked
// history must reproduce exactly the state of the attack-free execution of
// the same workload — the strict-correctness criterion of Definition 2.
func TestPropertySingleRunGolden(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs:    1,
		Gen:     wf.GenConfig{Tasks: 14, Keys: 9, MaxReads: 3, BranchProb: 0.4},
		Attacks: 2,
		Forged:  1,
	}
	for seed := int64(0); seed < 150; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := scenario.Random(seed, cfg, false)
		if err != nil {
			t.Fatalf("seed %d clean: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
			t.Errorf("seed %d: %v\nbad=%v undone=%v redone=%v new=%v",
				seed, err, attacked.Bad, res.Undone, res.Redone, res.NewExecuted)
		}
		if errs := recovery.AuditSchedule(res); len(errs) != 0 {
			t.Errorf("seed %d: audit: %v", seed, errs)
		}
	}
}

// TestPropertyMultiRunIntrinsic verifies multi-run workloads (shared keys,
// interleaved commits) with the intrinsic corrected-history checker: a clean
// twin is not a valid oracle there because the interleaving of independent
// runs is not unique, but validity of the corrected history is.
func TestPropertyMultiRunIntrinsic(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs:    3,
		Gen:     wf.GenConfig{Tasks: 10, Keys: 7, MaxReads: 3, BranchProb: 0.35},
		Attacks: 3,
		Forged:  1,
	}
	for seed := int64(0); seed < 150; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if errs := recovery.VerifyResult(res, attacked.Log(), attacked.Specs); len(errs) != 0 {
			for _, e := range errs {
				t.Errorf("seed %d: %v", seed, e)
			}
			t.Fatalf("seed %d: corrected history invalid (bad=%v)", seed, attacked.Bad)
		}
		if errs := recovery.AuditSchedule(res); len(errs) != 0 {
			t.Errorf("seed %d: audit: %v", seed, errs)
		}
	}
}

// TestPropertyNoAttackNoChange: reporting nothing on any workload leaves
// the store untouched and produces an empty recovery.
func TestPropertyNoAttackNoChange(t *testing.T) {
	cfg := scenario.DefaultRandomConfig()
	for seed := int64(0); seed < 40; seed++ {
		s, err := scenario.Random(seed, cfg, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, nil, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Undone)+len(res.Redone)+len(res.NewExecuted) != 0 {
			t.Errorf("seed %d: no-op repair produced work: %d/%d/%d",
				seed, len(res.Undone), len(res.Redone), len(res.NewExecuted))
		}
		if !data.Equal(s.Store(), res.Store) {
			t.Errorf("seed %d: store changed", seed)
		}
	}
}

// TestPropertyRepairIdempotent: repairing, then reporting the same bad set
// against the original log again, converges to the same store.
func TestPropertyRepairIdempotent(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs:    1,
		Gen:     wf.GenConfig{Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.4},
		Attacks: 2,
	}
	for seed := int64(0); seed < 40; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: second repair: %v", seed, err)
		}
		if !data.Equal(r1.Store, r2.Store) {
			t.Errorf("seed %d: repair not deterministic:\n%s", seed, data.Diff(r1.Store, r2.Store))
		}
		if len(r1.Undone) != len(r2.Undone) || len(r1.Redone) != len(r2.Redone) {
			t.Errorf("seed %d: undo/redo sets differ across identical repairs", seed)
		}
	}
}

// TestPropertyUndoSupersetOfBad: every reported malicious instance is in the
// final undo set, and the undo set is closed under the log's flow relation.
func TestPropertyUndoSupersetOfBad(t *testing.T) {
	cfg := scenario.DefaultRandomConfig()
	for seed := int64(0); seed < 60; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		undone := idSet(res.Undone)
		for _, b := range attacked.Bad {
			if !undone[b] {
				t.Errorf("seed %d: reported bad %s not undone", seed, b)
			}
		}
		// Closure: any logged instance that read a version written by an
		// undone instance must itself be undone.
		for _, e := range attacked.Log().Entries() {
			for k, obs := range e.Reads {
				if obs.Writer != "" && undone[wfInstance(obs.Writer)] && !undone[e.ID()] {
					t.Errorf("seed %d: %s read %s from undone %s but was kept",
						seed, e.ID(), k, obs.Writer)
				}
			}
		}
	}
}

// wfInstance converts a writer string recorded in a ReadObs back to an
// instance ID.
func wfInstance(writer string) wlog.InstanceID { return wlog.InstanceID(writer) }

// TestPropertyCyclicSingleRunGolden extends the golden-oracle property to
// workflows with guarded cycles: loop counts may differ between attacked
// and corrected executions, exercising the walker's instance insertion,
// surplus-iteration dropping and repositioning generically.
func TestPropertyCyclicSingleRunGolden(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs: 1,
		Gen: wf.GenConfig{
			Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.35,
			Cycles: 2, CycleBound: 3,
		},
		Attacks: 2,
		Forged:  1,
	}
	for seed := int64(0); seed < 120; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := scenario.Random(seed, cfg, false)
		if err != nil {
			t.Fatalf("seed %d clean: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
			t.Errorf("seed %d: %v\nbad=%v undone=%v redone=%v new=%v dropped=%v",
				seed, err, attacked.Bad, res.Undone, res.Redone, res.NewExecuted, res.DroppedNotRedone)
		}
	}
}

// TestPropertyCyclicMultiRunIntrinsic: cyclic workflows interleaved across
// runs, validated with the intrinsic checker.
func TestPropertyCyclicMultiRunIntrinsic(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs: 2,
		Gen: wf.GenConfig{
			Tasks: 10, Keys: 7, MaxReads: 2, BranchProb: 0.3,
			Cycles: 2, CycleBound: 2,
		},
		Attacks: 2,
	}
	for seed := int64(0); seed < 100; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if errs := recovery.VerifyResult(res, attacked.Log(), attacked.Specs); len(errs) != 0 {
			for _, e := range errs {
				t.Errorf("seed %d: %v", seed, e)
			}
			t.Fatalf("seed %d: corrected history invalid (bad=%v)", seed, attacked.Bad)
		}
	}
}
