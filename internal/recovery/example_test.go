package recovery_test

import (
	"context"
	"fmt"
	"log"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Example walks the complete pipeline on a three-task workflow: execute
// under attack, report the malicious instance, repair, and inspect the
// corrected state.
func Example() {
	spec, err := wf.NewBuilder("etl", "extract").
		Task("extract").Writes("raw").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"raw": 4}
		}).Then("transform").End().
		Task("transform").Reads("raw").Writes("clean").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"clean": r["raw"] * 10}
		}).Then("load").End().
		Task("load").Reads("clean").Writes("table").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"table": r["clean"] + 1}
		}).End().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	eng := engine.New(data.NewStore(), wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "job", Task: "extract",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"raw": -100}
		},
	})
	run, err := eng.NewRun("job", spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		log.Fatal(err)
	}

	res, err := recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"job": spec},
		[]wlog.InstanceID{wlog.FormatInstance("job", "extract", 1)},
		recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("undone:", len(res.Undone), "redone:", len(res.Redone))
	v, _ := res.Store.Get("table")
	fmt.Println("table =", v.Value)
	// Output:
	// undone: 3 redone: 3
	// table = 41
}

// ExampleAnalyze shows the static damage assessment: given the IDS report,
// which instances are definitely damaged, which are candidates, and why.
func ExampleAnalyze() {
	s := mustFig1Scenario()
	a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
	fmt.Println("definite undo:", len(a.DefiniteUndo))
	fmt.Println("candidate undo under t2:", len(a.CandidateUndo["r1/t2#1"]))
	fmt.Println("condition-4 candidates:", len(a.Cond4))
	// Output:
	// definite undo: 5
	// candidate undo under t2: 1
	// condition-4 candidates: 1
}

// ExampleCheckStrictCorrectness demonstrates the golden oracle: after
// repair, the store equals the attack-free execution's store.
func ExampleCheckStrictCorrectness() {
	attacked := mustFig1Scenario()
	res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	clean := mustCleanFig1Scenario()
	fmt.Println("strict correct:", recovery.CheckStrictCorrectness(clean.Store(), res.Store) == nil)
	// Output:
	// strict correct: true
}

func mustFig1Scenario() *scenario.Scenario {
	s, err := scenario.Fig1(true)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustCleanFig1Scenario() *scenario.Scenario {
	s, err := scenario.Fig1(false)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
