package recovery

import (
	"fmt"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// VerifyResult checks the intrinsic validity of a repaired history against
// Definition 2 of the paper, without needing a clean reference execution
// (which, for interleaved runs over shared data, is not unique):
//
//   - Completeness: no version in the repaired store was written by an
//     undone instance, and every version's writer is either an initial
//     version, a corrected-history action, or a logged instance that was
//     kept.
//   - No incorrect data: for every corrected-history action, re-deriving
//     the task's outputs from the values visible at the action's effective
//     position reproduces exactly the stored versions (benign Compute —
//     corrupt survivors fail this check).
//   - Consistency with the specification: each run's corrected sequence
//     follows the workflow graph from the start node, and every choice
//     node's successor equals what Choose selects on the corrected reads.
//
// It returns one error per violation; empty means the repair is valid.
func VerifyResult(res *Result, log *wlog.Log, specs map[string]*wf.Spec) []error {
	var errs []error
	st := res.Store

	undone := make(map[string]bool, len(res.Undone))
	for _, id := range res.Undone {
		undone[string(id)] = true
	}

	// Index corrected actions per run in epos order.
	perRun := make(map[string][]Action)
	writers := make(map[string]Action)
	for _, a := range res.Schedule {
		if a.Kind == ActUndo {
			continue
		}
		perRun[a.Run] = append(perRun[a.Run], a)
		writers[string(a.Inst)] = a
	}
	for run := range perRun {
		actions := perRun[run]
		sort.Slice(actions, func(i, j int) bool { return actions[i].Epos < actions[j].Epos })
		perRun[run] = actions
	}

	// Completeness: inspect every version in the store.
	for _, k := range st.Keys() {
		for _, v := range st.Chain(k) {
			if v.Writer == "" {
				continue // initial version
			}
			if undone[v.Writer] && !v.Recovery {
				errs = append(errs, fmt.Errorf(
					"completeness: %s still holds a version written by undone instance %s", k, v.Writer))
				continue
			}
			if _, ok := writers[v.Writer]; !ok {
				errs = append(errs, fmt.Errorf(
					"completeness: %s holds a version from %s, which is not part of the corrected history", k, v.Writer))
			}
		}
	}

	// Per-run sequence and value checks.
	for run, actions := range perRun {
		spec, ok := specs[run]
		if !ok {
			errs = append(errs, fmt.Errorf("verify: run %s has no spec", run))
			continue
		}
		cur := spec.Start
		for i, a := range actions {
			if a.Task != cur {
				errs = append(errs, fmt.Errorf(
					"spec: run %s action %d is %s, expected %s", run, i, a.Task, cur))
				break
			}
			task := spec.Tasks[a.Task]

			// Reconstruct the reads visible at the action's position.
			reads := make(map[data.Key]data.Value, len(task.Reads))
			for _, k := range task.Reads {
				if v, ok := st.GetBefore(k, a.Epos); ok {
					reads[k] = v.Value
				} else {
					reads[k] = 0
				}
			}

			// Value check: stored versions must equal the benign
			// recomputation.
			want := make(map[data.Key]data.Value, len(task.Writes))
			if task.Compute != nil {
				out := task.Compute(reads)
				for _, k := range task.Writes {
					want[k] = out[k]
				}
			} else {
				for _, k := range task.Writes {
					want[k] = 0
				}
			}
			got := st.VersionsBy(string(a.Inst))
			for _, k := range task.Writes {
				gv, ok := got[k]
				if !ok {
					errs = append(errs, fmt.Errorf(
						"values: %s wrote no version of %s", a.Inst, k))
					continue
				}
				if gv.Value != want[k] {
					errs = append(errs, fmt.Errorf(
						"values: %s stored %s=%d, benign recomputation gives %d",
						a.Inst, k, gv.Value, want[k]))
				}
			}
			for k := range got {
				if !containsKey(task.Writes, k) {
					errs = append(errs, fmt.Errorf(
						"values: %s wrote undeclared key %s", a.Inst, k))
				}
			}

			// Successor check.
			var next wf.TaskID
			switch {
			case len(task.Next) == 0:
				if i != len(actions)-1 {
					errs = append(errs, fmt.Errorf(
						"spec: run %s continues past end node %s", run, a.Task))
				}
			case len(task.Next) == 1:
				next = task.Next[0]
			default:
				next = task.Choose(reads)
			}
			cur = next
		}
		// An originally complete run must be complete after repair.
		if trace := log.Trace(run, false); len(trace) > 0 {
			lastTask := trace[len(trace)-1].Task
			if len(spec.Tasks[lastTask].Next) == 0 && len(actions) > 0 {
				finalTask := actions[len(actions)-1].Task
				if len(spec.Tasks[finalTask].Next) != 0 {
					errs = append(errs, fmt.Errorf(
						"spec: run %s was complete before repair but corrected history ends mid-workflow at %s", run, finalTask))
				}
			}
		}
	}
	return errs
}

func containsKey(keys []data.Key, k data.Key) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}
