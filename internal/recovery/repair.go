package recovery

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// ErrHorizon reports that an undo needs a data-object version that store
// compaction (data.Store.CompactBefore) has discarded: the recovery horizon
// has been exceeded and the damage cannot be repaired from local state.
var ErrHorizon = errors.New("recovery: undo needs a version beyond the compaction horizon")

// Action is one step of the committed recovery schedule.
type Action struct {
	Kind  ActionKind
	Inst  wlog.InstanceID
	Run   string
	Task  wf.TaskID
	Visit int
	// Epos is the action's effective position in the corrected history
	// (0 for undos, which are staged before the replay).
	Epos float64
	// Next is the successor the task selected (empty for end nodes and
	// undo actions); the corrected frontier of an in-flight run is the
	// Next of its last scheduled action.
	Next wf.TaskID
}

// Options tunes Repair.
type Options struct {
	// MaxWalkSteps caps the re-execution steps per run; 0 means
	// 10×trace length + 100. Exceeding the cap returns an error (a
	// cyclic workflow whose corrected execution does not terminate).
	MaxWalkSteps int
	// MaxIterations caps undo-set fixpoint iterations; 0 means log
	// length + 2 (the theoretical bound: the undo set grows every
	// non-final iteration).
	MaxIterations int
	// EposDelta is the position increment for instances inserted into
	// the corrected history; 0 means 1e-7.
	EposDelta float64
	// CompactionHorizon is the position below which the store owner has
	// compacted version history away (data.Store.CompactBefore). Undos
	// that need a missing version at or below the horizon are refused
	// with ErrHorizon; 0 means the store was never compacted, and
	// missing old versions are attributed to earlier repairs (whose
	// drops the replay re-derives deterministically).
	CompactionHorizon float64
	// Parallel is the number of worker goroutines replaying independent
	// repair components concurrently; 0 or 1 selects the serial executor.
	// Components are the connected components of the runs' key-footprint
	// graph: the Theorem-3 constraint DAG never places an edge between
	// instances that share no data object, so each component's replay is
	// an independent subgraph of the partial order and the actions of
	// different components commute (§IV; docs/RECOVERY.md). Within a
	// component the replay still advances in ascending effective-position
	// order, so every rule 1–5 edge is honored.
	Parallel int
	// ScopeToDamage restricts the replay to components connected to the
	// damage (undo set): clean components are neither stripped of their
	// recovery versions nor re-walked, their store chains pass through
	// unchanged, and they produce no schedule actions. Result.DamagedKeys
	// reports exactly which chains may differ from the input store.
	// Required when Epoch pins the repair below the log head.
	ScopeToDamage bool
	// Epoch pins the repair to the log prefix ending at this LSN (0 means
	// the full log). The dependence snapshot must be taken at this epoch,
	// and the caller must guarantee that no entry after Epoch belongs to
	// a damaged component — the shard layer guarantees it by quiescing
	// the damaged shards before snapshotting, while clean shards keep
	// committing past the epoch. Requires ScopeToDamage, which confines
	// the replay to chains the post-epoch suffix cannot touch.
	Epoch int
}

func (o Options) withDefaults(logLen int) Options {
	if o.MaxWalkSteps <= 0 {
		o.MaxWalkSteps = 10*logLen + 100
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = logLen + 2
	}
	if o.EposDelta <= 0 {
		o.EposDelta = 1e-7
	}
	return o
}

// Result reports a completed repair.
type Result struct {
	// Store is the repaired store (the input store is not modified).
	Store *data.Store
	// Analysis is the first-round static assessment (what the recovery
	// analyzer knew before any re-execution).
	Analysis *Analysis
	// Undone is the final undo set (Theorem 1 at the fixpoint).
	Undone []wlog.InstanceID
	// Redone lists instances re-executed at their original positions.
	Redone []wlog.InstanceID
	// NewExecuted lists instances executed for the first time during
	// recovery (tasks on the corrected path that never ran, e.g. t5).
	NewExecuted []wlog.InstanceID
	// DroppedNotRedone lists undone instances that are not part of the
	// corrected execution (wrong-path work, e.g. t3 and t4, and forged
	// tasks).
	DroppedNotRedone []wlog.InstanceID
	// KeptVerified counts undamaged instances whose recorded reads were
	// re-verified against the corrected history.
	KeptVerified int
	// Iterations is the number of fixpoint iterations performed.
	Iterations int
	// Schedule is the committed recovery schedule of the final iteration.
	Schedule []Action
	// Phases is the wall-clock latency breakdown of the repair; the
	// observability layer (internal/obs) exports it as the per-repair
	// analyze/undo/redo histograms of docs/OBSERVABILITY.md.
	Phases PhaseTimings
	// Components is the number of independent replay components the final
	// iteration executed (1 for the serial executor).
	Components int
	// Workers is the number of replay workers the final iteration used.
	Workers int
	// DamagedKeys lists, sorted, the keys of the damaged components when
	// Options.ScopeToDamage was set: the only chains that may differ
	// between the input store and Store. Nil for unscoped repairs.
	DamagedKeys []data.Key
}

// PhaseTimings splits a repair's latency into its phases: the static damage
// analysis, the undo staging (summed over fixpoint iterations), and the
// corrected-history replay (redo), also summed over iterations.
type PhaseTimings struct {
	Analyze, Undo, Redo time.Duration
}

// Repair recovers the system from the malicious instances in bad. It returns
// a repaired copy of store; the input store, the log and the specs are read
// but never modified. specs maps run IDs to their workflow specifications;
// every non-forged logged run must have a spec. The dependence graph is
// rebuilt from the whole log; on-line callers holding an incrementally
// maintained graph use RepairGraph to skip the rebuild.
func Repair(store *data.Store, log *wlog.Log, specs map[string]*wf.Spec, bad []wlog.InstanceID, opts Options) (*Result, error) {
	return RepairGraph(deps.Build(log), store, log, specs, bad, opts)
}

// RepairGraph is Repair over a prebuilt dependence graph — typically a
// Snapshot of the runtime's IncrementalGraph. The replay walks the full log,
// so the snapshot must cover every committed entry (its epoch must equal the
// log's last LSN); a stale snapshot is rejected rather than silently
// repairing against missing dependence edges.
func RepairGraph(g *deps.Graph, store *data.Store, log *wlog.Log, specs map[string]*wf.Spec, bad []wlog.InstanceID, opts Options) (*Result, error) {
	opts = opts.withDefaults(log.Len())
	pin := log.Len()
	if opts.Epoch > 0 {
		if !opts.ScopeToDamage {
			return nil, errors.New("recovery: Options.Epoch requires ScopeToDamage")
		}
		if opts.Epoch > log.Len() {
			return nil, fmt.Errorf("recovery: pinned epoch %d is beyond the log's %d entries", opts.Epoch, log.Len())
		}
		pin = opts.Epoch
	}
	if g.Epoch() != pin {
		return nil, fmt.Errorf("recovery: dependence snapshot at epoch %d is stale for a log of %d entries", g.Epoch(), pin)
	}
	for _, id := range bad {
		e, ok := log.Get(id)
		if !ok {
			return nil, fmt.Errorf("recovery: reported instance %s not in log", id)
		}
		if e.LSN > pin {
			return nil, fmt.Errorf("recovery: reported instance %s at LSN %d is beyond the pinned epoch %d", id, e.LSN, pin)
		}
	}
	for _, run := range log.Runs() {
		if _, ok := specs[run]; !ok {
			// Runs made only of forged entries need no spec; entries past
			// the pinned epoch are outside this repair entirely.
			for _, e := range log.Trace(run, true) {
				if !e.Forged && e.LSN <= pin {
					return nil, fmt.Errorf("recovery: run %s has no workflow spec", run)
				}
			}
		}
	}

	analyzeStart := time.Now()
	analysis := AnalyzeGraph(g, log, specs, bad)
	var phases PhaseTimings
	phases.Analyze = time.Since(analyzeStart)

	undo := make(map[wlog.InstanceID]bool)
	for _, id := range analysis.DefiniteUndo {
		undo[id] = true
	}
	// Forged entries are always damage even if the IDS report named only
	// some of them? No: the IDS decides what is malicious. Forged entries
	// not reported stay until reported. (Undetected forgeries are the
	// administrator's responsibility, §IV.D.)

	var (
		last *iterationResult
		err  error
	)
	iterations := 0
	for {
		iterations++
		if iterations > opts.MaxIterations {
			return nil, fmt.Errorf("recovery: undo set did not converge after %d iterations", opts.MaxIterations)
		}
		last, err = replayOnce(store, log, specs, g, undo, opts)
		if err != nil {
			return nil, err
		}
		phases.Undo += last.undoDur
		phases.Redo += last.redoDur
		grew := false
		for id := range last.newUndo {
			if !undo[id] {
				undo[id] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	res := &Result{
		Store:        last.store,
		Analysis:     analysis,
		Undone:       sortedIDs(undo),
		Redone:       last.redone,
		NewExecuted:  last.newExecuted,
		KeptVerified: last.keptVerified,
		Iterations:   iterations,
		Schedule:     last.schedule,
		Phases:       phases,
		Components:   last.components,
		Workers:      last.workers,
		DamagedKeys:  last.damagedKeys,
	}
	redone := make(map[wlog.InstanceID]bool, len(last.redone))
	for _, id := range last.redone {
		redone[id] = true
	}
	for id := range undo {
		if !redone[id] {
			res.DroppedNotRedone = append(res.DroppedNotRedone, id)
		}
	}
	sortIDs(res.DroppedNotRedone)
	return res, nil
}

// Frontier returns the corrected execution frontier of a run: the task it
// should execute next and whether the corrected history already completed
// the workflow. ok is false when the repair never touched the run (its
// engine state is still valid). Used to resynchronize in-flight runs after
// a recovery unit executes.
func (res *Result) Frontier(run string, spec *wf.Spec) (cur wf.TaskID, done, ok bool) {
	var last *Action
	for i := range res.Schedule {
		a := &res.Schedule[i]
		if a.Run != run || a.Kind == ActUndo {
			continue
		}
		if last == nil || a.Epos > last.Epos {
			last = a
		}
	}
	if last == nil {
		return "", false, false
	}
	if len(spec.Tasks[last.Task].Next) == 0 {
		return "", true, true
	}
	return last.Next, false, true
}

// iterationResult carries the outcome of one replay pass.
type iterationResult struct {
	store        *data.Store
	newUndo      map[wlog.InstanceID]bool
	redone       []wlog.InstanceID
	newExecuted  []wlog.InstanceID
	keptVerified int
	schedule     []Action
	// undoDur and redoDur time this pass's undo staging and replay.
	undoDur, redoDur time.Duration
	// components/workers/damagedKeys describe the pass's execution shape
	// (see the matching Result fields).
	components, workers int
	damagedKeys         []data.Key
}

// replayOnce stages all undos and replays the corrected history once. The
// serial executor merges the walkers of every run in globally ascending
// effective-position order; the component executor (Options.Parallel > 1 or
// ScopeToDamage) factors the runs into key-disjoint components first and
// replays them concurrently. Both report instances discovered to need
// undoing (wrong-path work, dirty kept reads) closed under →_f*.
func replayOnce(pristine *data.Store, log *wlog.Log, specs map[string]*wf.Spec, g *deps.Graph, undo map[wlog.InstanceID]bool, opts Options) (*iterationResult, error) {
	st := pristine.Clone()
	it := &iterationResult{store: st, newUndo: make(map[wlog.InstanceID]bool), components: 1, workers: 1}

	// Stage undos, most recent first (Theorem 3 rule 5 order; with
	// version-chain deletion the result is order independent, but the
	// schedule records the rule-compliant order).
	undoStart := time.Now()
	staged := make([]*wlog.Entry, 0, len(undo))
	for id := range undo {
		if e, ok := log.Get(id); ok {
			staged = append(staged, e)
		}
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i].LSN > staged[j].LSN })
	writers := make([]string, 0, len(staged))
	for _, e := range staged {
		// Instances at or below the compaction horizon are frozen history:
		// their surviving effect is the checkpoint boundary version, which
		// deletion preserves by design — an "undo" would leave the old value
		// in place and the redo would collide with it. Refuse outright.
		//
		// This is the only horizon hazard: compaction keeps each key's
		// latest pre-horizon version as the boundary, so undoing a
		// post-horizon instance always exposes a valid earlier state (a
		// newer surviving version, the boundary, or honest absence when an
		// earlier repair removed a forged chain entirely).
		if opts.CompactionHorizon > 0 && float64(e.LSN) <= opts.CompactionHorizon {
			return nil, fmt.Errorf("%w: undo(%s) targets frozen history at or below the compaction horizon %g",
				ErrHorizon, e.ID(), opts.CompactionHorizon)
		}
		writers = append(writers, string(e.ID()))
		it.schedule = append(it.schedule, Action{
			Kind: ActUndo, Inst: e.ID(), Run: e.Run, Task: e.Task, Visit: e.Visit,
		})
	}

	if opts.Parallel > 1 || opts.ScopeToDamage {
		return replayComponents(st, log, specs, g, undo, opts, it, staged, writers, undoStart)
	}

	// Strip versions written by earlier repairs: the replay reconstructs
	// every still-valid recovery version deterministically from the
	// original committed history, so cumulative repairs (one per alert in
	// the runtime) never collide on version positions. Then perform the
	// staged undos in one batch (deletions commute).
	st.DeleteRecoveryVersions()
	st.DeleteWritesBatch(writers)
	it.undoDur = time.Since(undoStart)
	redoStart := time.Now()

	// One walker per specified run.
	var walkers []*walker
	for _, run := range log.Runs() {
		spec, ok := specs[run]
		if !ok {
			continue
		}
		walkers = append(walkers, newWalker(run, spec, log, opts))
	}
	if err := replayWalkers(st, log, undo, it, walkers); err != nil {
		return nil, err
	}

	// Unconsumed trace entries are wrong-path work: undo them and close
	// under →_f* (their outputs were consumed by later reads).
	var wrong []wlog.InstanceID
	for _, w := range walkers {
		for _, e := range w.remaining {
			wrong = append(wrong, e.ID())
		}
	}
	closeNewUndo(g, it, wrong)
	it.redoDur = time.Since(redoStart)
	sortIDs(it.redone)
	sortIDs(it.newExecuted)
	return it, nil
}

// replayWalkers advances a set of walkers merged in globally ascending
// effective-position order, accumulating into it.
func replayWalkers(st *data.Store, log *wlog.Log, undo map[wlog.InstanceID]bool, it *iterationResult, walkers []*walker) error {
	for {
		var best *walker
		bestPos := 0.0
		for _, w := range walkers {
			pos, ok := w.peek()
			if !ok {
				continue
			}
			if best == nil || pos < bestPos {
				best, bestPos = w, pos
			}
		}
		if best == nil {
			return nil
		}
		if err := best.step(st, log, undo, it); err != nil {
			return err
		}
	}
}

// closeNewUndo replaces it.newUndo with the →_f* readers closure of the
// wrong-path instances plus the dirty instances discovered during replay.
func closeNewUndo(g *deps.Graph, it *iterationResult, wrong []wlog.InstanceID) {
	if len(wrong) == 0 && len(it.newUndo) == 0 {
		return
	}
	seed := make(map[wlog.InstanceID]bool, len(wrong)+len(it.newUndo))
	for _, id := range wrong {
		seed[id] = true
	}
	for id := range it.newUndo {
		seed[id] = true
	}
	it.newUndo = g.ReadersClosure(seed)
}

// instKey identifies a task instance within one run.
type instKey struct {
	task  wf.TaskID
	visit int
}

// walker replays the corrected execution of one run.
type walker struct {
	run  string
	spec *wf.Spec
	opts Options

	remaining map[instKey]*wlog.Entry // unconsumed original instances
	cur       wf.TaskID
	visits    map[wf.TaskID]int
	prevEpos  float64
	newCount  int // inserted instances so far (fresh-position allocator)
	finished  bool
	complete  bool // original run had reached an end node
	trLen     int  // original trace length
	executed  int  // actions performed (kept + redo + inserted)
	steps     int
}

func newWalker(run string, spec *wf.Spec, log *wlog.Log, opts Options) *walker {
	trace := log.Trace(run, false)
	if opts.Epoch > 0 {
		// Pinned repair: entries committed after the epoch belong to
		// shards that kept running; the caller guarantees they are in
		// clean components, outside this replay.
		pinned := make([]*wlog.Entry, 0, len(trace))
		for _, e := range trace {
			if e.LSN <= opts.Epoch {
				pinned = append(pinned, e)
			}
		}
		trace = pinned
	}
	w := &walker{
		run:       run,
		spec:      spec,
		opts:      opts,
		remaining: make(map[instKey]*wlog.Entry, len(trace)),
		cur:       spec.Start,
		visits:    make(map[wf.TaskID]int),
	}
	for _, e := range trace {
		w.remaining[instKey{e.Task, e.Visit}] = e
	}
	w.trLen = len(trace)
	if len(trace) == 0 {
		// Nothing committed: nothing to repair, nothing to continue.
		w.finished = true
		return w
	}
	lastTask := trace[len(trace)-1].Task
	w.complete = len(spec.Tasks[lastTask].Next) == 0
	return w
}

// peek returns the effective position of the walker's next action.
func (w *walker) peek() (float64, bool) {
	if w.finished {
		return 0, false
	}
	key := instKey{w.cur, w.visits[w.cur] + 1}
	if e, ok := w.remaining[key]; ok && float64(e.LSN) > w.prevEpos {
		return float64(e.LSN), true
	}
	// Inserted instance (new path, or an original instance revisited out
	// of commit order through a cycle).
	if _, ok := w.remaining[key]; !ok && !w.complete && w.executed >= w.trLen {
		// Frontier of an incomplete run: recovery replays at most as
		// many actions as the run had originally committed; beyond
		// that the work is normal execution, resumed by the engine
		// from the corrected frontier. Remaining unconsumed entries
		// (work the corrected path no longer justifies within the
		// replay budget) are undone; if the run reaches them again it
		// re-executes them as fresh instances.
		return 0, false
	}
	return w.nextFreshPos(), true
}

func (w *walker) nextFreshPos() float64 {
	return w.prevEpos + float64(w.newCount+1)*w.opts.EposDelta
}

// step executes the walker's next action against st.
func (w *walker) step(st *data.Store, log *wlog.Log, undo map[wlog.InstanceID]bool, it *iterationResult) error {
	if w.steps++; w.steps > w.opts.MaxWalkSteps {
		return fmt.Errorf("recovery: run %s exceeded %d replay steps; corrected execution not terminating", w.run, w.opts.MaxWalkSteps)
	}
	// Re-check the frontier condition (peek returned an inserted action).
	key := instKey{w.cur, w.visits[w.cur] + 1}
	entry, matched := w.remaining[key]
	repositioned := matched && float64(entry.LSN) <= w.prevEpos

	task := w.spec.Tasks[w.cur]
	w.visits[w.cur] = key.visit
	inst := wlog.FormatInstance(w.run, w.cur, key.visit)

	var epos float64
	switch {
	case matched && !repositioned:
		epos = float64(entry.LSN)
	default:
		epos = w.nextFreshPos()
		w.newCount++
	}

	var next wf.TaskID
	switch {
	case matched && !repositioned && !undo[inst]:
		// KEPT: verify the recorded reads against the corrected history.
		// Instances at or below the compaction horizon are exempt: the
		// versions they observed are discarded (only the latest survives as
		// the checkpoint boundary), so re-verification would misread frozen,
		// committed-forever history as damage. Compaction certifies the
		// prefix; the walk trusts the recorded trace there.
		frozen := w.opts.CompactionHorizon > 0 && float64(entry.LSN) <= w.opts.CompactionHorizon
		if !frozen && !w.verifyKept(st, entry) {
			it.newUndo[inst] = true
		}
		it.keptVerified++
		switch {
		case len(task.Next) == 1:
			next = task.Next[0]
		case len(task.Next) > 1 && frozen:
			// Frozen branch decisions are history; the pre-decision reads
			// may be compacted, so follow the recorded choice.
			next = entry.Chosen
			if !containsID(task.Next, next) {
				return fmt.Errorf("recovery: %s recorded invalid successor %q", inst, next)
			}
		case len(task.Next) > 1:
			// Re-derive the branch decision from the corrected reads:
			// a decision that no longer matches the recorded one means
			// the instance is damage (it will be redone next
			// iteration), and the walk must follow the corrected path.
			reads := make(map[data.Key]data.Value, len(task.Reads))
			for _, k := range task.Reads {
				if v, ok := st.GetBefore(k, epos); ok {
					reads[k] = v.Value
				} else {
					reads[k] = 0
				}
			}
			next = task.Choose(reads)
			if !containsID(task.Next, next) {
				return fmt.Errorf("recovery: %s re-derived invalid successor %q", inst, next)
			}
			if next != entry.Chosen {
				it.newUndo[inst] = true
			}
		}
		it.schedule = append(it.schedule, Action{
			Kind: ActKeep, Inst: inst, Run: w.run, Task: w.cur, Visit: key.visit, Epos: epos, Next: next,
		})
	default:
		// REDO at the original position, or an inserted execution
		// (new-path instance, or a repositioned original).
		reads := make(map[data.Key]data.Value, len(task.Reads))
		for _, k := range task.Reads {
			if v, ok := st.GetBefore(k, epos); ok {
				reads[k] = v.Value
			} else {
				reads[k] = 0
			}
		}
		written := make(map[data.Key]data.Value, len(task.Writes))
		if task.Compute != nil {
			out := task.Compute(reads)
			for _, k := range task.Writes {
				written[k] = out[k]
			}
		} else {
			for _, k := range task.Writes {
				written[k] = 0
			}
		}
		for k, v := range written {
			st.Write(k, v, epos, string(inst), true)
		}
		switch {
		case len(task.Next) == 1:
			next = task.Next[0]
		case len(task.Next) > 1:
			next = task.Choose(reads)
			if !containsID(task.Next, next) {
				return fmt.Errorf("recovery: %s redo chose invalid successor %q", inst, next)
			}
		}
		kind := ActRedo
		if !matched {
			kind = ActExecNew
			it.newExecuted = append(it.newExecuted, inst)
		} else {
			it.redone = append(it.redone, inst)
			if repositioned {
				// The original commit is out of order with respect to
				// the corrected history; it must be undone so the next
				// iteration replays it cleanly at the fresh position.
				it.newUndo[inst] = true
			}
		}
		it.schedule = append(it.schedule, Action{
			Kind: kind, Inst: inst, Run: w.run, Task: w.cur, Visit: key.visit, Epos: epos, Next: next,
		})
	}

	if matched {
		delete(w.remaining, key)
	}
	w.executed++
	w.prevEpos = epos
	if len(task.Next) == 0 {
		w.finished = true
	} else {
		w.cur = next
	}
	return nil
}

// verifyKept checks that every read the entry recorded still observes the
// same version in the corrected history, and that the entry's own writes are
// still present (a prior repair may have replaced them with recovery
// versions, which a fresh pass strips and must rebuild by re-executing the
// task).
func (w *walker) verifyKept(st *data.Store, e *wlog.Entry) bool {
	for k := range e.Writes {
		v, ok := st.VersionAt(k, float64(e.LSN))
		if !ok || v.Writer != string(e.ID()) {
			return false
		}
	}
	for k, obs := range e.Reads {
		v, ok := st.GetBefore(k, float64(e.LSN))
		if !ok {
			if obs.WriterPos != wlog.MissingPos {
				return false
			}
			continue
		}
		if obs.WriterPos == wlog.MissingPos {
			return false
		}
		if v.Pos != obs.WriterPos || v.Writer != obs.Writer || v.Value != obs.Value {
			return false
		}
	}
	return true
}

func containsID(ids []wf.TaskID, id wf.TaskID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
