// Package recovery implements the paper's core contribution (§III): given
// the set of malicious tasks reported by the IDS, identify every directly or
// indirectly damaged task instance (Theorem 1), decide which must be redone
// (Theorem 2), derive the partial orders that make the recovery strict
// correct (Theorems 3 and 4), and execute the repair.
//
// The package has two layers:
//
//   - Analyze is the recovery analyzer of the paper's architecture (Fig 2):
//     a static damage assessment computing the definite undo set (conditions
//     1 and 3 of Theorem 1), the candidate undo sets guarded by damaged
//     choice nodes (conditions 2 and 4), the redo classification of Theorem
//     2, and the Theorem-3 partial-order edges among recovery tasks.
//
//   - Repair executes the recovery: it stages all undos, then replays every
//     run's corrected execution in a single globally position-ordered pass,
//     resolving candidates as redone choice nodes commit their decisions,
//     and iterating to a fixpoint as confirmed wrong-path tasks enlarge the
//     undo set.
package recovery

import (
	"runtime"
	"sort"
	"sync"

	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Cond4Candidate is a condition-4 (Theorem 1) candidate: if the unexecuted
// task becomes part of the re-execution path after the guard's redo, Reader
// read stale data and must be undone.
type Cond4Candidate struct {
	// Guard is the damaged choice-node instance whose redo decides.
	Guard wlog.InstanceID
	// Unexecuted is the t_k ∉ L controlled by the guard.
	Unexecuted wf.TaskID
	// Reader is the logged instance that read a key t_k writes.
	Reader wlog.InstanceID
}

// OrderRule identifies which Theorem-3 rule produced a partial-order edge.
type OrderRule int

// Theorem 3 rules that yield static (pre-execution) edges.
const (
	RulePrecedence   OrderRule = 1 // t_i ≺ t_j ⇒ redo(t_i) ≺ redo(t_j)
	RuleDependence   OrderRule = 2 // t_i → t_j ⇒ redo(t_i) ≺ redo(t_j)
	RuleUndoFirst    OrderRule = 3 // undo(t_i) ≺ redo(t_i)
	RuleAntiFlow     OrderRule = 4 // t_i →_a t_j ⇒ undo(t_j) ≺ redo(t_i)
	RuleOutputOrder  OrderRule = 5 // t_i →_o t_j ⇒ undo(t_j) ≺ undo(t_i)
	RuleCtlCandidate OrderRule = 8 // redo(guard) before resolving its candidates
)

// ActionKind distinguishes recovery schedule actions.
type ActionKind int

// Recovery action kinds.
const (
	ActUndo ActionKind = iota
	ActRedo
	ActExecNew
	ActKeep
)

func (k ActionKind) String() string {
	switch k {
	case ActUndo:
		return "undo"
	case ActRedo:
		return "redo"
	case ActExecNew:
		return "exec-new"
	case ActKeep:
		return "keep"
	default:
		return "unknown"
	}
}

// ActionRef names one endpoint of a partial-order edge.
type ActionRef struct {
	Kind ActionKind
	Inst wlog.InstanceID
}

// OrderEdge is one derived partial order: Before must commit before After.
type OrderEdge struct {
	Before, After ActionRef
	Rule          OrderRule
}

// Analysis is the static damage assessment for one batch of IDS alerts.
type Analysis struct {
	// Bad is the malicious set B reported by the IDS.
	Bad []wlog.InstanceID
	// FlowDamaged lists instances damaged through →_f* (Theorem 1
	// condition 3), excluding Bad itself.
	FlowDamaged []wlog.InstanceID
	// DefiniteUndo is Bad ∪ FlowDamaged: instances that must be undone
	// regardless of any re-execution outcome (conditions 1 and 3).
	DefiniteUndo []wlog.InstanceID
	// CandidateUndo maps each damaged choice-node instance (guard) to the
	// logged instances control dependent on it that are undone only if the
	// guard's redo leaves them off the new path (condition 2).
	CandidateUndo map[wlog.InstanceID][]wlog.InstanceID
	// Cond4 lists condition-4 candidates.
	Cond4 []Cond4Candidate
	// DefiniteRedo lists undo instances that must be redone (Theorem 2
	// condition 1): not control dependent on any bad task. Forged tasks
	// are never redone.
	DefiniteRedo []wlog.InstanceID
	// CandidateRedo maps guards to undo instances redone only if still on
	// the guard's re-execution path (Theorem 2 condition 2).
	CandidateRedo map[wlog.InstanceID][]wlog.InstanceID
	// NeverRedo lists undo instances never redone (forged tasks).
	NeverRedo []wlog.InstanceID
	// Orders are the Theorem-3 partial-order edges among the definite
	// recovery tasks.
	Orders []OrderEdge
}

// WorstCaseUndo returns the upper bound of the undo set before any redo has
// executed: the definite undos plus every control-dependence candidate and
// every condition-4 reader. The actual undo set after candidate resolution
// is a subset; operators use the bound to size the recovery effort before
// committing to it.
func (a *Analysis) WorstCaseUndo() []wlog.InstanceID {
	set := make(map[wlog.InstanceID]bool, len(a.DefiniteUndo))
	for _, id := range a.DefiniteUndo {
		set[id] = true
	}
	for _, cands := range a.CandidateUndo {
		for _, id := range cands {
			set[id] = true
		}
	}
	for _, c := range a.Cond4 {
		set[c.Reader] = true
	}
	return sortedIDs(set)
}

// Analyze performs the static damage assessment for the malicious instances
// in bad. specs maps run IDs to their workflow specifications; runs present
// in the log but absent from specs contribute flow damage but no control
// analysis (their tasks are treated as spec-less, e.g. standalone forged
// tasks). The dependence graph is rebuilt from the whole log; on-line
// callers holding an incrementally maintained graph use AnalyzeGraph to
// skip the rebuild.
func Analyze(log *wlog.Log, specs map[string]*wf.Spec, bad []wlog.InstanceID) *Analysis {
	return AnalyzeGraph(deps.Build(log), log, specs, bad)
}

// AnalyzeGraph performs the static damage assessment using a prebuilt
// dependence graph — typically a Snapshot of the IncrementalGraph the
// runtime maintains at commit time, making per-alert analysis cost scale
// with the damage cone instead of the total log length. The analysis is
// pinned to the snapshot's epoch: entries committed after it are ignored,
// so a consistent log prefix is assessed even while normal processing keeps
// appending. The instances in bad must lie within the snapshot.
func AnalyzeGraph(g *deps.Graph, log *wlog.Log, specs map[string]*wf.Spec, bad []wlog.InstanceID) *Analysis {
	epoch := g.Epoch()
	badSet := make(map[wlog.InstanceID]bool, len(bad))
	for _, b := range bad {
		badSet[b] = true
	}
	undo := g.ReadersClosure(badSet)

	a := &Analysis{
		Bad:           sortedIDs(badSet),
		CandidateUndo: make(map[wlog.InstanceID][]wlog.InstanceID),
		CandidateRedo: make(map[wlog.InstanceID][]wlog.InstanceID),
	}
	for id := range undo {
		if !badSet[id] {
			a.FlowDamaged = append(a.FlowDamaged, id)
		}
	}
	sortIDs(a.FlowDamaged)
	a.DefiniteUndo = sortedIDs(undo)

	// Control-dependence candidates. Only damaged choice nodes trigger
	// re-decision, so only runs containing an undo-set member can
	// contribute guards — the control pass scales with the damage, not
	// with the number of runs in the log.
	damagedRuns := make(map[string]bool)
	for id := range undo {
		if e, ok := log.Get(id); ok && e.Run != "" {
			damagedRuns[e.Run] = true
		}
	}
	runList := make([]string, 0, len(damagedRuns))
	for run := range damagedRuns {
		runList = append(runList, run)
	}
	sort.Strings(runList)

	type guardInfo struct {
		entry *wlog.Entry
		ctl   map[wlog.InstanceID]bool
	}
	guards := make(map[wlog.InstanceID]*guardInfo)
	for _, run := range runList {
		spec, ok := specs[run]
		if !ok {
			continue
		}
		cv := deps.BuildControlAt(log, run, spec, epoch)
		for gid, set := range cv.Deps {
			if !undo[gid] {
				continue // only damaged choice nodes trigger re-decision
			}
			ge, _ := log.Get(gid)
			guards[gid] = &guardInfo{entry: ge, ctl: set}
			for dep := range set {
				if undo[dep] {
					continue // already definite
				}
				a.CandidateUndo[gid] = append(a.CandidateUndo[gid], dep)
			}
			sortIDs(a.CandidateUndo[gid])
			if len(a.CandidateUndo[gid]) == 0 {
				delete(a.CandidateUndo, gid)
			}
			// Condition 4: unexecuted controlled tasks whose static
			// writes were read by logged instances.
			for _, tk := range deps.UnexecutedControlledAt(log, run, spec, ge.Task, epoch) {
				for _, reader := range deps.PotentialFlowFromUnexecutedAt(log, spec, tk, epoch) {
					if undo[reader] || reader == gid {
						continue
					}
					a.Cond4 = append(a.Cond4, Cond4Candidate{
						Guard: gid, Unexecuted: tk, Reader: reader,
					})
				}
			}
		}
	}
	sort.Slice(a.Cond4, func(i, j int) bool {
		if a.Cond4[i].Guard != a.Cond4[j].Guard {
			return a.Cond4[i].Guard < a.Cond4[j].Guard
		}
		if a.Cond4[i].Unexecuted != a.Cond4[j].Unexecuted {
			return a.Cond4[i].Unexecuted < a.Cond4[j].Unexecuted
		}
		return a.Cond4[i].Reader < a.Cond4[j].Reader
	})

	// Redo classification (Theorem 2). Guards are consulted in sorted
	// order so an instance controlled by several damaged guards is
	// attributed deterministically (smallest guard ID wins).
	guardIDs := make([]wlog.InstanceID, 0, len(guards))
	for gid := range guards {
		guardIDs = append(guardIDs, gid)
	}
	sortIDs(guardIDs)
	for _, id := range a.DefiniteUndo {
		e, ok := log.Get(id)
		if !ok {
			continue
		}
		if e.Forged {
			a.NeverRedo = append(a.NeverRedo, id)
			continue
		}
		var guard wlog.InstanceID
		for _, gid := range guardIDs {
			if gid != id && guards[gid].ctl[id] {
				guard = gid
				break
			}
		}
		if guard != "" {
			a.CandidateRedo[guard] = append(a.CandidateRedo[guard], id)
		} else {
			a.DefiniteRedo = append(a.DefiniteRedo, id)
		}
	}
	sortIDs(a.DefiniteRedo)
	sortIDs(a.NeverRedo)
	for gid := range a.CandidateRedo {
		sortIDs(a.CandidateRedo[gid])
	}

	a.Orders = buildOrders(log, g, undo, a)
	return a
}

// buildOrders derives the static Theorem-3 partial-order edges among the
// definite recovery tasks. Rule 1 is emitted as a chain over the redo set in
// commit order (transitivity implies all pairs); rules 2, 4 and 5 are emitted
// per dependence edge by walking the adjacency index of the recovery sets —
// O(|undo|+|redo| + their out-degrees), never a scan of the full edge lists
// — sharded across a worker pool for large sets; rule 3 per redo; rule 8 for
// each guard with pending candidates.
func buildOrders(log *wlog.Log, g *deps.Graph, undo map[wlog.InstanceID]bool, a *Analysis) []OrderEdge {
	var edges []OrderEdge
	redo := make(map[wlog.InstanceID]bool, len(a.DefiniteRedo))
	for _, id := range a.DefiniteRedo {
		redo[id] = true
	}

	// Rule 3: undo(t) ≺ redo(t).
	for _, id := range a.DefiniteRedo {
		edges = append(edges, OrderEdge{
			Before: ActionRef{ActUndo, id},
			After:  ActionRef{ActRedo, id},
			Rule:   RuleUndoFirst,
		})
	}

	// Rule 1: redo chain in commit order.
	chain := make([]wlog.InstanceID, 0, len(redo))
	for id := range redo {
		chain = append(chain, id)
	}
	sort.Slice(chain, func(i, j int) bool {
		ei, _ := log.Get(chain[i])
		ej, _ := log.Get(chain[j])
		return ei.LSN < ej.LSN
	})
	for i := 1; i < len(chain); i++ {
		edges = append(edges, OrderEdge{
			Before: ActionRef{ActRedo, chain[i-1]},
			After:  ActionRef{ActRedo, chain[i]},
			Rule:   RulePrecedence,
		})
	}

	// Rule 2: dependence between redone pairs.
	edges = append(edges, fanOutOrders(a.DefiniteRedo, func(from wlog.InstanceID, emit func(OrderEdge)) {
		g.FlowSuccessors(from, func(to wlog.InstanceID) {
			if redo[to] {
				emit(OrderEdge{
					Before: ActionRef{ActRedo, from},
					After:  ActionRef{ActRedo, to},
					Rule:   RuleDependence,
				})
			}
		})
	})...)

	// Rule 4: t_i →_a t_j with redo(t_i) and undo(t_j).
	edges = append(edges, fanOutOrders(a.DefiniteRedo, func(from wlog.InstanceID, emit func(OrderEdge)) {
		g.AntiSuccessors(from, func(to wlog.InstanceID) {
			if undo[to] {
				emit(OrderEdge{
					Before: ActionRef{ActUndo, to},
					After:  ActionRef{ActRedo, from},
					Rule:   RuleAntiFlow,
				})
			}
		})
	})...)

	// Rule 5: t_i →_o t_j ⇒ undo(t_j) ≺ undo(t_i).
	edges = append(edges, fanOutOrders(a.DefiniteUndo, func(from wlog.InstanceID, emit func(OrderEdge)) {
		g.OutputSuccessors(from, func(to wlog.InstanceID) {
			if undo[to] {
				emit(OrderEdge{
					Before: ActionRef{ActUndo, to},
					After:  ActionRef{ActUndo, from},
					Rule:   RuleOutputOrder,
				})
			}
		})
	})...)

	// Rule 8: candidates resolve only after their guard's redo. Guards are
	// visited in sorted order so the edge list is deterministic.
	guards := make([]wlog.InstanceID, 0, len(a.CandidateUndo))
	for gid := range a.CandidateUndo {
		guards = append(guards, gid)
	}
	sortIDs(guards)
	for _, gid := range guards {
		for _, c := range a.CandidateUndo[gid] {
			edges = append(edges, OrderEdge{
				Before: ActionRef{ActRedo, gid},
				After:  ActionRef{ActUndo, c},
				Rule:   RuleCtlCandidate,
			})
		}
	}
	return edges
}

// fanOutOrderThreshold is the source-set size below which the Theorem-3
// adjacency walk stays serial.
const fanOutOrderThreshold = 256

// fanOutOrders applies gen to every source instance and collects the emitted
// order edges. Large source sets are sharded across a worker pool, one
// contiguous chunk per worker; per-chunk results are concatenated in chunk
// order, so the output is deterministic and identical to the serial walk.
func fanOutOrders(froms []wlog.InstanceID, gen func(from wlog.InstanceID, emit func(OrderEdge))) []OrderEdge {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || len(froms) < fanOutOrderThreshold {
		var out []OrderEdge
		for _, from := range froms {
			gen(from, func(e OrderEdge) { out = append(out, e) })
		}
		return out
	}
	if workers > len(froms) {
		workers = len(froms)
	}
	chunks := make([][]OrderEdge, workers)
	var wg sync.WaitGroup
	per := (len(froms) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(froms) {
			hi = len(froms)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []OrderEdge
			for _, from := range froms[lo:hi] {
				gen(from, func(e OrderEdge) { local = append(local, e) })
			}
			chunks[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var out []OrderEdge
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func sortIDs(ids []wlog.InstanceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortedIDs(set map[wlog.InstanceID]bool) []wlog.InstanceID {
	out := make([]wlog.InstanceID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
