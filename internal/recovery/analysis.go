// Package recovery implements the paper's core contribution (§III): given
// the set of malicious tasks reported by the IDS, identify every directly or
// indirectly damaged task instance (Theorem 1), decide which must be redone
// (Theorem 2), derive the partial orders that make the recovery strict
// correct (Theorems 3 and 4), and execute the repair.
//
// The package has two layers:
//
//   - Analyze is the recovery analyzer of the paper's architecture (Fig 2):
//     a static damage assessment computing the definite undo set (conditions
//     1 and 3 of Theorem 1), the candidate undo sets guarded by damaged
//     choice nodes (conditions 2 and 4), the redo classification of Theorem
//     2, and the Theorem-3 partial-order edges among recovery tasks.
//
//   - Repair executes the recovery: it stages all undos, then replays every
//     run's corrected execution in a single globally position-ordered pass,
//     resolving candidates as redone choice nodes commit their decisions,
//     and iterating to a fixpoint as confirmed wrong-path tasks enlarge the
//     undo set.
package recovery

import (
	"sort"

	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Cond4Candidate is a condition-4 (Theorem 1) candidate: if the unexecuted
// task becomes part of the re-execution path after the guard's redo, Reader
// read stale data and must be undone.
type Cond4Candidate struct {
	// Guard is the damaged choice-node instance whose redo decides.
	Guard wlog.InstanceID
	// Unexecuted is the t_k ∉ L controlled by the guard.
	Unexecuted wf.TaskID
	// Reader is the logged instance that read a key t_k writes.
	Reader wlog.InstanceID
}

// OrderRule identifies which Theorem-3 rule produced a partial-order edge.
type OrderRule int

// Theorem 3 rules that yield static (pre-execution) edges.
const (
	RulePrecedence   OrderRule = 1 // t_i ≺ t_j ⇒ redo(t_i) ≺ redo(t_j)
	RuleDependence   OrderRule = 2 // t_i → t_j ⇒ redo(t_i) ≺ redo(t_j)
	RuleUndoFirst    OrderRule = 3 // undo(t_i) ≺ redo(t_i)
	RuleAntiFlow     OrderRule = 4 // t_i →_a t_j ⇒ undo(t_j) ≺ redo(t_i)
	RuleOutputOrder  OrderRule = 5 // t_i →_o t_j ⇒ undo(t_j) ≺ undo(t_i)
	RuleCtlCandidate OrderRule = 8 // redo(guard) before resolving its candidates
)

// ActionKind distinguishes recovery schedule actions.
type ActionKind int

// Recovery action kinds.
const (
	ActUndo ActionKind = iota
	ActRedo
	ActExecNew
	ActKeep
)

func (k ActionKind) String() string {
	switch k {
	case ActUndo:
		return "undo"
	case ActRedo:
		return "redo"
	case ActExecNew:
		return "exec-new"
	case ActKeep:
		return "keep"
	default:
		return "unknown"
	}
}

// ActionRef names one endpoint of a partial-order edge.
type ActionRef struct {
	Kind ActionKind
	Inst wlog.InstanceID
}

// OrderEdge is one derived partial order: Before must commit before After.
type OrderEdge struct {
	Before, After ActionRef
	Rule          OrderRule
}

// Analysis is the static damage assessment for one batch of IDS alerts.
type Analysis struct {
	// Bad is the malicious set B reported by the IDS.
	Bad []wlog.InstanceID
	// FlowDamaged lists instances damaged through →_f* (Theorem 1
	// condition 3), excluding Bad itself.
	FlowDamaged []wlog.InstanceID
	// DefiniteUndo is Bad ∪ FlowDamaged: instances that must be undone
	// regardless of any re-execution outcome (conditions 1 and 3).
	DefiniteUndo []wlog.InstanceID
	// CandidateUndo maps each damaged choice-node instance (guard) to the
	// logged instances control dependent on it that are undone only if the
	// guard's redo leaves them off the new path (condition 2).
	CandidateUndo map[wlog.InstanceID][]wlog.InstanceID
	// Cond4 lists condition-4 candidates.
	Cond4 []Cond4Candidate
	// DefiniteRedo lists undo instances that must be redone (Theorem 2
	// condition 1): not control dependent on any bad task. Forged tasks
	// are never redone.
	DefiniteRedo []wlog.InstanceID
	// CandidateRedo maps guards to undo instances redone only if still on
	// the guard's re-execution path (Theorem 2 condition 2).
	CandidateRedo map[wlog.InstanceID][]wlog.InstanceID
	// NeverRedo lists undo instances never redone (forged tasks).
	NeverRedo []wlog.InstanceID
	// Orders are the Theorem-3 partial-order edges among the definite
	// recovery tasks.
	Orders []OrderEdge
}

// WorstCaseUndo returns the upper bound of the undo set before any redo has
// executed: the definite undos plus every control-dependence candidate and
// every condition-4 reader. The actual undo set after candidate resolution
// is a subset; operators use the bound to size the recovery effort before
// committing to it.
func (a *Analysis) WorstCaseUndo() []wlog.InstanceID {
	set := make(map[wlog.InstanceID]bool, len(a.DefiniteUndo))
	for _, id := range a.DefiniteUndo {
		set[id] = true
	}
	for _, cands := range a.CandidateUndo {
		for _, id := range cands {
			set[id] = true
		}
	}
	for _, c := range a.Cond4 {
		set[c.Reader] = true
	}
	return sortedIDs(set)
}

// Analyze performs the static damage assessment for the malicious instances
// in bad. specs maps run IDs to their workflow specifications; runs present
// in the log but absent from specs contribute flow damage but no control
// analysis (their tasks are treated as spec-less, e.g. standalone forged
// tasks).
func Analyze(log *wlog.Log, specs map[string]*wf.Spec, bad []wlog.InstanceID) *Analysis {
	g := deps.Build(log)
	badSet := make(map[wlog.InstanceID]bool, len(bad))
	for _, b := range bad {
		badSet[b] = true
	}
	undo := g.ReadersClosure(badSet)

	a := &Analysis{
		Bad:           sortedIDs(badSet),
		CandidateUndo: make(map[wlog.InstanceID][]wlog.InstanceID),
		CandidateRedo: make(map[wlog.InstanceID][]wlog.InstanceID),
	}
	for id := range undo {
		if !badSet[id] {
			a.FlowDamaged = append(a.FlowDamaged, id)
		}
	}
	sortIDs(a.FlowDamaged)
	a.DefiniteUndo = sortedIDs(undo)

	// Control-dependence candidates, per run.
	type guardInfo struct {
		entry *wlog.Entry
		ctl   map[wlog.InstanceID]bool
	}
	guards := make(map[wlog.InstanceID]*guardInfo)
	for _, run := range log.Runs() {
		spec, ok := specs[run]
		if !ok {
			continue
		}
		cv := deps.BuildControl(log, run, spec)
		for gid, set := range cv.Deps {
			if !undo[gid] {
				continue // only damaged choice nodes trigger re-decision
			}
			ge, _ := log.Get(gid)
			guards[gid] = &guardInfo{entry: ge, ctl: set}
			for dep := range set {
				if undo[dep] {
					continue // already definite
				}
				a.CandidateUndo[gid] = append(a.CandidateUndo[gid], dep)
			}
			sortIDs(a.CandidateUndo[gid])
			if len(a.CandidateUndo[gid]) == 0 {
				delete(a.CandidateUndo, gid)
			}
			// Condition 4: unexecuted controlled tasks whose static
			// writes were read by logged instances.
			for _, tk := range deps.UnexecutedControlled(log, run, spec, ge.Task) {
				for _, reader := range deps.PotentialFlowFromUnexecuted(log, spec, tk) {
					if undo[reader] || reader == gid {
						continue
					}
					a.Cond4 = append(a.Cond4, Cond4Candidate{
						Guard: gid, Unexecuted: tk, Reader: reader,
					})
				}
			}
		}
	}
	sort.Slice(a.Cond4, func(i, j int) bool {
		if a.Cond4[i].Guard != a.Cond4[j].Guard {
			return a.Cond4[i].Guard < a.Cond4[j].Guard
		}
		if a.Cond4[i].Unexecuted != a.Cond4[j].Unexecuted {
			return a.Cond4[i].Unexecuted < a.Cond4[j].Unexecuted
		}
		return a.Cond4[i].Reader < a.Cond4[j].Reader
	})

	// Redo classification (Theorem 2).
	for _, id := range a.DefiniteUndo {
		e, ok := log.Get(id)
		if !ok {
			continue
		}
		if e.Forged {
			a.NeverRedo = append(a.NeverRedo, id)
			continue
		}
		var guard wlog.InstanceID
		for gid, gi := range guards {
			if gid != id && gi.ctl[id] {
				guard = gid
				break
			}
		}
		if guard != "" {
			a.CandidateRedo[guard] = append(a.CandidateRedo[guard], id)
		} else {
			a.DefiniteRedo = append(a.DefiniteRedo, id)
		}
	}
	sortIDs(a.DefiniteRedo)
	sortIDs(a.NeverRedo)
	for gid := range a.CandidateRedo {
		sortIDs(a.CandidateRedo[gid])
	}

	a.Orders = buildOrders(log, g, undo, a)
	return a
}

// buildOrders derives the static Theorem-3 partial-order edges among the
// definite recovery tasks. Rule 1 is emitted as a chain over the redo set in
// commit order (transitivity implies all pairs); rules 2, 4 and 5 are emitted
// per dependence edge; rule 3 per redo; rule 8 for each guard with pending
// candidates.
func buildOrders(log *wlog.Log, g *deps.Graph, undo map[wlog.InstanceID]bool, a *Analysis) []OrderEdge {
	var edges []OrderEdge
	redo := make(map[wlog.InstanceID]bool, len(a.DefiniteRedo))
	for _, id := range a.DefiniteRedo {
		redo[id] = true
	}

	// Rule 3: undo(t) ≺ redo(t).
	for _, id := range a.DefiniteRedo {
		edges = append(edges, OrderEdge{
			Before: ActionRef{ActUndo, id},
			After:  ActionRef{ActRedo, id},
			Rule:   RuleUndoFirst,
		})
	}

	// Rule 1: redo chain in commit order.
	chain := make([]wlog.InstanceID, 0, len(redo))
	for id := range redo {
		chain = append(chain, id)
	}
	sort.Slice(chain, func(i, j int) bool {
		ei, _ := log.Get(chain[i])
		ej, _ := log.Get(chain[j])
		return ei.LSN < ej.LSN
	})
	for i := 1; i < len(chain); i++ {
		edges = append(edges, OrderEdge{
			Before: ActionRef{ActRedo, chain[i-1]},
			After:  ActionRef{ActRedo, chain[i]},
			Rule:   RulePrecedence,
		})
	}

	// Rule 2: dependence between redone pairs.
	for _, e := range g.Flow() {
		if redo[e.From] && redo[e.To] {
			edges = append(edges, OrderEdge{
				Before: ActionRef{ActRedo, e.From},
				After:  ActionRef{ActRedo, e.To},
				Rule:   RuleDependence,
			})
		}
	}

	// Rule 4: t_i →_a t_j with redo(t_i) and undo(t_j).
	for _, e := range g.Anti() {
		if redo[e.From] && undo[e.To] {
			edges = append(edges, OrderEdge{
				Before: ActionRef{ActUndo, e.To},
				After:  ActionRef{ActRedo, e.From},
				Rule:   RuleAntiFlow,
			})
		}
	}

	// Rule 5: t_i →_o t_j ⇒ undo(t_j) ≺ undo(t_i).
	for _, e := range g.Output() {
		if undo[e.From] && undo[e.To] {
			edges = append(edges, OrderEdge{
				Before: ActionRef{ActUndo, e.To},
				After:  ActionRef{ActUndo, e.From},
				Rule:   RuleOutputOrder,
			})
		}
	}

	// Rule 8: candidates resolve only after their guard's redo.
	for gid, cands := range a.CandidateUndo {
		for _, c := range cands {
			edges = append(edges, OrderEdge{
				Before: ActionRef{ActRedo, gid},
				After:  ActionRef{ActUndo, c},
				Rule:   RuleCtlCandidate,
			})
		}
	}
	return edges
}

func sortIDs(ids []wlog.InstanceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortedIDs(set map[wlog.InstanceID]bool) []wlog.InstanceID {
	out := make([]wlog.InstanceID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
