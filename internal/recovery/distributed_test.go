package recovery_test

import (
	"testing"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wlog"
)

// TestRecoveryOverMergedSegments: a de-centralized deployment stores the log
// in per-node segments (§II.A footnote, §VII); recovery over the
// stamp-ordered merge must produce exactly the same result as recovery over
// the original centralized log.
func TestRecoveryOverMergedSegments(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	segs := wlog.SegmentByRun(attacked.Log())
	merged, err := wlog.MergeSegments(segs["r1"], segs["r2"])
	if err != nil {
		t.Fatal(err)
	}

	central, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := recovery.Repair(attacked.Store(), merged, attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if err := recovery.CheckStrictCorrectness(central.Store, distributed.Store); err != nil {
		t.Errorf("distributed recovery diverged: %v", err)
	}
	if len(central.Undone) != len(distributed.Undone) ||
		len(central.Redone) != len(distributed.Redone) ||
		len(central.NewExecuted) != len(distributed.NewExecuted) {
		t.Errorf("set sizes differ: central %d/%d/%d, distributed %d/%d/%d",
			len(central.Undone), len(central.Redone), len(central.NewExecuted),
			len(distributed.Undone), len(distributed.Redone), len(distributed.NewExecuted))
	}
	for i := range central.Undone {
		if central.Undone[i] != distributed.Undone[i] {
			t.Errorf("undo sets differ at %d: %s vs %s", i, central.Undone[i], distributed.Undone[i])
		}
	}
}
