package recovery

import (
	"fmt"

	"selfheal/internal/data"
	"selfheal/internal/wlog"
)

// AuditSchedule validates a repair's committed schedule against the
// Theorem-3 partial orders of the static analysis. It returns one error per
// violated constraint; an empty slice means the schedule is rule-compliant.
//
// Two deliberate deviations of the implementation are accounted for:
//
//   - Rule 8 (candidate undo after the guard's redo): the fixpoint repair
//     re-stages all undos at the start of the final iteration, so a
//     confirmed candidate's undo appears textually before the guard's redo
//     even though the decision was taken after a guard redo of an earlier
//     iteration. The audit therefore checks the rule's substance instead:
//     every confirmed candidate undo must be justified by a redone guard.
//
//   - Instances repositioned by a cycle-path change execute at a fresh
//     position; rule-1/2 index checks skip pairs involving them, since for
//     those instances the corrected execution order (rules 6/7) overrides
//     the original commit order.
func AuditSchedule(res *Result) []error {
	var errs []error
	undoIdx := make(map[wlog.InstanceID]int)
	redoIdx := make(map[wlog.InstanceID]int)
	repositioned := make(map[wlog.InstanceID]bool)
	for i, a := range res.Schedule {
		switch a.Kind {
		case ActUndo:
			undoIdx[a.Inst] = i
		case ActRedo:
			redoIdx[a.Inst] = i
			if a.Epos != float64(int(a.Epos)) {
				repositioned[a.Inst] = true
			}
		}
	}

	index := func(r ActionRef) (int, bool) {
		switch r.Kind {
		case ActUndo:
			i, ok := undoIdx[r.Inst]
			return i, ok
		case ActRedo:
			i, ok := redoIdx[r.Inst]
			return i, ok
		default:
			return 0, false
		}
	}

	for _, e := range res.Analysis.Orders {
		if e.Rule == RuleCtlCandidate {
			// Substance check: a confirmed candidate undo requires its
			// guard to have been re-decided (redone) — or to have been
			// dropped entirely as wrong-path work itself, in which case
			// everything control dependent on it is off-path too.
			if _, undone := undoIdx[e.After.Inst]; undone {
				_, guardRedone := redoIdx[e.Before.Inst]
				_, guardUndone := undoIdx[e.Before.Inst]
				if !guardRedone && !guardUndone {
					errs = append(errs, fmt.Errorf(
						"rule 8: candidate %s undone but guard %s neither redone nor dropped",
						e.After.Inst, e.Before.Inst))
				}
			}
			continue
		}
		if (e.Rule == RulePrecedence || e.Rule == RuleDependence) &&
			(repositioned[e.Before.Inst] || repositioned[e.After.Inst]) {
			continue
		}
		bi, okB := index(e.Before)
		ai, okA := index(e.After)
		if !okB || !okA {
			// An endpoint that never entered the schedule (e.g. a
			// candidate redo that was dismissed) makes the edge vacuous.
			continue
		}
		if bi >= ai {
			errs = append(errs, fmt.Errorf(
				"rule %d: %s(%s) at index %d not before %s(%s) at index %d",
				e.Rule, e.Before.Kind, e.Before.Inst, bi, e.After.Kind, e.After.Inst, ai))
		}
	}

	// Structural invariants beyond the static edges: every redo and every
	// new execution happens at a position not colliding with a kept
	// original, and every redone instance was undone first.
	for _, a := range res.Schedule {
		if a.Kind == ActRedo {
			if _, ok := undoIdx[a.Inst]; !ok {
				errs = append(errs, fmt.Errorf("redo without undo: %s", a.Inst))
			}
		}
	}
	return errs
}

// CheckStrictCorrectness implements the completeness criterion of
// Definition 2 for deterministic workflows: after recovery, the store state
// must be exactly the state of a clean (attack-free) execution. It returns
// nil when the repaired store matches the clean reference.
func CheckStrictCorrectness(clean, repaired *data.Store) error {
	if d := data.Diff(clean, repaired); d != "" {
		return fmt.Errorf("recovery not strict correct; differing final values:\n%s", d)
	}
	return nil
}
