package recovery

import (
	"sort"
	"strings"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// component groups runs whose key footprints are transitively connected.
// Because every flow, anti-flow and output dependence — and therefore every
// Theorem-3 constraint edge between non-candidate actions — requires a
// shared data object, the constraint DAG never crosses component boundaries:
// each component's replay is an independent subgraph of the partial order.
type component struct {
	runs []string   // sorted by first appearance in the log
	keys []data.Key // sorted footprint union
}

// buildComponents partitions the logged, specified runs into key-footprint
// components (union-find over run and key nodes). It returns the components
// in deterministic order (by each component's first run in log order) plus
// key → component and run → component lookup tables.
func buildComponents(log *wlog.Log, specs map[string]*wf.Spec) (list []component, keyComp map[data.Key]int, runComp map[string]int) {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			if !ok {
				parent[x] = x
			}
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	const keyPrefix = "k\x00"
	runNode := func(run string) string { return "r\x00" + run }
	keyNode := func(k data.Key) string { return keyPrefix + string(k) }

	var runs []string
	for _, run := range log.Runs() {
		spec, ok := specs[run]
		if !ok {
			continue // forged-only run: no walker, no footprint
		}
		runs = append(runs, run)
		rn := runNode(run)
		find(rn)
		for _, k := range specFootprint(spec) {
			union(rn, keyNode(k))
		}
	}

	keyComp = make(map[data.Key]int)
	runComp = make(map[string]int)
	compOf := make(map[string]int)
	for _, run := range runs {
		root := find(runNode(run))
		ci, ok := compOf[root]
		if !ok {
			ci = len(list)
			compOf[root] = ci
			list = append(list, component{})
		}
		list[ci].runs = append(list[ci].runs, run)
		runComp[run] = ci
	}
	keyNodes := make([]string, 0, len(parent))
	for n := range parent {
		if strings.HasPrefix(n, keyPrefix) {
			keyNodes = append(keyNodes, n)
		}
	}
	sort.Strings(keyNodes)
	for _, n := range keyNodes {
		ci, ok := compOf[find(n)]
		if !ok {
			continue
		}
		k := data.Key(n[len(keyPrefix):])
		list[ci].keys = append(list[ci].keys, k)
		keyComp[k] = ci
	}
	return list, keyComp, runComp
}

// specFootprint returns the sorted set of every key a spec's tasks read or
// write — the run's complete data-object footprint.
func specFootprint(spec *wf.Spec) []data.Key {
	set := make(map[data.Key]bool)
	for _, t := range spec.Tasks {
		for _, k := range t.Reads {
			set[k] = true
		}
		for _, k := range t.Writes {
			set[k] = true
		}
	}
	out := make([]data.Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// replayComponents is the component-factored replay pass: it partitions the
// runs by key footprint, marks the components connected to the undo set as
// damaged, optionally (ScopeToDamage) confines the pass to those, and
// replays the active components concurrently over a bounded worker pool —
// the §IV concurrent-recovery executor. Store safety needs no coordination
// beyond the store's own mutex: active components own disjoint key sets, so
// their walkers never observe each other's writes and the merged result is
// independent of goroutine scheduling.
func replayComponents(st *data.Store, log *wlog.Log, specs map[string]*wf.Spec, g *deps.Graph, undo map[wlog.InstanceID]bool, opts Options, it *iterationResult, staged []*wlog.Entry, writers []string, undoStart time.Time) (*iterationResult, error) {
	comps, keyComp, runComp := buildComponents(log, specs)

	damaged := make([]bool, len(comps))
	extraKeys := make(map[data.Key]bool) // undone writes outside every footprint (forged-only keys)
	for _, e := range staged {
		if ci, ok := runComp[e.Run]; ok {
			damaged[ci] = true
		}
		for k := range e.Writes {
			if ci, ok := keyComp[k]; ok {
				damaged[ci] = true
			} else {
				extraKeys[k] = true
			}
		}
	}

	var active []int
	for i := range comps {
		if !opts.ScopeToDamage || damaged[i] {
			active = append(active, i)
		}
	}

	// Strip versions written by earlier repairs — globally when replaying
	// everything, but only on the damaged chains when scoped: recovery
	// versions on clean chains have no walker to rebuild them and must
	// pass through untouched. Then perform the staged undos in one batch.
	if opts.ScopeToDamage {
		keySet := make(map[data.Key]bool)
		for _, ci := range active {
			for _, k := range comps[ci].keys {
				keySet[k] = true
			}
		}
		for k := range extraKeys {
			keySet[k] = true
		}
		dk := make([]data.Key, 0, len(keySet))
		for k := range keySet {
			dk = append(dk, k)
		}
		sort.Slice(dk, func(i, j int) bool { return dk[i] < dk[j] })
		it.damagedKeys = dk
		st.DeleteRecoveryVersionsIn(dk)
	} else {
		st.DeleteRecoveryVersions()
	}
	st.DeleteWritesBatch(writers)
	it.undoDur = time.Since(undoStart)
	redoStart := time.Now()

	outs := make([]*iterationResult, len(active))
	errs := make([]error, len(active))
	wrongs := make([][]wlog.InstanceID, len(active))
	runOne := func(slot int) {
		ci := active[slot]
		sub := &iterationResult{store: st, newUndo: make(map[wlog.InstanceID]bool)}
		walkers := make([]*walker, 0, len(comps[ci].runs))
		for _, run := range comps[ci].runs {
			walkers = append(walkers, newWalker(run, specs[run], log, opts))
		}
		if err := replayWalkers(st, log, undo, sub, walkers); err != nil {
			errs[slot] = err
			return
		}
		for _, w := range walkers {
			for _, e := range w.remaining {
				wrongs[slot] = append(wrongs[slot], e.ID())
			}
		}
		outs[slot] = sub
	}
	workers := opts.Parallel
	if workers > len(active) {
		workers = len(active)
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		for slot := range active {
			runOne(slot)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for slot := range idx {
					runOne(slot)
				}
			}()
		}
		for slot := range active {
			idx <- slot
		}
		close(idx)
		wg.Wait()
	}
	it.components = len(active)
	it.workers = workers

	var wrong []wlog.InstanceID
	var merged []Action
	for slot := range active {
		if errs[slot] != nil {
			return nil, errs[slot]
		}
		sub := outs[slot]
		merged = append(merged, sub.schedule...)
		it.redone = append(it.redone, sub.redone...)
		it.newExecuted = append(it.newExecuted, sub.newExecuted...)
		it.keptVerified += sub.keptVerified
		for id := range sub.newUndo {
			it.newUndo[id] = true
		}
		wrong = append(wrong, wrongs[slot]...)
	}
	// Each component's schedule ascends in effective position, so a stable
	// merge by position is a valid linear extension of the union of the
	// per-component partial orders (constraint edges never cross
	// components; see component).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Epos < merged[j].Epos })
	it.schedule = append(it.schedule, merged...)

	closeNewUndo(g, it, wrong)
	it.redoDur = time.Since(redoStart)
	sortIDs(it.redone)
	sortIDs(it.newExecuted)
	return it, nil
}

// KeyComponents exposes the key-footprint component decomposition to other
// layers: it returns each key's component index (keys outside every logged
// run's footprint are absent) and the component count. The durable restore
// path partitions its parallel chain replay along these components, so the
// unit of replay parallelism matches the unit of repair parallelism.
func KeyComponents(log *wlog.Log, specs map[string]*wf.Spec) (map[data.Key]int, int) {
	list, keyComp, _ := buildComponents(log, specs)
	return keyComp, len(list)
}

// Footprint returns the sorted set of every key a spec's tasks read or
// write — the run's complete data-object footprint. The shard layer's
// durable mode uses it to refuse repairs that would need the truncated
// pre-snapshot history of a spanning run.
func Footprint(spec *wf.Spec) []data.Key {
	return specFootprint(spec)
}
