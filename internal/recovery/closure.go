package recovery

import (
	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// DamageKeyClosure computes the §IV quiesce scope for a repair: the union of
// the key-footprint components containing any key an instance in the seed
// sets (the accused instances plus the worst-case undo estimate) read or
// wrote. Quiescing whole components — not just the touched keys — is what
// lets the repair's fixpoint grow safely: any instance the replay later
// discovers to be damaged shares a component with the seeds, because damage
// propagates only through shared data objects. Keys touched only by forged
// instances, outside every specification's footprint, are included directly.
//
// The single-process service quiesces execution on these keys; the cluster
// uses the same closure to decide which nodes' key ranges must pause, so a
// node owning no damaged component keeps serving during repair.
func DamageKeyClosure(log *wlog.Log, specs map[string]*wf.Spec, seedSets ...[]wlog.InstanceID) map[data.Key]bool {
	parent := make(map[data.Key]data.Key)
	var find func(data.Key) data.Key
	find = func(k data.Key) data.Key {
		p, ok := parent[k]
		if !ok || p == k {
			if !ok {
				parent[k] = k
			}
			return k
		}
		r := find(p)
		parent[k] = r
		return r
	}
	union := func(a, b data.Key) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, sp := range specs {
		fp := Footprint(sp)
		for i := 1; i < len(fp); i++ {
			union(fp[0], fp[i])
		}
	}

	seeds := make(map[data.Key]bool)
	addEntry := func(id wlog.InstanceID) {
		e, ok := log.Get(id)
		if !ok {
			return
		}
		for k := range e.Writes {
			seeds[k] = true
		}
		for k := range e.Reads {
			seeds[k] = true
		}
		if sp := specs[e.Run]; sp != nil {
			for _, k := range Footprint(sp) {
				seeds[k] = true
			}
		}
	}
	for _, set := range seedSets {
		for _, id := range set {
			addEntry(id)
		}
	}

	roots := make(map[data.Key]bool)
	for k := range seeds {
		roots[find(k)] = true
	}
	out := make(map[data.Key]bool, len(seeds))
	for k := range parent {
		if roots[find(k)] {
			out[k] = true
		}
	}
	for k := range seeds {
		out[k] = true // forged-only keys outside every footprint
	}
	return out
}
