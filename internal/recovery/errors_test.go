package recovery_test

import (
	"context"
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func TestRepairRejectsUnknownBadInstance(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = recovery.Repair(s.Store(), s.Log(), s.Specs,
		[]wlog.InstanceID{"r9/ghost#1"}, recovery.Options{})
	if err == nil || !strings.Contains(err.Error(), "not in log") {
		t.Fatalf("err = %v, want unknown-instance rejection", err)
	}
}

func TestRepairRejectsMissingSpec(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]*wf.Spec{"r1": s.Specs["r1"]} // r2 missing
	_, err = recovery.Repair(s.Store(), s.Log(), specs, s.Bad, recovery.Options{})
	if err == nil || !strings.Contains(err.Error(), "no workflow spec") {
		t.Fatalf("err = %v, want missing-spec rejection", err)
	}
}

func TestRepairForgedOnlyRunNeedsNoSpec(t *testing.T) {
	// A run consisting solely of forged entries (an attacker-invented run
	// ID) must be repairable without a spec for it.
	st := data.NewStore()
	st.Init("e", 0)
	wf1, _ := wf.Fig1Specs()
	eng := engine.New(st, wlog.New())
	r, err := eng.NewRun("r1", wf1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(r); err != nil { // t1 writes a=1
		t.Fatal(err)
	}
	forged, err := eng.InjectForged("ghost-run", "evil", nil,
		map[data.Key]data.Value{"a": -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"r1": wf1}, []wlog.InstanceID{forged}, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	undone := idSet(res.Undone)
	if !undone[forged] {
		t.Error("forged instance not undone")
	}
	// t2 read the forged a and must be repaired; the repaired a is t1's.
	if v, _ := res.Store.Get("a"); v.Value != 1 {
		t.Errorf("a = %d after recovery, want 1", v.Value)
	}
	if v, _ := res.Store.Get("b"); v.Value != 2 {
		t.Errorf("b = %d after recovery, want 2", v.Value)
	}
}

// TestRepairNonTerminatingCorrectedExecution: the corrected branch decision
// loops forever — the repair must fail with the step budget, not hang.
func TestRepairNonTerminatingCorrectedExecution(t *testing.T) {
	// check loops back to body while n < 100; body adds 0 each pass
	// after correction, so the corrected execution never terminates.
	// The attacked execution terminated because the corrupted init set
	// n = 100 directly.
	spec, err := wf.NewBuilder("hang", "init").
		Task("init").Writes("n").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": 0} // benign start
		}).Then("body").End().
		Task("body").Reads("n").Writes("n").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": r["n"]} // no progress
		}).Then("check").End().
		Task("check").Reads("n").Writes("m").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"m": r["n"]}
		}).Then("body", "done").
		ChooseBy(wf.ThresholdChoose("n", 100, "body", "done")).End().
		Task("done").Reads("m").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(data.NewStore(), wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "r", Task: "init",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": 100}
		},
	})
	r, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	_, err = recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "init", 1)},
		recovery.Options{MaxWalkSteps: 64})
	if err == nil || !strings.Contains(err.Error(), "not terminating") {
		t.Fatalf("err = %v, want non-termination budget error", err)
	}
}

// TestRepairIncompleteRunStopsAtFrontier: repairing a run that has not
// finished must not execute work beyond the original progress.
func TestRepairIncompleteRunStopsAtFrontier(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	st := data.NewStore()
	st.Init("e", 0)
	eng := engine.New(st, wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	r, err := eng.NewRun("r1", wf1)
	if err != nil {
		t.Fatal(err)
	}
	// Execute only t1 t2 t3: the run is mid-flight on the wrong path.
	for i := 0; i < 3; i++ {
		if _, err := eng.Step(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"r1": wf1},
		[]wlog.InstanceID{wlog.FormatInstance("r1", "t1", 1)},
		recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The corrected path is t1 t2 t5…; with three original commits, the
	// replay executes at most three actions: t1, t2, t5. t6 must NOT run.
	for _, a := range res.Schedule {
		if a.Task == "t6" {
			t.Errorf("repair executed %s beyond the incomplete run's frontier", a.Inst)
		}
	}
	cur, done, ok := res.Frontier("r1", wf1)
	if !ok || done {
		t.Fatalf("frontier = %v/%v/%v", cur, done, ok)
	}
	if cur != "t6" {
		t.Errorf("frontier task = %s, want t6 (after corrected t5)", cur)
	}
	// t3 was wrong-path and is gone; the corrected prefix ends with t5.
	if v, ok := res.Store.Get("e"); !ok || v.Value != 7 {
		t.Errorf("e = %v (ok=%v), want 7 from the corrected t5", v.Value, ok)
	}
	if _, ok := res.Store.Get("c"); ok {
		t.Error("wrong-path t3 output survived")
	}
}

// TestFrontierUntouchedRun: even an empty repair verifies (keeps) every
// committed instance, so the frontier of a complete run is "done" — a
// no-op resynchronization.
func TestFrontierUntouchedRun(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, nil, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, ok := res.Frontier("r1", s.Specs["r1"]); !ok || !done {
		t.Errorf("frontier = done=%v ok=%v, want the completed state back", done, ok)
	}
	// A run absent from the log has no frontier.
	if _, _, ok := res.Frontier("never-ran", s.Specs["r1"]); ok {
		t.Error("nonexistent run reported a frontier")
	}
}

// TestFrontierCompletedRun: a repaired complete run reports done.
func TestFrontierCompletedRun(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, ok := res.Frontier("r1", s.Specs["r1"]); !ok || !done {
		t.Errorf("frontier of completed run: done=%v ok=%v, want true/true", done, ok)
	}
}

// TestRepairConvergenceBudget: an artificially tiny iteration budget fails
// loudly instead of looping.
func TestRepairConvergenceBudget(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad,
		recovery.Options{MaxIterations: 1})
	if err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("err = %v, want convergence budget error", err)
	}
}

// TestMultipleGuardsNestedChoices: damage upstream of two nested choice
// nodes re-decides both and prunes both wrong branches.
func TestMultipleGuardsNestedChoices(t *testing.T) {
	spec, err := wf.NewBuilder("nested", "src").
		Task("src").Writes("x").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"x": 1}
		}).Then("c1").End().
		Task("c1").Reads("x").Writes("y").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"y": r["x"] * 2}
		}).Then("left", "right").
		ChooseBy(wf.ThresholdChoose("x", 10, "left", "right")).End().
		Task("left").Reads("y").Writes("l").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"l": r["y"]}
		}).Then("c2").End().
		Task("right").Reads("y").Writes("r").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"r": r["y"]}
		}).Then("end").End().
		Task("c2").Reads("l").Writes("z").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"z": r["l"]}
		}).Then("deep1", "deep2").
		ChooseBy(wf.ThresholdChoose("l", 5, "deep1", "deep2")).End().
		Task("deep1").Reads("z").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["z"] + 100}
		}).Then("end").End().
		Task("deep2").Reads("z").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["z"] + 200}
		}).Then("end").End().
		Task("end").Reads("out").Writes("final").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"final": r["out"]}
		}).End().
		Build()
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(attack bool) *engine.Engine {
		eng := engine.New(data.NewStore(), wlog.New())
		if attack {
			eng.AddAttack(engine.Attack{
				Run: "r", Task: "src",
				Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
					return map[data.Key]data.Value{"x": 1000}
				},
			})
		}
		r, err := eng.NewRun("r", spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunAll(context.Background(), r); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	attacked := runOnce(true) // x=1000 → right branch
	clean := runOnce(false)   // x=1 → left → deep1

	res, err := recovery.Repair(attacked.Store(), attacked.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "src", 1)},
		recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Fatal(err)
	}
	// The corrected path introduces left, c2 and deep1 as new work.
	newSet := idSet(res.NewExecuted)
	for _, want := range []wlog.InstanceID{"r/left#1", "r/c2#1", "r/deep1#1"} {
		if !newSet[want] {
			t.Errorf("new executed missing %s: %v", want, res.NewExecuted)
		}
	}
	if v, _ := res.Store.Get("final"); v.Value != 102 {
		t.Errorf("final = %d, want 102", v.Value)
	}
}
