package recovery_test

import (
	"context"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// loopSpec builds init → body → check → (body | done): body adds step to
// the counter each visit; check loops until the counter reaches limit.
func loopSpec(step, limit data.Value) *wf.Spec {
	return wf.NewBuilder("loop", "init").
		Task("init").Writes("n").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": 0}
		}).Then("body").End().
		Task("body").Reads("n").Writes("n").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": r["n"] + step}
		}).Then("check").End().
		Task("check").Reads("n").Writes("m").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"m": r["n"]}
		}).Then("body", "done").
		ChooseBy(wf.ThresholdChoose("n", limit, "body", "done")).End().
		Task("done").Reads("m").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["m"] * 10}
		}).End().
		MustBuild()
}

// runLoop executes the loop workflow, optionally corrupting init so the
// counter starts at startAt instead of 0 (changing the number of loop
// iterations the attacked execution performs).
func runLoop(t *testing.T, spec *wf.Spec, corruptInitTo *data.Value) *engine.Engine {
	t.Helper()
	eng := engine.New(data.NewStore(), wlog.New())
	if corruptInitTo != nil {
		v := *corruptInitTo
		eng.AddAttack(engine.Attack{
			Run: "r", Task: "init",
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{"n": v}
			},
		})
	}
	r, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	return eng
}

func repairLoop(t *testing.T, eng *engine.Engine, spec *wf.Spec) *recovery.Result {
	t.Helper()
	res, err := recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "init", 1)},
		recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCyclicRecoveryExtendsLoop: the attack made the loop exit early (the
// corrupted counter started high); the corrected execution must insert the
// missing iterations as new instances.
func TestCyclicRecoveryExtendsLoop(t *testing.T) {
	spec := loopSpec(10, 30) // clean: three iterations
	corrupt := data.Value(20)
	attacked := runLoop(t, spec, &corrupt) // attacked: one iteration
	clean := runLoop(t, spec, nil)

	if got := attacked.Log().Len(); got != 4 { // init body check done
		t.Fatalf("attacked log has %d entries, want 4", got)
	}
	res := repairLoop(t, attacked, spec)
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Fatal(err)
	}
	// Iterations 2 and 3 never existed: body#2, check#2, body#3, check#3.
	if len(res.NewExecuted) != 4 {
		t.Errorf("new executed = %v, want the 4 missing loop instances", res.NewExecuted)
	}
	if v, _ := res.Store.Get("out"); v.Value != 300 {
		t.Errorf("out = %d, want 300", v.Value)
	}
	if errs := recovery.VerifyResult(res, attacked.Log(), map[string]*wf.Spec{"r": spec}); len(errs) != 0 {
		t.Errorf("verify: %v", errs)
	}
}

// TestCyclicRecoveryShrinksLoop: the attack made the loop run longer (the
// corrupted counter started negative); the surplus iterations are wrong-path
// work — undone and not redone.
func TestCyclicRecoveryShrinksLoop(t *testing.T) {
	spec := loopSpec(10, 30)
	corrupt := data.Value(-20)
	attacked := runLoop(t, spec, &corrupt) // five iterations
	clean := runLoop(t, spec, nil)         // three iterations

	if got := attacked.Log().Len(); got != 12 { // init + 5×(body,check) + done
		t.Fatalf("attacked log has %d entries, want 12", got)
	}
	res := repairLoop(t, attacked, spec)
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Fatal(err)
	}
	// body#4, check#4, body#5, check#5 are surplus.
	if len(res.DroppedNotRedone) != 4 {
		t.Errorf("dropped = %v, want the 4 surplus instances", res.DroppedNotRedone)
	}
	if v, _ := res.Store.Get("out"); v.Value != 300 {
		t.Errorf("out = %d, want 300", v.Value)
	}
}

// TestRepositionedInstance: the corrected execution visits committed
// instances in a different order than they committed (B before C instead of
// C before B), forcing the walker's fresh-position handling.
func TestRepositionedInstance(t *testing.T) {
	// A writes sel and routes: sel < 10 → B first, else C first. B and C
	// each add 50 to cnt and continue to the other until cnt ≥ 100.
	spec := wf.NewBuilder("pingpong", "A").
		Task("A").Writes("sel").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"sel": 5}
		}).Then("B", "C").
		ChooseBy(wf.ThresholdChoose("sel", 10, "B", "C")).End().
		Task("B").Reads("sel", "cnt").Writes("cnt", "b").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"cnt": r["cnt"] + 50, "b": r["sel"]}
		}).Then("C", "endB").
		ChooseBy(wf.ThresholdChoose("cnt", 50, "C", "endB")).End().
		Task("C").Reads("sel", "cnt").Writes("cnt", "c").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"cnt": r["cnt"] + 50, "c": r["sel"]}
		}).Then("B", "endC").
		ChooseBy(wf.ThresholdChoose("cnt", 50, "B", "endC")).End().
		Task("endB").Reads("cnt").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["cnt"] + 1}
		}).End().
		Task("endC").Reads("cnt").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["cnt"] + 2}
		}).End().
		MustBuild()

	mkEngine := func(attack bool) *engine.Engine {
		st := data.NewStore()
		st.Init("cnt", 0)
		eng := engine.New(st, wlog.New())
		if attack {
			// Corrupt only the branch decision: the attacker steers
			// the workflow to C first.
			eng.AddAttack(engine.Attack{
				Run: "r", Task: "A",
				Choose: func(map[data.Key]data.Value) wf.TaskID { return "C" },
			})
		}
		r, err := eng.NewRun("r", spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunAll(context.Background(), r); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	attacked := mkEngine(true) // A C B endB: wait — C first, then B, end at B's exit
	clean := mkEngine(false)   // A B C endC

	// Sanity: the two executions visit B and C in opposite orders.
	aTrace := attacked.Log().Trace("r", false)
	if aTrace[1].Task != "C" || aTrace[2].Task != "B" {
		t.Fatalf("attacked trace order unexpected: %v %v", aTrace[1].Task, aTrace[2].Task)
	}

	res, err := recovery.Repair(attacked.Store(), attacked.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "A", 1)},
		recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Store.Get("out"); v.Value != 102 {
		t.Errorf("out = %d, want 102 (endC path)", v.Value)
	}
}
