package recovery

import (
	"fmt"
	"sort"

	"selfheal/internal/wlog"
)

// ScheduleActions linearizes the definite recovery tasks of an analysis into
// a serial order satisfying every Theorem-3 partial-order edge — the paper's
// scheduler repeatedly picking minimal(S, ≺) (§II.B). Candidate undos and
// redos are excluded: they resolve only during execution, after their
// guard's redo commits. The result is deterministic (ties broken by commit
// LSN, undos before redos). A cyclic constraint set is reported as an error;
// Theorem 3's rules never produce one on real analyses, so a cycle always
// indicates a corrupted edge set.
func ScheduleActions(log *wlog.Log, a *Analysis) ([]ActionRef, error) {
	// Node set: undo for every definite undo, redo for every definite redo.
	type node struct {
		ref  ActionRef
		lsn  int
		deps int // unsatisfied incoming edges
	}
	nodes := make(map[ActionRef]*node)
	addNode := func(kind ActionKind, id wlog.InstanceID) {
		ref := ActionRef{Kind: kind, Inst: id}
		if _, ok := nodes[ref]; ok {
			return
		}
		lsn := 0
		if e, ok := log.Get(id); ok {
			lsn = e.LSN
		}
		nodes[ref] = &node{ref: ref, lsn: lsn}
	}
	for _, id := range a.DefiniteUndo {
		addNode(ActUndo, id)
	}
	for _, id := range a.DefiniteRedo {
		addNode(ActRedo, id)
	}

	succ := make(map[ActionRef][]ActionRef)
	for _, e := range a.Orders {
		from, to := nodes[e.Before], nodes[e.After]
		if from == nil || to == nil {
			continue // edge touches a candidate; resolved dynamically
		}
		succ[e.Before] = append(succ[e.Before], e.After)
		to.deps++
	}

	// Kahn's algorithm with a deterministic ready set: undos first (most
	// recent first, rule 5's natural order), then redos in commit order.
	less := func(x, y *node) bool {
		if x.ref.Kind != y.ref.Kind {
			return x.ref.Kind == ActUndo
		}
		if x.ref.Kind == ActUndo {
			if x.lsn != y.lsn {
				return x.lsn > y.lsn
			}
		} else if x.lsn != y.lsn {
			return x.lsn < y.lsn
		}
		return x.ref.Inst < y.ref.Inst
	}
	var ready []*node
	for _, n := range nodes {
		if n.deps == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]ActionRef, 0, len(nodes))
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n.ref)
		for _, sref := range succ[n.ref] {
			s := nodes[sref]
			s.deps--
			if s.deps == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(nodes) {
		return nil, fmt.Errorf("recovery: partial orders are cyclic: scheduled %d of %d actions", len(out), len(nodes))
	}
	return out, nil
}
