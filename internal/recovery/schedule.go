package recovery

import (
	"container/heap"
	"fmt"
	"sort"

	"selfheal/internal/wlog"
)

// DAG is the Theorem-3 constraint graph over the definite recovery actions:
// the partial order itself, before any linearization. Nodes are the definite
// undos and redos of an analysis; edges are the rule 1–5 precedence
// constraints between them (edges touching candidate actions are omitted —
// candidates resolve dynamically during execution, after their guard's redo
// commits, per §III.C). A parallel executor dispatches every node whose
// in-degree is zero concurrently and decrements successors as actions
// retire; a serial executor linearizes it with Linearize.
type DAG struct {
	// Nodes lists every definite action, in deterministic order: all
	// undos (most recent commit first), then all redos (commit order).
	Nodes []ActionRef
	// InDeg maps each node to its number of unsatisfied predecessor
	// edges (with multiplicity, matching Succ).
	InDeg map[ActionRef]int
	// Succ lists each node's successors; an edge a→b means a must retire
	// before b may start.
	Succ map[ActionRef][]ActionRef
	// LSN is each action's instance commit LSN (0 for instances absent
	// from the log) — the deterministic tie-break key for schedulers.
	LSN map[ActionRef]int
}

// ScheduleDAG builds the Theorem-3 constraint graph for the definite actions
// of an analysis. Candidate undos and redos are excluded, and any Orders
// edge touching one is dropped: candidates are guarded by a control task's
// redo (rule 8) and materialize only when that redo commits.
func ScheduleDAG(log *wlog.Log, a *Analysis) *DAG {
	d := &DAG{
		InDeg: make(map[ActionRef]int),
		Succ:  make(map[ActionRef][]ActionRef),
		LSN:   make(map[ActionRef]int),
	}
	add := func(kind ActionKind, id wlog.InstanceID) {
		ref := ActionRef{Kind: kind, Inst: id}
		if _, ok := d.LSN[ref]; ok {
			return
		}
		lsn := 0
		if e, ok := log.Get(id); ok {
			lsn = e.LSN
		}
		d.LSN[ref] = lsn
		d.InDeg[ref] = 0
		d.Nodes = append(d.Nodes, ref)
	}
	for _, id := range a.DefiniteUndo {
		add(ActUndo, id)
	}
	for _, id := range a.DefiniteRedo {
		add(ActRedo, id)
	}
	sort.Slice(d.Nodes, func(i, j int) bool { return d.less(d.Nodes[i], d.Nodes[j]) })
	for _, e := range a.Orders {
		if _, ok := d.LSN[e.Before]; !ok {
			continue // edge touches a candidate; resolved dynamically
		}
		if _, ok := d.LSN[e.After]; !ok {
			continue
		}
		d.Succ[e.Before] = append(d.Succ[e.Before], e.After)
		d.InDeg[e.After]++
	}
	return d
}

// less is the deterministic scheduler priority: undos first (most recent
// commit first, rule 5's natural order), then redos in commit order, with
// instance IDs breaking exact ties.
func (d *DAG) less(x, y ActionRef) bool {
	if x.Kind != y.Kind {
		return x.Kind == ActUndo
	}
	lx, ly := d.LSN[x], d.LSN[y]
	if x.Kind == ActUndo {
		if lx != ly {
			return lx > ly
		}
	} else if lx != ly {
		return lx < ly
	}
	return x.Inst < y.Inst
}

// actionHeap is a priority queue of ready DAG nodes ordered by DAG.less.
type actionHeap struct {
	d     *DAG
	nodes []ActionRef
}

func (h *actionHeap) Len() int           { return len(h.nodes) }
func (h *actionHeap) Less(i, j int) bool { return h.d.less(h.nodes[i], h.nodes[j]) }
func (h *actionHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *actionHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(ActionRef)) }
func (h *actionHeap) Pop() interface{} {
	n := len(h.nodes)
	v := h.nodes[n-1]
	h.nodes = h.nodes[:n-1]
	return v
}

// Linearize flattens the constraint graph into a serial order satisfying
// every edge — the paper's scheduler repeatedly picking minimal(S, ≺)
// (§II.B) — using a priority-queue Kahn's algorithm: O((n + e) log n)
// instead of re-sorting the ready set on every pop. The order is
// deterministic and identical to the historical ScheduleActions order. A
// cyclic constraint set is reported as an error; Theorem 3's rules never
// produce one on real analyses, so a cycle always indicates a corrupted
// edge set. Linearize does not mutate the DAG.
func (d *DAG) Linearize() ([]ActionRef, error) {
	indeg := make(map[ActionRef]int, len(d.InDeg))
	for ref, n := range d.InDeg {
		indeg[ref] = n
	}
	h := &actionHeap{d: d}
	for _, ref := range d.Nodes {
		if indeg[ref] == 0 {
			h.nodes = append(h.nodes, ref)
		}
	}
	heap.Init(h)
	out := make([]ActionRef, 0, len(d.Nodes))
	for h.Len() > 0 {
		ref := heap.Pop(h).(ActionRef)
		out = append(out, ref)
		for _, s := range d.Succ[ref] {
			if indeg[s]--; indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	if len(out) != len(d.Nodes) {
		return nil, fmt.Errorf("recovery: partial orders are cyclic: scheduled %d of %d actions", len(out), len(d.Nodes))
	}
	return out, nil
}

// ScheduleActions linearizes the definite recovery tasks of an analysis into
// a serial order satisfying every Theorem-3 partial-order edge. It is the
// serial fallback of the DAG executor, implemented as
// ScheduleDAG(log, a).Linearize(); see DAG for the parallel form.
func ScheduleActions(log *wlog.Log, a *Analysis) ([]ActionRef, error) {
	return ScheduleDAG(log, a).Linearize()
}
