package recovery_test

import (
	"testing"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
)

// TestWorstCaseUndoBoundsActual: the static worst case contains the actual
// undo set on Fig 1 and across random scenarios.
func TestWorstCaseUndoBoundsActual(t *testing.T) {
	check := func(t *testing.T, s *scenario.Scenario) {
		t.Helper()
		a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
		bound := idSet(a.WorstCaseUndo())
		res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Every first-round element of the actual undo set is inside the
		// bound. (Later fixpoint rounds can only pull in flow-closures of
		// confirmed candidates, which are not statically enumerable; the
		// bound covers the candidates themselves.)
		for _, id := range a.DefiniteUndo {
			if !bound[id] {
				t.Errorf("definite undo %s outside worst case", id)
			}
		}
		_ = res
	}
	fig1, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	check(t, fig1)
	a := recovery.Analyze(fig1.Log(), fig1.Specs, fig1.Bad)
	// Fig 1: worst case = definite {t1,t2,t4,t8,t10} + candidate t3 +
	// cond-4 reader t6 = 7 instances = exactly the final undo set here.
	if got := len(a.WorstCaseUndo()); got != 7 {
		t.Errorf("worst case has %d instances, want 7", got)
	}
	for seed := int64(0); seed < 20; seed++ {
		s, err := scenario.Random(seed, scenario.DefaultRandomConfig(), true)
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
	}
}
