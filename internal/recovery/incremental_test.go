package recovery_test

import (
	"reflect"
	"testing"

	"selfheal/internal/deps"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
)

// TestAnalyzeGraphMatchesAnalyze: damage assessment over a hook-maintained
// incremental snapshot must produce the same Analysis — undo/redo sets,
// classifications and order edges — as the batch rebuild path, across
// randomized attacked workloads.
func TestAnalyzeGraphMatchesAnalyze(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := scenario.RandomConfig{
			Runs:    3,
			Gen:     wf.GenConfig{Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.4, Cycles: 1},
			Attacks: 2,
			Forged:  1,
		}
		s, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot taken from a second IncrementalGraph subscribed late:
		// OnAppend's backfill must make this indistinguishable from one
		// subscribed before the first commit.
		ig := deps.NewIncremental(s.Log())

		batch := recovery.Analyze(s.Log(), s.Specs, s.Bad)
		incr := recovery.AnalyzeGraph(ig.Snapshot(), s.Log(), s.Specs, s.Bad)
		if !reflect.DeepEqual(batch, incr) {
			t.Fatalf("seed %d: Analysis diverges between batch and incremental paths:\nbatch %+v\nincr  %+v", seed, batch, incr)
		}
	}
}

// TestRepairGraphMatchesRepair: full repair through the snapshot path yields
// the same repaired store and schedule as the batch path.
func TestRepairGraphMatchesRepair(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s, err := scenario.Random(seed, scenario.DefaultRandomConfig(), true)
		if err != nil {
			t.Fatal(err)
		}
		ig := deps.NewIncremental(s.Log())

		batch, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: batch repair: %v", seed, err)
		}
		incr, err := recovery.RepairGraph(ig.Snapshot(), s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: incremental repair: %v", seed, err)
		}
		// Phases carries wall-clock timings, which legitimately differ
		// between the two runs; everything else must match exactly.
		batch.Phases, incr.Phases = recovery.PhaseTimings{}, recovery.PhaseTimings{}
		if !reflect.DeepEqual(batch, incr) {
			t.Fatalf("seed %d: Repair result diverges between batch and incremental paths", seed)
		}
	}
}

// TestRepairGraphRejectsStaleSnapshot: a snapshot older than the log must be
// refused — repairing against missing suffix entries would silently skip
// damage.
func TestRepairGraphRejectsStaleSnapshot(t *testing.T) {
	s, err := scenario.Random(3, scenario.DefaultRandomConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	ig := deps.NewIncremental(s.Log())
	snap := ig.Snapshot()
	// Grow the log past the snapshot.
	if _, err := s.Engine.InjectForged("", "late", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := recovery.RepairGraph(snap, s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{}); err == nil {
		t.Fatal("RepairGraph accepted a stale snapshot")
	}
}
