package recovery_test

import (
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wlog"
)

func idSet(ids []wlog.InstanceID) map[wlog.InstanceID]bool {
	out := make(map[wlog.InstanceID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

func sameIDs(t *testing.T, what string, got []wlog.InstanceID, want ...wlog.InstanceID) {
	t.Helper()
	g, w := idSet(got), idSet(want)
	for id := range w {
		if !g[id] {
			t.Errorf("%s: missing %s (got %v)", what, id, got)
		}
	}
	for id := range g {
		if !w[id] {
			t.Errorf("%s: unexpected %s (want %v)", what, id, want)
		}
	}
}

// TestFig1LogShape checks that the attacked scenario reproduces the paper's
// system log L1 = t1 t7 t2 t8 t3 t4 t9 t6 t10.
func TestFig1LogShape(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"t1", "t7", "t2", "t8", "t3", "t4", "t9", "t6", "t10"}
	entries := s.Log().Entries()
	if len(entries) != len(want) {
		t.Fatalf("log has %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if string(e.Task) != want[i] {
			t.Errorf("log[%d] = %s, want %s", i, e.Task, want[i])
		}
	}
	// The attack must have driven r1 down P1 (t2 chose t3).
	e, _ := s.Log().Get(wlog.FormatInstance("r1", "t2", 1))
	if e.Chosen != "t3" {
		t.Errorf("attacked t2 chose %s, want t3", e.Chosen)
	}
}

// TestFig1CleanPath checks the attack-free twin follows P2 = t1 t2 t5 t6.
func TestFig1CleanPath(t *testing.T) {
	s, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Log().Get(wlog.FormatInstance("r1", "t2", 1))
	if !ok || e.Chosen != "t5" {
		t.Fatalf("clean t2 chose %v, want t5", e)
	}
	if _, ok := s.Log().Get(wlog.FormatInstance("r1", "t3", 1)); ok {
		t.Error("clean run executed t3")
	}
}

// TestFig1Analysis asserts the static damage assessment matches §III.B's
// walkthrough of Theorem 1 and Theorem 2.
func TestFig1Analysis(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	a := recovery.Analyze(s.Log(), s.Specs, s.Bad)

	t1 := wlog.FormatInstance("r1", "t1", 1)
	t2 := wlog.FormatInstance("r1", "t2", 1)
	t3 := wlog.FormatInstance("r1", "t3", 1)
	t4 := wlog.FormatInstance("r1", "t4", 1)
	t6 := wlog.FormatInstance("r1", "t6", 1)
	t8 := wlog.FormatInstance("r2", "t8", 1)
	t10 := wlog.FormatInstance("r2", "t10", 1)

	sameIDs(t, "Bad", a.Bad, t1)
	// Condition 3: t2, t4, t8, t10 read corrupted data (the paper's "A"
	// marks).
	sameIDs(t, "FlowDamaged", a.FlowDamaged, t2, t4, t8, t10)
	sameIDs(t, "DefiniteUndo", a.DefiniteUndo, t1, t2, t4, t8, t10)

	// Condition 2: t3 is a candidate undo guarded by the damaged choice
	// node t2 (t4 is control dependent too but already definite).
	if cands, ok := a.CandidateUndo[t2]; !ok {
		t.Error("no candidate-undo set for guard t2")
	} else {
		sameIDs(t, "CandidateUndo[t2]", cands, t3)
	}

	// Condition 4: t6 read a key the unexecuted t5 writes.
	if len(a.Cond4) != 1 {
		t.Fatalf("Cond4 = %v, want exactly one candidate", a.Cond4)
	}
	c4 := a.Cond4[0]
	if c4.Guard != t2 || string(c4.Unexecuted) != "t5" || c4.Reader != t6 {
		t.Errorf("Cond4 = %+v, want guard t2, unexecuted t5, reader t6", c4)
	}

	// Theorem 2: t1, t2, t8, t10 are definite redos; t4 is a candidate
	// redo under guard t2 (and will be dismissed).
	sameIDs(t, "DefiniteRedo", a.DefiniteRedo, t1, t2, t8, t10)
	if cands, ok := a.CandidateRedo[t2]; !ok {
		t.Error("no candidate-redo set for guard t2")
	} else {
		sameIDs(t, "CandidateRedo[t2]", cands, t4)
	}
	if len(a.NeverRedo) != 0 {
		t.Errorf("NeverRedo = %v, want empty (no forged tasks)", a.NeverRedo)
	}
	if len(a.Orders) == 0 {
		t.Error("no Theorem-3 order edges derived")
	}
}

// TestFig1Repair asserts the full recovery outcome of the paper's worked
// example: undo {t1,t2,t3,t4,t6,t8,t10}, redo {t1,t2,t6,t8,t10}, execute t5
// for the first time, drop t3 and t4 without redoing them — and end in
// exactly the clean execution's state.
func TestFig1Repair(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}

	res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}

	t1 := wlog.FormatInstance("r1", "t1", 1)
	t2 := wlog.FormatInstance("r1", "t2", 1)
	t3 := wlog.FormatInstance("r1", "t3", 1)
	t4 := wlog.FormatInstance("r1", "t4", 1)
	t5 := wlog.FormatInstance("r1", "t5", 1)
	t6 := wlog.FormatInstance("r1", "t6", 1)
	t8 := wlog.FormatInstance("r2", "t8", 1)
	t10 := wlog.FormatInstance("r2", "t10", 1)

	sameIDs(t, "Undone", res.Undone, t1, t2, t3, t4, t6, t8, t10)
	sameIDs(t, "Redone", res.Redone, t1, t2, t6, t8, t10)
	sameIDs(t, "NewExecuted", res.NewExecuted, t5)
	sameIDs(t, "DroppedNotRedone", res.DroppedNotRedone, t3, t4)

	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2 (one discovery round, one stable round)", res.Iterations)
	}

	// Strict correctness: the repaired store equals the clean execution.
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Error(err)
	}

	// Spot-check repaired values from the paper's data flow.
	for _, c := range []struct {
		key  data.Key
		want data.Value
	}{
		{"a", 1}, {"b", 2}, {"e", 7}, {"f", 14}, {"h", 4}, {"j", 8},
	} {
		v, ok := res.Store.Get(c.key)
		if !ok || v.Value != c.want {
			t.Errorf("repaired %s = %v (ok=%v), want %d", c.key, v.Value, ok, c.want)
		}
	}
	// Wrong-path outputs c and d must be gone entirely.
	for _, k := range []data.Key{"c", "d"} {
		if _, ok := res.Store.Get(k); ok {
			t.Errorf("wrong-path output %s still present after recovery", k)
		}
	}

	// The schedule must satisfy the Theorem-3 partial orders.
	if errs := recovery.AuditSchedule(res); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("audit: %v", e)
		}
	}
	// And the corrected history must be intrinsically valid.
	if errs := recovery.VerifyResult(res, attacked.Log(), attacked.Specs); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("verify: %v", e)
		}
	}

	// The input store must not have been modified.
	if v, _ := attacked.Store().Get("a"); v.Value != 100 {
		t.Error("Repair modified the input store")
	}
}

// TestFig1RepairIdempotent runs a second repair on an already-clean history:
// reporting nothing must change nothing.
func TestFig1RepairNothingReported(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, nil, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undone) != 0 || len(res.Redone) != 0 || len(res.NewExecuted) != 0 {
		t.Errorf("empty report changed history: undo=%v redo=%v new=%v",
			res.Undone, res.Redone, res.NewExecuted)
	}
	if !data.Equal(attacked.Store(), res.Store) {
		t.Error("store changed despite empty report")
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}
