package recovery_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// sortedSchedule returns a copy of a schedule in canonical (Epos, Kind,
// Inst) order, so schedules from executors with different tie-breaking can
// be compared as sets of positioned actions.
func sortedSchedule(s []recovery.Action) []recovery.Action {
	out := append([]recovery.Action(nil), s...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epos != out[j].Epos {
			return out[i].Epos < out[j].Epos
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Inst < out[j].Inst
	})
	return out
}

func sortedOrders(edges []recovery.OrderEdge) []recovery.OrderEdge {
	out := append([]recovery.OrderEdge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Before != out[j].Before {
			if out[i].Before.Inst != out[j].Before.Inst {
				return out[i].Before.Inst < out[j].Before.Inst
			}
			return out[i].Before.Kind < out[j].Before.Kind
		}
		if out[i].After != out[j].After {
			if out[i].After.Inst != out[j].After.Inst {
				return out[i].After.Inst < out[j].After.Inst
			}
			return out[i].After.Kind < out[j].After.Kind
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// TestParallelRepairMatchesSerial is the executor-equivalence property: on
// randomized multi-run workloads with shared keys, branches (candidate
// undos/redos) and forged entries, the parallel component executor and the
// damage-scoped executor must agree with the serial executor on the final
// store, the audited instance sets and the damage analysis. Run it with
// -race: the per-component goroutines share one store.
func TestParallelRepairMatchesSerial(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs:    5,
		Gen:     wf.GenConfig{Tasks: 10, Keys: 9, MaxReads: 3, BranchProb: 0.4},
		Attacks: 3,
		Forged:  1,
	}
	for seed := int64(0); seed < 60; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
		if err != nil {
			t.Fatalf("seed %d: serial repair: %v", seed, err)
		}
		check := func(name string, res *recovery.Result, scoped bool) {
			t.Helper()
			if !data.Equal(serial.Store, res.Store) {
				t.Fatalf("seed %d: %s store diverged from serial:\n%s", seed, name, data.Diff(serial.Store, res.Store))
			}
			if !reflect.DeepEqual(serial.Undone, res.Undone) {
				t.Fatalf("seed %d: %s undone %v != serial %v", seed, name, res.Undone, serial.Undone)
			}
			if !reflect.DeepEqual(serial.Redone, res.Redone) {
				t.Fatalf("seed %d: %s redone %v != serial %v", seed, name, res.Redone, serial.Redone)
			}
			if !reflect.DeepEqual(serial.NewExecuted, res.NewExecuted) {
				t.Fatalf("seed %d: %s newExecuted %v != serial %v", seed, name, res.NewExecuted, serial.NewExecuted)
			}
			if !reflect.DeepEqual(serial.DroppedNotRedone, res.DroppedNotRedone) {
				t.Fatalf("seed %d: %s dropped %v != serial %v", seed, name, res.DroppedNotRedone, serial.DroppedNotRedone)
			}
			if serial.Iterations != res.Iterations {
				t.Fatalf("seed %d: %s took %d iterations, serial %d", seed, name, res.Iterations, serial.Iterations)
			}
			// The analysis is static: identical regardless of executor.
			if !reflect.DeepEqual(serial.Analysis.DefiniteUndo, res.Analysis.DefiniteUndo) ||
				!reflect.DeepEqual(serial.Analysis.DefiniteRedo, res.Analysis.DefiniteRedo) ||
				!reflect.DeepEqual(serial.Analysis.CandidateUndo, res.Analysis.CandidateUndo) ||
				!reflect.DeepEqual(serial.Analysis.CandidateRedo, res.Analysis.CandidateRedo) ||
				!reflect.DeepEqual(sortedOrders(serial.Analysis.Orders), sortedOrders(res.Analysis.Orders)) {
				t.Fatalf("seed %d: %s analysis diverged from serial", seed, name)
			}
			if errs := recovery.AuditSchedule(res); len(errs) != 0 {
				t.Fatalf("seed %d: %s audit: %v", seed, name, errs)
			}
			if scoped {
				// A scoped repair's store must match the input store
				// exactly outside its declared damaged keys.
				dk := make(map[data.Key]bool, len(res.DamagedKeys))
				for _, k := range res.DamagedKeys {
					dk[k] = true
				}
				for _, k := range attacked.Store().Keys() {
					if dk[k] {
						continue
					}
					if !reflect.DeepEqual(attacked.Store().Chain(k), res.Store.Chain(k)) {
						t.Fatalf("seed %d: %s modified clean key %s", seed, name, k)
					}
				}
				return
			}
			// Unscoped executors replay the full history: the kept count,
			// the corrected history and the positioned schedule all match.
			if serial.KeptVerified != res.KeptVerified {
				t.Fatalf("seed %d: %s kept %d != serial %d", seed, name, res.KeptVerified, serial.KeptVerified)
			}
			if !reflect.DeepEqual(sortedSchedule(serial.Schedule), sortedSchedule(res.Schedule)) {
				t.Fatalf("seed %d: %s schedule diverged from serial", seed, name)
			}
			if errs := recovery.VerifyResult(res, attacked.Log(), attacked.Specs); len(errs) != 0 {
				t.Fatalf("seed %d: %s verify: %v", seed, name, errs)
			}
		}
		for _, workers := range []int{2, 4, 8} {
			res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{Parallel: workers})
			if err != nil {
				t.Fatalf("seed %d: parallel(%d) repair: %v", seed, workers, err)
			}
			if res.Components < 1 || res.Workers < 1 || res.Workers > workers {
				t.Fatalf("seed %d: parallel(%d) reported components=%d workers=%d", seed, workers, res.Components, res.Workers)
			}
			check("parallel", res, false)
		}
		scoped, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{Parallel: 4, ScopeToDamage: true})
		if err != nil {
			t.Fatalf("seed %d: scoped repair: %v", seed, err)
		}
		check("scoped", scoped, true)
	}
}

// TestParallelRepairGolden extends the single-run golden-oracle property to
// the parallel executor: repairing with workers must still reproduce the
// attack-free execution exactly (parallel ≡ serial ≡ benign execution).
func TestParallelRepairGolden(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs:    1,
		Gen:     wf.GenConfig{Tasks: 14, Keys: 9, MaxReads: 3, BranchProb: 0.4},
		Attacks: 2,
		Forged:  1,
	}
	for seed := int64(0); seed < 60; seed++ {
		attacked, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := scenario.Random(seed, cfg, false)
		if err != nil {
			t.Fatalf("seed %d clean: %v", seed, err)
		}
		res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{Parallel: 4, ScopeToDamage: true})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
			t.Errorf("seed %d: %v\nbad=%v undone=%v", seed, err, attacked.Bad, res.Undone)
		}
		if errs := recovery.AuditSchedule(res); len(errs) != 0 {
			t.Errorf("seed %d: audit: %v", seed, errs)
		}
	}
}

// TestScopedRepairLeavesCleanComponents builds two key-disjoint runs,
// attacks one, and verifies the scoped executor repairs the damaged
// component while passing the clean component's chains through untouched —
// including recovery versions left there by an earlier, unrelated repair.
func TestScopedRepairLeavesCleanComponents(t *testing.T) {
	chain := func(name string, n int) *wf.Spec {
		b := wf.NewBuilder(name, "t1")
		key := func(i int) data.Key { return data.Key(fmt.Sprintf("%s.k%d", name, i)) }
		for i := 1; i <= n; i++ {
			tb := b.Task(wf.TaskID(fmt.Sprintf("t%d", i))).Writes(key(i))
			if i > 1 {
				tb.Reads(key(i - 1))
			}
			tb.Compute(wf.SumCompute(data.Value(i), key(i)))
			if i < n {
				tb.Then(wf.TaskID(fmt.Sprintf("t%d", i+1)))
			}
		}
		return b.MustBuild()
	}
	specA, specB := chain("a", 4), chain("b", 4)
	eng := engine.New(data.NewStore(), wlog.New())
	eng.AddAttack(engine.Attack{Run: "a", Task: "t2", Visit: 1, Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
		return map[data.Key]data.Value{"a.k2": 9999}
	}})
	ra, err := eng.NewRun("a", specA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eng.NewRun("b", specB)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), ra, rb); err != nil {
		t.Fatal(err)
	}
	// Simulate an earlier unrelated repair leaving a recovery version on
	// the clean component.
	eng.Store().Write("b.k9", 42, 0.5, "b/old#1", true)

	specs := map[string]*wf.Spec{"a": specA, "b": specB}
	bad := []wlog.InstanceID{wlog.FormatInstance("a", "t2", 1)}
	res, err := recovery.Repair(eng.Store(), eng.Log(), specs, bad, recovery.Options{Parallel: 2, ScopeToDamage: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.DamagedKeys {
		if k[0] != 'a' {
			t.Errorf("clean key %s reported damaged", k)
		}
	}
	for _, k := range []data.Key{"b.k1", "b.k2", "b.k3", "b.k4", "b.k9"} {
		if !reflect.DeepEqual(eng.Store().Chain(k), res.Store.Chain(k)) {
			t.Errorf("clean chain %s modified by scoped repair", k)
		}
	}
	// The damaged chain is corrected: a.k2 must no longer read 9999.
	if v, _ := res.Store.Get("a.k2"); v.Value == 9999 {
		t.Error("a.k2 still corrupt after scoped repair")
	}
	// The clean run produced no schedule actions: its frontier is unmoved.
	if _, _, ok := res.Frontier("b", specB); ok {
		t.Error("scoped repair produced a frontier for the clean run")
	}
	if res.Components != 1 {
		t.Errorf("scoped repair executed %d components, want 1", res.Components)
	}
}
