package recovery_test

import (
	"strings"
	"testing"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wlog"
)

func TestScheduleActionsFig1(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
	order, err := recovery.ScheduleActions(s.Log(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Every definite undo and redo appears exactly once.
	want := len(a.DefiniteUndo) + len(a.DefiniteRedo)
	if len(order) != want {
		t.Fatalf("scheduled %d actions, want %d", len(order), want)
	}
	index := make(map[recovery.ActionRef]int, len(order))
	for i, r := range order {
		if _, dup := index[r]; dup {
			t.Fatalf("duplicate action %v", r)
		}
		index[r] = i
	}
	// Every applicable Theorem-3 edge is satisfied.
	for _, e := range a.Orders {
		bi, okB := index[e.Before]
		ai, okA := index[e.After]
		if !okB || !okA {
			continue
		}
		if bi >= ai {
			t.Errorf("rule %d violated: %v at %d not before %v at %d",
				e.Rule, e.Before, bi, e.After, ai)
		}
	}
	// Rule 3 sanity: every redone instance is undone earlier.
	for _, id := range a.DefiniteRedo {
		u := index[recovery.ActionRef{Kind: recovery.ActUndo, Inst: id}]
		r := index[recovery.ActionRef{Kind: recovery.ActRedo, Inst: id}]
		if u >= r {
			t.Errorf("undo(%s) at %d not before redo at %d", id, u, r)
		}
	}
	// Rule 1 sanity: redos appear in commit order.
	var lastLSN int
	for _, ref := range order {
		if ref.Kind != recovery.ActRedo {
			continue
		}
		e, _ := s.Log().Get(ref.Inst)
		if e.LSN < lastLSN {
			t.Errorf("redo order violates commit order at %s", ref.Inst)
		}
		lastLSN = e.LSN
	}
}

func TestScheduleActionsDeterministic(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
	o1, err := recovery.ScheduleActions(s.Log(), a)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := recovery.ScheduleActions(s.Log(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != len(o2) {
		t.Fatal("lengths differ")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, o1[i], o2[i])
		}
	}
}

func TestScheduleActionsCycleDetected(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
	// Fabricate a cycle among two redos.
	r1 := recovery.ActionRef{Kind: recovery.ActRedo, Inst: wlog.InstanceID("r1/t1#1")}
	r2 := recovery.ActionRef{Kind: recovery.ActRedo, Inst: wlog.InstanceID("r1/t2#1")}
	a.Orders = append(a.Orders,
		recovery.OrderEdge{Before: r2, After: r1, Rule: recovery.RuleDependence})
	_, err = recovery.ScheduleActions(s.Log(), a)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cycle detection", err)
	}
}

func TestScheduleActionsEmptyAnalysis(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	a := recovery.Analyze(s.Log(), s.Specs, nil)
	order, err := recovery.ScheduleActions(s.Log(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 {
		t.Errorf("empty analysis scheduled %d actions", len(order))
	}
}

// TestScheduleActionsPropertyAcyclic: over many random attacked workloads,
// the Theorem-3 edge set is always satisfiable and the schedule respects
// every applicable edge.
func TestScheduleActionsPropertyAcyclic(t *testing.T) {
	cfg := scenario.DefaultRandomConfig()
	for seed := int64(0); seed < 80; seed++ {
		s, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		a := recovery.Analyze(s.Log(), s.Specs, s.Bad)
		order, err := recovery.ScheduleActions(s.Log(), a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		index := make(map[recovery.ActionRef]int, len(order))
		for i, r := range order {
			index[r] = i
		}
		for _, e := range a.Orders {
			bi, okB := index[e.Before]
			ai, okA := index[e.After]
			if okB && okA && bi >= ai {
				t.Errorf("seed %d: rule %d violated (%v !< %v)", seed, e.Rule, e.Before, e.After)
			}
		}
	}
}
