package recovery_test

import (
	"context"
	"errors"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// TestCompactionWithinHorizonStillRecovers: compaction that preserves every
// version recovery needs does not affect the repair.
func TestCompactionWithinHorizonStillRecovers(t *testing.T) {
	attacked, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing before position 0.5 except initial versions, all still
	// observable; compacting there discards nothing recovery needs.
	attacked.Store().CompactBefore(0.25)
	// (Repair below is told about the horizon through the twin test in
	// TestCompactionPartialHorizonOK; here we leave it at 0 to also cover
	// the never-compacted default.)
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(attacked.Store(), attacked.Log(), attacked.Specs, attacked.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Error(err)
	}
}

// TestCompactionBeyondHorizonRefused: compacting away a version an undo
// depends on must fail loudly with ErrHorizon, not silently expose a wrong
// value. The loop workflow overwrites its counter every iteration, so
// compacting at the end discards exactly the intermediate versions an undo
// of a later iteration must re-expose.
func TestCompactionBeyondHorizonRefused(t *testing.T) {
	// w1 (clean) writes k; t2 (attacked) overwrites k; compaction keeps
	// only the latest version of k, discarding w1's. Undoing t2 must
	// re-expose w1's version — impossible, and detected.
	spec, err := wf.NewBuilder("hz", "w1").
		Task("w1").Writes("k").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"k": 7}
		}).Then("t2").End().
		Task("t2").Reads("src").Writes("k").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"k": r["src"] + 1}
		}).Then("t3").End().
		Task("t3").Reads("k").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["k"] * 2}
		}).End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	st := data.NewStore()
	st.Init("src", 1)
	eng := engine.New(st, wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "r", Task: "t2",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"k": -999}
		},
	})
	run, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		t.Fatal(err)
	}
	horizon := float64(eng.Log().Len())
	eng.Store().CompactBefore(horizon)
	_, err = recovery.Repair(eng.Store(), eng.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "t2", 1)},
		recovery.Options{CompactionHorizon: horizon})
	if !errors.Is(err, recovery.ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
}

// TestCompactionPartialHorizonOK: compacting only history that precedes the
// whole log leaves recovery intact on the same loop workload.
func TestCompactionPartialHorizonOK(t *testing.T) {
	spec := loopSpec(10, 30)
	corrupt := data.Value(-20)
	attacked := runLoop(t, spec, &corrupt)
	clean := runLoop(t, spec, nil)
	attacked.Store().CompactBefore(0.25) // nothing but pre-history
	res, err := recovery.Repair(attacked.Store(), attacked.Log(),
		map[string]*wf.Spec{"r": spec},
		[]wlog.InstanceID{wlog.FormatInstance("r", "init", 1)},
		recovery.Options{CompactionHorizon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), res.Store); err != nil {
		t.Error(err)
	}
}

// TestCompactionOfUntouchedHistoryIsFine: compacting a fully-clean store
// then repairing with an empty report is a no-op.
func TestCompactionOfUntouchedHistoryIsFine(t *testing.T) {
	s, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	s.Store().CompactBefore(100)
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, nil, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undone) != 0 {
		t.Errorf("undone = %v", res.Undone)
	}
}

// TestFrozenHistoryRepairable: damage layered on top of a compaction
// boundary is repairable — the undo exposes the boundary version, and the
// frozen pre-horizon instances are kept without re-verification (the
// versions they observed are gone, which is not damage). Accusing a frozen
// instance itself is refused with ErrHorizon: its surviving version is the
// boundary, which an undo cannot remove.
func TestFrozenHistoryRepairable(t *testing.T) {
	spec, err := wf.NewBuilder("fz", "w1").
		Task("w1").Writes("k").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"k": 7}
		}).Then("t2").End().
		Task("t2").Reads("k").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["k"] * 2}
		}).End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	st := data.NewStore()
	eng := engine.New(st, wlog.New())
	run, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		t.Fatal(err)
	}
	horizon := float64(eng.Log().Len())
	st.CompactBefore(horizon)

	// Post-horizon attack on a checkpointed key.
	forged, err := eng.InjectForged("atk", "x", nil, map[data.Key]data.Value{"k": -999})
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]*wf.Spec{"r": spec}
	res, err := recovery.Repair(st, eng.Log(), specs, []wlog.InstanceID{forged},
		recovery.Options{CompactionHorizon: horizon})
	if err != nil {
		t.Fatalf("repair of post-horizon damage on frozen keys: %v", err)
	}
	if v, ok := res.Store.Get("k"); !ok || v.Value != 7 {
		t.Errorf("k = %v after repair, want the boundary value 7", v.Value)
	}
	if err := res.Store.CheckIndex(); err != nil {
		t.Error(err)
	}

	// Accusing frozen history directly is impossible to repair and must be
	// refused, not silently mangled.
	_, err = recovery.Repair(st, eng.Log(), specs,
		[]wlog.InstanceID{wlog.FormatInstance("r", "w1", 1)},
		recovery.Options{CompactionHorizon: horizon})
	if !errors.Is(err, recovery.ErrHorizon) {
		t.Fatalf("accusing a frozen instance: err = %v, want ErrHorizon", err)
	}
}
