package dot

import (
	"strings"
	"testing"

	"selfheal/internal/deps"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
)

func TestWorkflowShapes(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	out := Workflow(wf1)
	for _, want := range []string{
		`digraph "wf1"`,
		`"t2" [label="t2", shape=diamond]`,         // choice node
		`"t6" [label="t6", shape=doublecircle]`,    // end node
		`"t1" [label="t1", shape=box, style=bold]`, // start
		`"t2" -> "t3";`,
		`"t2" -> "t5";`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWorkflowDeterministic(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	if Workflow(wf1) != Workflow(wf1) {
		t.Error("non-deterministic output")
	}
}

func TestDependences(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	out := Dependences(deps.Build(s.Log()))
	for _, want := range []string{
		`"r1/t1#1" -> "r1/t2#1" [style=solid, label="a"];`,
		`"r1/t1#1" -> "r2/t8#1" [style=solid, label="a"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSchedule(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Schedule(res)
	for _, want := range []string{"color=red", "color=blue", "color=green", "digraph recovery"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Chain length: one edge fewer than actions.
	if got, want := strings.Count(out, " -> "), len(res.Schedule)-1; got != want {
		t.Errorf("chain has %d edges, want %d", got, want)
	}
}

func TestSTG(t *testing.T) {
	m, err := stg.New(stg.Square(1, 15, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	out := STG(m)
	for _, want := range []string{
		`"N"`,           // the NORMAL state
		`"R:1"`,         // a recovery state
		`"S:1/0"`,       // a scan state
		"doubleoctagon", // the loss edge
		`[label="1"]`,   // a λ transition
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in STG dot:\n%s", want, out)
		}
	}
	// 3x3 grid: 9 states.
	if got := strings.Count(out, "shape="); got != 9 {
		t.Errorf("state count = %d, want 9", got)
	}
}
