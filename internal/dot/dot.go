// Package dot renders workflows, dependence graphs and recovery schedules
// as Graphviz DOT documents, for documentation and debugging. Output is
// deterministic (sorted nodes and edges) so it can be asserted in tests and
// committed as golden files.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"selfheal/internal/deps"
	"selfheal/internal/recovery"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
)

// quote escapes a DOT identifier.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// Workflow renders a workflow specification: choice nodes as diamonds, end
// nodes as double circles, edges in declaration order.
func Workflow(s *wf.Spec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", quote(s.Name))
	sb.WriteString("  rankdir=LR;\n")
	ids := make([]string, 0, len(s.Tasks))
	for id := range s.Tasks {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := s.Tasks[wf.TaskID(id)]
		attrs := []string{fmt.Sprintf("label=%s", quote(id))}
		switch {
		case len(t.Next) > 1:
			attrs = append(attrs, "shape=diamond")
		case len(t.Next) == 0:
			attrs = append(attrs, "shape=doublecircle")
		default:
			attrs = append(attrs, "shape=box")
		}
		if wf.TaskID(id) == s.Start {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&sb, "  %s [%s];\n", quote(id), strings.Join(attrs, ", "))
	}
	for _, id := range ids {
		for _, n := range s.Tasks[wf.TaskID(id)].Next {
			fmt.Fprintf(&sb, "  %s -> %s;\n", quote(id), quote(string(n)))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Dependences renders the data-dependence graph extracted from a log: flow
// edges solid, anti-flow dashed, output dotted, labeled with the key.
func Dependences(g *deps.Graph) string {
	var sb strings.Builder
	sb.WriteString("digraph dependences {\n  rankdir=LR;\n")
	nodes := map[string]bool{}
	var lines []string
	add := func(es []deps.Edge, style string) {
		for _, e := range es {
			nodes[string(e.From)] = true
			nodes[string(e.To)] = true
			lines = append(lines, fmt.Sprintf("  %s -> %s [style=%s, label=%s];",
				quote(string(e.From)), quote(string(e.To)), style, quote(string(e.Key))))
		}
	}
	add(g.Flow(), "solid")
	add(g.Anti(), "dashed")
	add(g.Output(), "dotted")
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %s [shape=box];\n", quote(n))
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
	return sb.String()
}

// STG renders the recovery system's state transition graph — the paper's
// Figure 3 — with states labeled N (NORMAL), S:a (SCAN with a alerts,
// recovery units as the second coordinate) and R:r (RECOVERY), and edges
// labeled with their rates.
func STG(m *stg.Model) string {
	var sb strings.Builder
	sb.WriteString("digraph stg {\n  rankdir=TB;\n")
	label := func(s stg.State) string {
		switch s.Classify() {
		case stg.Normal:
			return "N"
		case stg.Scan:
			return fmt.Sprintf("S:%d/%d", s.Alerts, s.Recovery)
		default:
			return fmt.Sprintf("R:%d", s.Recovery)
		}
	}
	states := m.States()
	for i, s := range states {
		shape := "circle"
		if s.Alerts == m.Params().AlertBuf {
			shape = "doubleoctagon" // right edge: arrivals lost here
		}
		fmt.Fprintf(&sb, "  s%d [label=%s, shape=%s];\n", i, quote(label(s)), shape)
	}
	q := m.Chain().Generator()
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if i == j {
				continue
			}
			if rate := q.At(i, j); rate > 0 {
				fmt.Fprintf(&sb, "  s%d -> s%d [label=%s];\n", i, j, quote(fmt.Sprintf("%.3g", rate)))
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Schedule renders a recovery schedule: undo actions red, redo blue,
// newly-executed green, kept gray, chained in committed order.
func Schedule(res *recovery.Result) string {
	var sb strings.Builder
	sb.WriteString("digraph recovery {\n  rankdir=LR;\n")
	color := func(k recovery.ActionKind) string {
		switch k {
		case recovery.ActUndo:
			return "red"
		case recovery.ActRedo:
			return "blue"
		case recovery.ActExecNew:
			return "green"
		default:
			return "gray"
		}
	}
	var prev string
	for i, a := range res.Schedule {
		id := fmt.Sprintf("%d: %s %s", i, a.Kind, a.Inst)
		fmt.Fprintf(&sb, "  %s [shape=box, color=%s, label=%s];\n",
			quote(id), color(a.Kind), quote(fmt.Sprintf("%s\\n%s", a.Kind, a.Inst)))
		if prev != "" {
			fmt.Fprintf(&sb, "  %s -> %s;\n", quote(prev), quote(id))
		}
		prev = id
	}
	sb.WriteString("}\n")
	return sb.String()
}
