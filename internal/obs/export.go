package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot returns every metric as a flat name → value map, the form tests
// and cmd/selfheal-sim's -metrics mode consume. Counters and gauges appear
// under their registered name; a histogram named h expands to h_count,
// h_sum, and cumulative h_bucket{le="..."} samples (Prometheus semantics).
// Returns nil on a nil registry.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64)
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, s := range r.sums {
		out[name] = s.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Total()
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			out[name+`_bucket{le="`+le+`"}`] = float64(cum)
		}
	}
	return out
}

// sortedKeys returns the snapshot's keys in ascending order: the single
// source of the deterministic emission order of WriteJSON and
// WritePrometheus, so golden-file tests and curl diffs are stable.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON emits the snapshot as a single key-sorted JSON object — an
// expvar-style document with deterministic key order and number formatting.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteByte('{')
	for i, k := range sortedKeys(snap) {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeJSONString(bw, k)
		bw.WriteByte(':')
		bw.WriteString(formatValue(snap[k]))
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// writeJSONString quotes s as a JSON string. Metric names are ASCII; the
// only characters needing escapes are the quotes inside label values.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// formatValue renders a sample deterministically: integral values without an
// exponent or decimal point, others in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// baseName strips a {label="..."} suffix: the Prometheus metric-family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled: one # HELP / # TYPE header per
// metric family (help text from the Catalog), samples sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	type fam struct {
		kind    string
		samples map[string]float64 // full sample name → value
	}
	fams := make(map[string]*fam)
	add := func(base, kind, sample string, v float64) {
		f, ok := fams[base]
		if !ok {
			f = &fam{kind: kind, samples: make(map[string]float64)}
			fams[base] = f
		}
		f.samples[sample] = v
	}
	for name, c := range r.counters {
		add(baseName(name), "counter", name, float64(c.Value()))
	}
	for name, g := range r.gauges {
		add(baseName(name), "gauge", name, float64(g.Value()))
	}
	// Sums are monotone accumulations (time totals), exposed as counters.
	for name, s := range r.sums {
		add(baseName(name), "counter", name, s.Value())
	}
	for name, h := range r.hists {
		base := baseName(name)
		add(base, "histogram", name+"_count", float64(h.Count()))
		add(base, "histogram", name+"_sum", h.Total())
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			add(base, "histogram", name+`_bucket{le="`+le+`"}`, float64(cum))
		}
	}
	r.mu.RUnlock()

	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	bw := bufio.NewWriter(w)
	for _, b := range bases {
		f := fams[b]
		if help := HelpFor(b); help != "" {
			bw.WriteString("# HELP " + b + " " + help + "\n")
		}
		bw.WriteString("# TYPE " + b + " " + f.kind + "\n")
		for _, s := range sortedKeys(f.samples) {
			bw.WriteString(s + " " + formatValue(f.samples[s]) + "\n")
		}
	}
	return bw.Flush()
}
