package obs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"selfheal/internal/obs"
)

func TestCounter(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	g := obs.NewRegistry().Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("Value = %d, want 4", got)
	}
}

func TestSum(t *testing.T) {
	s := obs.NewRegistry().Sum("s_total")
	s.Add(0.5)
	s.Add(1.25)
	if got := s.Value(); got != 1.75 {
		t.Errorf("Value = %g, want 1.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Total() != 106 {
		t.Errorf("Total = %g, want 106", h.Total())
	}
	snap := r.Snapshot()
	// Cumulative Prometheus semantics: le="1" holds 0.5 and the exact
	// boundary hit 1; le="2" adds 1.5; le="5" adds 3; +Inf adds 100.
	for key, want := range map[string]float64{
		`h_bucket{le="1"}`:    2,
		`h_bucket{le="2"}`:    3,
		`h_bucket{le="5"}`:    4,
		`h_bucket{le="+Inf"}`: 5,
		"h_count":             5,
		"h_sum":               106,
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	// Every registration on a nil registry returns nil, and every method
	// on the nil metrics is a no-op; none of this may panic.
	c := r.Counter("c_total")
	c.Inc()
	c.Add(3)
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	s := r.Sum("s_total")
	s.Add(1)
	h := r.Histogram("h", obs.LatencyBuckets)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || s.Value() != 0 || h.Count() != 0 || h.Total() != 0 {
		t.Error("nil metrics reported nonzero values")
	}
	r.StartSpan("span").End()
	if r.Snapshot() != nil || r.RecentSpans() != nil {
		t.Error("nil registry exported data")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("WritePrometheus on nil registry: %v", err)
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name under two kinds did not panic")
		}
	}()
	r := obs.NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	obs.NewRegistry().Histogram("h", []float64{1, 1})
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a").Set(1)
	r.Sum("c_total").Add(0.5)
	var first string
	for i := 0; i < 5; i++ {
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
			continue
		}
		if sb.String() != first {
			t.Fatalf("emission %d differs:\n%s\nvs\n%s", i, sb.String(), first)
		}
	}
	want := `{"a":1,"b_total":2,"c_total":0.5}` + "\n"
	if first != want {
		t.Errorf("WriteJSON = %q, want %q (key-sorted)", first, want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter(obs.MAlertsLost).Add(3)
	r.Counter(`http_requests_total{route="GET /solve"}`).Inc()
	r.Counter(`http_requests_total{route="GET /healthz"}`).Add(2)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP " + obs.MAlertsLost + " ",
		"# TYPE " + obs.MAlertsLost + " counter\n" + obs.MAlertsLost + " 3\n",
		// Labeled samples share one family header, sorted by name.
		"# TYPE http_requests_total counter\n" +
			`http_requests_total{route="GET /healthz"} 2` + "\n" +
			`http_requests_total{route="GET /solve"} 1` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="+Inf"} 1`,
		`lat_seconds_bucket{le="0.1"} 1`,
		"lat_seconds_count 1\n",
		"lat_seconds_sum 0.05\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSpans(t *testing.T) {
	r := obs.NewRegistry()
	sp := r.StartSpan("op_seconds")
	sp.End()
	recs := r.RecentSpans()
	if len(recs) != 1 || recs[0].Name != "op_seconds" || recs[0].Duration < 0 {
		t.Fatalf("RecentSpans = %+v", recs)
	}
	if got := r.Snapshot()["op_seconds_count"]; got != 1 {
		t.Errorf("span histogram count = %g, want 1", got)
	}
	// The ring must stay bounded.
	for i := 0; i < 600; i++ {
		r.StartSpan("op_seconds").End()
	}
	if n := len(r.RecentSpans()); n > 601 || n < 2 {
		t.Errorf("ring holds %d records", n)
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector: concurrent registration and updates of the same names.
func TestConcurrentUpdates(t *testing.T) {
	r := obs.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Set(int64(j))
				r.Sum("s_total").Add(0.001)
				r.Histogram("h", obs.LatencyBuckets).Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d after concurrent increments", got, 8*500)
	}
	if got := r.Histogram("h", obs.LatencyBuckets).Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
	sum := r.Sum("s_total").Value()
	if sum < 3.999 || sum > 4.001 {
		t.Errorf("sum = %g, want ≈4 (lost CAS increments?)", sum)
	}
}

func TestSpanDurationPlausible(t *testing.T) {
	r := obs.NewRegistry()
	sp := r.StartSpan("sleep_seconds")
	time.Sleep(time.Millisecond)
	sp.End()
	if total := r.Snapshot()["sleep_seconds_sum"]; total < 0.001 {
		t.Errorf("span recorded %gs, want ≥1ms", total)
	}
}
