// Package obs is the runtime observability layer: a zero-dependency
// (standard library only) metrics and tracing toolkit used to measure the
// live self-healing system against the paper's CTMC predictions (§V).
//
// The primitives are lock-free after registration — atomic counters, gauges,
// float accumulators (Sum) and fixed-boundary histograms — plus a
// lightweight span recorder for latency tracing. Every primitive is
// nil-safe: methods on a nil *Counter, *Gauge, *Sum, *Histogram or a zero
// Span are no-ops, and every registration method on a nil *Registry returns
// nil. Instrumented components (internal/wlog, internal/engine,
// internal/selfheal, internal/httpapi) therefore carry nil metric fields
// until an operator calls their Observe method, and the instrumentation
// costs a nil check when off — the property that keeps the PR-1 incremental
// analyze path within its performance budget.
//
// A Registry is exported three ways: Snapshot (a deterministic
// name → value map used by tests and the -metrics mode of cmd/selfheal-sim),
// WriteJSON (an expvar-style key-sorted JSON document served at /varz by
// cmd/selfheal-server), and WritePrometheus (hand-rolled Prometheus text
// exposition served at /metrics). The canonical list of metric names, their
// paper symbols (λ_a, μ_s, ξ_r, π_N/π_S/π_R, P_l) and sections lives in
// Catalog (catalog.go) and is documented in docs/OBSERVABILITY.md; a CI gate
// fails when a cataloged metric is missing from that document.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops).
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n < 0 is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down (queue depths, current
// state). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sum is a float64 accumulator (time-in-state totals, hook durations),
// updated with a compare-and-swap loop so concurrent Adds never lose
// increments. Nil-safe.
type Sum struct{ bits atomic.Uint64 }

// Add accumulates v.
func (s *Sum) Add(v float64) {
	if s == nil {
		return
	}
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total (0 on a nil receiver).
func (s *Sum) Value() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.bits.Load())
}

// Histogram counts observations into fixed bucket boundaries (upper bounds,
// ascending) plus a +Inf bucket, and tracks the observation count and sum.
// Exposition follows Prometheus semantics: bucket counts are cumulative.
// Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    Sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Total returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Total() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Default bucket boundaries.
var (
	// LatencyBuckets covers microseconds to tens of seconds, for
	// wall-clock phase latencies (analyze, undo, redo, HTTP requests).
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// TickBuckets covers dwell times measured in scheduler ticks.
	TickBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
)

// Span is one in-flight timed operation started by Registry.StartSpan. The
// zero Span is inert: End on it is a no-op.
type Span struct {
	r     *Registry
	h     *Histogram
	name  string
	start time.Time
}

// End stops the span, observing its duration into the span's histogram and
// appending it to the registry's recent-span ring.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	s.r.recordSpan(SpanRecord{Name: s.name, Start: s.start, Duration: d})
}

// SpanRecord is one completed span in the registry's ring buffer.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// spanRingCap bounds the recent-span ring buffer.
const spanRingCap = 256

// Registry holds named metrics. Registration takes a lock; the returned
// metric pointers are then updated lock-free. A nil *Registry is the "off"
// switch: every registration method returns nil, and the nil metrics
// swallow all updates.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	sums     map[string]*Sum
	hists    map[string]*Histogram
	spans    []SpanRecord
	spanPos  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		sums:     make(map[string]*Sum),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics when a name is already registered under a different
// metric kind — a programmer error that would otherwise corrupt exposition.
func (r *Registry) checkName(name, kind string) {
	conflict := ""
	switch {
	case kind != "counter" && r.counters[name] != nil:
		conflict = "counter"
	case kind != "gauge" && r.gauges[name] != nil:
		conflict = "gauge"
	case kind != "sum" && r.sums[name] != nil:
		conflict = "sum"
	case kind != "histogram" && r.hists[name] != nil:
		conflict = "histogram"
	}
	if conflict != "" {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, conflict, kind))
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Sum returns the float accumulator registered under name, creating it on
// first use.
func (r *Registry) Sum(name string) *Sum {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sums[name]; ok {
		return s
	}
	r.checkName(name, "sum")
	s := &Sum{}
	r.sums[name] = s
	return s
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket boundaries (ascending upper bounds) on first use. Later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkName(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// StartSpan begins a timed span recorded under name: its duration feeds the
// histogram of the same name (created with LatencyBuckets) and the
// recent-span ring. Returns an inert Span on a nil registry.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, h: r.Histogram(name, LatencyBuckets), name: name, start: time.Now()}
}

func (r *Registry) recordSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) < spanRingCap {
		r.spans = append(r.spans, rec)
		return
	}
	r.spans[r.spanPos%spanRingCap] = rec
	r.spanPos++
}

// RecentSpans returns a copy of the span ring buffer (most recent last for
// an unwrapped ring). Returns nil on a nil registry.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]SpanRecord(nil), r.spans...)
}
