package obs

// Canonical metric names. Instrumented packages register through these
// constants so names cannot drift from the Catalog below, and the CI
// doc-drift gate (scripts/ci.sh) greps docs/OBSERVABILITY.md for every
// cataloged name.
const (
	// internal/wlog — the system log (§II.A).
	MWlogAppends     = "wlog_appends_total"
	MWlogEntries     = "wlog_entries"
	MWlogHookSeconds = "wlog_hook_seconds_total"

	// internal/engine — normal processing (Fig 2).
	MEngineCommits     = "engine_commits_total"
	MEngineForged      = "engine_forged_total"
	MEngineStepSeconds = "engine_step_seconds"

	// internal/selfheal — the attack-recovery runtime (§IV).
	MAlertsReported        = "selfheal_alerts_reported_total"
	MAlertsLost            = "selfheal_alerts_lost_total"
	MAlertsAnalyzed        = "selfheal_alerts_analyzed_total"
	MUnitsExecuted         = "selfheal_units_executed_total"
	MNormalSteps           = "selfheal_normal_steps_total"
	MConcurrentNormalSteps = "selfheal_concurrent_normal_steps_total"
	MEagerUnits            = "selfheal_eager_units_total"
	MTicksNormal           = "selfheal_ticks_normal_total"
	MTicksScan             = "selfheal_ticks_scan_total"
	MTicksRecovery         = "selfheal_ticks_recovery_total"
	MAlertQueueDepth       = "selfheal_alert_queue_depth"
	MRecoveryQueueDepth    = "selfheal_recovery_queue_depth"
	MState                 = "selfheal_state"
	MStateTransitions      = "selfheal_state_transitions_total"
	MDwellNormalTicks      = "selfheal_dwell_normal_ticks"
	MDwellScanTicks        = "selfheal_dwell_scan_ticks"
	MDwellRecoveryTicks    = "selfheal_dwell_recovery_ticks"
	MAnalyzeSeconds        = "selfheal_analyze_seconds"
	MRepairSeconds         = "selfheal_repair_seconds"
	MRepairAnalyzeSeconds  = "selfheal_repair_analyze_seconds"
	MRepairUndoSeconds     = "selfheal_repair_undo_seconds"
	MRepairRedoSeconds     = "selfheal_repair_redo_seconds"
	MUndone                = "selfheal_undone_total"
	MRedone                = "selfheal_redone_total"
	MNewExecuted           = "selfheal_new_executed_total"
	MRepairComponents      = "selfheal_repair_components"
	MRepairWorkers         = "selfheal_repair_workers"

	// internal/triage — the streaming alert triage front-end (§V, SLEUTH).
	MTriageCoalesceRatio = "triage_coalesce_ratio"
	MTriageConeSize      = "triage_cone_size"
	MTriageCones         = "triage_cones_total"
	MTriagePrefilterHits = "triage_prefilter_hits_total"
	MTriageDeduped       = "triage_deduped_total"

	// internal/rtsim — virtual-time occupancy of the real runtime (§V).
	MTimeNormalSeconds   = "selfheal_time_normal_seconds_total"
	MTimeScanSeconds     = "selfheal_time_scan_seconds_total"
	MTimeRecoverySeconds = "selfheal_time_recovery_seconds_total"
	MTimeLossEdgeSeconds = "selfheal_time_loss_edge_seconds_total"

	// internal/shard — the concurrent sharded execution layer (§III.D/§IV).
	MShardSteps          = "shard_steps_total"
	MShardActiveRuns     = "shard_active_runs"
	MShardDeferredRuns   = "shard_deferred_runs"
	MShardCommitBatches  = "shard_commit_batches_total"
	MShardCommitEntries  = "shard_commit_entries_total"
	MShardRunsCompleted  = "shard_runs_completed_total"
	MShardRunsFailed     = "shard_runs_failed_total"
	MShardQuiesceSeconds = "shard_quiesce_seconds"
	MShardQuiescedShards = "shard_quiesced_shards"

	// internal/httpapi — the analysis service.
	MHTTPRequests       = "http_requests_total"
	MHTTPRequestSeconds = "http_request_seconds"

	// internal/cluster — the networked multi-node deployment (§VII).
	MClusterRecordsStamped    = "cluster_records_stamped_total"
	MClusterRecordsApplied    = "cluster_records_applied"
	MClusterReplicationErrors = "cluster_replication_errors_total"
	MClusterReplicationLag    = "cluster_replication_lag"
	MClusterProxied           = "cluster_proxied_requests_total"
	MClusterTokensSent        = "cluster_tokens_sent_total"
	MClusterTokensReceived    = "cluster_tokens_received_total"
	MClusterStaleSubmissions  = "cluster_stale_submissions_total"
	MClusterPausedKeys        = "cluster_paused_keys"
	MClusterIncidents         = "cluster_incidents_total"
	MClusterStampBatchSize    = "cluster_stamp_batch_size"
	MClusterReplicationBytes  = "cluster_replication_bytes_total"
	MClusterJournalErrors     = "cluster_journal_errors_total"

	// internal/durable — the segmented write-ahead log (Ancora/PAPERS.md).
	MWalFsyncSeconds    = "wal_fsync_seconds"
	MWalGroupEntries    = "wal_group_entries"
	MWalAppendedBytes   = "wal_appended_bytes_total"
	MWalSegments        = "wal_segments"
	MWalSnapshots       = "wal_snapshots_total"
	MWalReplaySeconds   = "wal_replay_seconds_total"
	MWalReplayedRecords = "wal_replayed_records_total"
)

// Def describes one cataloged metric: its exposition name (the base name
// for labeled families like http_requests_total{route="..."}), kind, the
// paper symbol it measures (or "—"), the paper section, and the help text
// used in the Prometheus exposition.
type Def struct {
	Name    string
	Kind    string // "counter", "gauge", "sum", "histogram"
	Symbol  string
	Section string
	Help    string
}

// Catalog returns every metric the system exports, in exposition order.
// docs/OBSERVABILITY.md documents each entry; TestCatalogDocumented and the
// scripts/ci.sh doc-drift gate keep the two in sync.
func Catalog() []Def {
	return []Def{
		{MWlogAppends, "counter", "—", "§II.A", "Task executions committed to the system log."},
		{MWlogEntries, "gauge", "—", "§II.A", "Current length of the system log."},
		{MWlogHookSeconds, "sum", "—", "§II.C", "Total time spent in commit hooks (incremental dependence maintenance)."},
		{MEngineCommits, "counter", "—", "Fig 2", "Normal workflow task commits executed by the engine."},
		{MEngineForged, "counter", "—", "§II.B", "Forged task instances injected outside any workflow specification."},
		{MEngineStepSeconds, "histogram", "—", "Fig 2", "Wall-clock latency of one engine task execution and commit."},
		{MAlertsReported, "counter", "λ_a", "§IV.C", "IDS alerts delivered to the runtime (arrival process)."},
		{MAlertsLost, "counter", "P_l", "Def. 3", "IDS alerts dropped because the alert buffer was full."},
		{MAlertsAnalyzed, "counter", "μ_s", "§IV.C", "Alerts the analyzer turned into units of recovery tasks."},
		{MUnitsExecuted, "counter", "ξ_r", "§IV.C", "Units of recovery tasks executed by the scheduler."},
		{MNormalSteps, "counter", "—", "§IV.C", "Normal workflow task executions scheduled in NORMAL state."},
		{MConcurrentNormalSteps, "counter", "—", "§III.D", "Normal tasks executed while recovery work was pending (Concurrent strategy)."},
		{MEagerUnits, "counter", "—", "§III.D", "Recovery units executed while alerts were still queued (EagerRecovery strategy)."},
		{MTicksNormal, "counter", "π_N", "§IV.C", "Scheduler ticks processed in the NORMAL state."},
		{MTicksScan, "counter", "π_S", "§IV.C", "Scheduler ticks processed in the SCAN state."},
		{MTicksRecovery, "counter", "π_R", "§IV.C", "Scheduler ticks processed in the RECOVERY state."},
		{MAlertQueueDepth, "gauge", "a", "§IV.E", "Current depth of the bounded IDS-alert queue (STG column index)."},
		{MRecoveryQueueDepth, "gauge", "r", "§IV.E", "Current depth of the bounded recovery-unit queue (STG row index)."},
		{MState, "gauge", "—", "§IV.C", "Current state class: 0 NORMAL, 1 SCAN, 2 RECOVERY."},
		{MStateTransitions, "counter", "—", "§IV.C", "NORMAL/SCAN/RECOVERY state changes."},
		{MDwellNormalTicks, "histogram", "π_N", "§IV.C", "Consecutive ticks spent in NORMAL before leaving it."},
		{MDwellScanTicks, "histogram", "π_S", "§IV.C", "Consecutive ticks spent in SCAN before leaving it."},
		{MDwellRecoveryTicks, "histogram", "π_R", "§IV.C", "Consecutive ticks spent in RECOVERY before leaving it."},
		{MAnalyzeSeconds, "histogram", "μ_s", "§IV.D", "Wall-clock latency of one alert analysis (damage assessment)."},
		{MRepairSeconds, "histogram", "ξ_r", "§IV.D", "Wall-clock latency of one recovery-unit execution, all phases."},
		{MRepairAnalyzeSeconds, "histogram", "ξ_r", "§III.B", "Repair latency: static damage analysis phase."},
		{MRepairUndoSeconds, "histogram", "ξ_r", "§III.B", "Repair latency: undo staging phase (summed over fixpoint iterations)."},
		{MRepairRedoSeconds, "histogram", "ξ_r", "§III.B", "Repair latency: corrected-history replay (redo) phase."},
		{MUndone, "counter", "B_a", "Thm. 1", "Task instances undone across all executed recovery units."},
		{MRedone, "counter", "B_r", "Thm. 2", "Task instances re-executed at their original positions."},
		{MNewExecuted, "counter", "—", "§III.B", "Task instances executed for the first time during recovery."},
		{MRepairComponents, "histogram", "—", "§IV", "Independent key-footprint components replayed by one repair."},
		{MRepairWorkers, "histogram", "—", "§IV", "Concurrent replay workers used by one repair."},
		{MTriageCoalesceRatio, "histogram", "λ_a/μ_s", "§V", "Alerts folded per damage-cone analysis in one drained batch (the coalescing fold)."},
		{MTriageConeSize, "histogram", "—", "§V", "Source alerts folded into one damage cone."},
		{MTriageCones, "counter", "μ_s", "§V", "Damage-cone analyses performed by the triage front-end."},
		{MTriagePrefilterHits, "counter", "—", "§V", "Alerts dropped because an in-flight recovery unit's damage closure already covered them."},
		{MTriageDeduped, "counter", "—", "§V", "Report-time alerts absorbed because an identical bad set was already queued."},
		{MTimeNormalSeconds, "sum", "π_N", "§V", "Virtual time the runtime spent in NORMAL (rtsim)."},
		{MTimeScanSeconds, "sum", "π_S", "§V", "Virtual time the runtime spent in SCAN (rtsim)."},
		{MTimeRecoverySeconds, "sum", "π_R", "§V", "Virtual time the runtime spent in RECOVERY (rtsim)."},
		{MTimeLossEdgeSeconds, "sum", "P_l", "Def. 3", "Virtual time the alert buffer was full (loss-edge occupancy, rtsim)."},
		{MShardSteps, "counter", "—", "§III.D", "Normal task commits executed, labeled by shard."},
		{MShardActiveRuns, "gauge", "—", "§III.D", "Runs currently assigned to the shard, labeled by shard."},
		{MShardDeferredRuns, "gauge", "—", "§III.D", "Runs waiting in the bounded deferred queue for a sound (key-disjoint) shard placement."},
		{MShardCommitBatches, "counter", "—", "§II.A", "Group commits executed by the commit pipeline."},
		{MShardCommitEntries, "counter", "—", "§II.A", "Log entries committed through the group-commit pipeline (entries/batches is the achieved fold)."},
		{MShardRunsCompleted, "counter", "—", "Fig 2", "Sharded runs that reached an end node."},
		{MShardRunsFailed, "counter", "—", "§VII", "Sharded runs aborted by a task failure."},
		{MShardQuiesceSeconds, "histogram", "ξ_r", "§IV.C", "Wall-clock time the shards were quiesced for one recovery-unit repair."},
		{MShardQuiescedShards, "histogram", "—", "§IV", "Shards paused for one recovery-unit repair (partial quiescence scope)."},
		{MHTTPRequests, "counter", "—", "—", "HTTP requests served, labeled by route."},
		{MHTTPRequestSeconds, "histogram", "—", "—", "HTTP request latency across all routes."},
		{MClusterRecordsStamped, "counter", "—", "§VII", "Records assigned a stream position by this node's sequencer, labeled by kind."},
		{MClusterRecordsApplied, "gauge", "—", "§VII", "Replication cursor: stream records applied to the local replica."},
		{MClusterReplicationErrors, "counter", "—", "§VII", "Failed record pushes to a peer, labeled by peer."},
		{MClusterReplicationLag, "gauge", "—", "§VII", "Records stamped locally but not yet acknowledged by a peer, labeled by peer."},
		{MClusterProxied, "counter", "—", "§VII", "Client API requests forwarded to the owning node, labeled by route."},
		{MClusterTokensSent, "counter", "—", "§VII", "Workflow control tokens handed to another node (run's next task owned elsewhere)."},
		{MClusterTokensReceived, "counter", "—", "§VII", "Workflow control tokens accepted from another node."},
		{MClusterStaleSubmissions, "counter", "—", "§VII", "Optimistic task submissions rejected by the sequencer (frontier or read set no longer current)."},
		{MClusterPausedKeys, "gauge", "—", "§IV", "Store keys currently quiesced by an incident's partial quiescence."},
		{MClusterIncidents, "counter", "—", "§IV", "Damage incidents this node led through assess, quiesce and repair."},
		{MClusterStampBatchSize, "histogram", "—", "§VII", "Entries stamped per group-commit batch (one journal fsync amortized across each batch)."},
		{MClusterReplicationBytes, "counter", "—", "§VII", "Binary replication body bytes, labeled by direction (dir=in received, dir=out sent)."},
		{MClusterJournalErrors, "counter", "—", "§VII", "Record-journal append failures (the replica stays ahead of its journal; -join catch-up heals the gap)."},
		{MWalFsyncSeconds, "histogram", "—", "§I", "Wall-clock latency of one group-commit fsync."},
		{MWalGroupEntries, "histogram", "—", "§II.A", "Records made durable by one fsync (the achieved group-commit fold)."},
		{MWalAppendedBytes, "counter", "—", "§II.A", "Bytes appended to WAL segments."},
		{MWalSegments, "gauge", "—", "§I", "Live WAL segment files (grows with appends, shrinks at snapshot retirement)."},
		{MWalSnapshots, "counter", "—", "§I", "Durable store snapshots written at compaction checkpoints."},
		{MWalReplaySeconds, "sum", "—", "§I", "Total wall-clock time spent replaying the WAL at boot."},
		{MWalReplayedRecords, "counter", "—", "§I", "WAL records decoded and replayed at boot (snapshot-covered records are skipped)."},
	}
}

// HelpFor returns the catalog help text for a metric-family base name, or
// "" when the name is not cataloged.
func HelpFor(base string) string {
	for _, d := range Catalog() {
		if d.Name == base {
			return d.Help
		}
	}
	return ""
}
