package obs_test

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/rtsim"
	"selfheal/internal/stg"
)

// TestCatalogWellFormed: names unique, kinds valid, every entry carries help
// text (it becomes the Prometheus # HELP line) and a paper section.
func TestCatalogWellFormed(t *testing.T) {
	kinds := map[string]bool{"counter": true, "gauge": true, "sum": true, "histogram": true}
	seen := make(map[string]bool)
	for _, d := range obs.Catalog() {
		if seen[d.Name] {
			t.Errorf("duplicate catalog entry %q", d.Name)
		}
		seen[d.Name] = true
		if !kinds[d.Kind] {
			t.Errorf("%s: unknown kind %q", d.Name, d.Kind)
		}
		if d.Help == "" || d.Symbol == "" || d.Section == "" {
			t.Errorf("%s: incomplete catalog entry %+v", d.Name, d)
		}
		if obs.HelpFor(d.Name) != d.Help {
			t.Errorf("HelpFor(%s) does not round-trip", d.Name)
		}
	}
	if obs.HelpFor("no_such_metric") != "" {
		t.Error("HelpFor invented help for an uncataloged name")
	}
}

// TestCatalogDocumented is the doc-drift gate's Go half (scripts/ci.sh greps
// the same pairing): every cataloged metric name must appear verbatim in
// docs/OBSERVABILITY.md.
func TestCatalogDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range obs.Catalog() {
		if !strings.Contains(string(doc), "`"+d.Name+"`") {
			t.Errorf("metric %s is not documented in docs/OBSERVABILITY.md", d.Name)
		}
	}
}

// TestRegisteredMetricsCataloged wires the full system — runtime, engine,
// log, virtual-time driver and HTTP service — and checks that every metric
// family it actually registers is in the catalog, so a new instrumentation
// site cannot ship undocumented.
func TestRegisteredMetricsCataloged(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := rtsim.RunObserved(stg.Square(1, 6, 8, 4), 50, 7, reg); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.ObservedHandler(reg))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/metrics", "/varz"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	cataloged := make(map[string]bool)
	for _, d := range obs.Catalog() {
		cataloged[d.Name] = true
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	families := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		families++
		base := strings.Fields(line)[2]
		if !cataloged[base] {
			t.Errorf("registered metric family %q is not in obs.Catalog()", base)
		}
	}
	// The wiring must have produced a substantial share of the catalog —
	// guards against the exposition silently going empty.
	if families < 25 {
		t.Errorf("only %d metric families registered; expected most of the %d cataloged", families, len(obs.Catalog()))
	}
}
