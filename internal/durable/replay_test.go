package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/wlog"
)

// snapshotOf captures a checkpoint of a restored state, mirroring what the
// shard layer's gatherSnapshot persists.
func snapshotOf(wal *WAL, st *State) *Snapshot {
	graph := deps.NewIncrementalFrom(st.Log, st.Graph)
	snap := &Snapshot{
		Seq:    wal.Seq(),
		Epoch:  st.Log.Len(),
		Chains: st.Store.ChainsCopy(),
		Graph:  graph.Frontier(),
		Specs:  make(map[string]SpecState, len(st.Specs)),
		Runs:   make(map[string]RunState, len(st.Runs)),
		Alerts: make(map[uint64][]wlog.InstanceID, len(st.Alerts)),
	}
	for run, ss := range st.Specs {
		snap.Specs[run] = ss
	}
	for run, rs := range st.Runs {
		snap.Runs[run] = RunState{Cur: rs.Cur, Visits: copyVisits(rs.Visits), Status: rs.Status, Err: rs.Err}
	}
	for _, pa := range st.Alerts {
		snap.Alerts[pa.ID] = pa.Bad
	}
	return snap
}

// checkpointDir builds a workload directory, checkpoints it (snapshot over
// the restored state), then appends a post-snapshot run. Returns the
// directory and the snapshot epoch.
func checkpointDir(t testing.TB, runs, steps int) (string, int) {
	t.Helper()
	dir := buildDir(t, Options{}, runs, steps)

	wal, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotOf(wal, st)
	if err := wal.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	// Post-snapshot activity: one more run, stepped to completion.
	wal.AttachLog(st.Log)
	run := "post"
	if err := wal.AppendSpec(run, specDoc(t, run, steps), map[data.Key]data.Value{runKey(run): 0}); err != nil {
		t.Fatal(err)
	}
	prev := wlog.ReadObs{Value: 0, Writer: "", WriterPos: data.InitPos}
	for i := 0; i < steps; i++ {
		prev = stepEntry(t, st.Log, run, i, prev)
	}
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, snap.Epoch
}

func TestSnapshotBoundsReplay(t *testing.T) {
	dir, epoch := checkpointDir(t, 3, 4)

	st := reopen(t, dir, Options{})
	if st.Epoch != epoch {
		t.Fatalf("restored epoch %d, want %d", st.Epoch, epoch)
	}
	// Only the post-snapshot records replay: 1 spec + 4 entries.
	if st.ReplayedRecords != 5 {
		t.Errorf("replayed %d records, want 5 (snapshot must bound the replay)", st.ReplayedRecords)
	}
	if st.Log.Base() != epoch {
		t.Errorf("restored log based at %d, want snapshot epoch %d", st.Log.Base(), epoch)
	}
	if got := st.Log.Len() - st.Log.Base(); got != 4 {
		t.Errorf("restored log tail has %d entries, want 4", got)
	}
	// Pre-snapshot runs carry truncated history and must be flagged; the
	// post-snapshot run must not be.
	for _, run := range []string{"r0", "r1", "r2"} {
		if !st.PreEpoch[run] {
			t.Errorf("run %s not marked pre-epoch", run)
		}
	}
	if st.PreEpoch["post"] {
		t.Error("post-snapshot run wrongly marked pre-epoch")
	}
	// The workload's un-acked alert survives the snapshot.
	if len(st.Alerts) != 1 {
		t.Errorf("restored %d pending alerts, want 1", len(st.Alerts))
	}
	// And the post-snapshot run's effects are present.
	if v := st.Store.Snapshot()[runKey("post")]; v != 4 {
		t.Errorf("post-snapshot run's key = %d, want 4", v)
	}
}

// TestSnapshotRestoreEqualsFullReplay: deleting the snapshot file from a
// directory copy forces a from-scratch replay of every record; both
// restores must agree on all state (modulo the compaction the snapshot
// legitimately applies).
func TestSnapshotRestoreEqualsFullReplay(t *testing.T) {
	dir, epoch := checkpointDir(t, 3, 4)
	bounded := reopen(t, copyDir(t, dir), Options{})

	full := copyDir(t, dir)
	nums, err := listNumbered(full, snapPrefix, snapSuffix)
	if err != nil || len(nums) != 1 {
		t.Fatalf("snapshot files: %v (%d)", err, len(nums))
	}
	if err := os.Remove(filepath.Join(full, snapName(nums[0]))); err != nil {
		t.Fatal(err)
	}
	st := reopen(t, full, Options{})

	// The bounded restore compacted at the epoch; apply the same horizon
	// to the full replay before comparing chains.
	st.Store.CompactBefore(float64(epoch))
	if !data.Equal(bounded.Store, st.Store) {
		t.Fatalf("stores differ:\n%s", data.Diff(bounded.Store, st.Store))
	}
	if !reflect.DeepEqual(bounded.Runs, st.Runs) {
		t.Fatalf("run frontiers differ:\n bounded %+v\n full    %+v", bounded.Runs, st.Runs)
	}
	if !reflect.DeepEqual(bounded.Alerts, st.Alerts) {
		t.Fatalf("alerts differ: %+v vs %+v", bounded.Alerts, st.Alerts)
	}
	if !reflect.DeepEqual(bounded.Specs, st.Specs) {
		t.Fatal("specs differ")
	}
	// Log tails beyond the epoch must match entry for entry.
	var boundedTail, fullTail [][]byte
	bounded.Log.Range(func(e *wlog.Entry) bool {
		boundedTail = append(boundedTail, EncodeEntry(nil, e))
		return true
	})
	st.Log.Range(func(e *wlog.Entry) bool {
		if e.LSN > epoch {
			fullTail = append(fullTail, EncodeEntry(nil, e))
		}
		return true
	})
	if !reflect.DeepEqual(boundedTail, fullTail) {
		t.Fatalf("log tails differ: %d vs %d entries", len(boundedTail), len(fullTail))
	}
}

func TestSnapshotRetiresSegments(t *testing.T) {
	dir := buildDir(t, Options{SegmentBytes: 300}, 3, 4)

	wal, st, err := Open(dir, Options{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	before := wal.Segments()
	if before < 2 {
		t.Fatalf("need a multi-segment layout, got %d", before)
	}
	snap := snapshotOf(wal, st)
	if err := wal.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if after := wal.Segments(); after >= before {
		t.Errorf("snapshot retired nothing: %d segments before, %d after", before, after)
	}
	if wal.SnapshotEpoch() != snap.Epoch {
		t.Errorf("SnapshotEpoch = %d, want %d", wal.SnapshotEpoch(), snap.Epoch)
	}
	if wal.EntriesSinceSnapshot() != 0 {
		t.Errorf("EntriesSinceSnapshot = %d immediately after checkpoint", wal.EntriesSinceSnapshot())
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// The retired layout still restores, to the same state.
	st2 := reopen(t, dir, Options{})
	if st2.Epoch != snap.Epoch {
		t.Errorf("restored epoch %d, want %d", st2.Epoch, snap.Epoch)
	}
	if !reflect.DeepEqual(st.Runs, st2.Runs) {
		t.Errorf("run frontiers changed across checkpoint:\n %+v\n %+v", st.Runs, st2.Runs)
	}

	// A second checkpoint supersedes the first: exactly one snapshot file
	// remains and the directory still restores.
	wal2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap2 := snapshotOf(wal2, st2)
	if err := wal2.WriteSnapshot(snap2); err != nil {
		t.Fatal(err)
	}
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := listNumbered(dir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != snap2.Seq {
		t.Errorf("snapshot files after second checkpoint: %v, want just %d", snaps, snap2.Seq)
	}
	reopen(t, dir, Options{})
}

// TestCrashDuringSnapshotWrite: a temp snapshot file left by a crash must
// not poison the restore — the previous snapshot governs.
func TestCrashDuringSnapshotWrite(t *testing.T) {
	dir, _ := checkpointDir(t, 2, 3)
	want := reopen(t, copyDir(t, dir), Options{})

	cp := copyDir(t, dir)
	if err := os.WriteFile(filepath.Join(cp, snapName(999)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, reopen(t, cp, Options{}), "stray tmp snapshot")
}
