package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/obs"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// --- workload helpers ---------------------------------------------------

// runKey is the single data key a workload run reads and writes.
func runKey(run string) data.Key { return data.Key("k-" + run) }

// specDoc builds a linear workflow document t0 → t1 → … → t{n-1}, every
// task reading and writing the run's own key.
func specDoc(t testing.TB, run string, tasks int) []byte {
	t.Helper()
	sj := wfjson.SpecJSON{Name: run, Start: "t0"}
	for i := 0; i < tasks; i++ {
		tj := wfjson.TaskJSON{
			ID:     fmt.Sprintf("t%d", i),
			Reads:  []string{string(runKey(run))},
			Writes: []string{string(runKey(run))},
			Bias:   1,
		}
		if i+1 < tasks {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	doc, err := json.Marshal(&sj)
	if err != nil {
		t.Fatalf("marshal spec %s: %v", run, err)
	}
	return doc
}

// stepEntry appends one committed step of run to the log (the attached WAL
// hook enqueues its record). prev is the previous write's observation.
func stepEntry(t testing.TB, log *wlog.Log, run string, step int, prev wlog.ReadObs) wlog.ReadObs {
	t.Helper()
	k := runKey(run)
	e := &wlog.Entry{
		Run:    run,
		Task:   wf.TaskID(fmt.Sprintf("t%d", step)),
		Visit:  1,
		Reads:  map[data.Key]wlog.ReadObs{k: prev},
		Writes: map[data.Key]data.Value{k: prev.Value + 1},
	}
	lsn, err := log.Append(e)
	if err != nil {
		t.Fatalf("append %s step %d: %v", run, step, err)
	}
	return wlog.ReadObs{Value: prev.Value + 1, Writer: string(e.ID()), WriterPos: float64(lsn)}
}

// workload drives a WAL through the full record vocabulary: R runs
// registered with spec records, steps of committed entries, two alerts
// (one acked), and one adopt record rewriting run r0's chain. It returns
// without closing wal so tests can keep appending.
func workload(t testing.TB, wal *WAL, st *State, runs, steps int) {
	t.Helper()
	log := st.Log
	wal.AttachLog(log)
	for r := 0; r < runs; r++ {
		run := fmt.Sprintf("r%d", r)
		if err := wal.AppendSpec(run, specDoc(t, run, steps), map[data.Key]data.Value{runKey(run): 0}); err != nil {
			t.Fatalf("AppendSpec %s: %v", run, err)
		}
		prev := wlog.ReadObs{Value: 0, Writer: "", WriterPos: data.InitPos}
		for i := 0; i < steps; i++ {
			prev = stepEntry(t, log, run, i, prev)
		}
		// Per-run durability point: forces a flush boundary so small
		// SegmentBytes options actually rotate between batches.
		if err := wal.Sync(); err != nil {
			t.Fatalf("Sync after %s: %v", run, err)
		}
	}
	id1, err := wal.AppendAlert([]wlog.InstanceID{wlog.FormatInstance("r0", "t0", 1)})
	if err != nil {
		t.Fatalf("AppendAlert: %v", err)
	}
	if _, err := wal.AppendAlert([]wlog.InstanceID{wlog.FormatInstance("r0", "t1", 1)}); err != nil {
		t.Fatalf("AppendAlert: %v", err)
	}
	if err := wal.AppendAck([]uint64{id1}); err != nil {
		t.Fatalf("AppendAck: %v", err)
	}
	// A repair-style adopt: rewrite r0's chain and complete the run.
	chain := []data.Version{
		{Pos: data.InitPos, Value: 0},
		{Pos: 1, Writer: "recovery", Value: 41, Recovery: true},
	}
	fronts := []RunFrontier{{Run: "r0", Cur: wf.TaskID(fmt.Sprintf("t%d", steps-1)), Done: true}}
	if err := wal.AppendAdopt(fronts, map[data.Key][]data.Version{runKey("r0"): chain}); err != nil {
		t.Fatalf("AppendAdopt: %v", err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// buildDir creates a WAL directory holding the standard workload.
func buildDir(t testing.TB, opts Options, runs, steps int) string {
	t.Helper()
	dir := t.TempDir()
	wal, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	workload(t, wal, st, runs, steps)
	if err := wal.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// reopen restores a WAL directory and immediately closes the WAL, handing
// back only the state.
func reopen(t testing.TB, dir string, opts Options) *State {
	t.Helper()
	wal, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("close %s: %v", dir, err)
	}
	if err := st.Store.CheckIndex(); err != nil {
		t.Fatalf("restored store index: %v", err)
	}
	return st
}

// logEntries returns the log's entries re-encoded, for order-sensitive
// byte comparison.
func logEntries(l *wlog.Log) [][]byte {
	var out [][]byte
	l.Range(func(e *wlog.Entry) bool {
		out = append(out, EncodeEntry(nil, e))
		return true
	})
	return out
}

// mustEqualStates fails unless two restored states are fully equivalent.
func mustEqualStates(t testing.TB, want, got *State, label string) {
	t.Helper()
	if want.Epoch != got.Epoch {
		t.Fatalf("%s: epoch %d != %d", label, got.Epoch, want.Epoch)
	}
	if !data.Equal(want.Store, got.Store) {
		t.Fatalf("%s: stores differ:\n%s", label, data.Diff(want.Store, got.Store))
	}
	if w, g := logEntries(want.Log), logEntries(got.Log); !reflect.DeepEqual(w, g) {
		t.Fatalf("%s: logs differ (%d vs %d entries)", label, len(w), len(g))
	}
	if !reflect.DeepEqual(want.Runs, got.Runs) {
		t.Fatalf("%s: run frontiers differ:\n want %+v\n got  %+v", label, want.Runs, got.Runs)
	}
	if !reflect.DeepEqual(want.Specs, got.Specs) {
		t.Fatalf("%s: specs differ", label)
	}
	if !reflect.DeepEqual(want.Alerts, got.Alerts) {
		t.Fatalf("%s: alerts differ:\n want %+v\n got  %+v", label, want.Alerts, got.Alerts)
	}
	if !reflect.DeepEqual(want.PreEpoch, got.PreEpoch) {
		t.Fatalf("%s: pre-epoch run sets differ: want %v, got %v", label, want.PreEpoch, got.PreEpoch)
	}
	if !reflect.DeepEqual(want.Graph, got.Graph) {
		t.Fatalf("%s: graph frontiers differ", label)
	}
}

// copyDir clones a WAL directory into a fresh temp dir.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// --- tests ---------------------------------------------------------------

func TestRestoreAfterCleanClose(t *testing.T) {
	dir := buildDir(t, Options{}, 3, 4)
	st := reopen(t, dir, Options{})

	if st.Log.Len() != 12 {
		t.Errorf("restored log has %d entries, want 12", st.Log.Len())
	}
	// Every run stepped to completion; r0's adopt record then rewrote its
	// chain to the recovery version.
	snap := st.Store.Snapshot()
	for _, run := range []string{"r1", "r2"} {
		if v := snap[runKey(run)]; v != 4 {
			t.Errorf("restored %s = %d, want 4", runKey(run), v)
		}
	}
	if v := snap[runKey("r0")]; v != 41 {
		t.Errorf("adopted chain value = %d, want 41", v)
	}
	for run, rs := range st.Runs {
		if rs.Status != RunDone {
			t.Errorf("run %s restored as %s, want done", run, rs.Status)
		}
	}
	// Alert 2 was never acked; alert 1 was.
	if len(st.Alerts) != 1 {
		t.Fatalf("restored %d pending alerts, want 1: %+v", len(st.Alerts), st.Alerts)
	}
	if got := st.Alerts[0].Bad[0]; got != wlog.FormatInstance("r0", "t1", 1) {
		t.Errorf("pending alert names %s", got)
	}
	if len(st.PreEpoch) != 0 {
		t.Errorf("no snapshot yet, but pre-epoch runs %v", st.PreEpoch)
	}
}

func TestRestoreIsDeterministic(t *testing.T) {
	dir := buildDir(t, Options{}, 3, 5)
	a := reopen(t, dir, Options{})
	b := reopen(t, dir, Options{})
	mustEqualStates(t, a, b, "repeated restore")
}

func TestSerialAndParallelReplayAgree(t *testing.T) {
	dir := buildDir(t, Options{}, 4, 6)
	serial := reopen(t, dir, Options{ReplayParallel: 1})
	parallel := reopen(t, dir, Options{ReplayParallel: 8})
	mustEqualStates(t, serial, parallel, "serial vs parallel replay")
}

func TestSegmentRotation(t *testing.T) {
	dir := buildDir(t, Options{SegmentBytes: 256}, 3, 6)
	segs, err := listNumbered(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("SegmentBytes=256 produced %d segments, want several", len(segs))
	}
	// Rotated layout restores identically to a single-segment layout of
	// the same records.
	mustEqualStates(t, reopen(t, buildDir(t, Options{}, 3, 6), Options{}),
		reopen(t, dir, Options{}), "rotated vs single segment")
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := wal.AppendAlert(nil); err != ErrClosed {
		t.Errorf("AppendAlert after close: %v, want ErrClosed", err)
	}
	if err := wal.AppendAck(nil); err != ErrClosed {
		t.Errorf("AppendAck after close: %v, want ErrClosed", err)
	}
	if err := wal.AppendSpec("r", nil, nil); err != ErrClosed {
		t.Errorf("AppendSpec after close: %v, want ErrClosed", err)
	}
	if err := wal.AppendAdopt(nil, nil); err != ErrClosed {
		t.Errorf("AppendAdopt after close: %v, want ErrClosed", err)
	}
	if err := wal.Sync(); err != ErrClosed {
		t.Errorf("Sync after close: %v, want ErrClosed", err)
	}
}

// TestGroupCommitAbsorption proves the fsync amortization: many concurrent
// committers, each demanding durability, complete with far fewer flushes
// than records.
func TestGroupCommitAbsorption(t *testing.T) {
	dir := t.TempDir()
	wal, st, err := Open(dir, Options{GroupWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wal.Observe(reg)
	wal.AttachLog(st.Log)

	const committers = 32
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(committers)
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			_, err := st.Log.Append(&wlog.Entry{
				Run: "", Task: wf.TaskID(fmt.Sprintf("bg%d", i)), Visit: 1, Forged: true,
				Reads:  map[data.Key]wlog.ReadObs{},
				Writes: map[data.Key]data.Value{data.Key(fmt.Sprintf("g%d", i)): 1},
			})
			if err == nil {
				err = wal.Sync()
			}
			errs[i] = err
		}(i)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	flushes := snap[obs.MWalGroupEntries+"_count"]
	records := snap[obs.MWalGroupEntries+"_sum"]
	if records < committers {
		t.Fatalf("flushed %v records, want at least %d", records, committers)
	}
	if flushes >= committers {
		t.Errorf("%v flushes for %d concurrent committers — no group-commit absorption", flushes, committers)
	}
	t.Logf("group commit: %v records in %v flushes (%.1f per fsync)", records, flushes, float64(records)/float64(flushes))
}

func TestObserveReportsReplayAndSegments(t *testing.T) {
	dir := buildDir(t, Options{SegmentBytes: 256}, 2, 5)
	wal, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	reg := obs.NewRegistry()
	wal.Observe(reg)
	snap := reg.Snapshot()
	if n := snap[obs.MWalReplayedRecords]; n == 0 {
		t.Error("wal_replayed_records_total is 0 after a non-trivial restore")
	}
	if s := snap[obs.MWalSegments]; s < 2 {
		t.Errorf("wal_segments = %v, want the rotated layout's count", s)
	}
	records, d := wal.Replayed()
	if records == 0 || d <= 0 {
		t.Errorf("Replayed() = (%d, %v), want nonzero", records, d)
	}
}
