// Boot-path restore: rebuild the complete system state from the latest
// snapshot plus the log records beyond it.
//
// The replay is snapshot-bounded and parallel:
//
//  1. Segments are scanned serially (framing + CRC only — no payload
//     decoding) and records already covered by the snapshot (sequence
//     number ≤ Snapshot.Seq) are skipped without ever being decoded.
//  2. The surviving payloads are decoded in parallel chunks.
//  3. One serial fold walks the decoded records in sequence order,
//     rebuilding the log tail, run frontiers, pending alerts and the
//     per-key operation streams. This pass is cheap: map bookkeeping
//     only, no chain manipulation.
//  4. The version chains are materialized in parallel, partitioned by
//     the same key-footprint components the repair scheduler uses
//     (recovery.KeyComponents) — each key's operation stream is
//     self-contained, so workers never contend — and bulk-installed via
//     data.NewStoreFromChains, skipping the store's per-write locking.
//
// The dependence graph is not replayed here: State.Graph carries the
// snapshot's frontier, and the shard layer seeds deps.NewIncrementalFrom
// with it, folding only the restored log tail.
package durable

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// PendingAlert is an admitted alert whose repair had not been acked at
// the capture point; the shard layer re-queues it at startup.
type PendingAlert struct {
	ID  uint64
	Bad []wlog.InstanceID
}

// State is the fully rebuilt system state Open returns.
type State struct {
	// Log holds the restored suffix, based at the snapshot epoch.
	Log *wlog.Log
	// Store is the restored version store (compacted at the epoch).
	Store *data.Store
	// Graph is the dependence frontier to seed deps.NewIncrementalFrom.
	Graph deps.Frontier
	// Epoch is the snapshot's entry-LSN horizon (0 without a snapshot).
	Epoch int
	// Specs are the registered runs (wfjson documents + applied inits);
	// Workflows are the same specs built.
	Specs     map[string]SpecState
	Workflows map[string]*wf.Spec
	// Runs are the resumable run frontiers.
	Runs map[string]RunState
	// Alerts are the un-acked alerts in admission order.
	Alerts []PendingAlert
	// PreEpoch marks runs that executed before the snapshot horizon:
	// their early entries are truncated, so repairs touching their
	// footprints must be refused (ErrHorizon at the shard layer).
	PreEpoch map[string]bool
	// ReplayedRecords and ReplayDuration describe the restore cost.
	ReplayedRecords int
	ReplayDuration  time.Duration
}

// key-op kinds of the fold phase.
const (
	opInit byte = iota + 1
	opWrite
	opAdopt
)

// keyOp is one store mutation affecting a single key, in record order.
type keyOp struct {
	kind  byte
	ver   data.Version   // opInit (Pos 0) and opWrite
	chain []data.Version // opAdopt; nil = delete the key
}

// restore rebuilds state from w.dir and positions the WAL's counters.
// Called once from Open, before the writer goroutine starts.
func (w *WAL) restore() (*State, error) {
	start := time.Now()
	snap, err := loadLatestSnapshot(w.dir)
	if err != nil {
		return nil, err
	}
	segs, err := scanSegments(w.dir)
	if err != nil {
		return nil, err
	}

	st := &State{
		Specs:     make(map[string]SpecState),
		Workflows: make(map[string]*wf.Spec),
		Runs:      make(map[string]RunState),
		PreEpoch:  make(map[string]bool),
	}
	chains := make(map[data.Key][]data.Version)
	liveAlerts := make(map[uint64][]wlog.InstanceID)
	var snapSeq uint64
	if snap != nil {
		st.Epoch = snap.Epoch
		st.Graph = snap.Graph
		snapSeq = snap.Seq
		chains = snap.Chains
		for run, sp := range snap.Specs {
			spec, _, err := buildSpec(sp.JSON)
			if err != nil {
				return nil, fmt.Errorf("durable: snapshot spec %s: %w", run, err)
			}
			st.Specs[run] = sp
			st.Workflows[run] = spec
		}
		for run, rs := range snap.Runs {
			st.Runs[run] = RunState{
				Cur:    rs.Cur,
				Visits: copyVisits(rs.Visits),
				Status: rs.Status,
				Err:    rs.Err,
			}
			if len(rs.Visits) > 0 {
				st.PreEpoch[run] = true
			}
		}
		for id, bad := range snap.Alerts {
			liveAlerts[id] = bad
		}
	}

	// Flatten the scanned payloads and skip everything the snapshot
	// already covers — without decoding it.
	var baseSeq uint64 = 1
	if len(segs) > 0 {
		baseSeq = segs[0].firstSeq
	}
	if snap == nil && len(segs) > 0 && baseSeq != 1 {
		return nil, fmt.Errorf("durable: no snapshot but segments start at seq %d", baseSeq)
	}
	if snap != nil && len(segs) > 0 && baseSeq > snap.Seq+1 {
		return nil, fmt.Errorf("durable: snapshot covers seq %d but segments start at %d (gap)", snap.Seq, baseSeq)
	}
	var payloads [][]byte
	seq := snapSeq
	if len(segs) > 0 {
		total := 0
		for _, s := range segs {
			total += len(s.payloads)
		}
		lastSeq := baseSeq + uint64(total) - 1
		if lastSeq > seq {
			seq = lastSeq
		}
		skip := 0
		if snapSeq+1 > baseSeq {
			skip = int(snapSeq + 1 - baseSeq)
		}
		payloads = make([][]byte, 0, total-skip)
		idx := 0
		for _, s := range segs {
			for _, p := range s.payloads {
				if idx >= skip {
					payloads = append(payloads, p)
				}
				idx++
			}
		}
	}

	records, err := decodePayloads(payloads, w.opts.ReplayParallel)
	if err != nil {
		return nil, err
	}

	// Serial fold in sequence order.
	ops := make(map[data.Key][]keyOp)
	var tail []*wlog.Entry
	nextLSN := st.Epoch + 1
	for i, rec := range records {
		switch rec.kind {
		case recEntry:
			e := rec.entry
			if e.LSN != nextLSN {
				return nil, fmt.Errorf("durable: record %d has entry LSN %d, want %d", i, e.LSN, nextLSN)
			}
			nextLSN++
			tail = append(tail, e)
			inst := string(e.ID())
			for k, v := range e.Writes {
				ops[k] = append(ops[k], keyOp{kind: opWrite, ver: data.Version{
					Pos: float64(e.LSN), Writer: inst, Value: v,
				}})
			}
			if err := foldEntry(st, e); err != nil {
				return nil, err
			}
		case recSpec:
			if _, dup := st.Specs[rec.run]; dup {
				return nil, fmt.Errorf("durable: duplicate spec record for run %s", rec.run)
			}
			spec, _, err := buildSpec(rec.spec)
			if err != nil {
				return nil, fmt.Errorf("durable: spec record %s: %w", rec.run, err)
			}
			st.Specs[rec.run] = SpecState{JSON: rec.spec, Init: rec.init}
			st.Workflows[rec.run] = spec
			st.Runs[rec.run] = RunState{Cur: spec.Start, Visits: make(map[wf.TaskID]int), Status: RunActive}
			for k, v := range rec.init {
				ops[k] = append(ops[k], keyOp{kind: opInit, ver: data.Version{Pos: data.InitPos, Value: v}})
			}
		case recAlert:
			liveAlerts[rec.alertID] = rec.bad
		case recAck:
			for _, id := range rec.ackIDs {
				delete(liveAlerts, id)
			}
		case recAdopt:
			for k, chain := range rec.chains {
				ops[k] = append(ops[k], keyOp{kind: opAdopt, chain: chain})
			}
			for _, f := range rec.fronts {
				rs, ok := st.Runs[f.Run]
				if !ok {
					return nil, fmt.Errorf("durable: adopt record resyncs unknown run %s", f.Run)
				}
				rs.Cur = f.Cur
				if f.Done {
					rs.Status = RunDone
				} else {
					rs.Status = RunActive
				}
				st.Runs[f.Run] = rs
			}
		default:
			return nil, fmt.Errorf("durable: record %d has unexpected kind %d", i, rec.kind)
		}
	}

	// Rebuild the log from the snapshot epoch.
	log := wlog.NewAt(st.Epoch)
	if len(tail) > 0 {
		if _, err := log.AppendBatch(tail); err != nil {
			return nil, fmt.Errorf("durable: rebuilding log: %w", err)
		}
	}
	st.Log = log

	store, err := buildStore(log, st.Workflows, chains, ops, w.opts.ReplayParallel)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		store.CompactBefore(float64(st.Epoch))
	}
	st.Store = store

	st.Alerts = make([]PendingAlert, 0, len(liveAlerts))
	for id, bad := range liveAlerts {
		st.Alerts = append(st.Alerts, PendingAlert{ID: id, Bad: bad})
	}
	sort.Slice(st.Alerts, func(i, j int) bool { return st.Alerts[i].ID < st.Alerts[j].ID })

	// Position the WAL after the last restored record.
	w.seq = seq
	w.durableSeq = seq
	w.snapSeq = snapSeq
	w.snapEpoch = st.Epoch
	w.restoredLSN = log.Len()
	w.lastLSN = log.Len()
	for _, s := range segs {
		w.segs = append(w.segs, s.firstSeq)
	}

	st.ReplayedRecords = len(records)
	st.ReplayDuration = time.Since(start)
	w.replayed = len(records)
	w.replayDur = st.ReplayDuration
	return st, nil
}

// foldEntry advances a run's frontier for one committed entry, mirroring
// the engine's post-commit state transition. Forged entries only bump
// visit counters (a forged instance occupies its ID).
func foldEntry(st *State, e *wlog.Entry) error {
	if e.Run == "" {
		return nil
	}
	rs, ok := st.Runs[e.Run]
	if !ok {
		if e.Forged {
			return nil
		}
		return fmt.Errorf("durable: entry %s belongs to unregistered run %s", e.ID(), e.Run)
	}
	if e.Visit > rs.Visits[e.Task] {
		rs.Visits[e.Task] = e.Visit
	}
	if !e.Forged {
		spec := st.Workflows[e.Run]
		task, ok := spec.Tasks[e.Task]
		if !ok {
			return fmt.Errorf("durable: entry %s names task outside its spec", e.ID())
		}
		switch {
		case len(task.Next) == 0:
			rs.Status = RunDone
		case len(task.Next) == 1:
			rs.Cur = task.Next[0]
		default:
			if e.Chosen == "" {
				return fmt.Errorf("durable: entry %s at choice node has no recorded choice", e.ID())
			}
			rs.Cur = e.Chosen
		}
	}
	st.Runs[e.Run] = rs
	return nil
}

// decodePayloads decodes framed payloads into records, in parallel chunks
// when workers > 1, preserving order.
func decodePayloads(payloads [][]byte, workers int) ([]*record, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	records := make([]*record, len(payloads))
	if workers == 1 || len(payloads) < 64 {
		for i, p := range payloads {
			rec, err := decodeRecord(p)
			if err != nil {
				return nil, fmt.Errorf("durable: record %d: %w", i, err)
			}
			records[i] = rec
		}
		return records, nil
	}
	chunk := (len(payloads) + workers - 1) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(payloads) {
			break
		}
		hi := lo + chunk
		if hi > len(payloads) {
			hi = len(payloads)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rec, err := decodeRecord(payloads[i])
				if err != nil {
					errs[wi] = fmt.Errorf("durable: record %d: %w", i, err)
					return
				}
				records[i] = rec
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return records, nil
}

// buildStore materializes every key's version chain (snapshot base plus
// the key's operation stream) and bulk-installs the result. Keys are
// partitioned across workers by repair component so independent
// footprints replay concurrently.
func buildStore(log *wlog.Log, specs map[string]*wf.Spec, base map[data.Key][]data.Version, ops map[data.Key][]keyOp, workers int) (*data.Store, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	keySet := make(map[data.Key]bool, len(base)+len(ops))
	for k := range base {
		keySet[k] = true
	}
	for k := range ops {
		keySet[k] = true
	}
	keys := make([]data.Key, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := make(map[data.Key][]data.Version, len(keys))
	if workers == 1 || len(keys) < 2 {
		for _, k := range keys {
			chain, err := materialize(base[k], ops[k])
			if err != nil {
				return nil, fmt.Errorf("durable: key %q: %w", k, err)
			}
			if len(chain) > 0 {
				out[k] = chain
			}
		}
		return data.NewStoreFromChains(out)
	}

	// Group keys by repair component (keys outside every footprint are
	// singletons) and deal the groups round-robin across workers.
	keyComp, nComp := recovery.KeyComponents(log, specs)
	groups := make([][]data.Key, nComp)
	for _, k := range keys {
		if ci, ok := keyComp[k]; ok {
			groups[ci] = append(groups[ci], k)
		} else {
			groups = append(groups, []data.Key{k})
		}
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}
	type frag struct {
		chains map[data.Key][]data.Version
		err    error
	}
	frags := make([]frag, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			f := frag{chains: make(map[data.Key][]data.Version)}
			for gi := wi; gi < len(groups); gi += workers {
				for _, k := range groups[gi] {
					chain, err := materialize(base[k], ops[k])
					if err != nil {
						f.err = fmt.Errorf("durable: key %q: %w", k, err)
						frags[wi] = f
						return
					}
					if len(chain) > 0 {
						f.chains[k] = chain
					}
				}
			}
			frags[wi] = f
		}(wi)
	}
	wg.Wait()
	for _, f := range frags {
		if f.err != nil {
			return nil, f.err
		}
		for k, chain := range f.chains {
			out[k] = chain
		}
	}
	return data.NewStoreFromChains(out)
}

// materialize applies one key's operation stream over its snapshot base
// chain.
func materialize(base []data.Version, ops []keyOp) ([]data.Version, error) {
	chain := append([]data.Version(nil), base...)
	for _, op := range ops {
		switch op.kind {
		case opInit:
			// The init was applied live because the chain was empty at
			// submission; a commit racing the submission may have been
			// enqueued first, so prepend rather than fail when the
			// chain has gained later versions in the meantime.
			switch {
			case len(chain) == 0:
				chain = append(chain, op.ver)
			case chain[0].Pos > data.InitPos:
				chain = append([]data.Version{op.ver}, chain...)
			}
		case opWrite:
			n := len(chain)
			if n == 0 || chain[n-1].Pos < op.ver.Pos {
				chain = append(chain, op.ver)
				break
			}
			i := sort.Search(n, func(i int) bool { return chain[i].Pos >= op.ver.Pos })
			if i < n && chain[i].Pos == op.ver.Pos {
				return nil, fmt.Errorf("duplicate version position %g (writers %q, %q)",
					op.ver.Pos, chain[i].Writer, op.ver.Writer)
			}
			chain = append(chain, data.Version{})
			copy(chain[i+1:], chain[i:])
			chain[i] = op.ver
		case opAdopt:
			chain = append(chain[:0:0], op.chain...)
		}
	}
	return chain, nil
}

func copyVisits(m map[wf.TaskID]int) map[wf.TaskID]int {
	out := make(map[wf.TaskID]int, len(m))
	for t, n := range m {
		out[t] = n
	}
	return out
}

// buildSpec parses and builds a wfjson spec document.
func buildSpec(doc []byte) (*wf.Spec, map[data.Key]data.Value, error) {
	return wfjson.Decode(bytes.NewReader(doc))
}
