// The durable write-ahead log: a group-commit writer goroutine over the
// segment files of segment.go.
//
// Committers never touch the disk. They encode records, enqueue the framed
// bytes under the WAL lock (assigning a dense sequence number), and — when
// they need durability — block in Sync until the writer reports their
// sequence number flushed. A single writer goroutine drains the whole
// pending buffer in one write syscall and issues ONE fsync for it, so the
// fsync cost is amortized across every committer whose records landed in
// the batch (classic WAL group commit). Two mechanisms grow batches:
//
//   - absorption: every enqueue during an in-flight fsync lands in the
//     next batch — concurrent committers never fsync twice for one window;
//   - bounded wait: with Options.GroupWait > 0 the writer delays up to
//     that long (skipped once Options.GroupMax records are pending) to let
//     more committers join the batch before paying the fsync.
//
// The entry pipeline rides wlog.Log.OnAppend (AttachLog): entries are
// encoded and enqueued synchronously inside the log's commit hook, so the
// WAL sequence order embeds the LSN order, and control records (spec,
// alert, ack, adopt) are stamped with the highest entry LSN enqueued
// before them.

package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/obs"
	"selfheal/internal/wlog"
)

// Options configures a WAL.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 64 MiB.
	SegmentBytes int64
	// GroupWait bounds how long the writer waits for more committers to
	// join a batch before flushing. 0 (the default) flushes immediately:
	// absorption alone provides grouping.
	GroupWait time.Duration
	// GroupMax flushes without waiting once this many records are
	// pending. Default 256.
	GroupMax int
	// NoSync skips every fsync (directory syncs included). Benchmarks
	// and bulk test setup only: a crash may lose or tear acknowledged
	// records.
	NoSync bool
	// ReplayParallel is the worker count of the parallel restore phase.
	// Default GOMAXPROCS; 1 forces the serial reference path.
	ReplayParallel int
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.GroupMax <= 0 {
		o.GroupMax = 256
	}
}

// walObs is the WAL's instrumentation (Observe).
type walObs struct {
	fsyncSeconds  *obs.Histogram
	groupEntries  *obs.Histogram
	appendedBytes *obs.Counter
	segments      *obs.Gauge
	snapshots     *obs.Counter
}

// groupBuckets are the group-size histogram bounds (records per fsync).
var groupBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// WAL is a durable segmented write-ahead log. Safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu   sync.Mutex
	work *sync.Cond // wakes the writer: pending records or close
	done *sync.Cond // broadcast when durableSeq/err advance

	pending  []byte // framed records awaiting write
	nPending int
	seq      uint64 // last assigned sequence number
	lastLSN  int    // highest entry LSN enqueued
	// restoredLSN guards the OnAppend catch-up replay: entries at or
	// below it were already on disk when the WAL opened and must not be
	// re-enqueued.
	restoredLSN int

	durableSeq uint64
	err        error // first write/fsync failure; sticky
	closed     bool

	f        *os.File
	fileSize int64
	segs     []uint64 // first seq of each live segment, ascending

	snapSeq   uint64 // seq covered by the latest snapshot
	snapEpoch int    // entry LSN horizon of the latest snapshot

	replayed  int
	replayDur time.Duration

	writerDone chan struct{}
	o          walObs
}

// ErrClosed is returned by appends and syncs on a closed WAL.
var ErrClosed = errors.New("durable: WAL closed")

// Open opens (creating if needed) the WAL directory, restores the latest
// complete snapshot plus the log suffix (see restore.go), positions the
// writer after the last complete record, and starts the group-commit
// goroutine. The returned State is the fully rebuilt system state.
func Open(dir string, opts Options) (*WAL, *State, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, opts: opts, writerDone: make(chan struct{})}
	w.work = sync.NewCond(&w.mu)
	w.done = sync.NewCond(&w.mu)

	st, err := w.restore()
	if err != nil {
		return nil, nil, err
	}

	// Position the writer: append to the last segment, or start segment
	// one on a fresh directory.
	if len(w.segs) == 0 {
		w.segs = []uint64{w.seq + 1}
	}
	active := filepath.Join(dir, segName(w.segs[len(w.segs)-1]))
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(info.Size(), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.f = f
	w.fileSize = info.Size()

	go w.writer()
	return w, st, nil
}

// Observe wires the WAL's instrumentation into reg (catalog in
// docs/OBSERVABILITY.md); replay cost of the just-finished Open is
// recorded immediately.
func (w *WAL) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.o = walObs{
		fsyncSeconds:  reg.Histogram(obs.MWalFsyncSeconds, obs.LatencyBuckets),
		groupEntries:  reg.Histogram(obs.MWalGroupEntries, groupBuckets),
		appendedBytes: reg.Counter(obs.MWalAppendedBytes),
		segments:      reg.Gauge(obs.MWalSegments),
		snapshots:     reg.Counter(obs.MWalSnapshots),
	}
	w.o.segments.Set(int64(len(w.segs)))
	reg.Sum(obs.MWalReplaySeconds).Add(w.replayDur.Seconds())
	reg.Counter(obs.MWalReplayedRecords).Add(int64(w.replayed))
}

// AttachLog subscribes the WAL to the log's commit hook: every committed
// entry is encoded and enqueued synchronously at commit time, in LSN
// order. Entries already durable at Open time (the hook's catch-up replay
// of the restored log) are skipped.
func (w *WAL) AttachLog(l *wlog.Log) {
	l.OnAppend(func(e *wlog.Entry) {
		w.mu.Lock()
		if e.LSN <= w.restoredLSN {
			w.mu.Unlock()
			return
		}
		w.enqueueLocked(EncodeEntry(nil, e), e.LSN)
		w.mu.Unlock()
	})
}

// enqueueLocked frames payload, assigns the next sequence number and
// queues it for the writer. Callers hold w.mu.
func (w *WAL) enqueueLocked(payload []byte, lsn int) uint64 {
	if w.closed || w.err != nil {
		return w.seq
	}
	w.seq++
	w.pending = appendFrame(w.pending, payload)
	w.nPending++
	if lsn > w.lastLSN {
		w.lastLSN = lsn
	}
	w.work.Signal()
	return w.seq
}

// AppendSpec logs a run registration: the wfjson spec document plus the
// initial store values actually seeded for it. Not synced; callers that
// must not lose the registration call Sync afterwards.
func (w *WAL) AppendSpec(run string, specJSON []byte, init map[data.Key]data.Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.enqueueLocked(encodeSpec(nil, w.lastLSN, run, specJSON, init), 0)
	return nil
}

// AppendAlert logs an admitted alert and returns its durable ID (the
// record's own sequence number — unique across restarts). Not synced.
func (w *WAL) AppendAlert(bad []wlog.InstanceID) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	// The alert's ID is the sequence number the record is about to get.
	id := w.seq + 1
	w.enqueueLocked(encodeAlert(nil, w.lastLSN, id, bad), 0)
	return id, nil
}

// AppendAck logs that the repairs for the given alert IDs completed; a
// restart will no longer re-queue them. Not synced — an un-acked alert
// merely re-runs an idempotent repair.
func (w *WAL) AppendAck(ids []uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.enqueueLocked(encodeAck(nil, w.lastLSN, ids), 0)
	return nil
}

// AppendAdopt logs a repair installation: the replacement chains of the
// damaged keys (nil chain = key deleted) and the resynced run frontiers.
// Not synced; the commit pipeline syncs after the installation completes.
func (w *WAL) AppendAdopt(fronts []RunFrontier, chains map[data.Key][]data.Version) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.enqueueLocked(encodeAdopt(nil, w.lastLSN, fronts, chains), 0)
	return nil
}

// Sync blocks until every record enqueued before the call is on disk
// (write + fsync complete). With NoSync it still waits for the write
// syscall, so file contents match the in-memory state for tests.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	target := w.seq
	w.work.Signal()
	for w.durableSeq < target && w.err == nil && !w.closed {
		w.done.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.durableSeq < target {
		return ErrClosed
	}
	return nil
}

// Seq returns the sequence number of the last enqueued record.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// LastLSN returns the highest entry LSN enqueued so far.
func (w *WAL) LastLSN() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// EntriesSinceSnapshot returns how many entry LSNs have been enqueued
// beyond the latest snapshot's epoch — the checkpoint trigger input.
func (w *WAL) EntriesSinceSnapshot() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN - w.snapEpoch
}

// SnapshotEpoch returns the entry-LSN horizon of the latest snapshot
// (0 when none exists).
func (w *WAL) SnapshotEpoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.snapEpoch
}

// Replayed reports the boot-time restore cost: how many records were
// replayed past the snapshot and how long the restore took.
func (w *WAL) Replayed() (records int, d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.replayed, w.replayDur
}

// Segments returns the live segment count.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Close flushes and syncs all pending records, stops the writer and
// closes the active segment. Further appends and syncs fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.work.Signal()
	w.mu.Unlock()
	<-w.writerDone

	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.f != nil {
		err = w.f.Close()
		w.f = nil
	}
	if w.err != nil {
		return w.err
	}
	return err
}

// writer is the group-commit goroutine: it drains the pending buffer,
// writes it in one syscall (rotating segments between batches), fsyncs
// once, and broadcasts the new durable sequence number.
func (w *WAL) writer() {
	defer close(w.writerDone)
	for {
		w.mu.Lock()
		for w.nPending == 0 && !w.closed {
			w.work.Wait()
		}
		if w.nPending == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		// Bounded group wait: give concurrent committers a window to
		// join the batch, unless it is already full.
		if w.opts.GroupWait > 0 && w.nPending < w.opts.GroupMax && !w.closed {
			w.mu.Unlock()
			time.Sleep(w.opts.GroupWait)
			w.mu.Lock()
		}
		batch := w.pending
		n := w.nPending
		hi := w.seq
		w.pending = nil
		w.nPending = 0
		rotate := w.fileSize >= w.opts.SegmentBytes
		w.mu.Unlock()

		err := w.flush(batch, n, hi, rotate)

		w.mu.Lock()
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else {
			w.durableSeq = hi
		}
		w.done.Broadcast()
		w.mu.Unlock()
		if err != nil {
			// Sticky failure: drain forever so Close still works, but
			// never ack another record.
			w.drainAfterError()
			return
		}
	}
}

// drainAfterError keeps consuming wakeups after a write failure so
// blocked Sync callers and Close return promptly.
func (w *WAL) drainAfterError() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.closed {
		w.pending = nil
		w.nPending = 0
		w.done.Broadcast()
		w.work.Wait()
	}
	w.done.Broadcast()
}

// flush writes one batch to the active segment and makes it durable.
// Rotation happens between batches: the previous segment is already
// synced (every batch ends with fsync), so a crash can only tear the
// final segment.
func (w *WAL) flush(batch []byte, n int, hi uint64, rotate bool) error {
	if rotate {
		if err := w.rotate(hi - uint64(n) + 1); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(batch); err != nil {
		return fmt.Errorf("durable: segment write: %w", err)
	}
	w.mu.Lock()
	w.fileSize += int64(len(batch))
	w.mu.Unlock()
	if !w.opts.NoSync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: fsync: %w", err)
		}
		w.o.fsyncSeconds.Observe(time.Since(start).Seconds())
	}
	w.o.groupEntries.Observe(float64(n))
	w.o.appendedBytes.Add(int64(len(batch)))
	return nil
}

// rotate closes the active segment and opens a fresh one whose name
// carries the sequence number of the batch about to be written.
func (w *WAL) rotate(firstSeq uint64) error {
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	path := filepath.Join(w.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if !w.opts.NoSync {
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.mu.Lock()
	w.f = f
	w.fileSize = 0
	w.segs = append(w.segs, firstSeq)
	w.mu.Unlock()
	w.o.segments.Set(int64(len(w.segs)))
	return nil
}
