package durable

import (
	"fmt"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/wlog"
)

// benchEntry builds a small, realistic entry: one read, one write, keys
// spread over 100 chains. Run-less (forged-style) entries keep the replay
// path exercised without spec bookkeeping.
func benchEntry(i int) *wlog.Entry {
	k := data.Key(fmt.Sprintf("key-%02d", i%100))
	return &wlog.Entry{
		Run:    "",
		Task:   "t",
		Visit:  i + 1,
		Forged: true,
		Reads:  map[data.Key]wlog.ReadObs{k: {Value: data.Value(i), Writer: "w", WriterPos: float64(i)}},
		Writes: map[data.Key]data.Value{k: data.Value(i + 1)},
	}
}

// BenchmarkAppend measures the per-entry commit cost. "mem" is the
// in-memory system log alone (the no-durability baseline). The durable
// rows append through the WAL and demand durability every `batch` entries:
// batch=1 is the naive fsync-per-entry design the group-commit writer
// exists to avoid; larger batches amortize one fsync across the group,
// exactly as the committer's per-batch sync hook does under load.
func BenchmarkAppend(b *testing.B) {
	b.Run("mem", func(b *testing.B) {
		log := wlog.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := log.Append(benchEntry(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, batch := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("durable/batch=%d", batch), func(b *testing.B) {
			dir := b.TempDir()
			wal, st, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer wal.Close()
			wal.AttachLog(st.Log)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Log.Append(benchEntry(i)); err != nil {
					b.Fatal(err)
				}
				if (i+1)%batch == 0 {
					if err := wal.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := wal.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// buildReplayDir writes total entries (NoSync bulk load); if snapAt > 0, a
// snapshot is taken once snapAt entries are in, so a restore replays only
// the remaining total-snapAt records.
func buildReplayDir(b *testing.B, total, snapAt int) string {
	b.Helper()
	dir := b.TempDir()
	opts := Options{NoSync: true}
	wal, st, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	wal.AttachLog(st.Log)
	appendN := func(log *wlog.Log, from, n int) {
		const chunk = 512
		for off := 0; off < n; off += chunk {
			m := chunk
			if n-off < m {
				m = n - off
			}
			batch := make([]*wlog.Entry, m)
			for j := 0; j < m; j++ {
				batch[j] = benchEntry(from + off + j)
			}
			if _, err := log.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	if snapAt > 0 {
		appendN(st.Log, 0, snapAt)
		if err := wal.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := wal.Close(); err != nil {
			b.Fatal(err)
		}
		wal2, st2, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := wal2.WriteSnapshot(snapshotOf(wal2, st2)); err != nil {
			b.Fatal(err)
		}
		wal2.AttachLog(st2.Log)
		appendN(st2.Log, snapAt, total-snapAt)
		if err := wal2.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := wal2.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	appendN(st.Log, 0, total)
	if err := wal.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkReplay measures boot-time restore of a 100k-entry history.
// serial-full decodes and folds every record on one goroutine;
// parallel-full uses the chunked decode + component-parallel chain build;
// snapshot-bounded restores from a snapshot covering 90% of the history
// and replays only the 10k-record tail — the production configuration
// (automatic checkpoints keep the tail short).
func BenchmarkReplay(b *testing.B) {
	const total = 100_000
	fullDir := buildReplayDir(b, total, 0)
	snapDir := buildReplayDir(b, total, total-total/10)

	open := func(b *testing.B, dir string, opts Options, wantReplayed int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			wal, st, err := Open(dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			if st.ReplayedRecords != wantReplayed {
				b.Fatalf("replayed %d records, want %d", st.ReplayedRecords, wantReplayed)
			}
			if err := wal.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(wantReplayed), "records/op")
	}
	b.Run("serial-full", func(b *testing.B) {
		open(b, fullDir, Options{NoSync: true, ReplayParallel: 1}, total)
	})
	b.Run("parallel-full", func(b *testing.B) {
		open(b, fullDir, Options{NoSync: true}, total)
	})
	b.Run("snapshot-bounded", func(b *testing.B) {
		open(b, snapDir, Options{NoSync: true}, total/10)
	})
}
