// Segment files and record framing. A WAL directory holds:
//
//	wal-%016d.seg   log segments; the number is the 1-based sequence
//	                number of the segment's first record
//	snap-%016d.snap snapshots; the number is the sequence number S of
//	                the last log record the snapshot covers
//
// Every record — in segments and snapshots alike — is framed as
//
//	[uint32 LE payload length][uint32 LE CRC32-IEEE of payload][payload]
//
// so a reader can skip payloads without decoding and detect torn or
// corrupt tails byte-exactly. A crash can only tear the *last* segment
// (rotation creates a new segment strictly after the previous one is
// fully written and synced), so scanning truncates a bad tail there and
// treats framing damage anywhere else as hard corruption.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	frameHeader = 8       // length + CRC
	maxRecord   = 1 << 28 // 256 MiB sanity bound on one payload
)

// AppendFrame wraps payload in the CRC framing and appends it to dst. It
// is exported so other record logs (the cluster journal and its wire
// replication bodies) share the exact on-disk/on-wire frame format.
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// SplitFrames splits b into framed payloads (aliasing b) and returns the
// byte offset of the first invalid frame. See splitFrames.
func SplitFrames(b []byte) (payloads [][]byte, validLen int) { return splitFrames(b) }

// appendFrame wraps payload in the on-disk framing and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// splitFrames splits b into framed payloads. It returns the payload
// slices (aliasing b), the byte offset of the first invalid frame, and
// whether the remainder after that offset is clean (len 0). The caller
// decides whether a dirty tail is a torn write (truncate) or corruption.
func splitFrames(b []byte) (payloads [][]byte, validLen int) {
	off := 0
	for {
		if off+frameHeader > len(b) {
			return payloads, off
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		if n > maxRecord || off+frameHeader+n > len(b) {
			return payloads, off
		}
		sum := binary.LittleEndian.Uint32(b[off+4:])
		payload := b[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(firstSeq uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix) }
func snapName(seq uint64) string     { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }

// parseNumbered extracts the sequence number from a segment or snapshot
// file name.
func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var n uint64
	if _, err := fmt.Sscanf(mid, "%d", &n); err != nil || len(mid) != 16 {
		return 0, false
	}
	return n, true
}

// listNumbered returns the sequence numbers of all files in dir matching
// prefix/suffix, ascending.
func listNumbered(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := parseNumbered(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs the directory itself so renames and creates survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// scannedSegment is one segment's framed payloads as found on disk.
type scannedSegment struct {
	path     string
	firstSeq uint64
	payloads [][]byte
	// data retains the file's backing buffer the payloads alias.
	data []byte
}

// scanSegments reads every segment in dir, verifies framing and sequence
// continuity, and truncates a torn tail on the final segment (both the
// returned payloads and the file itself, so the next writer appends after
// the last complete record). The returned segments are ordered and their
// payloads globally dense: segment i+1's first sequence number equals
// segment i's first plus its record count.
func scanSegments(dir string) ([]scannedSegment, error) {
	nums, err := listNumbered(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	segs := make([]scannedSegment, 0, len(nums))
	for i, n := range nums {
		path := filepath.Join(dir, segName(n))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		payloads, validLen := splitFrames(b)
		if validLen != len(b) {
			if i != len(nums)-1 {
				return nil, fmt.Errorf("durable: segment %s corrupt at byte %d (not the final segment)", path, validLen)
			}
			// Torn tail on the last segment: a crash interrupted the
			// writer mid-batch. Truncate to the last complete record.
			if err := os.Truncate(path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
			}
			b = b[:validLen]
		}
		segs = append(segs, scannedSegment{path: path, firstSeq: n, payloads: payloads, data: b})
	}
	want := uint64(1)
	for i, s := range segs {
		if i == 0 {
			want = s.firstSeq
		}
		if s.firstSeq != want {
			return nil, fmt.Errorf("durable: segment %s starts at seq %d, want %d (gap or overlap)", s.path, s.firstSeq, want)
		}
		want += uint64(len(s.payloads))
	}
	return segs, nil
}
