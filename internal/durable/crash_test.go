package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// finalSegment returns the path and contents of a directory's
// highest-numbered segment.
func finalSegment(t testing.TB, dir string) (string, []byte) {
	t.Helper()
	nums, err := listNumbered(dir, segPrefix, segSuffix)
	if err != nil || len(nums) == 0 {
		t.Fatalf("listing segments in %s: %v (%d found)", dir, err, len(nums))
	}
	name := segName(nums[len(nums)-1])
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return name, b
}

// truncatedCopy clones dir and truncates its final segment to n bytes.
func truncatedCopy(t testing.TB, dir, segname string, n int) string {
	t.Helper()
	cp := copyDir(t, dir)
	if err := os.Truncate(filepath.Join(cp, segname), int64(n)); err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestTornTailMatrix is the crash-safety exhaustion: the final segment cut
// at EVERY byte offset must restore exactly the state of the longest
// record-complete prefix — a torn tail never loses an acknowledged record
// before it and never invents a partial one after it.
func TestTornTailMatrix(t *testing.T) {
	// Two segments so the matrix exercises a final segment that is not the
	// first; 2 runs × 3 steps keeps the byte matrix small enough to sweep
	// exhaustively.
	dir := buildDir(t, Options{SegmentBytes: 300}, 2, 3)
	segname, seg := finalSegment(t, dir)

	// Record boundaries of the final segment (byte offsets after each
	// complete frame).
	boundaries := []int{0}
	off := 0
	for off < len(seg) {
		payloads, valid := splitFrames(seg[off:])
		if valid == 0 || len(payloads) == 0 {
			t.Fatalf("final segment not frame-clean at %d", off)
		}
		off += frameHeader + len(payloads[0])
		_ = payloads
		boundaries = append(boundaries, off)
		// Re-scan from the new offset only for the first frame each time.
		if off > len(seg) {
			t.Fatalf("frame overruns segment: %d > %d", off, len(seg))
		}
	}
	if boundaries[len(boundaries)-1] != len(seg) {
		t.Fatalf("segment length %d is not a record boundary", len(seg))
	}

	// Reference states at every record boundary.
	refs := make(map[int]*State, len(boundaries))
	for _, b := range boundaries {
		refs[b] = reopen(t, truncatedCopy(t, dir, segname, b), Options{})
	}

	// The untruncated restore equals the full-boundary reference.
	mustEqualStates(t, refs[len(seg)], reopen(t, copyDir(t, dir), Options{}), "untruncated")

	floor := func(n int) int {
		f := 0
		for _, b := range boundaries {
			if b <= n {
				f = b
			}
		}
		return f
	}
	for n := 0; n <= len(seg); n++ {
		cp := truncatedCopy(t, dir, segname, n)
		st := reopen(t, cp, Options{})
		mustEqualStates(t, refs[floor(n)], st, fmt.Sprintf("tail cut at byte %d", n))
		// The scan must also have repaired the file in place: the segment
		// now ends exactly at the floor boundary.
		if info, err := os.Stat(filepath.Join(cp, segname)); err != nil {
			t.Fatal(err)
		} else if int(info.Size()) != floor(n) {
			t.Fatalf("cut at %d: segment truncated to %d, want boundary %d", n, info.Size(), floor(n))
		}
	}
}

// TestTornTailWithGarbage covers the messier crash shape: the tail bytes
// are not a clean cut but garbage (a partially persisted frame whose CRC
// cannot match).
func TestTornTailWithGarbage(t *testing.T) {
	dir := buildDir(t, Options{}, 2, 3)
	segname, seg := finalSegment(t, dir)
	want := reopen(t, copyDir(t, dir), Options{})

	cp := copyDir(t, dir)
	garbage := append(append([]byte(nil), seg...), 0xde, 0xad, 0xbe, 0xef, 0x01)
	if err := os.WriteFile(filepath.Join(cp, segname), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, reopen(t, cp, Options{}), "garbage tail")
}

// TestCorruptTailBitFlip flips one byte inside the final record's payload:
// the CRC must catch it and the restore must fall back to the preceding
// boundary rather than deliver the damaged record.
func TestCorruptTailBitFlip(t *testing.T) {
	dir := buildDir(t, Options{}, 2, 3)
	segname, seg := finalSegment(t, dir)
	_, valid := splitFrames(seg)
	if valid != len(seg) {
		t.Fatal("segment not clean before the flip")
	}
	cp := copyDir(t, dir)
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(cp, segname), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	st := reopen(t, cp, Options{})

	payloads, _ := splitFrames(seg)
	lastStart := len(seg) - frameHeader - len(payloads[len(payloads)-1])
	want := reopen(t, truncatedCopy(t, dir, segname, lastStart), Options{})
	mustEqualStates(t, want, st, "bit flip in final record")
}

// TestCorruptionInNonFinalSegmentRefuses: framing damage anywhere but the
// final segment cannot be a torn write (rotation syncs before creating the
// successor) and must be reported as hard corruption, not repaired over.
func TestCorruptionInNonFinalSegmentRefuses(t *testing.T) {
	dir := buildDir(t, Options{SegmentBytes: 300}, 2, 3)
	nums, err := listNumbered(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(nums))
	}
	cp := copyDir(t, dir)
	first := filepath.Join(cp, segName(nums[0]))
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(cp, Options{}); err == nil {
		t.Fatal("corrupt non-final segment restored without error")
	}
}

// TestAppendAfterTornTailRestore: a process that crashes mid-batch, then
// restarts and keeps committing, must produce a directory that restores to
// the truncated prefix plus the new records — the matrix's "resume" leg.
func TestAppendAfterTornTailRestore(t *testing.T) {
	dir := buildDir(t, Options{}, 2, 3)
	segname, seg := finalSegment(t, dir)
	// Tear half the final record off.
	payloads, _ := splitFrames(seg)
	lastStart := len(seg) - frameHeader - len(payloads[len(payloads)-1])
	cut := lastStart + (len(seg)-lastStart)/2
	cp := truncatedCopy(t, dir, segname, cut)

	wal, st, err := Open(cp, Options{})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	workload(t, wal, st, 0, 0) // appends only the alert/ack/adopt block
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := reopen(t, cp, Options{})
	if len(st2.Alerts) != len(st.Alerts)+1 {
		t.Errorf("restored %d pending alerts, want %d", len(st2.Alerts), len(st.Alerts)+1)
	}
	if err := st2.Store.CheckIndex(); err != nil {
		t.Errorf("store index after resume: %v", err)
	}
}
