// Snapshot files: a point-in-time capture of the whole system state —
// store chains, registered specs, run frontiers, pending alerts, and the
// dependence-graph frontier — anchored to a WAL position (Seq) and an
// entry-LSN horizon (Epoch). Restore loads the latest snapshot and
// replays only the log records beyond Seq; segments fully covered by the
// snapshot are retired.
//
// A snapshot is written to a temporary file, fsynced, and renamed into
// place (plus a directory fsync), and its last record is a footer
// carrying the record count — a snapshot without a valid footer is
// incomplete and rejected, so a crash mid-snapshot-write can never
// corrupt recovery (the previous snapshot still governs).
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Run status strings carried by snapshots; the shard layer maps its
// internal run states onto these.
const (
	RunActive   = "active"
	RunDeferred = "deferred"
	RunDone     = "done"
	RunFailed   = "failed"
)

// SpecState is a registered run's durable registration: the wfjson
// document it was submitted with and the initial store values actually
// seeded for it.
type SpecState struct {
	JSON []byte
	Init map[data.Key]data.Value
}

// RunState is a run's resumable position.
type RunState struct {
	Cur    wf.TaskID
	Visits map[wf.TaskID]int
	Status string
	Err    string
}

// Snapshot is the full capture a checkpoint persists.
type Snapshot struct {
	// Seq is the WAL sequence number of the last record whose effects
	// are included; restore skips records at or below it.
	Seq uint64
	// Epoch is the highest entry LSN included; the restored log starts
	// at base = Epoch, and the store is compacted at this horizon.
	Epoch int
	// Chains is the store history at the capture point. The encoder
	// persists each chain compacted at Epoch (data.CompactChain) — the
	// state both the post-checkpoint live store and a restore converge to.
	Chains map[data.Key][]data.Version
	// Graph is the dependence graph's resumable frontier at Epoch.
	Graph deps.Frontier
	// Specs and Runs are the registered runs and their frontiers.
	Specs map[string]SpecState
	Runs  map[string]RunState
	// Alerts are the admitted-but-unacked alerts (ID → bad instances);
	// their WAL records fall at or below Seq, so they must ride the
	// snapshot or a restart would drop them.
	Alerts map[uint64][]wlog.InstanceID
}

// encodeSnapshot serializes a snapshot as a sequence of framed records
// ending in a footer. Deterministic: all maps are emitted in sorted order.
func encodeSnapshot(s *Snapshot) []byte {
	var out []byte
	records := 0
	emit := func(payload []byte) {
		out = appendFrame(out, payload)
		records++
	}

	var hdr []byte
	hdr = append(hdr, recSnapHeader)
	hdr = appendUvarint(hdr, snapFormat)
	hdr = appendUvarint(hdr, s.Seq)
	hdr = appendUvarint(hdr, uint64(s.Epoch))
	emit(hdr)

	// Chains are persisted pre-compacted at the snapshot epoch: the live
	// store is compacted there right after the checkpoint, and a restore
	// would re-apply the same horizon — so pre-horizon history is dead
	// weight that would only slow the boot path down. Keys whose chains
	// empty out are omitted (CompactBefore deletes them).
	for _, k := range sortedKeys(s.Chains) {
		chain := data.CompactChain(s.Chains[k], float64(s.Epoch))
		if len(chain) == 0 {
			continue
		}
		var p []byte
		p = append(p, recSnapChain)
		p = appendString(p, string(k))
		p = appendChain(p, chain)
		emit(p)
	}

	specRuns := make([]string, 0, len(s.Specs))
	for run := range s.Specs {
		specRuns = append(specRuns, run)
	}
	sort.Strings(specRuns)
	for _, run := range specRuns {
		sp := s.Specs[run]
		var p []byte
		p = append(p, recSnapSpec)
		p = appendString(p, run)
		p = appendBytes(p, sp.JSON)
		p = appendInit(p, sp.Init)
		emit(p)
	}

	runIDs := make([]string, 0, len(s.Runs))
	for run := range s.Runs {
		runIDs = append(runIDs, run)
	}
	sort.Strings(runIDs)
	for _, run := range runIDs {
		rs := s.Runs[run]
		var p []byte
		p = append(p, recSnapRun)
		p = appendString(p, run)
		p = appendString(p, rs.Status)
		p = appendString(p, rs.Err)
		p = appendString(p, string(rs.Cur))
		tasks := make([]string, 0, len(rs.Visits))
		for t := range rs.Visits {
			tasks = append(tasks, string(t))
		}
		sort.Strings(tasks)
		p = appendUvarint(p, uint64(len(tasks)))
		for _, t := range tasks {
			p = appendString(p, t)
			p = appendUvarint(p, uint64(rs.Visits[wf.TaskID(t)]))
		}
		emit(p)
	}

	alertIDs := make([]uint64, 0, len(s.Alerts))
	for id := range s.Alerts {
		alertIDs = append(alertIDs, id)
	}
	sort.Slice(alertIDs, func(i, j int) bool { return alertIDs[i] < alertIDs[j] })
	for _, id := range alertIDs {
		bad := s.Alerts[id]
		var p []byte
		p = append(p, recSnapAlert)
		p = appendUvarint(p, id)
		p = appendUvarint(p, uint64(len(bad)))
		for _, b := range bad {
			p = appendString(p, string(b))
		}
		emit(p)
	}

	var g []byte
	g = append(g, recSnapGraph)
	g = appendUvarint(g, uint64(s.Graph.Epoch))
	g = appendUvarint(g, uint64(len(s.Graph.LastWriter)))
	for _, k := range sortedKeys(s.Graph.LastWriter) {
		g = appendString(g, string(k))
		g = appendString(g, string(s.Graph.LastWriter[k]))
	}
	g = appendUvarint(g, uint64(len(s.Graph.Pending)))
	for _, k := range sortedKeys(s.Graph.Pending) {
		g = appendString(g, string(k))
		readers := s.Graph.Pending[k]
		g = appendUvarint(g, uint64(len(readers)))
		for _, r := range readers {
			g = appendString(g, string(r))
		}
	}
	emit(g)

	var foot []byte
	foot = append(foot, recSnapFooter)
	foot = appendUvarint(foot, uint64(records))
	out = appendFrame(out, foot)
	return out
}

// decodeSnapshot parses a snapshot file body, rejecting incomplete files
// (missing or mismatched footer).
func decodeSnapshot(b []byte) (*Snapshot, error) {
	payloads, validLen := splitFrames(b)
	if validLen != len(b) {
		return nil, fmt.Errorf("durable: snapshot corrupt at byte %d", validLen)
	}
	if len(payloads) < 2 {
		return nil, fmt.Errorf("durable: snapshot has %d records, need header and footer", len(payloads))
	}
	s := &Snapshot{
		Chains: make(map[data.Key][]data.Version),
		Specs:  make(map[string]SpecState),
		Runs:   make(map[string]RunState),
		Alerts: make(map[uint64][]wlog.InstanceID),
	}
	sawFooter := false
	for i, p := range payloads {
		r := &reader{b: p}
		kind := r.byte()
		if sawFooter {
			return nil, fmt.Errorf("durable: snapshot record after footer")
		}
		switch kind {
		case recSnapHeader:
			if i != 0 {
				return nil, fmt.Errorf("durable: snapshot header at record %d", i)
			}
			if f := r.uvarint(); f != snapFormat {
				return nil, fmt.Errorf("durable: snapshot format %d unsupported", f)
			}
			s.Seq = r.uvarint()
			s.Epoch = int(r.uvarint())
		case recSnapChain:
			k := data.Key(r.str())
			s.Chains[k] = r.chain()
		case recSnapSpec:
			run := r.str()
			s.Specs[run] = SpecState{JSON: r.bytes(), Init: r.initMap()}
		case recSnapRun:
			run := r.str()
			rs := RunState{Status: r.str(), Err: r.str(), Cur: wf.TaskID(r.str())}
			n := r.uvarint()
			rs.Visits = make(map[wf.TaskID]int, n)
			for j := uint64(0); j < n && r.err == nil; j++ {
				t := wf.TaskID(r.str())
				rs.Visits[t] = int(r.uvarint())
			}
			s.Runs[run] = rs
		case recSnapAlert:
			id := r.uvarint()
			n := r.uvarint()
			bad := make([]wlog.InstanceID, 0, n)
			for j := uint64(0); j < n && r.err == nil; j++ {
				bad = append(bad, wlog.InstanceID(r.str()))
			}
			s.Alerts[id] = bad
		case recSnapGraph:
			s.Graph.Epoch = int(r.uvarint())
			nl := r.uvarint()
			s.Graph.LastWriter = make(map[data.Key]wlog.InstanceID, nl)
			for j := uint64(0); j < nl && r.err == nil; j++ {
				k := data.Key(r.str())
				s.Graph.LastWriter[k] = wlog.InstanceID(r.str())
			}
			np := r.uvarint()
			s.Graph.Pending = make(map[data.Key][]wlog.InstanceID, np)
			for j := uint64(0); j < np && r.err == nil; j++ {
				k := data.Key(r.str())
				nr := r.uvarint()
				readers := make([]wlog.InstanceID, 0, nr)
				for x := uint64(0); x < nr && r.err == nil; x++ {
					readers = append(readers, wlog.InstanceID(r.str()))
				}
				s.Graph.Pending[k] = readers
			}
		case recSnapFooter:
			if n := r.uvarint(); n != uint64(i) {
				return nil, fmt.Errorf("durable: snapshot footer counts %d records, file has %d", n, i)
			}
			sawFooter = true
		default:
			return nil, fmt.Errorf("durable: unknown snapshot record kind %d", kind)
		}
		if err := r.finish(); err != nil {
			return nil, err
		}
	}
	if !sawFooter {
		return nil, fmt.Errorf("durable: snapshot missing footer (incomplete write)")
	}
	return s, nil
}

// WriteSnapshot durably persists a snapshot (temp file + fsync + rename +
// directory fsync), then retires every snapshot before it and every
// segment fully covered by it. On success, restores start from this
// snapshot; on any failure the previous snapshot still governs.
func (w *WAL) WriteSnapshot(s *Snapshot) error {
	body := encodeSnapshot(s)
	final := filepath.Join(w.dir, snapName(s.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if !w.opts.NoSync {
		if err := syncDir(w.dir); err != nil {
			return err
		}
	}
	w.o.snapshots.Inc()

	w.mu.Lock()
	w.snapSeq = s.Seq
	w.snapEpoch = s.Epoch
	w.mu.Unlock()

	w.retire(s.Seq)
	return nil
}

// retire deletes snapshots older than seq and segments whose records all
// fall at or below seq (determined by the next segment's first sequence
// number; the active segment is always kept).
func (w *WAL) retire(seq uint64) {
	if nums, err := listNumbered(w.dir, snapPrefix, snapSuffix); err == nil {
		for _, n := range nums {
			if n < seq {
				os.Remove(filepath.Join(w.dir, snapName(n)))
			}
		}
	}
	w.mu.Lock()
	var drop []uint64
	for len(w.segs) > 1 && w.segs[1] <= seq+1 {
		drop = append(drop, w.segs[0])
		w.segs = w.segs[1:]
	}
	live := len(w.segs)
	w.mu.Unlock()
	for _, n := range drop {
		os.Remove(filepath.Join(w.dir, segName(n)))
	}
	w.o.segments.Set(int64(live))
}

// loadLatestSnapshot returns the newest complete snapshot in dir, or nil
// when none exists.
func loadLatestSnapshot(dir string) (*Snapshot, error) {
	nums, err := listNumbered(dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	if len(nums) == 0 {
		return nil, nil
	}
	latest := nums[len(nums)-1]
	b, err := os.ReadFile(filepath.Join(dir, snapName(latest)))
	if err != nil {
		return nil, err
	}
	s, err := decodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", snapName(latest), err)
	}
	if s.Seq != latest {
		return nil, fmt.Errorf("durable: snapshot %s claims seq %d", snapName(latest), s.Seq)
	}
	return s, nil
}
