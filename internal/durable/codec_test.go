package durable

import (
	"bytes"
	"reflect"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func testEntry() *wlog.Entry {
	return &wlog.Entry{
		LSN:    42,
		Run:    "orders",
		Task:   "charge",
		Visit:  3,
		Chosen: "retry",
		Reads: map[data.Key]wlog.ReadObs{
			"balance": {Value: -7, Writer: "orders:hold:1", WriterPos: 17},
			"limit":   {Value: 1000, Writer: "", WriterPos: data.InitPos},
		},
		Writes: map[data.Key]data.Value{"balance": -107, "charged": 1},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	cases := []*wlog.Entry{
		testEntry(),
		{LSN: 1, Run: "r", Task: "t", Visit: 1,
			Reads: map[data.Key]wlog.ReadObs{}, Writes: map[data.Key]data.Value{}},
		{LSN: 9, Run: "r", Task: "evil", Visit: 2, Forged: true,
			Reads:  map[data.Key]wlog.ReadObs{"x": {Value: 5, Writer: "r:t:1", WriterPos: 3}},
			Writes: map[data.Key]data.Value{"x": 99}},
	}
	for _, e := range cases {
		p := EncodeEntry(nil, e)
		got, err := DecodeEntry(p)
		if err != nil {
			t.Fatalf("DecodeEntry(%s): %v", e.ID(), err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Errorf("entry %s round trip:\n want %+v\n got  %+v", e.ID(), e, got)
		}
	}
}

func TestEntryEncodingDeterministic(t *testing.T) {
	a := EncodeEntry(nil, testEntry())
	b := EncodeEntry(nil, testEntry())
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same entry differ")
	}
}

func TestEntryDecodeRejectsDamage(t *testing.T) {
	p := EncodeEntry(nil, testEntry())
	if _, err := DecodeEntry(p[:len(p)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeEntry(append(append([]byte(nil), p...), 0)); err == nil {
		t.Error("payload with trailing byte decoded without error")
	}
	if _, err := DecodeEntry([]byte{recAck}); err == nil {
		t.Error("non-entry kind accepted by DecodeEntry")
	}
}

func TestControlRecordRoundTrips(t *testing.T) {
	init := map[data.Key]data.Value{"a": 1, "b": -2}
	spec := []byte(`{"name":"w","start":"t0","tasks":[{"id":"t0"}]}`)
	rec, err := decodeRecord(encodeSpec(nil, 7, "run-1", spec, init))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if rec.kind != recSpec || rec.stamp != 7 || rec.run != "run-1" ||
		!bytes.Equal(rec.spec, spec) || !reflect.DeepEqual(rec.init, init) {
		t.Errorf("spec round trip: %+v", rec)
	}

	bad := []wlog.InstanceID{"r:t:1", "r:u:2"}
	rec, err = decodeRecord(encodeAlert(nil, 9, 33, bad))
	if err != nil {
		t.Fatalf("alert: %v", err)
	}
	if rec.kind != recAlert || rec.stamp != 9 || rec.alertID != 33 || !reflect.DeepEqual(rec.bad, bad) {
		t.Errorf("alert round trip: %+v", rec)
	}

	rec, err = decodeRecord(encodeAck(nil, 11, []uint64{33, 34}))
	if err != nil {
		t.Fatalf("ack: %v", err)
	}
	if rec.kind != recAck || !reflect.DeepEqual(rec.ackIDs, []uint64{33, 34}) {
		t.Errorf("ack round trip: %+v", rec)
	}

	fronts := []RunFrontier{{Run: "r1", Cur: "t2"}, {Run: "r2", Cur: "end", Done: true}}
	chains := map[data.Key][]data.Version{
		"x": {{Pos: 1, Writer: "r1:t0:1", Value: 4}, {Pos: 5, Writer: "recovery", Value: 6, Recovery: true}},
		"y": nil, // deleted key
		"z": {{Pos: data.InitPos, Value: 1, Checkpoint: true}},
	}
	rec, err = decodeRecord(encodeAdopt(nil, 13, fronts, chains))
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if rec.kind != recAdopt || !reflect.DeepEqual(rec.fronts, fronts) || !reflect.DeepEqual(rec.chains, chains) {
		t.Errorf("adopt round trip:\n want %+v %+v\n got  %+v %+v", fronts, chains, rec.fronts, rec.chains)
	}
	if _, err := decodeRecord([]byte{99}); err == nil {
		t.Error("unknown record kind accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		Seq:   120,
		Epoch: 90,
		// Chains must be fixed points of CompactChain(·, Epoch): the
		// encoder persists the compacted form, and the round trip below
		// demands byte-for-byte identity.
		Chains: map[data.Key][]data.Version{
			"a": {{Pos: 90, Writer: "r:t:1", Value: 9, Checkpoint: true}, {Pos: 95, Writer: "r:t:2", Value: 12}},
			"b": {{Pos: 91, Writer: "recovery", Value: -1, Recovery: true}},
		},
		Graph: deps.Frontier{
			Epoch:      90,
			LastWriter: map[data.Key]wlog.InstanceID{"a": "r:t:1"},
			Pending:    map[data.Key][]wlog.InstanceID{"b": {"r:u:1", "r:v:2"}},
		},
		Specs: map[string]SpecState{
			"r": {JSON: []byte(`{"name":"r"}`), Init: map[data.Key]data.Value{"a": 3}},
		},
		Runs: map[string]RunState{
			"r": {Cur: "t2", Visits: map[wf.TaskID]int{"t0": 1, "t1": 2}, Status: RunActive},
			"q": {Cur: "end", Visits: map[wf.TaskID]int{}, Status: RunFailed, Err: "task boom failed"},
		},
		Alerts: map[uint64][]wlog.InstanceID{7: {"r:t:1"}, 9: {"r:u:1", "r:v:2"}},
	}
	body := encodeSnapshot(s)
	got, err := decodeSnapshot(body)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("snapshot round trip:\n want %+v\n got  %+v", s, got)
	}
	if !bytes.Equal(body, encodeSnapshot(s)) {
		t.Error("two encodings of the same snapshot differ")
	}

	// An incomplete snapshot (footer cut off) must be rejected, whether the
	// cut lands on a frame boundary or tears the last frame.
	frames, _ := splitFrames(body)
	lastLen := frameHeader + len(frames[len(frames)-1])
	if _, err := decodeSnapshot(body[:len(body)-lastLen]); err == nil {
		t.Error("snapshot without footer accepted")
	}
	if _, err := decodeSnapshot(body[:len(body)-1]); err == nil {
		t.Error("snapshot with torn footer accepted")
	}
}
