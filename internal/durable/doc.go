// Package durable persists the shard service's state: a segmented
// group-commit write-ahead log (wal.go, segment.go), point-in-time
// snapshots of the whole system state (snapshot.go), and the boot-path
// restore that replays the bounded record tail beyond the latest snapshot
// (restore.go).
//
// The durability contract is ack-after-fsync: every record a committer
// needs durable is fsynced before the caller unblocks, so any state the
// service acknowledged over the API survives a crash (kill -9) and is
// reconstructed by restore. Snapshots bound both replay time and store
// history: the store is compacted at the snapshot's entry-LSN horizon
// (Epoch), below which history is frozen — see internal/recovery's
// compaction-horizon handling and docs/DURABILITY.md for the end-to-end
// design.
package durable
