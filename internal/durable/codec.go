// Binary record codec for the durable WAL: compact, length-delimited field
// encodings (uvarint integers, length-prefixed strings, raw float64 bits)
// replacing the per-entry JSON of internal/wlogio on the hot append path.
// Every record payload starts with a kind byte; the framing layer
// (segment.go) wraps payloads in a [length][CRC32] envelope.
//
// Encoding is deterministic: map-shaped fields (reads, writes, inits,
// chains) are emitted in sorted key order, so identical states produce
// identical bytes — the property the crash-equivalence tests rely on.
package durable

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Record kinds. Log-stream kinds (entry/spec/alert/ack/adopt) appear in
// segment files; snap* kinds appear only inside snapshot files.
const (
	recEntry byte = iota + 1
	recSpec
	recAlert
	recAck
	recAdopt
	recSnapHeader
	recSnapChain
	recSnapSpec
	recSnapRun
	recSnapAlert
	recSnapGraph
	recSnapFooter
)

// snapFormat is the snapshot/segment format version stamped in headers.
const snapFormat = 1

// --- primitive writers -------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// --- primitive reader --------------------------------------------------

// reader decodes a record payload; the first decoding error sticks and
// every later read returns zero values, so decode paths check err once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("durable: truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("durable: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("durable: truncated string (%d of %d bytes)", len(r.b), n)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail("durable: truncated bytes (%d of %d)", len(r.b), n)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("durable: truncated byte")
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("durable: truncated float64")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return f
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("durable: %d trailing payload bytes", len(r.b))
	}
	return nil
}

// --- log entries --------------------------------------------------------

const (
	entryForged byte = 1 << iota
	entryChosen
)

// EncodeEntry appends the binary encoding of one committed log entry
// (kind byte included) to dst. Exported so the wlogio benchmarks can
// compare the JSON and binary codecs head to head.
func EncodeEntry(dst []byte, e *wlog.Entry) []byte {
	dst = append(dst, recEntry)
	dst = appendUvarint(dst, uint64(e.LSN))
	dst = appendString(dst, e.Run)
	dst = appendString(dst, string(e.Task))
	dst = appendUvarint(dst, uint64(e.Visit))
	var flags byte
	if e.Forged {
		flags |= entryForged
	}
	if e.Chosen != "" {
		flags |= entryChosen
	}
	dst = append(dst, flags)
	if e.Chosen != "" {
		dst = appendString(dst, string(e.Chosen))
	}

	readKeys := make([]data.Key, 0, len(e.Reads))
	for k := range e.Reads {
		readKeys = append(readKeys, k)
	}
	sort.Slice(readKeys, func(i, j int) bool { return readKeys[i] < readKeys[j] })
	dst = appendUvarint(dst, uint64(len(readKeys)))
	for _, k := range readKeys {
		obs := e.Reads[k]
		dst = appendString(dst, string(k))
		dst = appendVarint(dst, int64(obs.Value))
		dst = appendString(dst, obs.Writer)
		dst = appendF64(dst, obs.WriterPos)
	}

	writeKeys := make([]data.Key, 0, len(e.Writes))
	for k := range e.Writes {
		writeKeys = append(writeKeys, k)
	}
	sort.Slice(writeKeys, func(i, j int) bool { return writeKeys[i] < writeKeys[j] })
	dst = appendUvarint(dst, uint64(len(writeKeys)))
	for _, k := range writeKeys {
		dst = appendString(dst, string(k))
		dst = appendVarint(dst, int64(e.Writes[k]))
	}
	return dst
}

// DecodeEntry decodes an entry payload produced by EncodeEntry (kind byte
// included).
func DecodeEntry(p []byte) (*wlog.Entry, error) {
	r := &reader{b: p}
	if k := r.byte(); k != recEntry {
		return nil, fmt.Errorf("durable: record kind %d is not an entry", k)
	}
	e := decodeEntryBody(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return e, nil
}

func decodeEntryBody(r *reader) *wlog.Entry {
	e := &wlog.Entry{
		LSN:   int(r.uvarint()),
		Run:   r.str(),
		Task:  wf.TaskID(r.str()),
		Visit: int(r.uvarint()),
	}
	flags := r.byte()
	e.Forged = flags&entryForged != 0
	if flags&entryChosen != 0 {
		e.Chosen = wf.TaskID(r.str())
	}
	nReads := r.uvarint()
	e.Reads = make(map[data.Key]wlog.ReadObs, nReads)
	for i := uint64(0); i < nReads && r.err == nil; i++ {
		k := data.Key(r.str())
		e.Reads[k] = wlog.ReadObs{
			Value:     data.Value(r.varint()),
			Writer:    r.str(),
			WriterPos: r.f64(),
		}
	}
	nWrites := r.uvarint()
	e.Writes = make(map[data.Key]data.Value, nWrites)
	for i := uint64(0); i < nWrites && r.err == nil; i++ {
		k := data.Key(r.str())
		e.Writes[k] = data.Value(r.varint())
	}
	return e
}

// --- store versions and chains -----------------------------------------

const (
	verRecovery byte = 1 << iota
	verCheckpoint
)

func appendVersion(dst []byte, v data.Version) []byte {
	dst = appendF64(dst, v.Pos)
	dst = appendString(dst, v.Writer)
	dst = appendVarint(dst, int64(v.Value))
	var flags byte
	if v.Recovery {
		flags |= verRecovery
	}
	if v.Checkpoint {
		flags |= verCheckpoint
	}
	return append(dst, flags)
}

func (r *reader) version() data.Version {
	v := data.Version{
		Pos:    r.f64(),
		Writer: r.str(),
		Value:  data.Value(r.varint()),
	}
	flags := r.byte()
	v.Recovery = flags&verRecovery != 0
	v.Checkpoint = flags&verCheckpoint != 0
	return v
}

func appendChain(dst []byte, chain []data.Version) []byte {
	dst = appendUvarint(dst, uint64(len(chain)))
	for _, v := range chain {
		dst = appendVersion(dst, v)
	}
	return dst
}

func (r *reader) chain() []data.Version {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]data.Version, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.version())
	}
	return out
}

// sortedKeys returns the keys of a chains map in sorted order.
func sortedKeys[V any](m map[data.Key]V) []data.Key {
	out := make([]data.Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// appendInit encodes an initial-values map in sorted key order.
func appendInit(dst []byte, init map[data.Key]data.Value) []byte {
	dst = appendUvarint(dst, uint64(len(init)))
	for _, k := range sortedKeys(init) {
		dst = appendString(dst, string(k))
		dst = appendVarint(dst, int64(init[k]))
	}
	return dst
}

func (r *reader) initMap() map[data.Key]data.Value {
	n := r.uvarint()
	out := make(map[data.Key]data.Value, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := data.Key(r.str())
		out[k] = data.Value(r.varint())
	}
	return out
}

// --- control records ----------------------------------------------------

// encodeSpec builds a spec record: a run registration carrying the wfjson
// spec document and its initial store values, stamped with the highest
// entry LSN already enqueued (the record's position in the commit order).
func encodeSpec(dst []byte, stamp int, run string, specJSON []byte, init map[data.Key]data.Value) []byte {
	dst = append(dst, recSpec)
	dst = appendUvarint(dst, uint64(stamp))
	dst = appendString(dst, run)
	dst = appendBytes(dst, specJSON)
	return appendInit(dst, init)
}

func encodeAlert(dst []byte, stamp int, id uint64, bad []wlog.InstanceID) []byte {
	dst = append(dst, recAlert)
	dst = appendUvarint(dst, uint64(stamp))
	dst = appendUvarint(dst, id)
	dst = appendUvarint(dst, uint64(len(bad)))
	for _, b := range bad {
		dst = appendString(dst, string(b))
	}
	return dst
}

func encodeAck(dst []byte, stamp int, ids []uint64) []byte {
	dst = append(dst, recAck)
	dst = appendUvarint(dst, uint64(stamp))
	dst = appendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = appendUvarint(dst, id)
	}
	return dst
}

// RunFrontier is a run's post-repair position, carried by adopt records:
// recovery rewrote the run's path and moved its frontier to Cur (or
// completed it).
type RunFrontier struct {
	Run  string
	Cur  wf.TaskID
	Done bool
}

// encodeAdopt builds an adopt record: the full replacement chains of the
// damaged keys a repair installed (empty chain = key deleted) plus the
// resynced run frontiers. Replaying it reproduces the repair's effect on
// the store without re-running the repair.
func encodeAdopt(dst []byte, stamp int, fronts []RunFrontier, chains map[data.Key][]data.Version) []byte {
	dst = append(dst, recAdopt)
	dst = appendUvarint(dst, uint64(stamp))
	dst = appendUvarint(dst, uint64(len(fronts)))
	for _, f := range fronts {
		dst = appendString(dst, f.Run)
		dst = appendString(dst, string(f.Cur))
		var done byte
		if f.Done {
			done = 1
		}
		dst = append(dst, done)
	}
	dst = appendUvarint(dst, uint64(len(chains)))
	for _, k := range sortedKeys(chains) {
		dst = appendString(dst, string(k))
		dst = appendChain(dst, chains[k])
	}
	return dst
}

// record is one decoded log-stream record.
type record struct {
	kind  byte
	stamp int // highest entry LSN enqueued before this record
	entry *wlog.Entry

	run  string // spec
	spec []byte
	init map[data.Key]data.Value

	alertID uint64 // alert
	bad     []wlog.InstanceID
	ackIDs  []uint64 // ack

	fronts []RunFrontier // adopt
	chains map[data.Key][]data.Version
}

// decodeRecord decodes one log-stream record payload.
func decodeRecord(p []byte) (*record, error) {
	r := &reader{b: p}
	rec := &record{kind: r.byte()}
	switch rec.kind {
	case recEntry:
		rec.entry = decodeEntryBody(r)
		rec.stamp = rec.entry.LSN
	case recSpec:
		rec.stamp = int(r.uvarint())
		rec.run = r.str()
		rec.spec = r.bytes()
		rec.init = r.initMap()
	case recAlert:
		rec.stamp = int(r.uvarint())
		rec.alertID = r.uvarint()
		n := r.uvarint()
		rec.bad = make([]wlog.InstanceID, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.bad = append(rec.bad, wlog.InstanceID(r.str()))
		}
	case recAck:
		rec.stamp = int(r.uvarint())
		n := r.uvarint()
		rec.ackIDs = make([]uint64, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.ackIDs = append(rec.ackIDs, r.uvarint())
		}
	case recAdopt:
		rec.stamp = int(r.uvarint())
		nf := r.uvarint()
		rec.fronts = make([]RunFrontier, 0, nf)
		for i := uint64(0); i < nf && r.err == nil; i++ {
			f := RunFrontier{Run: r.str(), Cur: wf.TaskID(r.str())}
			f.Done = r.byte() != 0
			rec.fronts = append(rec.fronts, f)
		}
		nc := r.uvarint()
		rec.chains = make(map[data.Key][]data.Version, nc)
		for i := uint64(0); i < nc && r.err == nil; i++ {
			k := data.Key(r.str())
			rec.chains[k] = r.chain()
		}
	default:
		return nil, fmt.Errorf("durable: unknown record kind %d", rec.kind)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}
