package campaign

import (
	"testing"

	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
)

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{Runs: 0, MaxTicks: 10}); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := Run(Config{Runs: 1, MaxTicks: 0}); err == nil {
		t.Error("zero ticks accepted")
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	attacked := 0
	for seed := int64(0); seed < 10; seed++ {
		rep, err := Run(DefaultConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Committed == 0 {
			t.Errorf("seed %d: nothing committed", seed)
		}
		if !rep.Verified {
			t.Errorf("seed %d: final history invalid: %v", seed, rep.VerifyErrors)
		}
		if rep.AttacksCommitted > 0 {
			attacked++
			if rep.Reported == 0 {
				t.Errorf("seed %d: attacks committed but never reported", seed)
			}
			if rep.Metrics.UnitsExecuted == 0 {
				t.Errorf("seed %d: reports delivered but no recovery ran", seed)
			}
			if rep.Metrics.Undone == 0 {
				t.Errorf("seed %d: recovery ran but undid nothing", seed)
			}
		}
	}
	if attacked == 0 {
		t.Error("no campaign had a committed attack across 10 seeds")
	}
}

func TestCampaignDeterministicPerSeed(t *testing.T) {
	a, err := Run(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Reported != b.Reported || a.Metrics.Undone != b.Metrics.Undone {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCampaignWithEagerAndConcurrentModes(t *testing.T) {
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"concurrent", func(c *Config) { c.System.Concurrent = true }},
		{"eager", func(c *Config) { c.System.EagerRecovery = true }},
		{"coalesce", func(c *Config) { c.System.CoalesceAlerts = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig(5)
			mode.mut(&cfg)
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified {
				t.Errorf("final history invalid: %v", rep.VerifyErrors)
			}
		})
	}
}

func TestCampaignTinyBuffersLoseAlerts(t *testing.T) {
	lost := 0
	for seed := int64(0); seed < 20; seed++ {
		cfg := DefaultConfig(seed)
		cfg.System = selfheal.Config{AlertBuf: 1, RecoveryBuf: 1}
		cfg.Attacks = 6
		cfg.AlertRate = 5 // burst reporting into a size-1 buffer
		cfg.DetectionDelay = 0
		cfg.Gen = wf.GenConfig{Tasks: 14, Keys: 9, MaxReads: 3, BranchProb: 0.3}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lost += rep.Lost
		if !rep.Verified {
			t.Errorf("seed %d: invalid final history", seed)
		}
	}
	if lost == 0 {
		t.Error("size-1 buffers under burst reporting never lost an alert")
	}
}
