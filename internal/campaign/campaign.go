// Package campaign runs end-to-end attack campaigns against the live
// self-healing runtime: a generated workload executes under the system's
// normal processing while injected attacks corrupt task instances, the
// simulated IDS reports each committed attack after a detection delay, and
// the system scans and recovers on-line. The campaign report aggregates
// what the whole pipeline did and verifies the final corrected history —
// the "system evaluation" complement to the paper's analytical §V.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/ids"
	"selfheal/internal/recovery"
	"selfheal/internal/selfheal"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Config describes one campaign.
type Config struct {
	// Seed drives workload generation, attack placement and IDS timing.
	Seed int64
	// Runs is the number of concurrent workflow runs.
	Runs int
	// Gen configures the generated workflows.
	Gen wf.GenConfig
	// Attacks is the number of task corruptions the attacker plants.
	Attacks int
	// AlertRate is the Poisson rate of IDS reporting (per tick).
	AlertRate float64
	// DetectionDelay is the mean exponential delay between an attack
	// committing and its report (in ticks).
	DetectionDelay float64
	// System configures the runtime.
	System selfheal.Config
	// MaxTicks bounds the campaign.
	MaxTicks int
}

// DefaultConfig returns a small but complete campaign.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Runs:           4,
		Gen:            wf.GenConfig{Tasks: 12, Keys: 9, MaxReads: 3, BranchProb: 0.35},
		Attacks:        3,
		AlertRate:      0.2,
		DetectionDelay: 3,
		System:         selfheal.Config{AlertBuf: 8, RecoveryBuf: 8},
		MaxTicks:       2000,
	}
}

// Report aggregates a campaign.
type Report struct {
	// Committed is the total number of committed task instances.
	Committed int
	// AttacksPlanted and AttacksCommitted count corruptions (an attack
	// aimed at a branch the run never took does not fire).
	AttacksPlanted, AttacksCommitted int
	// Reported counts IDS reports delivered; Lost counts those dropped
	// at a full alert buffer.
	Reported, Lost int
	// Metrics is the runtime's own accounting.
	Metrics selfheal.Metrics
	// Ticks is the number of ticks the campaign consumed.
	Ticks int
	// Verified reports whether the final corrected history passed the
	// intrinsic checker.
	Verified bool
	// VerifyErrors lists checker findings when Verified is false.
	VerifyErrors []string
}

// Run executes the campaign.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs < 1 || cfg.MaxTicks < 1 {
		return nil, fmt.Errorf("campaign: bad config: runs=%d maxTicks=%d", cfg.Runs, cfg.MaxTicks)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Workload: generated workflows over a shared pool, with attacks
	// planted on random tasks.
	st := data.NewStore()
	for i := 0; i < cfg.Gen.Keys; i++ {
		st.Init(wf.GenKey(i), data.Value(rng.Intn(20)))
	}
	sys, err := selfheal.New(cfg.System, st)
	if err != nil {
		return nil, err
	}
	specs := make(map[string]*wf.Spec, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		run := fmt.Sprintf("run%d", i)
		spec := wf.Generate(run, cfg.Gen, rng)
		specs[run] = spec
		if err := sys.StartRun(run, spec); err != nil {
			return nil, err
		}
	}
	rep := &Report{}
	var planned []wlog.InstanceID
	for i := 0; i < cfg.Attacks; i++ {
		runIdx := rng.Intn(cfg.Runs)
		run := fmt.Sprintf("run%d", runIdx)
		spec := specs[run]
		task := wf.TaskID(fmt.Sprintf("t%d", rng.Intn(len(spec.Tasks))))
		corrupt := data.Value(5000 + rng.Intn(1000))
		writes := append([]data.Key(nil), spec.Tasks[task].Writes...)
		sys.Engine().AddAttack(engine.Attack{
			Run: run, Task: task,
			Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
				out := make(map[data.Key]data.Value, len(writes))
				for _, k := range writes {
					out[k] = corrupt
				}
				return out
			},
		})
		planned = append(planned, wlog.FormatInstance(run, task, 1))
		rep.AttacksPlanted++
	}

	// IDS timing: Poisson report opportunities with detection delay, in
	// tick units.
	events, err := ids.Schedule(planned, cfg.AlertRate, cfg.DetectionDelay, float64(cfg.MaxTicks), rng)
	if err != nil {
		return nil, err
	}

	// Drive the system tick by tick, delivering due reports for attacks
	// that have committed. Reports whose instance never committed are
	// dropped silently (the attack aimed at an untaken branch).
	next := 0
	reported := make(map[wlog.InstanceID]bool)
	for tick := 0; tick < cfg.MaxTicks; tick++ {
		for next < len(events) && events[next].Time <= float64(tick) {
			ev := events[next]
			next++
			id := ev.Bad[0]
			if _, committed := sys.Log().Get(id); !committed {
				continue
			}
			if reported[id] {
				continue
			}
			reported[id] = true
			rep.Reported++
			if !sys.Report(selfheal.Alert{Bad: ev.Bad}) {
				rep.Lost++
			}
		}
		err := sys.Tick()
		switch {
		case err == nil:
			rep.Ticks++
			continue
		case errors.Is(err, selfheal.ErrIdle):
			rep.Ticks++
			if next >= len(events) && allReportedOrDead(planned, reported, sys.Log()) {
				tick = cfg.MaxTicks // drain complete
			}
			continue
		default:
			return nil, fmt.Errorf("campaign: tick %d: %w", tick, err)
		}
	}

	// Late reports: any committed attack not yet reported gets a final
	// catch-up report (the administrator of §IV.D), then drains.
	for _, id := range planned {
		if _, committed := sys.Log().Get(id); committed && !reported[id] {
			reported[id] = true
			rep.Reported++
			if !sys.Report(selfheal.Alert{Bad: []wlog.InstanceID{id}}) {
				rep.Lost++
			}
		}
	}
	if err := sys.DrainRecovery(context.Background(), 10*cfg.MaxTicks); err != nil {
		return nil, err
	}

	rep.Committed = sys.Log().Len()
	for _, id := range planned {
		if _, ok := sys.Log().Get(id); ok {
			rep.AttacksCommitted++
		}
	}
	rep.Metrics = sys.Metrics()

	// Final verification: one repair over everything reported must yield
	// a valid corrected history.
	var allBad []wlog.InstanceID
	for id := range reported {
		allBad = append(allBad, id)
	}
	res, err := recovery.Repair(sys.Store(), sys.Log(), specs, allBad, cfg.System.Repair)
	if err != nil {
		return nil, err
	}
	errs := recovery.VerifyResult(res, sys.Log(), specs)
	rep.Verified = len(errs) == 0
	for _, e := range errs {
		rep.VerifyErrors = append(rep.VerifyErrors, e.Error())
	}
	return rep, nil
}

// allReportedOrDead reports whether every planned attack has either been
// reported or can never commit (its run is complete without it).
func allReportedOrDead(planned []wlog.InstanceID, reported map[wlog.InstanceID]bool, log *wlog.Log) bool {
	for _, id := range planned {
		if reported[id] {
			continue
		}
		if _, committed := log.Get(id); committed {
			return false
		}
	}
	return true
}
