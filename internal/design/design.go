// Package design implements the step-by-step system design procedure of §VI
// of the paper: given a target attack rate λ and a target ε-convergence,
// sweep the recovery-task buffer size over the low-loss range, pick the
// smallest configuration meeting ε, and characterize the system's transient
// resistance to peak attack rates.
package design

import (
	"fmt"
	"math"

	"selfheal/internal/stg"
)

// Requirements captures the design targets of §VI.
type Requirements struct {
	// Lambda is the expected attack rate the system must handle.
	Lambda float64
	// Epsilon is the target steady-state loss probability (Definition 4).
	Epsilon float64
	// MaxBuffer bounds the buffer sweep (the paper suggests ~30).
	MaxBuffer int
}

// Candidate is one evaluated configuration.
type Candidate struct {
	// Buffer is the recovery-task (and alert) buffer size.
	Buffer int
	// Epsilon is the achieved steady-state loss probability.
	Epsilon float64
	// Metrics is the full steady-state characterization.
	Metrics stg.Metrics
}

// SweepBuffers evaluates buffer sizes 2..req.MaxBuffer for the given rates
// and degradation families, in order.
func SweepBuffers(req Requirements, mu1, xi1 float64, f, g stg.Degradation) ([]Candidate, error) {
	if req.MaxBuffer < 2 {
		return nil, fmt.Errorf("design: MaxBuffer must be ≥ 2, got %d", req.MaxBuffer)
	}
	out := make([]Candidate, 0, req.MaxBuffer-1)
	for buf := 2; buf <= req.MaxBuffer; buf++ {
		p := stg.Square(req.Lambda, mu1, xi1, buf)
		p.F, p.G = f, g
		m, err := stg.New(p)
		if err != nil {
			return nil, err
		}
		met, err := m.SteadyMetrics()
		if err != nil {
			return nil, fmt.Errorf("design: buffer %d: %w", buf, err)
		}
		out = append(out, Candidate{Buffer: buf, Epsilon: met.Loss, Metrics: met})
	}
	return out, nil
}

// ErrInfeasible reports that no buffer size meets the ε target; per §VI the
// algorithms must be redesigned (improve μ₁/ξ₁ or flatten the degradation).
type ErrInfeasible struct {
	Req  Requirements
	Best Candidate
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("design: no buffer ≤ %d meets ε=%g at λ=%g (best: %g at buffer %d); redesign the algorithms per §VI",
		e.Req.MaxBuffer, e.Req.Epsilon, e.Req.Lambda, e.Best.Epsilon, e.Best.Buffer)
}

// Choose runs the §VI procedure: increase the buffer while the loss
// probability improves (stopping once it starts to rise, the fast-
// degradation regime of Fig 4), and return the smallest buffer meeting the
// ε target. It returns *ErrInfeasible when the target is unreachable.
func Choose(req Requirements, mu1, xi1 float64, f, g stg.Degradation) (*Candidate, error) {
	cands, err := SweepBuffers(req, mu1, xi1, f, g)
	if err != nil {
		return nil, err
	}
	best := cands[0]
	for _, c := range cands {
		if c.Epsilon < best.Epsilon {
			best = c
		}
		if c.Epsilon <= req.Epsilon {
			chosen := c
			return &chosen, nil
		}
		// Stop the sweep once loss clearly rises from the best seen:
		// larger buffers only degrade further (§VI step 2).
		if c.Epsilon > best.Epsilon*2 && c.Epsilon > req.Epsilon*10 {
			break
		}
	}
	return nil, &ErrInfeasible{Req: req, Best: best}
}

// ResistanceTime returns how long a system configured by p withstands a
// sustained peak attack rate before its transient loss probability exceeds
// threshold, starting from the NORMAL state — the paper's Case 6 analysis
// ("the system can resist such high attacking rate about 5 time-units").
// The returned time is bracketed to within tol. If the loss never exceeds
// threshold before maxT, maxT and false are returned.
func ResistanceTime(p stg.Params, peakLambda, threshold, maxT, tol float64) (float64, bool, error) {
	if threshold <= 0 || threshold >= 1 {
		return 0, false, fmt.Errorf("design: threshold must be in (0,1), got %g", threshold)
	}
	if tol <= 0 {
		tol = 0.01
	}
	peak := p
	peak.Lambda = peakLambda
	m, err := stg.New(peak)
	if err != nil {
		return 0, false, err
	}
	lossAt := func(t float64) (float64, error) {
		pi, err := m.Transient(t)
		if err != nil {
			return 0, err
		}
		return m.MetricsOf(pi).Loss, nil
	}
	end, err := lossAt(maxT)
	if err != nil {
		return 0, false, err
	}
	if end <= threshold {
		return maxT, false, nil
	}
	lo, hi := 0.0, maxT
	for hi-lo > tol {
		mid := (lo + hi) / 2
		l, err := lossAt(mid)
		if err != nil {
			return 0, false, err
		}
		if l > threshold {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, true, nil
}

// CostEffectiveRange finds the paper's Case 3/4 observation: the smallest
// rate at which further improvements of μ₁ (or ξ₁) stop mattering. It
// sweeps the rate from lo to hi in the given step and returns the first
// value whose NORMAL-state probability is within margin of the value at hi.
func CostEffectiveRange(base stg.Params, sweep func(stg.Params, float64) stg.Params, lo, hi, step, margin float64) (float64, error) {
	if step <= 0 || hi <= lo {
		return 0, fmt.Errorf("design: bad sweep range [%g,%g] step %g", lo, hi, step)
	}
	pn := func(rate float64) (float64, error) {
		m, err := stg.New(sweep(base, rate))
		if err != nil {
			return 0, err
		}
		met, err := m.SteadyMetrics()
		if err != nil {
			return 0, err
		}
		return met.PNormal, nil
	}
	top, err := pn(hi)
	if err != nil {
		return 0, err
	}
	for rate := lo; rate <= hi+1e-12; rate += step {
		v, err := pn(rate)
		if err != nil {
			return 0, err
		}
		if math.Abs(top-v) <= margin {
			return rate, nil
		}
	}
	return hi, nil
}

// SweepMu1 is a sweep function for CostEffectiveRange varying μ₁.
func SweepMu1(p stg.Params, rate float64) stg.Params {
	p.Mu1 = rate
	return p
}

// SweepXi1 is a sweep function for CostEffectiveRange varying ξ₁.
func SweepXi1(p stg.Params, rate float64) stg.Params {
	p.Xi1 = rate
	return p
}
