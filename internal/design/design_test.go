package design

import (
	"errors"
	"testing"

	"selfheal/internal/stg"
)

func TestSweepBuffersShape(t *testing.T) {
	req := Requirements{Lambda: 1, Epsilon: 0.01, MaxBuffer: 20}
	cands, err := SweepBuffers(req, 15, 20, stg.DegradeLinear, stg.DegradeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 19 {
		t.Fatalf("got %d candidates, want 19 (buffers 2..20)", len(cands))
	}
	for i, c := range cands {
		if c.Buffer != i+2 {
			t.Errorf("candidate %d has buffer %d", i, c.Buffer)
		}
		if c.Epsilon < 0 || c.Epsilon > 1 {
			t.Errorf("buffer %d: ε = %g out of range", c.Buffer, c.Epsilon)
		}
	}
}

func TestSweepBuffersValidates(t *testing.T) {
	if _, err := SweepBuffers(Requirements{Lambda: 1, MaxBuffer: 1}, 15, 20, nil, nil); err == nil {
		t.Error("MaxBuffer=1 accepted")
	}
}

// TestChooseFindsGoodSystem: the paper's healthy parameters admit a small
// buffer at a tight ε.
func TestChooseFindsGoodSystem(t *testing.T) {
	req := Requirements{Lambda: 1, Epsilon: 1e-3, MaxBuffer: 30}
	c, err := Choose(req, 15, 20, stg.DegradeLinear, stg.DegradeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epsilon > req.Epsilon {
		t.Errorf("chosen ε = %g exceeds target %g", c.Epsilon, req.Epsilon)
	}
	if c.Buffer < 2 || c.Buffer > 15 {
		t.Errorf("chosen buffer = %d, expected a modest size", c.Buffer)
	}
	// Minimality: the preceding buffer must not meet the target.
	if c.Buffer > 2 {
		cands, err := SweepBuffers(req, 15, 20, stg.DegradeLinear, stg.DegradeLinear)
		if err != nil {
			t.Fatal(err)
		}
		prev := cands[c.Buffer-3] // buffer c.Buffer-1 is at index c.Buffer-3
		if prev.Epsilon <= req.Epsilon {
			t.Errorf("buffer %d already met ε (%g); Choose not minimal", prev.Buffer, prev.Epsilon)
		}
	}
}

// TestChooseInfeasible: a hopeless system (μ₁, ξ₁ far below λ) cannot meet a
// tight ε and must report redesign.
func TestChooseInfeasible(t *testing.T) {
	req := Requirements{Lambda: 5, Epsilon: 1e-6, MaxBuffer: 15}
	_, err := Choose(req, 1, 1, stg.DegradeQuad, stg.DegradeQuad)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if inf.Best.Epsilon <= req.Epsilon {
		t.Error("infeasible error carries a feasible best candidate")
	}
	if inf.Error() == "" {
		t.Error("empty error message")
	}
}

// TestResistanceTimeCase6 reproduces the paper's Case 6 observation: a
// system designed for λ=0.1 (μ₁=2, ξ₁=3) resists a λ=1 peak for about 5
// time units before its loss probability becomes noticeable.
func TestResistanceTimeCase6(t *testing.T) {
	p := stg.Square(0.1, 2, 3, 15)
	rt, exceeded, err := ResistanceTime(p, 1, 0.01, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !exceeded {
		t.Fatal("peak never exceeded the loss threshold within 100 units")
	}
	if rt < 2 || rt > 12 {
		t.Errorf("resistance time = %g, want ≈5 (paper's Case 6)", rt)
	}
}

// TestResistanceTimeGoodSystemHoldsOut: the Case 5 system never exceeds the
// threshold at its design rate.
func TestResistanceTimeGoodSystemHoldsOut(t *testing.T) {
	p := stg.Square(1, 15, 20, 15)
	rt, exceeded, err := ResistanceTime(p, 1, 0.01, 50, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if exceeded {
		t.Errorf("good system exceeded loss threshold at t=%g", rt)
	}
	if rt != 50 {
		t.Errorf("rt = %g, want the full horizon", rt)
	}
}

func TestResistanceTimeValidates(t *testing.T) {
	p := stg.Square(1, 15, 20, 5)
	if _, _, err := ResistanceTime(p, 2, 0, 10, 0.1); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := ResistanceTime(p, 2, 1.5, 10, 0.1); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

// TestCostEffectiveRange reproduces the Case 3/4 remark: beyond a specific
// value (≈15 at λ=1), raising μ₁ no longer improves the NORMAL probability.
func TestCostEffectiveRange(t *testing.T) {
	base := stg.Square(1, 15, 20, 15)
	knee, err := CostEffectiveRange(base, SweepMu1, 1, 20, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if knee <= 2 || knee > 18 {
		t.Errorf("μ₁ knee = %g, want an interior cost-effective point", knee)
	}
	kneeXi, err := CostEffectiveRange(base, SweepXi1, 1, 20, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if kneeXi <= 1 || kneeXi > 20 {
		t.Errorf("ξ₁ knee = %g", kneeXi)
	}
}

func TestCostEffectiveRangeValidates(t *testing.T) {
	base := stg.Square(1, 15, 20, 5)
	if _, err := CostEffectiveRange(base, SweepMu1, 5, 5, 1, 0.05); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := CostEffectiveRange(base, SweepMu1, 1, 10, 0, 0.05); err == nil {
		t.Error("zero step accepted")
	}
}
