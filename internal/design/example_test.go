package design_test

import (
	"fmt"
	"log"

	"selfheal/internal/design"
	"selfheal/internal/stg"
)

// Example runs the §VI design procedure: pick the smallest buffer meeting an
// ε-convergence target at the expected attack rate.
func Example() {
	req := design.Requirements{Lambda: 1, Epsilon: 1e-3, MaxBuffer: 30}
	c, err := design.Choose(req, 15, 20, stg.DegradeLinear, stg.DegradeLinear)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffer %d meets ε=%g (achieved %.1e, P(NORMAL)=%.2f)\n",
		c.Buffer, req.Epsilon, c.Epsilon, c.Metrics.PNormal)
	// Output:
	// buffer 4 meets ε=0.001 (achieved 4.8e-04, P(NORMAL)=0.87)
}

// ExampleResistanceTime asks the paper's Case 6 question: how long does an
// underprovisioned system withstand a 10× attack peak?
func ExampleResistanceTime() {
	p := stg.Square(0.1, 2, 3, 15)
	t, exceeded, err := design.ResistanceTime(p, 1, 0.01, 100, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss exceeds 1%%: %v after ≈%.0f time units\n", exceeded, t)
	// Output:
	// loss exceeds 1%: true after ≈9 time units
}
