package wfjson

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// FromBlueprint is lossless: across many random blueprints, executing the
// wire document (decoded with Build, as POST /api/v1/runs does) produces
// exactly the store that executing the locally compiled blueprint does —
// the equivalence the fuzzer's benign-equality oracle depends on.
func TestFromBlueprintRoundTripExecution(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := wf.GenConfig{
			Tasks:      2 + rng.Intn(8),
			Keys:       1 + rng.Intn(5),
			MaxReads:   rng.Intn(3),
			MaxWrites:  rng.Intn(3),
			BranchProb: rng.Float64(),
			Prefix:     "rt_",
		}
		bp := wf.GenerateBlueprint("rt", cfg, rng)

		sj := FromBlueprint(bp)
		// The wire document must survive JSON serialization, as it does
		// over HTTP.
		raw, err := json.Marshal(sj)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var decoded SpecJSON
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wireSpec, wireInit, err := Build(&decoded)
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		localSpec, err := bp.Spec()
		if err != nil {
			t.Fatalf("seed %d: Spec: %v", seed, err)
		}

		wireStore := execute(t, wireSpec, wireInit)
		localStore := execute(t, localSpec, bp.Init)
		if !data.Equal(wireStore, localStore) {
			t.Fatalf("seed %d: wire and local execution diverge:\n%s",
				seed, data.Diff(wireStore, localStore))
		}
	}
}

func execute(t *testing.T, spec *wf.Spec, init map[data.Key]data.Value) *data.Store {
	t.Helper()
	store := data.NewStore()
	for k, v := range init {
		store.Init(k, v)
	}
	eng := engine.New(store, wlog.New())
	run, err := eng.NewRun(spec.Name, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), run); err != nil {
		t.Fatal(err)
	}
	return store
}
