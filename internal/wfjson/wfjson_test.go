package wfjson

import (
	"context"
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wlog"
)

const fig1JSON = `{
  "name": "fig1-wf1", "start": "t1",
  "init": {"e": 0},
  "tasks": [
    {"id": "t1", "writes": ["a"], "bias": 1, "next": ["t2"]},
    {"id": "t2", "reads": ["a"], "writes": ["b"], "bias": 1, "next": ["t3", "t5"],
     "choose": {"key": "a", "threshold": 50, "low": "t5", "high": "t3"}},
    {"id": "t3", "writes": ["c"], "bias": 42, "next": ["t4"]},
    {"id": "t4", "reads": ["b", "c"], "writes": ["d"], "next": ["t6"]},
    {"id": "t5", "reads": ["b"], "writes": ["e"], "bias": 5, "next": ["t6"]},
    {"id": "t6", "reads": ["e"], "writes": ["f"], "bias": 7}
  ]
}`

func TestDecodeValidSpec(t *testing.T) {
	spec, init, err := Decode(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "fig1-wf1" || spec.Start != "t1" {
		t.Errorf("header = %s/%s", spec.Name, spec.Start)
	}
	if len(spec.Tasks) != 6 {
		t.Fatalf("%d tasks", len(spec.Tasks))
	}
	if init["e"] != 0 {
		t.Errorf("init = %v", init)
	}
	if spec.Tasks["t2"].Choose == nil {
		t.Error("choice node lost its Choose")
	}
}

func TestDecodedSpecExecutes(t *testing.T) {
	spec, init, err := Decode(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	st := data.NewStore()
	for k, v := range init {
		st.Init(k, v)
	}
	eng := engine.New(st, wlog.New())
	r, err := eng.NewRun("main", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	// Clean path: t1(a=1) t2(b=2) t5(e=7) t6(f=14).
	snap := eng.Store().Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 || snap["e"] != 7 || snap["f"] != 14 {
		t.Errorf("final state = %v", snap)
	}
	if _, ok := snap["c"]; ok {
		t.Error("wrong branch taken")
	}
}

func TestDecodeRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"unknown field", `{"name":"x","start":"t","banana":1,"tasks":[{"id":"t"}]}`},
		{"empty task id", `{"name":"x","start":"t","tasks":[{"id":""}]}`},
		{"duplicate task", `{"name":"x","start":"t","tasks":[{"id":"t"},{"id":"t"}]}`},
		{"undefined edge", `{"name":"x","start":"t","tasks":[{"id":"t","next":["ghost"]}]}`},
		{"choice without choose", `{"name":"x","start":"t","tasks":[{"id":"t","next":["a","b"]},{"id":"a"},{"id":"b"}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Decode(strings.NewReader(c.json)); err == nil {
				t.Errorf("accepted: %s", c.json)
			}
		})
	}
}

func TestNonChoiceWithChooseRejected(t *testing.T) {
	bad := `{"name":"x","start":"t","tasks":[
	  {"id":"t","next":["u"],"choose":{"key":"k","threshold":1,"low":"u","high":"u"}},
	  {"id":"u"}]}`
	if _, _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("single-successor task with choose accepted")
	}
}
