package wfjson

import (
	"strings"
	"testing"
)

// FuzzDecode hardens the specification parser: arbitrary input must either
// produce a spec that passes validation or return an error — never panic,
// never return an invalid spec.
func FuzzDecode(f *testing.F) {
	f.Add(fig1JSON)
	f.Add(`{"name":"x","start":"t","tasks":[{"id":"t"}]}`)
	f.Add(`{"name":"x","start":"t","tasks":[{"id":"t","next":["u"]},{"id":"u"}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"name":"", "start":"", "tasks":[]}`)
	f.Add(`{"name":"x","start":"a","tasks":[{"id":"a","next":["a"]}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		spec, init, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatal("nil spec without error")
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Decode returned invalid spec: %v", err)
		}
		for k := range init {
			if k == "" {
				t.Fatal("empty init key accepted")
			}
		}
	})
}
