package wfjson

import (
	"selfheal/internal/wf"
)

// FromBlueprint converts a serializable generated workflow (wf.Blueprint)
// into the wire document POST /api/v1/runs accepts. The conversion is
// lossless by construction: blueprints are restricted to exactly the task
// bodies this format can express (sum-plus-bias computes, threshold
// chooses), so Build(FromBlueprint(bp)) compiles the same specification as
// bp.Spec().
func FromBlueprint(bp *wf.Blueprint) *SpecJSON {
	sj := &SpecJSON{
		Name:  bp.Name,
		Start: string(bp.Start),
		Tasks: make([]TaskJSON, 0, len(bp.Tasks)),
	}
	for _, bt := range bp.Tasks {
		tj := TaskJSON{ID: string(bt.ID), Bias: int64(bt.Bias)}
		for _, n := range bt.Next {
			tj.Next = append(tj.Next, string(n))
		}
		for _, k := range bt.Reads {
			tj.Reads = append(tj.Reads, string(k))
		}
		for _, k := range bt.Writes {
			tj.Writes = append(tj.Writes, string(k))
		}
		if c := bt.Choose; c != nil {
			tj.Choose = &ChooseJSON{
				Key:       string(c.Key),
				Threshold: int64(c.Threshold),
				Low:       string(c.Low),
				High:      string(c.High),
			}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	if len(bp.Init) > 0 {
		sj.Init = make(map[string]int64, len(bp.Init))
		for k, v := range bp.Init {
			sj.Init[string(k)] = int64(v)
		}
	}
	return sj
}
