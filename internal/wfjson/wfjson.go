// Package wfjson decodes workflow specifications from JSON for the wfrun
// command-line tool. Task bodies are declarative: every task computes, for
// each key in its write set, the sum of its reads plus a per-task bias
// (wf.SumCompute); choice nodes branch on a threshold over one key
// (wf.ThresholdChoose). This covers the value-sensitive workflows the
// recovery theory needs while keeping specifications serializable.
package wfjson

import (
	"encoding/json"
	"fmt"
	"io"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

// ChooseJSON declares a threshold branch: pick Low when the key's value is
// below Threshold, High otherwise.
type ChooseJSON struct {
	Key       string `json:"key"`
	Threshold int64  `json:"threshold"`
	Low       string `json:"low"`
	High      string `json:"high"`
}

// TaskJSON declares one task.
type TaskJSON struct {
	ID     string      `json:"id"`
	Next   []string    `json:"next,omitempty"`
	Reads  []string    `json:"reads,omitempty"`
	Writes []string    `json:"writes,omitempty"`
	Bias   int64       `json:"bias,omitempty"`
	Choose *ChooseJSON `json:"choose,omitempty"`
}

// SpecJSON is the on-disk workflow format.
type SpecJSON struct {
	Name  string           `json:"name"`
	Start string           `json:"start"`
	Tasks []TaskJSON       `json:"tasks"`
	Init  map[string]int64 `json:"init,omitempty"`
}

// Decode reads a SpecJSON and builds the validated workflow specification
// plus the initial store values it declares.
func Decode(r io.Reader) (*wf.Spec, map[data.Key]data.Value, error) {
	var sj SpecJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return nil, nil, fmt.Errorf("wfjson: %w", err)
	}
	return Build(&sj)
}

// Build converts a parsed SpecJSON into a validated specification.
func Build(sj *SpecJSON) (*wf.Spec, map[data.Key]data.Value, error) {
	spec := &wf.Spec{
		Name:  sj.Name,
		Start: wf.TaskID(sj.Start),
		Tasks: make(map[wf.TaskID]*wf.Task, len(sj.Tasks)),
	}
	for _, tj := range sj.Tasks {
		if tj.ID == "" {
			return nil, nil, fmt.Errorf("wfjson: task with empty id")
		}
		t := &wf.Task{ID: wf.TaskID(tj.ID)}
		for _, n := range tj.Next {
			t.Next = append(t.Next, wf.TaskID(n))
		}
		for _, k := range tj.Reads {
			t.Reads = append(t.Reads, data.Key(k))
		}
		for _, k := range tj.Writes {
			t.Writes = append(t.Writes, data.Key(k))
		}
		t.Compute = wf.SumCompute(data.Value(tj.Bias), t.Writes...)
		if tj.Choose != nil {
			t.Choose = wf.ThresholdChoose(
				data.Key(tj.Choose.Key), data.Value(tj.Choose.Threshold),
				wf.TaskID(tj.Choose.Low), wf.TaskID(tj.Choose.High))
		}
		if _, dup := spec.Tasks[t.ID]; dup {
			return nil, nil, fmt.Errorf("wfjson: duplicate task %q", tj.ID)
		}
		spec.Tasks[t.ID] = t
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	init := make(map[data.Key]data.Value, len(sj.Init))
	for k, v := range sj.Init {
		init[data.Key(k)] = data.Value(v)
	}
	return spec, init, nil
}
