package ids

import (
	"math"
	"math/rand"
	"testing"

	"selfheal/internal/wlog"
)

func TestPoissonTimesValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PoissonTimes(-1, 10, rng); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := PoissonTimes(1, 0, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := PoissonTimes(1, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestPoissonTimesZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts, err := PoissonTimes(0, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Errorf("rate 0 produced %d arrivals", len(ts))
	}
}

func TestPoissonTimesStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rate, horizon = 2.0, 10000.0
	ts, err := PoissonTimes(rate, horizon, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected count rate·horizon = 20000 ± a few hundred.
	got := float64(len(ts))
	if math.Abs(got-rate*horizon) > 4*math.Sqrt(rate*horizon) {
		t.Errorf("got %d arrivals, want ≈%g", len(ts), rate*horizon)
	}
	// Sorted, in range.
	for i, x := range ts {
		if x < 0 || x >= horizon {
			t.Fatalf("arrival %d out of range: %g", i, x)
		}
		if i > 0 && ts[i-1] > x {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestScheduleAssignsAllWithinArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bad := []wlog.InstanceID{"r/a#1", "r/b#1", "r/c#1"}
	evs, err := Schedule(bad, 5, 0.1, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	seen := map[wlog.InstanceID]bool{}
	for i, e := range evs {
		if len(e.Bad) != 1 {
			t.Errorf("event %d reports %d instances, want 1", i, len(e.Bad))
		}
		seen[e.Bad[0]] = true
		if i > 0 && evs[i-1].Time > e.Time {
			t.Error("events not sorted by time")
		}
	}
	for _, b := range bad {
		if !seen[b] {
			t.Errorf("instance %s never reported", b)
		}
	}
}

func TestScheduleDropsBeyondHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := []wlog.InstanceID{"r/a#1", "r/b#1", "r/c#1"}
	// Rate so low that essentially no arrivals land within the horizon.
	evs, err := Schedule(bad, 1e-9, 0, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Errorf("got %d events, want 0", len(evs))
	}
}

func TestScheduleValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Schedule(nil, 1, -1, 10, rng); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := Schedule(nil, -1, 0, 10, rng); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestScheduleZeroDelayReportsAtArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	arrRng := rand.New(rand.NewSource(6))
	arr, err := PoissonTimes(2, 50, arrRng)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := Schedule([]wlog.InstanceID{"r/a#1", "r/b#1"}, 2, 0, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := range evs {
		if math.Abs(evs[i].Time-arr[i]) > 1e-12 {
			t.Errorf("event %d at %g, arrival at %g (delay should be 0)", i, evs[i].Time, arr[i])
		}
	}
}
