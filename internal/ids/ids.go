// Package ids simulates the intrusion detection system of the paper's
// architecture (Fig 2, §IV.D): attacks occur as a Poisson process, and each
// malicious task instance is reported after an exponential detection delay.
// The paper deliberately abstracts IDS quality (no false alarms, eventual
// detection guaranteed by the administrator); this package therefore models
// only arrival and delay timing.
package ids

import (
	"fmt"
	"math/rand"
	"sort"

	"selfheal/internal/wlog"
)

// Event is one timed IDS report.
type Event struct {
	// Time is the (virtual) report time.
	Time float64
	// Bad lists the instances reported malicious.
	Bad []wlog.InstanceID
}

// PoissonTimes returns the arrival times of a Poisson process with the given
// rate on [0, horizon).
func PoissonTimes(rate, horizon float64, rng *rand.Rand) ([]float64, error) {
	if rate < 0 || horizon <= 0 {
		return nil, fmt.Errorf("ids: bad Poisson parameters rate=%g horizon=%g", rate, horizon)
	}
	if rng == nil {
		return nil, fmt.Errorf("ids: nil rng")
	}
	var out []float64
	if rate == 0 {
		return out, nil
	}
	t := rng.ExpFloat64() / rate
	for t < horizon {
		out = append(out, t)
		t += rng.ExpFloat64() / rate
	}
	return out, nil
}

// Schedule assigns report times to known-malicious instances: attack i
// becomes visible at the i-th Poisson arrival plus an exponential detection
// delay with the given mean. Events are returned sorted by report time, one
// instance per event (the IDS reports intrusions one at a time, §IV.A).
// Instances beyond the number of arrivals within the horizon are dropped —
// the attacker stopped attacking.
func Schedule(bad []wlog.InstanceID, rate, meanDelay, horizon float64, rng *rand.Rand) ([]Event, error) {
	arrivals, err := PoissonTimes(rate, horizon, rng)
	if err != nil {
		return nil, err
	}
	if meanDelay < 0 {
		return nil, fmt.Errorf("ids: negative mean delay %g", meanDelay)
	}
	n := len(bad)
	if len(arrivals) < n {
		n = len(arrivals)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		delay := 0.0
		if meanDelay > 0 {
			delay = rng.ExpFloat64() * meanDelay
		}
		out = append(out, Event{
			Time: arrivals[i] + delay,
			Bad:  []wlog.InstanceID{bad[i]},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}
