package fuzz

import (
	"encoding/json"
	"fmt"

	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// OpKind discriminates schedule operations.
type OpKind string

const (
	// OpSubmit submits a workflow run (POST /api/v1/runs).
	OpSubmit OpKind = "submit"
	// OpForge commits a forged task instance (POST /api/v1/chaos/forge).
	OpForge OpKind = "forge"
	// OpAlert reports a batch of IDS alerts (POST /api/v1/alerts),
	// retrying until the whole batch is admitted.
	OpAlert OpKind = "alert"
	// OpCheckpoint forces a durable snapshot (POST /api/v1/chaos/checkpoint);
	// ignored on non-durable targets.
	OpCheckpoint OpKind = "checkpoint"
	// OpDrain waits until recovery is drained and all runs retired.
	OpDrain OpKind = "drain"
	// OpRestart crash-restarts the target (SIGKILL on process targets) and
	// reconnects; ignored on targets that cannot restart.
	OpRestart OpKind = "restart"
)

// ForgeTask is the task name every forged instance uses. Forged commits
// always get visit 1, so a forge on attack run "atk3" is deterministically
// instance "atk3/x#1" — which lets alerts be generated before execution.
const ForgeTask = "x"

// Op is one schedule operation. Exactly the fields of its Kind are set.
type Op struct {
	Kind OpKind `json:"kind"`

	// Run is the run ID (submit) or the forged attack run name (forge).
	Run string `json:"run,omitempty"`
	// Blueprint is the submitted workflow (submit).
	Blueprint *wf.Blueprint `json:"blueprint,omitempty"`

	// Reads and Writes describe the forged instance (forge): the keys whose
	// latest versions it observes and the corrupt values it commits.
	Reads  []string         `json:"reads,omitempty"`
	Writes map[string]int64 `json:"writes,omitempty"`

	// Batch is the alert batch (alert): each element is one alert's bad
	// set of instance IDs.
	Batch [][]string `json:"batch,omitempty"`
}

// ForgedInstance returns the deterministic instance ID a forge op commits.
func (o *Op) ForgedInstance() wlog.InstanceID {
	return wlog.FormatInstance(o.Run, ForgeTask, 1)
}

// Schedule is a deterministic, serializable fuzzing episode.
type Schedule struct {
	// Seed reproduces the schedule via GenSchedule; informational once the
	// ops are serialized.
	Seed int64 `json:"seed"`
	// Ops are executed in order; the runner appends a final drain and the
	// oracle checks implicitly.
	Ops []Op `json:"ops"`
}

// Validate checks the structural invariants the runner and shrinker rely
// on:
//
//   - submits and forges have unique run names, and every forge is alerted
//     eventually — otherwise the benign-equality oracle would fail
//     vacuously on an unrepaired attack;
//   - alerts only name instances earlier ops create (forged instances, or
//     start tasks of submitted runs);
//   - checkpoints happen only at repaired quiescence: an OpCheckpoint must
//     directly follow an OpDrain and every earlier forge must already be
//     alerted, since a snapshot capturing unrepaired damage compacts the
//     attack evidence away (snapshot-bounded replay, docs/DURABILITY.md)
//     and the corruption becomes unrecoverable by design;
//   - alerts never name instances created before the latest checkpoint —
//     after a crash-restart those log entries are beneath the snapshot
//     epoch and the service rejects the accusation.
func (s *Schedule) Validate() error {
	submittedAfterCkpt := map[string]bool{}
	forged := map[wlog.InstanceID]bool{}
	forgedAfterCkpt := map[wlog.InstanceID]bool{}
	alerted := map[wlog.InstanceID]bool{}
	for i, op := range s.Ops {
		switch op.Kind {
		case OpSubmit:
			if op.Run == "" || op.Blueprint == nil {
				return fmt.Errorf("fuzz: op %d: submit needs run and blueprint", i)
			}
			if submittedAfterCkpt[op.Run] {
				return fmt.Errorf("fuzz: op %d: duplicate run %q", i, op.Run)
			}
			if _, err := op.Blueprint.Spec(); err != nil {
				return fmt.Errorf("fuzz: op %d: run %q: %w", i, op.Run, err)
			}
			submittedAfterCkpt[op.Run] = true
		case OpForge:
			if op.Run == "" || len(op.Writes) == 0 {
				return fmt.Errorf("fuzz: op %d: forge needs run and writes", i)
			}
			inst := op.ForgedInstance()
			if forged[inst] {
				return fmt.Errorf("fuzz: op %d: duplicate forge %s", i, inst)
			}
			forged[inst] = true
			forgedAfterCkpt[inst] = true
		case OpAlert:
			if len(op.Batch) == 0 {
				return fmt.Errorf("fuzz: op %d: empty alert batch", i)
			}
			for _, bad := range op.Batch {
				if len(bad) == 0 {
					return fmt.Errorf("fuzz: op %d: alert names no instances", i)
				}
				for _, id := range bad {
					inst := wlog.InstanceID(id)
					if forged[inst] {
						if !forgedAfterCkpt[inst] {
							return fmt.Errorf("fuzz: op %d: alert names %s, forged before the latest checkpoint", i, id)
						}
						alerted[inst] = true
						continue
					}
					run, ok := accusedRun(id)
					if !ok || !submittedAfterCkpt[run] {
						return fmt.Errorf("fuzz: op %d: alert names %s, which no op since the latest checkpoint creates", i, id)
					}
				}
			}
		case OpCheckpoint:
			if i == 0 || s.Ops[i-1].Kind != OpDrain {
				return fmt.Errorf("fuzz: op %d: checkpoint must directly follow a drain (snapshots only at repaired quiescence)", i)
			}
			for inst := range forged {
				if !alerted[inst] {
					return fmt.Errorf("fuzz: op %d: checkpoint with unrepaired forge %s — the snapshot would bake the corruption in", i, inst)
				}
			}
			submittedAfterCkpt = map[string]bool{}
			forgedAfterCkpt = map[wlog.InstanceID]bool{}
		case OpDrain, OpRestart:
			// No payload.
		default:
			return fmt.Errorf("fuzz: op %d: unknown kind %q", i, op.Kind)
		}
	}
	for inst := range forged {
		if !alerted[inst] {
			return fmt.Errorf("fuzz: forge %s is never alerted — the schedule leaves the attack unrepaired", inst)
		}
	}
	return nil
}

// accusedRun extracts the run name from an accused instance ID
// ("run/task#visit").
func accusedRun(id string) (string, bool) {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			return id[:i], i > 0
		}
	}
	return "", false
}

// EncodeSchedule serializes a schedule as indented JSON (the corpus entry
// payload format).
func EncodeSchedule(s *Schedule) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSchedule parses a schedule and validates it.
func DecodeSchedule(b []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("fuzz: schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
