package fuzz

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"selfheal/internal/durable"
	"selfheal/internal/httpapi"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
)

// InProcOptions configures an in-process target.
type InProcOptions struct {
	// Shards is the worker shard count (0 takes shard defaults).
	Shards int
	// Dir enables durable mode: the service persists to this WAL directory
	// and Restart reopens it (a clean-shutdown replay; the SIGKILL variant
	// is cmd/selfheal-fuzz's child-process target).
	Dir string
	// Strict enables Theorem-4 strict gating; Triage enables the streaming
	// triage pipeline — both legal interleavings the fuzzer should cover.
	Strict bool
	Triage bool
	// Fault injects a deliberate soundness bug (mutation smoke).
	Fault shard.FaultInjection
}

// InProcTarget serves ServerWithChaos on a loopback listener in-process:
// the default episode target for go tests and smoke campaigns. Repairs are
// always audited (shard.Config.AuditRepairs) so the dag-audit oracle is
// live.
type InProcTarget struct {
	opts InProcOptions
	svc  *shard.Service
	srv  *http.Server
	url  string
	done chan error
}

// NewInProcTarget boots a fresh service and serves it on an ephemeral
// loopback port.
func NewInProcTarget(opts InProcOptions) (*InProcTarget, error) {
	t := &InProcTarget{opts: opts}
	if err := t.boot(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *InProcTarget) boot() error {
	cfg := shard.Config{
		Shards:       t.opts.Shards,
		Strict:       t.opts.Strict,
		AuditRepairs: true,
		Fault:        t.opts.Fault,
	}
	if t.opts.Triage {
		cfg.Triage = triage.All()
	}
	var svc *shard.Service
	var err error
	if t.opts.Dir != "" {
		svc, err = shard.NewDurable(cfg, t.opts.Dir, durable.Options{})
	} else {
		svc, err = shard.New(cfg, nil)
	}
	if err != nil {
		return fmt.Errorf("fuzz: in-proc target: %w", err)
	}
	svc.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Stop()
		return fmt.Errorf("fuzz: in-proc target: %w", err)
	}
	srv := &http.Server{
		Handler:           httpapi.ServerWithChaos(obs.NewRegistry(), svc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	t.svc, t.srv, t.done = svc, srv, done
	t.url = "http://" + ln.Addr().String()
	return nil
}

func (t *InProcTarget) shutdown() error {
	err := t.srv.Close()
	<-t.done
	t.svc.Stop()
	if err != nil {
		return fmt.Errorf("fuzz: in-proc target: %w", err)
	}
	return nil
}

// BaseURL implements Target; it changes across Restart.
func (t *InProcTarget) BaseURL() string { return t.url }

// Durable implements Target.
func (t *InProcTarget) Durable() bool { return t.opts.Dir != "" }

// Restart implements Target: on a durable target it stops the service and
// reopens the same WAL directory, exercising replay end to end.
func (t *InProcTarget) Restart() error {
	if !t.Durable() {
		return ErrRestartUnsupported
	}
	if err := t.shutdown(); err != nil {
		return err
	}
	return t.boot()
}

// Close implements Target.
func (t *InProcTarget) Close() error { return t.shutdown() }
