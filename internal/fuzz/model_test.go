package fuzz

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

// Schedule generation is a pure function of the seed.
func TestGenScheduleDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Checkpoints, p.Restarts = 1, 1
	a, _ := json.Marshal(GenSchedule(42, p))
	b, _ := json.Marshal(GenSchedule(42, p))
	if string(a) != string(b) {
		t.Fatal("same seed generated different schedules")
	}
	c, _ := json.Marshal(GenSchedule(43, p))
	if string(a) == string(c) {
		t.Fatal("different seeds generated identical schedules")
	}
}

// Generated schedules satisfy the model invariants across many seeds.
func TestGenScheduleValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := DefaultParams()
		p.Checkpoints, p.Restarts = 1, 1
		if err := GenSchedule(seed, p).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	base := GenSchedule(1, DefaultParams())
	cases := map[string]func(*Schedule){
		"unalerted forge": func(s *Schedule) {
			kept := s.Ops[:0]
			for _, op := range s.Ops {
				if op.Kind != OpAlert {
					kept = append(kept, op)
				}
			}
			s.Ops = kept
		},
		"unknown accusation": func(s *Schedule) {
			s.Ops = append(s.Ops, Op{Kind: OpAlert, Batch: [][]string{{"ghost/t0#1"}}})
		},
		"duplicate run": func(s *Schedule) {
			for _, op := range s.Ops {
				if op.Kind == OpSubmit {
					s.Ops = append(s.Ops, op)
					return
				}
			}
		},
	}
	for name, mutate := range cases {
		s := cloneSchedule(base)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// Corpus entries survive an encode/decode round trip exactly.
func TestCorpusRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Checkpoints, p.Restarts = 1, 1
	e := &CorpusEntry{
		Version:   CorpusVersion,
		Violation: "benign-store: store differs",
		Schedule:  GenSchedule(9, p),
	}
	b, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", e, got)
	}
}

func TestCorpusDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	e := &CorpusEntry{Version: CorpusVersion, Violation: "x", Schedule: GenSchedule(3, DefaultParams())}
	path, err := WriteCorpusEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries", len(entries))
	}
	if got := entries[filepath.Base(path)]; got == nil || !reflect.DeepEqual(got.Schedule, e.Schedule) {
		t.Fatal("loaded entry differs from written entry")
	}
	// A missing directory is an empty corpus, not an error.
	if empty, err := LoadCorpus(filepath.Join(dir, "missing")); err != nil || len(empty) != 0 {
		t.Fatalf("missing dir: %v, %d entries", err, len(empty))
	}
}

func TestDecodeEntryRejects(t *testing.T) {
	if _, err := DecodeEntry([]byte(`{"version":99,"schedule":{"seed":1,"ops":[]}}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := DecodeEntry([]byte(`{"version":1}`)); err == nil {
		t.Error("missing schedule accepted")
	}
	if _, err := DecodeEntry([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
