package fuzz

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"selfheal/internal/shard"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// ErrRestartUnsupported is returned by targets that cannot crash-restart
// (non-durable servers lose everything; restart ops are skipped on them).
var ErrRestartUnsupported = errors.New("fuzz: target does not support restart")

// A Target is one live service under test. Episodes need reset semantics:
// callers create a fresh target per episode and Close it afterwards.
type Target interface {
	// BaseURL is the server's current root, e.g. "http://127.0.0.1:41327".
	// It may change across Restart.
	BaseURL() string
	// Durable reports whether the target persists state (checkpoints and
	// restarts are meaningful).
	Durable() bool
	// Restart crash-restarts the server on its persistent state and
	// returns once it serves again, or ErrRestartUnsupported.
	Restart() error
	// Close tears the target down.
	Close() error
}

// Report is the outcome of one episode.
type Report struct {
	// Violations lists every failed oracle; empty means the episode passed.
	Violations []Violation
	// Ops counts executed schedule operations (restarts/checkpoints
	// skipped on incapable targets are not counted).
	Ops int
}

// Failed reports whether any oracle failed.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Runner executes schedules against targets. The zero value is usable;
// Timeout bounds each episode (default 30s).
type Runner struct {
	Timeout time.Duration
}

func (r *Runner) timeout() time.Duration {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return 30 * time.Second
}

// RunEpisode replays sch against t, appends a final drain, and checks the
// global oracles. A non-nil error is a harness failure (the target broke or
// timed out), not an oracle violation.
func (r *Runner) RunEpisode(t Target, sch *Schedule) (*Report, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	c := &client{base: t, deadline: time.Now().Add(r.timeout())}
	rep := &Report{}
	var acked []string // run IDs acknowledged with 201

	for i, op := range sch.Ops {
		var err error
		switch op.Kind {
		case OpSubmit:
			err = c.submit(op.Run, wfjson.FromBlueprint(op.Blueprint))
			if err == nil {
				acked = append(acked, op.Run)
			}
		case OpForge:
			err = c.forge(&op)
		case OpAlert:
			err = c.alert(op.Batch)
		case OpCheckpoint:
			if !t.Durable() {
				continue
			}
			err = c.checkpoint()
		case OpDrain:
			err = c.drain()
		case OpRestart:
			if !t.Durable() {
				continue
			}
			if err = t.Restart(); err != nil {
				return nil, fmt.Errorf("fuzz: op %d: %w", i, err)
			}
			// Acknowledged submissions are fsynced before the 201, so
			// every acked run must survive the crash.
			for _, id := range acked {
				if _, gerr := c.runInfo(id); gerr != nil {
					rep.Violations = append(rep.Violations, Violation{
						Oracle: "restart",
						Detail: fmt.Sprintf("run %s lost across restart: %v", id, gerr),
					})
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("fuzz: op %d (%s): %w", i, op.Kind, err)
		}
		rep.Ops++
	}

	if err := c.drain(); err != nil {
		return nil, fmt.Errorf("fuzz: final drain: %w", err)
	}

	// Oracle: every submitted run retired successfully.
	runs, err := c.runs()
	if err != nil {
		return nil, err
	}
	for _, info := range runs {
		if info.Status != "done" {
			rep.Violations = append(rep.Violations, Violation{
				Oracle: "run-failed",
				Detail: fmt.Sprintf("run %s ended %q (%s)", info.ID, info.Status, info.Error),
			})
		}
	}

	// Oracle: repaired state equals the attack-free serial execution.
	want, err := BenignStore(sch)
	if err != nil {
		return nil, err
	}
	got, err := c.store()
	if err != nil {
		return nil, err
	}
	if diff := DiffStores(want, got); diff != "" {
		rep.Violations = append(rep.Violations, Violation{
			Oracle: "benign-store",
			Detail: "store differs from attack-free execution:\n" + diff,
		})
	}

	// Oracles: version-index integrity, repair completion and Theorem-3
	// repair ordering.
	v, err := c.verify()
	if err != nil {
		return nil, err
	}
	if v.CheckIndex != "ok" {
		rep.Violations = append(rep.Violations, Violation{Oracle: "check-index", Detail: v.CheckIndex})
	}
	if v.RecoveryError != "" {
		// Every generated alert is repairable by construction (validated
		// against the checkpoint horizon), so a refused or failed repair is
		// a soundness violation, not an expected ErrHorizon refusal.
		rep.Violations = append(rep.Violations, Violation{Oracle: "recovery-error", Detail: v.RecoveryError})
	}
	if v.AuditViolations > 0 {
		rep.Violations = append(rep.Violations, Violation{
			Oracle: "dag-audit",
			Detail: fmt.Sprintf("%d repair-schedule violations; last: %s", v.AuditViolations, v.AuditError),
		})
	}
	return rep, nil
}

// client drives one target over HTTP with a per-episode deadline.
type client struct {
	base     Target
	deadline time.Time
}

func (c *client) url(path string) string { return c.base.BaseURL() + path }

func (c *client) do(method, path string, payload, out any) (int, error) {
	var body bytes.Buffer
	if payload != nil {
		if err := json.NewEncoder(&body).Encode(payload); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, c.url(path), &body)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decode: %w", method, path, err)
		}
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, raw.String())
	}
	return resp.StatusCode, nil
}

func (c *client) submit(id string, spec *wfjson.SpecJSON) error {
	_, err := c.do("POST", "/api/v1/runs", map[string]any{"id": id, "spec": spec}, nil)
	return err
}

func (c *client) forge(op *Op) error {
	payload := map[string]any{
		"run": op.Run, "task": ForgeTask,
		"reads": op.Reads, "writes": op.Writes,
	}
	_, err := c.do("POST", "/api/v1/chaos/forge", payload, nil)
	return err
}

// alert waits for every accused instance to be committed, then posts the
// whole batch, retrying until no alert is dropped by the bounded queue.
// Retries repost the full batch: repeat alerts naming the same instances
// are valid and their repairs idempotent, so over-reporting is safe.
func (c *client) alert(batch [][]string) error {
	need := map[wlog.InstanceID]bool{}
	for _, bad := range batch {
		for _, id := range bad {
			need[wlog.InstanceID(id)] = true
		}
	}
	if err := c.waitCommitted(need); err != nil {
		return err
	}
	for {
		var resp struct {
			Admitted int `json:"admitted"`
			Dropped  int `json:"dropped"`
		}
		status, err := c.do("POST", "/api/v1/alerts", map[string]any{"batch": batch}, &resp)
		switch {
		case err == nil && resp.Dropped == 0:
			return nil
		case err != nil && status != http.StatusTooManyRequests:
			return err
		}
		// Backpressure (whole or partial drop): pace and repost.
		if time.Now().After(c.deadline) {
			return fmt.Errorf("fuzz: alert batch never fully admitted before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCommitted polls the committed log until every instance in need is
// present (legitimately accused tasks may not have executed yet).
func (c *client) waitCommitted(need map[wlog.InstanceID]bool) error {
	for {
		var doc struct {
			Entries []struct {
				ID string `json:"id"`
			} `json:"entries"`
		}
		if _, err := c.do("GET", "/api/v1/chaos/log", nil, &doc); err != nil {
			return err
		}
		seen := map[wlog.InstanceID]bool{}
		for _, e := range doc.Entries {
			seen[wlog.InstanceID(e.ID)] = true
		}
		var missing []string
		for id := range need {
			if !seen[id] {
				missing = append(missing, string(id))
			}
		}
		if len(missing) == 0 {
			return nil
		}
		if time.Now().After(c.deadline) {
			sort.Strings(missing)
			return fmt.Errorf("fuzz: accused instances never committed before deadline: %s", strings.Join(missing, ", "))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *client) checkpoint() error {
	_, err := c.do("POST", "/api/v1/chaos/checkpoint", nil, nil)
	return err
}

func (c *client) drain() error {
	left := time.Until(c.deadline)
	if left <= 0 {
		return fmt.Errorf("fuzz: episode deadline exceeded before drain")
	}
	_, err := c.do("POST", "/api/v1/chaos/drain?wait=idle&timeout="+left.Truncate(time.Millisecond).String(), nil, nil)
	return err
}

func (c *client) runs() ([]shard.RunInfo, error) {
	var out []shard.RunInfo
	_, err := c.do("GET", "/api/v1/runs", nil, &out)
	return out, err
}

func (c *client) runInfo(id string) (shard.RunInfo, error) {
	var out shard.RunInfo
	_, err := c.do("GET", "/api/v1/runs/"+id, nil, &out)
	return out, err
}

func (c *client) store() (map[string]int64, error) {
	var out map[string]int64
	_, err := c.do("GET", "/api/v1/store", nil, &out)
	return out, err
}

func (c *client) verify() (*verifyDoc, error) {
	var out verifyDoc
	_, err := c.do("GET", "/api/v1/chaos/verify", nil, &out)
	return &out, err
}

// verifyDoc mirrors httpapi's GET /api/v1/chaos/verify document.
type verifyDoc struct {
	State           string `json:"state"`
	CheckIndex      string `json:"check_index"`
	AuditViolations int    `json:"audit_violations"`
	AuditError      string `json:"audit_error"`
	RecoveryError   string `json:"recovery_error"`
}
