package fuzz

import (
	"encoding/json"
	"fmt"
	"strings"

	"selfheal/internal/wf"
)

// Fails reports whether a candidate schedule still reproduces the failure
// being shrunk (typically: run an episode on a fresh target and check the
// same oracle fires). A non-nil error aborts shrinking; the best schedule
// found so far is returned.
type Fails func(*Schedule) (bool, error)

// Shrink reduces a failing schedule to a minimal reproducer: first it
// drops whole operations (with cascades — removing a forge drops its
// accusations, removing an alert drops forges left unalerted, removing a
// submit drops accusations against its tasks), then it shrinks surviving
// blueprints by removing leaf tasks and thins alert batches of redundant
// accusations. Every candidate keeps Schedule.Validate's invariants, so a
// shrink can never manufacture a new failure mode (an unalerted forge would
// fail the benign oracle for a reason the original schedule never had).
//
// The search is greedy and deterministic: candidates are tried in a fixed
// order and the first still-failing candidate is adopted, until a full pass
// makes no progress. Returns the shrunk schedule and the number of
// successful shrink steps.
func Shrink(sch *Schedule, fails Fails) (*Schedule, int, error) {
	cur := cloneSchedule(sch)
	steps := 0
	for {
		next, err := shrinkOnce(cur, fails)
		if err != nil {
			return cur, steps, err
		}
		if next == nil {
			return cur, steps, nil
		}
		cur = next
		steps++
	}
}

// shrinkOnce returns the first still-failing reduction of cur, or nil when
// none of the candidates reproduces the failure.
func shrinkOnce(cur *Schedule, fails Fails) (*Schedule, error) {
	for _, cand := range candidates(cur) {
		if cand.Validate() != nil {
			continue
		}
		bad, err := fails(cand)
		if err != nil {
			return nil, err
		}
		if bad {
			return cand, nil
		}
	}
	return nil, nil
}

// candidates enumerates the reductions of s in fixed order: op removals
// (largest effect first), then per-blueprint leaf-task removals, then
// accusation thinning.
func candidates(s *Schedule) []*Schedule {
	var out []*Schedule
	for i := range s.Ops {
		if c := removeOp(s, i); c != nil {
			out = append(out, c)
		}
	}
	for i, op := range s.Ops {
		if op.Kind != OpSubmit {
			continue
		}
		for _, t := range removableTasks(op.Blueprint) {
			if c := removeTask(s, i, t); c != nil {
				out = append(out, c)
			}
		}
	}
	out = append(out, thinAccusations(s)...)
	return out
}

// removeOp drops op i and cascades the removal so the schedule stays
// well-formed.
func removeOp(s *Schedule, i int) *Schedule {
	cp := cloneSchedule(s)
	op := cp.Ops[i]
	cp.Ops = append(cp.Ops[:i], cp.Ops[i+1:]...)
	switch op.Kind {
	case OpSubmit:
		// Accusations against the removed run's tasks have no target.
		dropAccusations(cp, func(id string) bool {
			run, ok := accusedRun(id)
			return ok && run == op.Run
		})
	case OpForge:
		inst := string(op.ForgedInstance())
		dropAccusations(cp, func(id string) bool { return id == inst })
	case OpAlert:
		// Forges alerted only here would be left unrepaired: drop them
		// too (their instance cannot be named by any other alert, so no
		// further cascade).
		alerted := map[string]bool{}
		for _, o := range cp.Ops {
			if o.Kind != OpAlert {
				continue
			}
			for _, bad := range o.Batch {
				for _, id := range bad {
					alerted[id] = true
				}
			}
		}
		kept := cp.Ops[:0]
		for _, o := range cp.Ops {
			if o.Kind == OpForge && !alerted[string(o.ForgedInstance())] {
				continue
			}
			kept = append(kept, o)
		}
		cp.Ops = kept
	}
	return cp
}

// dropAccusations removes every accused ID matching drop, then alerts (and
// batches) left empty.
func dropAccusations(s *Schedule, drop func(string) bool) {
	keptOps := s.Ops[:0]
	for _, op := range s.Ops {
		if op.Kind != OpAlert {
			keptOps = append(keptOps, op)
			continue
		}
		var batch [][]string
		for _, bad := range op.Batch {
			var ids []string
			for _, id := range bad {
				if !drop(id) {
					ids = append(ids, id)
				}
			}
			if len(ids) > 0 {
				batch = append(batch, ids)
			}
		}
		if len(batch) > 0 {
			op.Batch = batch
			keptOps = append(keptOps, op)
		}
	}
	s.Ops = keptOps
}

// removableTasks lists the non-start tasks of bp whose removal keeps the
// blueprint valid, in declaration order.
func removableTasks(bp *wf.Blueprint) []wf.TaskID {
	var out []wf.TaskID
	for _, bt := range bp.Tasks {
		if bt.ID == bp.Start {
			continue
		}
		if shrunkBlueprint(bp, bt.ID) != nil {
			out = append(out, bt.ID)
		}
	}
	return out
}

// shrunkBlueprint returns bp without task victim (references to it removed,
// choices degraded to straight-line successors), or nil when the result is
// not a valid workflow.
func shrunkBlueprint(bp *wf.Blueprint, victim wf.TaskID) *wf.Blueprint {
	cp := &wf.Blueprint{Name: bp.Name, Start: bp.Start, Init: bp.Init}
	for _, bt := range bp.Tasks {
		if bt.ID == victim {
			continue
		}
		t := bt
		var next []wf.TaskID
		for _, n := range t.Next {
			if n != victim {
				next = append(next, n)
			}
		}
		t.Next = next
		if t.Choose != nil && (t.Choose.Low == victim || t.Choose.High == victim || len(next) < 2) {
			t.Choose = nil
		}
		cp.Tasks = append(cp.Tasks, t)
	}
	if _, err := cp.Spec(); err != nil {
		return nil
	}
	return cp
}

// removeTask drops task victim from the blueprint of submit op i, plus any
// accusations naming one of the victim's instances.
func removeTask(s *Schedule, i int, victim wf.TaskID) *Schedule {
	cp := cloneSchedule(s)
	bp := shrunkBlueprint(cp.Ops[i].Blueprint, victim)
	if bp == nil {
		return nil
	}
	cp.Ops[i].Blueprint = bp
	prefix := cp.Ops[i].Run + "/" + string(victim) + "#"
	dropAccusations(cp, func(id string) bool { return strings.HasPrefix(id, prefix) })
	return cp
}

// thinAccusations yields one candidate per droppable accused ID: forged
// instances stay (dropping the only alert for a forge is removeOp's job,
// with its cascade), so this trims false accusations of legitimate tasks.
func thinAccusations(s *Schedule) []*Schedule {
	forged := map[string]bool{}
	for _, op := range s.Ops {
		if op.Kind == OpForge {
			forged[string(op.ForgedInstance())] = true
		}
	}
	var out []*Schedule
	for oi, op := range s.Ops {
		if op.Kind != OpAlert {
			continue
		}
		for bi, bad := range op.Batch {
			for ii, id := range bad {
				if forged[id] {
					continue
				}
				cp := cloneSchedule(s)
				b := cp.Ops[oi].Batch[bi]
				cp.Ops[oi].Batch[bi] = append(append([]string{}, b[:ii]...), b[ii+1:]...)
				if len(cp.Ops[oi].Batch[bi]) == 0 {
					dropAccusations(cp, func(string) bool { return false }) // prune empties
				}
				out = append(out, cp)
			}
		}
	}
	return out
}

// cloneSchedule deep-copies via the JSON codec — schedules are fully
// serializable by construction.
func cloneSchedule(s *Schedule) *Schedule {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("fuzz: clone: %v", err))
	}
	var cp Schedule
	if err := json.Unmarshal(b, &cp); err != nil {
		panic(fmt.Sprintf("fuzz: clone: %v", err))
	}
	return &cp
}
