package fuzz

import (
	"encoding/json"
	"testing"
	"time"

	"selfheal/internal/shard"
)

func inprocFactory(opts InProcOptions) TargetFactory {
	return func() (Target, error) { return NewInProcTarget(opts) }
}

func runner() *Runner { return &Runner{Timeout: 20 * time.Second} }

// Healthy services must pass every oracle on generated schedules: forges
// corrupt state, alerts trigger repair, and the drained store converges to
// the attack-free execution.
func TestEpisodeHealthyServicePasses(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		sch := GenSchedule(seed, DefaultParams())
		rep, err := runner().runOn(inprocFactory(InProcOptions{}), sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: unexpected violation %s", seed, v)
		}
	}
}

// The triage and strict configurations change interleaving semantics but
// not the soundness claims.
func TestEpisodeHealthyVariantsPass(t *testing.T) {
	for name, opts := range map[string]InProcOptions{
		"triage": {Triage: true},
		"strict": {Strict: true},
	} {
		sch := GenSchedule(7, DefaultParams())
		rep, err := runner().runOn(inprocFactory(opts), sch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s: unexpected violation %s", name, v)
		}
	}
}

// A durable target passes episodes that interleave checkpoints and
// restarts: acknowledged state survives replay and repair still converges.
func TestEpisodeDurableRestartPasses(t *testing.T) {
	p := DefaultParams()
	p.Checkpoints = 1
	p.Restarts = 2
	sch := GenSchedule(11, p)
	factory := func() (Target, error) {
		return NewInProcTarget(InProcOptions{Dir: t.TempDir()})
	}
	rep, err := runner().runOn(factory, sch)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation %s", v)
	}
}

// The mutation smoke: with the skip-repair fault injected, the benign-store
// oracle must fire, and shrinking must produce a smaller schedule that
// still reproduces it — the end-to-end proof the fuzzer can find real
// soundness bugs.
func TestMutationSmokeFindsAndShrinks(t *testing.T) {
	factory := inprocFactory(InProcOptions{Fault: shard.FaultInjection{SkipRepair: true}})
	res, err := runner().Campaign(factory, []int64{1}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("fuzzer missed the injected fault: %d failures", len(res.Failures))
	}
	f := res.Failures[0]
	if f.Violations[0].Oracle != "benign-store" {
		t.Errorf("expected benign-store violation first, got %s", f.Violations[0])
	}
	if f.ShrinkSteps == 0 {
		t.Error("shrinker made no progress on a generated schedule")
	}
	orig := GenSchedule(1, DefaultParams())
	if len(f.Shrunk.Ops) >= len(orig.Ops) {
		t.Errorf("shrunk schedule has %d ops, original %d", len(f.Shrunk.Ops), len(orig.Ops))
	}
	// The shrunk repro still fails the original oracle on a fresh target.
	rep, err := runner().runOn(factory, f.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		found = found || v.Oracle == "benign-store"
	}
	if !found {
		t.Errorf("shrunk repro no longer fails benign-store: %v", rep.Violations)
	}
	// And the fix (no fault) makes the repro pass — the corpus regression
	// contract.
	rep, err = runner().runOn(inprocFactory(InProcOptions{}), f.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("shrunk repro fails on a healthy service: %v", rep.Violations)
	}
}

// Shrinking is deterministic: the same failing schedule shrinks to the same
// reproducer when the predicate is pure.
func TestShrinkDeterministic(t *testing.T) {
	sch := GenSchedule(5, DefaultParams())
	// A pure structural predicate: "fails" while a forge on run atk0 and at
	// least one submit survive — no service in the loop, so the test is
	// fast and exact.
	pred := func(cand *Schedule) (bool, error) {
		hasForge, hasSubmit := false, false
		for _, op := range cand.Ops {
			hasForge = hasForge || (op.Kind == OpForge && op.Run == "atk0")
			hasSubmit = hasSubmit || op.Kind == OpSubmit
		}
		return hasForge && hasSubmit, nil
	}
	a, stepsA, err := Shrink(sch, pred)
	if err != nil {
		t.Fatal(err)
	}
	b, stepsB, err := Shrink(sch, pred)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) || stepsA != stepsB {
		t.Errorf("shrink not deterministic:\n%s\nvs\n%s", ja, jb)
	}
	if ok, _ := pred(a); !ok {
		t.Error("shrunk schedule no longer satisfies the predicate")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("shrunk schedule invalid: %v", err)
	}
	if len(a.Ops) >= len(sch.Ops) {
		t.Errorf("no reduction: %d ops vs %d", len(a.Ops), len(sch.Ops))
	}
}
