package fuzz

import (
	"fmt"
	"math/rand"

	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// GenParams sizes the generated schedules.
type GenParams struct {
	// Runs is the number of workflow submissions per episode.
	Runs int
	// Tasks, Keys, MaxReads, MaxWrites and BranchProb shape each generated
	// blueprint (wf.GenConfig); zero values take wf defaults.
	Tasks      int
	Keys       int
	MaxReads   int
	MaxWrites  int
	BranchProb float64
	// Forges is the number of forged task instances interleaved with the
	// submissions.
	Forges int
	// FalseAccuseProb is the probability an alert additionally accuses a
	// legitimate start task (falsely) — the repair must still converge to
	// the attack-free state (the accused task is undone and re-executed
	// with identical results).
	FalseAccuseProb float64
	// Checkpoints and Restarts interleave durable snapshots and
	// crash-restarts; only meaningful on targets that support them.
	Checkpoints int
	Restarts    int
	// DrainProb is the probability of a mid-schedule drain between phases,
	// creating "repair finished, then fresh attacks" interleavings.
	DrainProb float64
}

// DefaultParams returns the smoke-sized campaign parameters.
func DefaultParams() GenParams {
	return GenParams{
		Runs: 3, Tasks: 6, Keys: 5, MaxReads: 2, MaxWrites: 2,
		BranchProb: 0.3, Forges: 3, FalseAccuseProb: 0.3,
		DrainProb: 0.15,
	}
}

// RunPrefix returns the key-pool prefix of generated run i. Prefixes are
// disjoint across runs, so the combined attack-free final state is
// order-independent — the property the benign-equality oracle needs.
func RunPrefix(i int) string {
	return fmt.Sprintf("r%d_", i)
}

// GenSchedule generates a deterministic schedule from seed. The first op is
// always a submit (forges corrupt the data of already-submitted runs, whose
// init values are committed synchronously at submission); every forge is
// alerted before the schedule ends, so the final drained state must equal
// the attack-free execution.
func GenSchedule(seed int64, p GenParams) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	if p.Runs < 1 {
		p.Runs = 1
	}

	cfgOf := func(i int) wf.GenConfig {
		cfg := wf.DefaultGenConfig()
		if p.Tasks > 0 {
			cfg.Tasks = p.Tasks
		}
		if p.Keys > 0 {
			cfg.Keys = p.Keys
		}
		if p.MaxReads > 0 {
			cfg.MaxReads = p.MaxReads
		}
		cfg.MaxWrites = p.MaxWrites
		cfg.BranchProb = p.BranchProb
		cfg.Prefix = RunPrefix(i)
		return cfg
	}

	sch := &Schedule{Seed: seed}
	// Pending op budget, spent in random order after the mandatory first
	// submit. Forges/checkpoints/restarts draw targets from the runs
	// submitted so far.
	type pending struct{ kind OpKind }
	var deck []pending
	for i := 1; i < p.Runs; i++ {
		deck = append(deck, pending{OpSubmit})
	}
	for i := 0; i < p.Forges; i++ {
		deck = append(deck, pending{OpForge})
	}
	for i := 0; i < p.Checkpoints; i++ {
		deck = append(deck, pending{OpCheckpoint})
	}
	for i := 0; i < p.Restarts; i++ {
		deck = append(deck, pending{OpRestart})
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })

	nextRun, nextAtk := 0, 0
	// victims holds runs submitted since the latest checkpoint: the only
	// runs whose instances alerts may (falsely) accuse, because a
	// crash-restart replays from the snapshot and earlier log entries are
	// compacted away (see Schedule.Validate).
	var victims []int
	submit := func() Op {
		i := nextRun
		nextRun++
		victims = append(victims, i)
		run := fmt.Sprintf("r%d", i)
		bp := wf.GenerateBlueprint(run, cfgOf(i), rng)
		return Op{Kind: OpSubmit, Run: run, Blueprint: bp}
	}
	sch.Ops = append(sch.Ops, submit())

	var unalerted []wlog.InstanceID
	alertFor := func(insts []wlog.InstanceID) Op {
		op := Op{Kind: OpAlert}
		for _, inst := range insts {
			bad := []string{string(inst)}
			if len(victims) > 0 && rng.Float64() < p.FalseAccuseProb {
				// Falsely accuse a legitimate start task of an eligible
				// run; t0 executes unconditionally with visit 1, so the
				// instance is guaranteed to exist once the run has
				// started stepping.
				victim := victims[rng.Intn(len(victims))]
				bad = append(bad, string(wlog.FormatInstance(fmt.Sprintf("r%d", victim), "t0", 1)))
			}
			op.Batch = append(op.Batch, bad)
		}
		return op
	}

	for _, d := range deck {
		switch d.kind {
		case OpSubmit:
			sch.Ops = append(sch.Ops, submit())
		case OpForge:
			// Corrupt 1–2 pool keys of a random already-submitted run,
			// observing 0–2 keys first (the reads create the data
			// dependences damage assessment must chase).
			target := rng.Intn(nextRun)
			cfg := cfgOf(target)
			op := Op{
				Kind:   OpForge,
				Run:    fmt.Sprintf("atk%d", nextAtk),
				Writes: map[string]int64{},
			}
			nextAtk++
			for n := min(rng.Intn(3), cfg.Keys); len(op.Reads) < n; {
				k := string(cfg.PoolKey(rng.Intn(cfg.Keys)))
				if !containsStr(op.Reads, k) {
					op.Reads = append(op.Reads, k)
				}
			}
			for n := min(1+rng.Intn(2), cfg.Keys); len(op.Writes) < n; {
				k := string(cfg.PoolKey(rng.Intn(cfg.Keys)))
				op.Writes[k] = int64(1000 + rng.Intn(9000))
			}
			sch.Ops = append(sch.Ops, op)
			unalerted = append(unalerted, op.ForgedInstance())
			// Alert immediately with probability ½, else let forges pile
			// up for a later batch.
			if rng.Float64() < 0.5 {
				sch.Ops = append(sch.Ops, alertFor(unalerted))
				unalerted = nil
			}
		case OpCheckpoint:
			// A snapshot must capture repaired quiescence: flush the alert
			// backlog, drain repairs to completion, then checkpoint. Runs and
			// forges before this point become ineligible for later alerts —
			// their log entries are compacted away after a restart.
			if len(unalerted) > 0 {
				sch.Ops = append(sch.Ops, alertFor(unalerted))
				unalerted = nil
			}
			sch.Ops = append(sch.Ops, Op{Kind: OpDrain}, Op{Kind: OpCheckpoint})
			victims = nil
		case OpRestart:
			sch.Ops = append(sch.Ops, Op{Kind: OpRestart})
		}
		if rng.Float64() < p.DrainProb {
			// Flush the alert backlog first so the drain marks a clean
			// phase boundary: everything forged so far has been repaired
			// when the next phase's ops start.
			if len(unalerted) > 0 {
				sch.Ops = append(sch.Ops, alertFor(unalerted))
				unalerted = nil
			}
			sch.Ops = append(sch.Ops, Op{Kind: OpDrain})
		}
	}
	if len(unalerted) > 0 {
		sch.Ops = append(sch.Ops, alertFor(unalerted))
	}
	if err := sch.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated schedule invalid: %v", err))
	}
	return sch
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
