package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusVersion is the on-disk format version of corpus entries.
const CorpusVersion = 1

// A CorpusEntry is one committed reproducer: the shrunk schedule of a
// failing episode plus the oracle it violated. Entries live as pretty
// JSON files under internal/fuzz/testdata/corpus and replay as ordinary
// go test regression cases (TestCorpusRegression) — after a fix, every
// entry must report zero violations.
type CorpusEntry struct {
	// Version is CorpusVersion at write time.
	Version int `json:"version"`
	// Violation describes the oracle failure that produced the entry.
	Violation string `json:"violation"`
	// Schedule is the shrunk reproducer.
	Schedule *Schedule `json:"schedule"`
}

// EncodeEntry serializes a corpus entry (indented, trailing newline — the
// committed file format).
func EncodeEntry(e *CorpusEntry) ([]byte, error) {
	if e.Schedule == nil {
		return nil, fmt.Errorf("fuzz: corpus entry has no schedule")
	}
	if err := e.Schedule.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeEntry parses and validates a corpus entry.
func DecodeEntry(b []byte) (*CorpusEntry, error) {
	var e CorpusEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("fuzz: corpus entry: %w", err)
	}
	if e.Version != CorpusVersion {
		return nil, fmt.Errorf("fuzz: corpus entry: unsupported version %d (want %d)", e.Version, CorpusVersion)
	}
	if e.Schedule == nil {
		return nil, fmt.Errorf("fuzz: corpus entry has no schedule")
	}
	if err := e.Schedule.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// WriteCorpusEntry writes e into dir as seed-<seed>.json (creating dir),
// returning the file path.
func WriteCorpusEntry(dir string, e *CorpusEntry) (string, error) {
	b, err := EncodeEntry(e)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.json", e.Schedule.Seed))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every *.json entry in dir, sorted by file name. A
// missing directory is an empty corpus.
func LoadCorpus(dir string) (map[string]*CorpusEntry, error) {
	files, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(files))
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".json") {
			names = append(names, f.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string]*CorpusEntry, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		e, err := DecodeEntry(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = e
	}
	return out, nil
}
