package fuzz

import (
	"fmt"
	"time"
)

// TargetFactory boots a fresh target for one episode (reset semantics: no
// state is shared between episodes).
type TargetFactory func() (Target, error)

// Failure is one fuzzing find: the seed, the violations of the original
// episode, and the shrunk reproducer.
type Failure struct {
	Seed       int64
	Violations []Violation
	Shrunk     *Schedule
	// ShrinkSteps counts successful reductions from the generated schedule
	// to Shrunk.
	ShrinkSteps int
}

// Entry converts the failure into its committable corpus form.
func (f *Failure) Entry() *CorpusEntry {
	return &CorpusEntry{
		Version:   CorpusVersion,
		Violation: f.Violations[0].String(),
		Schedule:  f.Shrunk,
	}
}

// CampaignResult summarizes a fuzzing campaign.
type CampaignResult struct {
	Episodes int
	Failures []*Failure
}

// Campaign runs one episode per seed against fresh targets, shrinking every
// failure to a minimal reproducer. Harness errors abort the campaign;
// oracle violations are collected and returned.
func (r *Runner) Campaign(factory TargetFactory, seeds []int64, p GenParams) (*CampaignResult, error) {
	res := &CampaignResult{}
	for _, seed := range seeds {
		fail, err := r.fuzzOne(factory, seed, p)
		if err != nil {
			return res, err
		}
		res.Episodes++
		if fail != nil {
			res.Failures = append(res.Failures, fail)
		}
	}
	return res, nil
}

// CampaignUntil runs episodes with consecutive seeds starting at startSeed
// until deadline, stopping early after the first failure (shrinking is the
// expensive part; one minimal repro per campaign is the actionable output).
func (r *Runner) CampaignUntil(factory TargetFactory, startSeed int64, deadline time.Time, p GenParams) (*CampaignResult, error) {
	res := &CampaignResult{}
	for seed := startSeed; time.Now().Before(deadline); seed++ {
		fail, err := r.fuzzOne(factory, seed, p)
		if err != nil {
			return res, err
		}
		res.Episodes++
		if fail != nil {
			res.Failures = append(res.Failures, fail)
			return res, nil
		}
	}
	return res, nil
}

// fuzzOne generates, runs and — on violation — shrinks one seed.
func (r *Runner) fuzzOne(factory TargetFactory, seed int64, p GenParams) (*Failure, error) {
	sch := GenSchedule(seed, p)
	rep, err := r.runOn(factory, sch)
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: %w", seed, err)
	}
	if !rep.Failed() {
		return nil, nil
	}
	// Shrink against the first oracle that fired: a candidate reproduces
	// the failure iff the same oracle still fires on a fresh target.
	oracle := rep.Violations[0].Oracle
	shrunk, steps, err := Shrink(sch, func(cand *Schedule) (bool, error) {
		crep, cerr := r.runOn(factory, cand)
		if cerr != nil {
			// A candidate that breaks the harness is simply not a valid
			// reduction; keep shrinking elsewhere.
			return false, nil
		}
		for _, v := range crep.Violations {
			if v.Oracle == oracle {
				return true, nil
			}
		}
		return false, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: shrink: %w", seed, err)
	}
	return &Failure{Seed: seed, Violations: rep.Violations, Shrunk: shrunk, ShrinkSteps: steps}, nil
}

// runOn boots a fresh target, runs the schedule, and tears the target down.
func (r *Runner) runOn(factory TargetFactory, sch *Schedule) (*Report, error) {
	t, err := factory()
	if err != nil {
		return nil, err
	}
	rep, err := r.RunEpisode(t, sch)
	if cerr := t.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return rep, err
}
