package fuzz

import (
	"context"
	"fmt"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wlog"
)

// A Violation is one failed oracle check for an episode.
type Violation struct {
	// Oracle names the failed check: "benign-store", "check-index",
	// "dag-audit", "run-failed", "restart".
	Oracle string `json:"oracle"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// BenignStore computes the attack-free reference state of a schedule: the
// serial execution of exactly the submitted workflows, with their declared
// init values and no forged instances. Because generated runs use disjoint
// key prefixes, the serial order does not matter; because repair undoes
// every alerted forge and re-executes falsely accused tasks with identical
// deterministic computes, the drained live store must equal this reference
// (Theorems 1–2).
func BenignStore(sch *Schedule) (map[string]int64, error) {
	store := data.NewStore()
	eng := engine.New(store, wlog.New())
	for _, op := range sch.Ops {
		if op.Kind != OpSubmit {
			continue
		}
		spec, err := op.Blueprint.Spec()
		if err != nil {
			return nil, fmt.Errorf("fuzz: benign reference: run %s: %w", op.Run, err)
		}
		// First-writer-wins init seeding, as SubmitRunSpec does.
		for _, k := range sortedKeys(op.Blueprint.Init) {
			if _, ok := store.Get(k); !ok {
				store.Init(k, op.Blueprint.Init[k])
			}
		}
		run, err := eng.NewRun(op.Run, spec)
		if err != nil {
			return nil, fmt.Errorf("fuzz: benign reference: run %s: %w", op.Run, err)
		}
		if err := eng.RunAll(context.Background(), run); err != nil {
			return nil, fmt.Errorf("fuzz: benign reference: run %s: %w", op.Run, err)
		}
	}
	snap := store.Snapshot()
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		out[string(k)] = int64(v)
	}
	return out, nil
}

// DiffStores renders the difference between the expected benign state and
// an observed store as sorted "key: want w, got g" lines; empty when equal.
func DiffStores(want, got map[string]int64) string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	diff := ""
	for _, k := range sorted {
		w, inW := want[k]
		g, inG := got[k]
		switch {
		case !inW:
			diff += fmt.Sprintf("%s: want absent, got %d\n", k, g)
		case !inG:
			diff += fmt.Sprintf("%s: want %d, got absent\n", k, w)
		case w != g:
			diff += fmt.Sprintf("%s: want %d, got %d\n", k, w, g)
		}
	}
	return diff
}

func sortedKeys(m map[data.Key]data.Value) []data.Key {
	out := make([]data.Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
