// Package fuzz is the stateful model-based fuzzer behind cmd/selfheal-fuzz
// (docs/FUZZING.md): it generates randomized attack schedules against the
// live /api/v1 surface and checks the paper's global soundness claims after
// every episode.
//
// A Schedule is a deterministic, serializable program of operations — run
// submissions (randomized wf.Blueprint workflows), forged task commits,
// IDS alert batches, checkpoints, drains, and crash-restarts — replayed
// against a Target (an HTTP server; in-process or a child process killed
// with SIGKILL). After the final drain the oracles assert:
//
//   - benign equality: the committed store equals the attack-free serial
//     execution of the submitted workflows alone (the paper's repaired ≡
//     attack-free claim, Theorems 1–2);
//   - index integrity: data.CheckIndex holds on the live store;
//   - Theorem-3 ordering: no installed repair violated the repair DAG
//     (shard.Config.AuditRepairs, surfaced via GET /api/v1/chaos/verify);
//   - repairability: no repair was refused or failed — generated
//     schedules are repairable by construction, so a recovery error is a
//     soundness bug;
//   - completion: every acknowledged run finishes "done", even across
//     crash-restarts.
//
// Failing schedules are shrunk (Shrink) to a minimal reproducer — dropping
// operations first, then shrinking workflow specs — and serialized into a
// seed corpus (Corpus) that replays as ordinary go test regression cases.
package fuzz
