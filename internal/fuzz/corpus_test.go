package fuzz

import (
	"testing"

	"selfheal/internal/shard"
)

// TestCorpusRegression replays every committed reproducer in
// testdata/corpus against a healthy durable in-process service. Each entry
// is the shrunk schedule of a bug the fuzzer once found; after the fix it
// must report zero violations, forever. Runs under -race with the normal
// test suite.
func TestCorpusRegression(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("committed corpus is empty; expected at least the seeded reproducers")
	}
	r := &Runner{}
	for name, entry := range corpus {
		entry := entry
		t.Run(name, func(t *testing.T) {
			tgt, err := NewInProcTarget(InProcOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer tgt.Close()
			rep, err := r.RunEpisode(tgt, entry.Schedule)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("regression: %s", v)
			}
		})
	}
}

// TestCorpusEntryStillBitesFaultyTarget guards against vacuous corpus
// entries: the skip-repair reproducer must still fail when the fault it was
// minimized against is re-injected.
func TestCorpusEntryStillBitesFaultyTarget(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := corpus["skip-repair-fault.json"]
	if !ok {
		t.Fatal("skip-repair-fault.json missing from testdata/corpus")
	}
	tgt, err := NewInProcTarget(InProcOptions{
		Dir:   t.TempDir(),
		Fault: shard.FaultInjection{SkipRepair: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	r := &Runner{}
	rep, err := r.RunEpisode(tgt, entry.Schedule)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if !rep.Failed() {
		t.Fatal("shrunk reproducer no longer fails on the faulty target")
	}
	if rep.Violations[0].Oracle != "benign-store" {
		t.Fatalf("first violation %s, want benign-store", rep.Violations[0])
	}
}
