package mat

import "math"

// PoissonWeights returns the Poisson(qt) probabilities w_k = e^{-qt}(qt)^k/k!
// for k = 0..K, where K is chosen so the truncated tail mass is below eps.
// The weights are computed in a numerically stable way (log-space seed, then
// multiplicative recurrence) so large qt does not underflow.
func PoissonWeights(qt, eps float64) []float64 {
	if qt < 0 {
		panic("mat: negative Poisson rate")
	}
	if qt == 0 {
		return []float64{1}
	}
	if eps <= 0 {
		eps = 1e-12
	}
	// Start at the mode in log space to avoid e^{-qt} underflow.
	mode := int(qt)
	logMode := -qt + float64(mode)*math.Log(qt) - lgammaInt(mode+1)
	// Walk outwards from the mode until the accumulated mass ≥ 1−eps.
	lo, hi := mode, mode
	wMode := math.Exp(logMode)
	// Collect in maps of offsets; we cap the support generously.
	maxK := mode + 20 + int(12*math.Sqrt(qt+1))
	w := make([]float64, maxK+1)
	w[mode] = wMode
	total := wMode
	for total < 1-eps && (lo > 0 || hi < maxK) {
		if hi < maxK {
			hi++
			w[hi] = w[hi-1] * qt / float64(hi)
			total += w[hi]
		}
		if total >= 1-eps {
			break
		}
		if lo > 0 {
			w[lo-1] = w[lo] * float64(lo) / qt
			lo--
			total += w[lo]
		}
	}
	out := w[:hi+1]
	// Renormalize the truncation so downstream probabilities sum to one.
	if total > 0 {
		inv := 1 / total
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// lgammaInt returns ln Γ(n), so lgammaInt(k+1) = ln(k!).
func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}
