// Package mat provides the small dense linear-algebra kernel used by the
// CTMC analysis: dense matrices, Gaussian elimination with partial pivoting,
// fixed-step RK4 ODE integration, and Poisson-weighted uniformization
// helpers. Everything is stdlib-only and sized for the state spaces of the
// paper's state-transition graphs (at most a few thousand states).
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Scale multiplies every element by a.
func (m *Dense) Scale(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// VecMul returns the row-vector product x·m.
func VecMul(x []float64, m *Dense) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: vector length %d != rows %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, mv := range row {
			out[j] += xv * mv
		}
	}
	return out
}

// MulVec returns the column-vector product m·x.
func MulVec(m *Dense, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: vector length %d != cols %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, mv := range row {
			s += mv * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y ← y + a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: axpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MaxAbs returns max_i |x_i|.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L1Dist returns Σ|a_i − b_i|.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: l1dist length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
