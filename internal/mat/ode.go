package mat

import "fmt"

// Derivative computes dy/dt at time t for state y, writing into dst.
// dst and y never alias.
type Derivative func(t float64, y, dst []float64)

// RK4 integrates dy/dt = f(t, y) from t0 to t1 with the classical
// fourth-order Runge-Kutta method using steps fixed steps. It returns the
// state at t1. y0 is not modified.
func RK4(f Derivative, y0 []float64, t0, t1 float64, steps int) []float64 {
	if steps <= 0 {
		panic(fmt.Sprintf("mat: RK4 needs positive steps, got %d", steps))
	}
	n := len(y0)
	y := make([]float64, n)
	copy(y, y0)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	h := (t1 - t0) / float64(steps)
	t := t0
	for s := 0; s < steps; s++ {
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return y
}
