package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", m.At(1, 0))
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	got := Identity(3).Mul(m)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("I·M differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Errorf("at (%d,%d): got %g want %g", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("Tᵀ(2,1) = %g, want 6", tr.At(2, 1))
	}
}

func TestVecMulMatchesMulVecOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := VecMul(x, m)
		b := MulVec(m.Transpose(), x)
		if L1Dist(a, b) > 1e-12 {
			t.Fatalf("trial %d: x·M != Mᵀ·x (dist %g)", trial, L1Dist(a, b))
		}
	}
}

func TestRowCloneIndependence(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row shares storage with matrix")
	}
}

func TestScale(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, -2}})
	m.Scale(-3)
	if m.At(0, 0) != -3 || m.At(0, 1) != 6 {
		t.Errorf("scale result %v", m.Row(0))
	}
}

func TestDotAXPYSum(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	want := []float64{3, 5, 7}
	if L1Dist(y, want) != 0 {
		t.Errorf("AXPY = %v, want %v", y, want)
	}
	if Sum(a) != 6 {
		t.Errorf("Sum = %g", Sum(a))
	}
	if MaxAbs([]float64{-5, 3}) != 5 {
		t.Error("MaxAbs wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	if L1Dist(x, want) > 1e-10 {
		t.Errorf("x = %v, want %v", x, want)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := NewDenseFrom([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if L1Dist(x, []float64{3, 2}) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance keeps it well conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if L1Dist(got, want) > 1e-8*float64(n) {
			t.Fatalf("trial %d: residual %g", trial, L1Dist(got, want))
		}
	}
}

func TestNullVectorStochasticTwoState(t *testing.T) {
	// Birth-death with rates a=2 (0→1) and b=3 (1→0): π = (b, a)/(a+b).
	q := NewDenseFrom([][]float64{
		{-2, 2},
		{3, -3},
	})
	pi, err := NullVectorStochastic(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, 0.4}
	if L1Dist(pi, want) > 1e-12 {
		t.Errorf("π = %v, want %v", pi, want)
	}
}

func TestNullVectorStochasticMM1K(t *testing.T) {
	// M/M/1/K queue, λ=1, μ=2, K=5: π_i ∝ ρ^i with ρ=1/2.
	const k = 5
	lambda, mu := 1.0, 2.0
	q := NewDense(k+1, k+1)
	for i := 0; i <= k; i++ {
		if i < k {
			q.Add(i, i+1, lambda)
			q.Add(i, i, -lambda)
		}
		if i > 0 {
			q.Add(i, i-1, mu)
			q.Add(i, i, -mu)
		}
	}
	pi, err := NullVectorStochastic(q)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	var norm float64
	for i := 0; i <= k; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for i := 0; i <= k; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Errorf("π[%d] = %g, want %g", i, pi[i], want)
		}
	}
}

func TestNullVectorStochasticSumsToOne(t *testing.T) {
	// Property: for random irreducible generators the solution is a
	// probability distribution with π·Q ≈ 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		q := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				// Strictly positive rates guarantee irreducibility.
				q.Set(i, j, 0.1+rng.Float64()*5)
			}
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				if j != i {
					s += q.At(i, j)
				}
			}
			q.Set(i, i, -s)
		}
		pi, err := NullVectorStochastic(q)
		if err != nil {
			return false
		}
		if math.Abs(Sum(pi)-1) > 1e-9 {
			return false
		}
		res := VecMul(pi, q)
		return MaxAbs(res) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRK4Exponential(t *testing.T) {
	// dy/dt = -y, y(0)=1 → y(t) = e^{-t}.
	f := func(_ float64, y, dst []float64) { dst[0] = -y[0] }
	y := RK4(f, []float64{1}, 0, 2, 200)
	if math.Abs(y[0]-math.Exp(-2)) > 1e-8 {
		t.Errorf("y(2) = %g, want %g", y[0], math.Exp(-2))
	}
}

func TestRK4LinearSystem(t *testing.T) {
	// Harmonic oscillator: y'' = -y encoded as a 2-dim system; energy conserved.
	f := func(_ float64, y, dst []float64) {
		dst[0] = y[1]
		dst[1] = -y[0]
	}
	y := RK4(f, []float64{1, 0}, 0, 2*math.Pi, 1000)
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]) > 1e-6 {
		t.Errorf("full period: y = %v, want [1 0]", y)
	}
}

func TestPoissonWeightsSmall(t *testing.T) {
	w := PoissonWeights(0, 1e-12)
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("qt=0 weights = %v", w)
	}
	w = PoissonWeights(1, 1e-12)
	if math.Abs(Sum(w)-1) > 1e-9 {
		t.Errorf("weights sum %g", Sum(w))
	}
	// w_0 should be close to e^{-1} (slightly scaled by renormalization).
	if math.Abs(w[0]-math.Exp(-1)) > 1e-6 {
		t.Errorf("w0 = %g, want ~%g", w[0], math.Exp(-1))
	}
}

func TestPoissonWeightsLargeRateStable(t *testing.T) {
	// qt large enough that e^{-qt} underflows float64 if computed naively.
	w := PoissonWeights(800, 1e-12)
	if math.Abs(Sum(w)-1) > 1e-8 {
		t.Fatalf("weights sum %g", Sum(w))
	}
	// Mass should be concentrated near the mode.
	var mean float64
	for k, v := range w {
		mean += float64(k) * v
	}
	if math.Abs(mean-800) > 1 {
		t.Errorf("mean %g, want ≈800", mean)
	}
}

func TestPoissonWeightsProperty(t *testing.T) {
	f := func(raw float64) bool {
		qt := math.Mod(math.Abs(raw), 200)
		w := PoissonWeights(qt, 1e-10)
		if math.Abs(Sum(w)-1) > 1e-8 {
			return false
		}
		for _, v := range w {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
