package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: singular matrix")

// Solve solves A·x = b by Gaussian elimination with partial pivoting.
// A and b are not modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: solve needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != a.rows {
		return nil, fmt.Errorf("mat: rhs length %d != %d", len(b), a.rows)
	}
	n := a.rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude in this column, at or
		// below the diagonal.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Add(r, c, -f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

func swapRows(m *Dense, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// NullVectorStochastic solves π·Q = 0 with Σπ = 1 for an irreducible CTMC
// generator Q (rows sum to zero). It replaces one balance equation with the
// normalization constraint, which is the standard full-rank reformulation.
func NullVectorStochastic(q *Dense) ([]float64, error) {
	if q.rows != q.cols {
		return nil, fmt.Errorf("mat: generator must be square, got %dx%d", q.rows, q.cols)
	}
	n := q.rows
	// Solve Aᵀ·π = e_last where A is Q with its last column replaced by ones:
	// π·Q = 0 (first n−1 columns) plus π·1 = 1 (last column).
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n-1; j++ {
			a.Set(j, i, q.At(i, j)) // transposed
		}
		a.Set(n-1, i, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("steady state: %w", err)
	}
	// Clamp tiny negative round-off and renormalize.
	var sum float64
	for i, v := range pi {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("steady state: negative probability %g at state %d", v, i)
			}
			pi[i] = 0
		}
		sum += pi[i]
	}
	if sum == 0 {
		return nil, errors.New("steady state: zero distribution")
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}
