package mat

import (
	"math"
	"testing"
)

// FuzzPoissonWeights: any finite non-negative rate must produce a normalized
// non-negative weight vector without panicking.
func FuzzPoissonWeights(f *testing.F) {
	f.Add(0.0)
	f.Add(1.0)
	f.Add(15.5)
	f.Add(800.0)
	f.Add(1e-12)
	f.Fuzz(func(t *testing.T, qt float64) {
		if math.IsNaN(qt) || math.IsInf(qt, 0) || qt < 0 || qt > 1e5 {
			return
		}
		w := PoissonWeights(qt, 1e-10)
		if len(w) == 0 {
			t.Fatal("empty weights")
		}
		var sum float64
		for _, v := range w {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad weight %g at qt=%g", v, qt)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("weights sum %g at qt=%g", sum, qt)
		}
	})
}

// FuzzSolveRoundTrip: for any diagonally dominant system built from the
// fuzzed seed, Solve must reproduce a planted solution.
func FuzzSolveRoundTrip(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(42), 8)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 25 {
			return
		}
		rng := newTestRand(seed)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(2*n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("solve failed: %v", err)
		}
		if L1Dist(got, want) > 1e-7*float64(n) {
			t.Fatalf("residual %g", L1Dist(got, want))
		}
	})
}

// newTestRand isolates the fuzz harness from the global rand.
func newTestRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type testRand struct{ state uint64 }

func (r *testRand) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// NormFloat64 returns an approximately normal variate (sum of uniforms).
func (r *testRand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += float64(r.next()>>11) / (1 << 53)
	}
	return s - 6
}
