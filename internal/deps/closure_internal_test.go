package deps

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// randomChainGraph folds a synthetic log of n entries over k keys into a
// fresh IncrementalGraph: every entry reads one pseudo-random key (observing
// its last writer) and writes another, producing long, tangled writer chains.
func randomChainGraph(n, k int, rng *rand.Rand) *IncrementalGraph {
	ig := newIncremental()
	last := make([]wlog.InstanceID, k)
	for i := 0; i < n; i++ {
		e := &wlog.Entry{
			LSN:   i + 1,
			Run:   fmt.Sprintf("r%d", i%8),
			Task:  wf.TaskID(fmt.Sprintf("t%d", i)),
			Visit: 1,
		}
		rk := rng.Intn(k)
		obs := wlog.ReadObs{WriterPos: wlog.MissingPos}
		if last[rk] != "" {
			obs = wlog.ReadObs{Writer: string(last[rk]), WriterPos: float64(i)}
		}
		e.Reads = map[data.Key]wlog.ReadObs{data.Key(fmt.Sprintf("k%d", rk)): obs}
		wk := rng.Intn(k)
		e.Writes = map[data.Key]data.Value{data.Key(fmt.Sprintf("k%d", wk)): data.Value(i)}
		ig.Append(e)
		last[wk] = e.ID()
	}
	return ig
}

// TestClosureParallelMatchesSerial forces the sharded BFS with several worker
// counts (the container may report GOMAXPROCS=1, which would otherwise keep
// the parallel path cold) and checks it against the serial DFS, at the full
// epoch and at a mid-log epoch.
func TestClosureParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ig := randomChainGraph(5000, 32, rng)
	epochs := []int{ig.epoch, ig.epoch / 2, ig.epoch / 7}
	for trial := 0; trial < 25; trial++ {
		seed := map[wlog.InstanceID]bool{}
		for j := 0; j <= trial%3; j++ {
			seed[wlog.InstanceID(fmt.Sprintf("r%d/t%d#1", rng.Intn(8), rng.Intn(5000)))] = true
		}
		for _, epoch := range epochs {
			want := ig.closureSerial(seed, epoch)
			for _, workers := range []int{2, 4, 16} {
				got := ig.closureParallel(seed, epoch, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d epoch %d workers %d: parallel closure %d members, serial %d",
						trial, epoch, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestClosureParallelEmptySeed: the sharded BFS must terminate immediately on
// an empty seed.
func TestClosureParallelEmptySeed(t *testing.T) {
	ig := randomChainGraph(100, 4, rand.New(rand.NewSource(1)))
	got := ig.closureParallel(map[wlog.InstanceID]bool{}, ig.epoch, 4)
	if len(got) != 0 {
		t.Fatalf("empty seed produced %d members", len(got))
	}
}
