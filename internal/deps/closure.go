// Damage-assessment closure: the →_f* reachability of Theorem 1 computed
// over the readers adjacency index. Small graphs use a serial DFS; past a
// size threshold the closure switches to a sharded worker-pool BFS —
// level-synchronous, with the visited set partitioned across shards so
// workers never contend on a shared map. Each round every shard expands its
// frontier into per-destination outboxes, then every shard merges the
// inboxes addressed to it; ownership is by instance-ID hash, so no locks
// are needed inside a round.
package deps

import (
	"runtime"
	"sync"

	"selfheal/internal/wlog"
)

// parallelClosureThreshold is the flow-edge count below which the serial
// closure wins (goroutine + channel overhead dominates tiny graphs).
const parallelClosureThreshold = 4096

// closureAt computes the →_f* closure of seed over entries with LSN ≤
// epoch. Seed members are included in the result.
func (ig *IncrementalGraph) closureAt(seed map[wlog.InstanceID]bool, epoch int) map[wlog.InstanceID]bool {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && len(ig.flow) >= parallelClosureThreshold {
		return ig.closureParallel(seed, epoch, workers)
	}
	return ig.closureSerial(seed, epoch)
}

// closureSerial is the single-threaded DFS. Callers hold ig.mu.
func (ig *IncrementalGraph) closureSerial(seed map[wlog.InstanceID]bool, epoch int) map[wlog.InstanceID]bool {
	out := make(map[wlog.InstanceID]bool, len(seed))
	stack := make([]wlog.InstanceID, 0, len(seed))
	for id := range seed {
		out[id] = true
		stack = append(stack, id)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, rec := range ig.flowBy[cur] {
			if rec.lsn > epoch {
				break // adjacency records are LSN-ordered
			}
			if !out[rec.to] {
				out[rec.to] = true
				stack = append(stack, rec.to)
			}
		}
	}
	return out
}

// closureParallel is the sharded worker-pool BFS. Callers hold ig.mu (read),
// so the adjacency index is immutable for the duration.
func (ig *IncrementalGraph) closureParallel(seed map[wlog.InstanceID]bool, epoch, workers int) map[wlog.InstanceID]bool {
	shards := 1
	for shards < workers && shards < 16 {
		shards <<= 1
	}
	mask := uint32(shards - 1)

	visited := make([]map[wlog.InstanceID]bool, shards)
	frontier := make([][]wlog.InstanceID, shards)
	for s := range visited {
		visited[s] = make(map[wlog.InstanceID]bool)
	}
	for id := range seed {
		s := shardOf(id) & mask
		if !visited[s][id] {
			visited[s][id] = true
			frontier[s] = append(frontier[s], id)
		}
	}

	var wg sync.WaitGroup
	for {
		active := false
		for s := 0; s < shards; s++ {
			if len(frontier[s]) > 0 {
				active = true
				break
			}
		}
		if !active {
			break
		}

		// Expand: each shard walks its frontier's adjacency and routes
		// discovered successors to per-destination outboxes.
		outbox := make([][][]wlog.InstanceID, shards)
		for s := 0; s < shards; s++ {
			if len(frontier[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				boxes := make([][]wlog.InstanceID, shards)
				for _, id := range frontier[s] {
					for _, rec := range ig.flowBy[id] {
						if rec.lsn > epoch {
							break
						}
						d := shardOf(rec.to) & mask
						boxes[d] = append(boxes[d], rec.to)
					}
				}
				outbox[s] = boxes
			}(s)
		}
		wg.Wait()

		// Merge: each shard exclusively owns its visited partition, so
		// deduplication needs no locks.
		next := make([][]wlog.InstanceID, shards)
		for d := 0; d < shards; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				own := visited[d]
				for s := 0; s < shards; s++ {
					if outbox[s] == nil {
						continue
					}
					for _, id := range outbox[s][d] {
						if !own[id] {
							own[id] = true
							next[d] = append(next[d], id)
						}
					}
				}
			}(d)
		}
		wg.Wait()
		frontier = next
	}

	total := 0
	for _, m := range visited {
		total += len(m)
	}
	out := make(map[wlog.InstanceID]bool, total)
	for _, m := range visited {
		for id := range m {
			out[id] = true
		}
	}
	return out
}

// shardOf hashes an instance ID to a shard (FNV-1a).
func shardOf(id wlog.InstanceID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}
