package deps_test

import (
	"reflect"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// edgeSet turns an edge list into a multiset keyed by (from,to,key).
func edgeSet(edges []deps.Edge) map[deps.Edge]int {
	out := make(map[deps.Edge]int, len(edges))
	for _, e := range edges {
		out[e]++
	}
	return out
}

// replayLog re-appends the entries of src, one by one, into a fresh log that
// g observes, exercising the hook-driven incremental path exactly as the
// engine drives it at commit time.
func replayLog(t *testing.T, src *wlog.Log) (*wlog.Log, *deps.IncrementalGraph) {
	t.Helper()
	dst := wlog.New()
	g := deps.NewIncremental(dst)
	for _, e := range src.Entries() {
		cp := *e
		if _, err := dst.Append(&cp); err != nil {
			t.Fatal(err)
		}
	}
	return dst, g
}

// TestIncrementalMatchesBatchProperty: an IncrementalGraph fed entry-by-entry
// over randomized workloads produces edge sets, closures and HasFlow answers
// identical to batch Build over the same log.
func TestIncrementalMatchesBatchProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := scenario.RandomConfig{
			Runs:    3,
			Gen:     wf.GenConfig{Tasks: 14, Keys: 8, MaxReads: 3, BranchProb: 0.4},
			Attacks: 2,
			Forged:  1,
		}
		s, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		batch := deps.Build(s.Log())
		_, ig := replayLog(t, s.Log())
		incr := ig.Snapshot()

		if got, want := edgeSet(incr.FlowEdges()), edgeSet(batch.FlowEdges()); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: flow edge sets differ:\n got %v\nwant %v", seed, got, want)
		}
		if got, want := edgeSet(incr.AntiEdges()), edgeSet(batch.AntiEdges()); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: anti edge sets differ:\n got %v\nwant %v", seed, got, want)
		}
		if got, want := edgeSet(incr.OutputEdges()), edgeSet(batch.OutputEdges()); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: output edge sets differ:\n got %v\nwant %v", seed, got, want)
		}
		if incr.Epoch() != batch.Epoch() {
			t.Fatalf("seed %d: epoch %d vs %d", seed, incr.Epoch(), batch.Epoch())
		}

		// HasFlow parity over every flow edge plus a reversed (absent) pair.
		for _, e := range batch.FlowEdges() {
			if !incr.HasFlow(e.From, e.To) {
				t.Fatalf("seed %d: incremental HasFlow misses %v", seed, e)
			}
			if incr.HasFlow(e.To, e.From) != batch.HasFlow(e.To, e.From) {
				t.Fatalf("seed %d: reverse HasFlow diverges for %v", seed, e)
			}
		}

		// Closure parity seeded from every malicious instance.
		for _, b := range s.Bad {
			seedSet := map[wlog.InstanceID]bool{b: true}
			if got, want := incr.ReadersClosure(seedSet), batch.ReadersClosure(seedSet); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: closures of %s differ:\n got %v\nwant %v", seed, b, got, want)
			}
		}
	}
}

// TestSnapshotEpochIsolation: a snapshot taken mid-log never sees edges or
// closure members from entries committed after it, and matches a batch build
// over the same prefix.
func TestSnapshotEpochIsolation(t *testing.T) {
	s, err := scenario.Random(7, scenario.DefaultRandomConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	entries := s.Log().Entries()
	cut := len(entries) / 2

	live := wlog.New()
	g := deps.NewIncremental(live)
	prefix := wlog.New()
	for i, e := range entries {
		cp := *e
		if _, err := live.Append(&cp); err != nil {
			t.Fatal(err)
		}
		if i < cut {
			cp2 := *e
			if _, err := prefix.Append(&cp2); err != nil {
				t.Fatal(err)
			}
		}
		if i == cut-1 {
			break
		}
	}
	snap := g.Snapshot() // pinned at the prefix
	// Feed the rest of the log; snap must not move.
	for _, e := range entries[cut:] {
		cp := *e
		if _, err := live.Append(&cp); err != nil {
			t.Fatal(err)
		}
	}

	want := deps.Build(prefix)
	if snap.Epoch() != want.Epoch() {
		t.Fatalf("snapshot epoch %d, want %d", snap.Epoch(), want.Epoch())
	}
	if !reflect.DeepEqual(edgeSet(snap.FlowEdges()), edgeSet(want.FlowEdges())) {
		t.Fatal("snapshot flow edges leaked past the epoch")
	}
	if !reflect.DeepEqual(edgeSet(snap.AntiEdges()), edgeSet(want.AntiEdges())) {
		t.Fatal("snapshot anti edges leaked past the epoch")
	}
	if !reflect.DeepEqual(edgeSet(snap.OutputEdges()), edgeSet(want.OutputEdges())) {
		t.Fatal("snapshot output edges leaked past the epoch")
	}
	for _, e := range prefix.Entries() {
		seedSet := map[wlog.InstanceID]bool{e.ID(): true}
		if got, wantCl := snap.ReadersClosure(seedSet), want.ReadersClosure(seedSet); !reflect.DeepEqual(got, wantCl) {
			t.Fatalf("closure of %s differs at the snapshot epoch:\n got %v\nwant %v", e.ID(), got, wantCl)
		}
	}
	// The live graph has moved on.
	if g.Epoch() != len(entries) {
		t.Fatalf("live epoch %d, want %d", g.Epoch(), len(entries))
	}
}

// TestIncrementalSelfReadWrite: a task that reads and writes the same key
// anti-depends on the next writer, never on itself — the masking subtlety of
// resolving writes before enqueueing the entry's own reads.
func TestIncrementalSelfReadWrite(t *testing.T) {
	l := wlog.New()
	g := deps.NewIncremental(l)
	mk := func(task string, reads map[data.Key]wlog.ReadObs, writes map[data.Key]data.Value) {
		if _, err := l.Append(&wlog.Entry{Run: "r", Task: wf.TaskID(task), Visit: 1, Reads: reads, Writes: writes}); err != nil {
			t.Fatal(err)
		}
	}
	mk("inc", map[data.Key]wlog.ReadObs{"k": {WriterPos: wlog.MissingPos}}, map[data.Key]data.Value{"k": 1})
	mk("next", nil, map[data.Key]data.Value{"k": 2})
	snap := g.Snapshot()
	anti := snap.AntiEdges()
	if len(anti) != 1 || anti[0].From != "r/inc#1" || anti[0].To != "r/next#1" {
		t.Fatalf("anti edges = %v, want exactly inc →_a next", anti)
	}
	out := snap.OutputEdges()
	if len(out) != 1 || out[0].From != "r/inc#1" || out[0].To != "r/next#1" {
		t.Fatalf("output edges = %v, want exactly inc →_o next", out)
	}
}
