package deps_test

import (
	"context"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/engine"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// seqLog builds a log from a list of (task, reads, writes) on a single run,
// executing against a real store so read observations are faithful.
type step struct {
	task   string
	reads  []data.Key
	writes []data.Key
}

func buildLog(t *testing.T, steps []step) (*wlog.Log, *data.Store) {
	t.Helper()
	st := data.NewStore()
	seen := map[data.Key]bool{}
	for _, s := range steps {
		for _, k := range s.reads {
			if !seen[k] {
				st.Init(k, 1)
				seen[k] = true
			}
		}
		for _, k := range s.writes {
			seen[k] = true
		}
	}
	l := wlog.New()
	for _, s := range steps {
		e := &wlog.Entry{
			Run:    "r",
			Task:   wf.TaskID(s.task),
			Visit:  1,
			Reads:  map[data.Key]wlog.ReadObs{},
			Writes: map[data.Key]data.Value{},
		}
		for _, k := range s.reads {
			if v, ok := st.Get(k); ok {
				e.Reads[k] = wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
			} else {
				e.Reads[k] = wlog.ReadObs{WriterPos: wlog.MissingPos}
			}
		}
		lsn, err := l.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range s.writes {
			e.Writes[k] = data.Value(lsn)
			st.Write(k, data.Value(lsn), float64(lsn), string(e.ID()), false)
		}
	}
	return l, st
}

func hasEdge(edges []deps.Edge, from, to string) bool {
	for _, e := range edges {
		if string(e.From) == from && string(e.To) == to {
			return true
		}
	}
	return false
}

func TestFlowDependence(t *testing.T) {
	// tx: x = a+b ; tb: b = x-1 — the paper's §II.C example:
	// tx →_f tb (tb reads x written by tx) and tx →_a tb (tb overwrites b
	// which tx read).
	l, _ := buildLog(t, []step{
		{"tx", []data.Key{"a", "b"}, []data.Key{"x"}},
		{"tb", []data.Key{"x"}, []data.Key{"b"}},
	})
	g := deps.Build(l)
	if !hasEdge(g.Flow(), "r/tx#1", "r/tb#1") {
		t.Errorf("missing tx →_f tb; flow = %v", g.Flow())
	}
	if !hasEdge(g.Anti(), "r/tx#1", "r/tb#1") {
		t.Errorf("missing tx →_a tb; anti = %v", g.Anti())
	}
	if !g.HasFlow("r/tx#1", "r/tb#1") {
		t.Error("HasFlow disagrees with Flow()")
	}
	if g.HasFlow("r/tb#1", "r/tx#1") {
		t.Error("flow is directional")
	}
}

func TestFlowMaskedByInterveningWriter(t *testing.T) {
	// w1 writes k; w2 overwrites k; rd reads k → only w2 →_f rd.
	l, _ := buildLog(t, []step{
		{"w1", nil, []data.Key{"k"}},
		{"w2", nil, []data.Key{"k"}},
		{"rd", []data.Key{"k"}, []data.Key{"o"}},
	})
	g := deps.Build(l)
	if hasEdge(g.Flow(), "r/w1#1", "r/rd#1") {
		t.Error("masked flow dependence reported (Definition 1 masking)")
	}
	if !hasEdge(g.Flow(), "r/w2#1", "r/rd#1") {
		t.Error("missing w2 →_f rd")
	}
}

func TestOutputDependenceConsecutiveOnly(t *testing.T) {
	l, _ := buildLog(t, []step{
		{"w1", nil, []data.Key{"k"}},
		{"w2", nil, []data.Key{"k"}},
		{"w3", nil, []data.Key{"k"}},
	})
	g := deps.Build(l)
	if !hasEdge(g.Output(), "r/w1#1", "r/w2#1") || !hasEdge(g.Output(), "r/w2#1", "r/w3#1") {
		t.Errorf("missing consecutive output deps: %v", g.Output())
	}
	if hasEdge(g.Output(), "r/w1#1", "r/w3#1") {
		t.Error("non-consecutive output dep reported (masking)")
	}
}

func TestAntiDependenceNextWriterOnly(t *testing.T) {
	// rd reads k; w1 then w2 overwrite k → rd →_a w1 only.
	l, _ := buildLog(t, []step{
		{"rd", []data.Key{"k"}, []data.Key{"o"}},
		{"w1", nil, []data.Key{"k"}},
		{"w2", nil, []data.Key{"k"}},
	})
	g := deps.Build(l)
	if !hasEdge(g.Anti(), "r/rd#1", "r/w1#1") {
		t.Errorf("missing rd →_a w1: %v", g.Anti())
	}
	if hasEdge(g.Anti(), "r/rd#1", "r/w2#1") {
		t.Error("masked anti dependence reported")
	}
}

func TestReadersClosureTransitive(t *testing.T) {
	// w → r1 (reads w's key, writes m) → r2 (reads m); r3 independent.
	l, _ := buildLog(t, []step{
		{"w", nil, []data.Key{"k"}},
		{"r1", []data.Key{"k"}, []data.Key{"m"}},
		{"r2", []data.Key{"m"}, []data.Key{"n"}},
		{"r3", []data.Key{"z"}, []data.Key{"q"}},
	})
	g := deps.Build(l)
	cl := g.ReadersClosure(map[wlog.InstanceID]bool{"r/w#1": true})
	for _, want := range []string{"r/w#1", "r/r1#1", "r/r2#1"} {
		if !cl[wlog.InstanceID(want)] {
			t.Errorf("closure missing %s", want)
		}
	}
	if cl["r/r3#1"] {
		t.Error("independent task pulled into closure")
	}
	if len(g.ReadersClosure(nil)) != 0 {
		t.Error("closure of empty seed not empty")
	}
}

func TestInitialVersionsYieldNoFlow(t *testing.T) {
	l, _ := buildLog(t, []step{
		{"rd", []data.Key{"init"}, []data.Key{"o"}},
	})
	g := deps.Build(l)
	if len(g.Flow()) != 0 {
		t.Errorf("reads of initial versions produced flow edges: %v", g.Flow())
	}
}

func TestBuildControlFig1(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	cv := deps.BuildControl(s.Log(), "r1", s.Specs["r1"])
	t2 := wlog.FormatInstance("r1", "t2", 1)
	set, ok := cv.Deps[t2]
	if !ok {
		t.Fatal("no control deps recorded for t2")
	}
	for _, want := range []wlog.InstanceID{"r1/t3#1", "r1/t4#1"} {
		if !set[want] {
			t.Errorf("t2's control set missing %s: %v", want, set)
		}
	}
	if set["r1/t6#1"] {
		t.Error("unavoidable t6 in control set")
	}
}

func TestUnexecutedControlledFig1(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	got := deps.UnexecutedControlled(s.Log(), "r1", s.Specs["r1"], "t2")
	if len(got) != 1 || got[0] != "t5" {
		t.Errorf("unexecuted controlled = %v, want [t5]", got)
	}
	// On the clean run, t3 and t4 are the unexecuted ones.
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	got = deps.UnexecutedControlled(clean.Log(), "r1", clean.Specs["r1"], "t2")
	if len(got) != 2 || got[0] != "t3" || got[1] != "t4" {
		t.Errorf("clean unexecuted controlled = %v, want [t3 t4]", got)
	}
}

func TestPotentialFlowFromUnexecutedFig1(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	got := deps.PotentialFlowFromUnexecuted(s.Log(), s.Specs["r1"], "t5")
	if len(got) != 1 || got[0] != "r1/t6#1" {
		t.Errorf("potential readers of t5's writes = %v, want [r1/t6#1]", got)
	}
	if r := deps.PotentialFlowFromUnexecuted(s.Log(), s.Specs["r1"], "ghost"); r != nil {
		t.Errorf("unknown task produced readers: %v", r)
	}
}

func TestCrossRunFlowFig1(t *testing.T) {
	// t8 (run r2) reads a written by t1 (run r1): cross-workflow flow.
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	g := deps.Build(s.Log())
	if !g.HasFlow("r1/t1#1", "r2/t8#1") {
		t.Error("cross-run flow t1 →_f t8 missing")
	}
	cl := g.ReadersClosure(map[wlog.InstanceID]bool{"r1/t1#1": true})
	for _, want := range []wlog.InstanceID{"r1/t2#1", "r1/t4#1", "r2/t8#1", "r2/t10#1"} {
		if !cl[want] {
			t.Errorf("closure of t1 missing %s", want)
		}
	}
	for _, not := range []wlog.InstanceID{"r1/t3#1", "r1/t6#1", "r2/t7#1", "r2/t9#1"} {
		if cl[not] {
			t.Errorf("closure of t1 wrongly contains %s", not)
		}
	}
}

// TestForgedReadsParticipateInFlow: a forged task's output infects readers
// exactly like a corrupt legitimate task's.
func TestForgedReadsParticipateInFlow(t *testing.T) {
	st := data.NewStore()
	st.Init("e", 0)
	wf1, _ := wf.Fig1Specs()
	eng := engine.New(st, wlog.New())
	r1, err := eng.NewRun("r1", wf1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(r1); err != nil { // t1 writes a
		t.Fatal(err)
	}
	forged, err := eng.InjectForged("", "evil", nil, map[data.Key]data.Value{"a": -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r1); err != nil { // t2 reads the forged a
		t.Fatal(err)
	}
	g := deps.Build(eng.Log())
	if !g.HasFlow(forged, "r1/t2#1") {
		t.Error("forged task's flow edge missing")
	}
}
