// Package deps computes the dependence relations of §II.C–D from the system
// log: flow (→_f), anti-flow (→_a) and output (→_o) data dependencies with
// intervening-writer masking, their closures, and the instance-level view of
// static control dependence (→_c, →_c*).
//
// Because the log records the exact version every read observed, flow
// dependencies are exact rather than approximated from static read/write
// sets: t_i →_f t_j holds precisely when t_j read a version t_i wrote that
// no intervening task overwrote — the masked form of Definition 1.
//
// The relations are maintained by IncrementalGraph (incremental.go), an
// O(Δ)-per-commit structure; Build is the batch form (fold the whole log,
// snapshot once) and Graph is the immutable snapshot view both produce.
package deps

import (
	"math"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Edge is one dependence edge between two task instances.
type Edge struct {
	From, To wlog.InstanceID
	Key      data.Key
}

// Graph is an immutable snapshot of the data-dependence relations of a log
// prefix: edges and closures never include entries committed after the
// snapshot's epoch. Obtained from Build (whole log, batch) or
// IncrementalGraph.Snapshot (consistent prefix of a growing log).
type Graph struct {
	g     *IncrementalGraph
	epoch int

	flow, anti, output []Edge // immutable prefixes, capacity-clamped
}

// Build extracts all data-dependence relations from the log by folding every
// entry into a fresh incremental graph and snapshotting it.
func Build(log *wlog.Log) *Graph {
	g := newIncremental()
	for _, e := range log.Entries() {
		g.Append(e)
	}
	return g.Snapshot()
}

// Epoch returns the LSN of the last entry the snapshot covers.
func (g *Graph) Epoch() int { return g.epoch }

// Flow returns a copy of the →_f edges in deterministic order.
func (g *Graph) Flow() []Edge { return append([]Edge(nil), g.flow...) }

// Anti returns a copy of the →_a edges.
func (g *Graph) Anti() []Edge { return append([]Edge(nil), g.anti...) }

// Output returns a copy of the →_o edges.
func (g *Graph) Output() []Edge { return append([]Edge(nil), g.output...) }

// FlowEdges returns the →_f edges without copying. The slice is immutable;
// callers must not modify it. Hot paths (Theorem-3 order derivation) use
// these accessors to avoid per-alert allocation of the full edge lists.
func (g *Graph) FlowEdges() []Edge { return g.flow }

// AntiEdges returns the →_a edges without copying (immutable).
func (g *Graph) AntiEdges() []Edge { return g.anti }

// OutputEdges returns the →_o edges without copying (immutable).
func (g *Graph) OutputEdges() []Edge { return g.output }

// HasFlow reports from →_f to: an O(1) set lookup.
func (g *Graph) HasFlow(from, to wlog.InstanceID) bool {
	return g.g.hasFlowAt(from, to, g.epoch)
}

// FlowSuccessors invokes fn for each direct →_f successor of from, in commit
// order, once per edge (per-key multiplicity preserved).
func (g *Graph) FlowSuccessors(from wlog.InstanceID, fn func(to wlog.InstanceID)) {
	g.g.succAt(g.g.flowBy, from, g.epoch, fn)
}

// AntiSuccessors invokes fn for each direct →_a successor of from.
func (g *Graph) AntiSuccessors(from wlog.InstanceID, fn func(to wlog.InstanceID)) {
	g.g.succAt(g.g.antiBy, from, g.epoch, fn)
}

// OutputSuccessors invokes fn for each direct →_o successor of from.
func (g *Graph) OutputSuccessors(from wlog.InstanceID, fn func(to wlog.InstanceID)) {
	g.g.succAt(g.g.outBy, from, g.epoch, fn)
}

// ReadersClosure returns every instance that transitively read data written
// by an instance in seed: the →_f* closure, i.e. condition 3 of Theorem 1.
// Seed members are included in the result. Large graphs are traversed by a
// sharded worker-pool BFS (closure.go).
func (g *Graph) ReadersClosure(seed map[wlog.InstanceID]bool) map[wlog.InstanceID]bool {
	if len(seed) == 0 {
		return map[wlog.InstanceID]bool{}
	}
	return g.g.closureAt(seed, g.epoch)
}

// ControlView maps static control dependence onto the instances of one run:
// guard →_c* dependent, restricted to instances where the guard committed
// before the dependent (only a decision already taken can have steered a
// later task onto the path).
type ControlView struct {
	// Deps maps each choice-node instance to the set of instances in the
	// same run transitively control dependent on it.
	Deps map[wlog.InstanceID]map[wlog.InstanceID]bool
}

// BuildControl computes the instance-level control-dependence view for a
// run executing spec.
func BuildControl(log *wlog.Log, run string, spec *wf.Spec) *ControlView {
	return BuildControlAt(log, run, spec, math.MaxInt)
}

// BuildControlAt is BuildControl restricted to entries with LSN ≤ maxLSN —
// the log prefix a dependence snapshot covers.
func BuildControlAt(log *wlog.Log, run string, spec *wf.Spec, maxLSN int) *ControlView {
	closure := spec.ControlClosure()
	trace := log.Trace(run, false)
	cv := &ControlView{Deps: make(map[wlog.InstanceID]map[wlog.InstanceID]bool)}
	for _, g := range trace {
		if g.LSN > maxLSN {
			break
		}
		dep, ok := closure[g.Task]
		if !ok {
			continue
		}
		set := make(map[wlog.InstanceID]bool)
		for _, e := range trace {
			if e.LSN > maxLSN {
				break
			}
			if e.LSN > g.LSN && dep[e.Task] {
				set[e.ID()] = true
			}
		}
		if len(set) > 0 {
			cv.Deps[g.ID()] = set
		}
	}
	return cv
}

// UnexecutedControlled returns, for a choice-node task guard in spec, the
// tasks transitively control dependent on the guard that never appear in the
// run's trace — the t_k ∉ L of condition 4 of Theorem 1.
func UnexecutedControlled(log *wlog.Log, run string, spec *wf.Spec, guard wf.TaskID) []wf.TaskID {
	return UnexecutedControlledAt(log, run, spec, guard, math.MaxInt)
}

// UnexecutedControlledAt is UnexecutedControlled restricted to entries with
// LSN ≤ maxLSN.
func UnexecutedControlledAt(log *wlog.Log, run string, spec *wf.Spec, guard wf.TaskID, maxLSN int) []wf.TaskID {
	closure := spec.ControlClosure()[guard]
	if len(closure) == 0 {
		return nil
	}
	executed := make(map[wf.TaskID]bool)
	for _, e := range log.Trace(run, false) {
		if e.LSN > maxLSN {
			break
		}
		executed[e.Task] = true
	}
	var out []wf.TaskID
	for task := range closure {
		if !executed[task] {
			out = append(out, task)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PotentialFlowFromUnexecuted returns the logged instances that read a key
// in the static write set of the unexecuted task tk — the t_j of condition 4
// of Theorem 1 (t_k →_f* t_j is necessarily approximated by static write
// sets because t_k never ran). Only direct potential readers are returned;
// the repair engine closes transitively once actual values exist.
func PotentialFlowFromUnexecuted(log *wlog.Log, spec *wf.Spec, tk wf.TaskID) []wlog.InstanceID {
	return PotentialFlowFromUnexecutedAt(log, spec, tk, math.MaxInt)
}

// PotentialFlowFromUnexecutedAt is PotentialFlowFromUnexecuted restricted to
// entries with LSN ≤ maxLSN.
func PotentialFlowFromUnexecutedAt(log *wlog.Log, spec *wf.Spec, tk wf.TaskID, maxLSN int) []wlog.InstanceID {
	task, ok := spec.Tasks[tk]
	if !ok {
		return nil
	}
	writes := make(map[data.Key]bool, len(task.Writes))
	for _, k := range task.Writes {
		writes[k] = true
	}
	var out []wlog.InstanceID
	for _, e := range log.Entries() {
		if e.LSN > maxLSN {
			break
		}
		for k := range e.Reads {
			if writes[k] {
				out = append(out, e.ID())
				break
			}
		}
	}
	return out
}
