// Package deps computes the dependence relations of §II.C–D from the system
// log: flow (→_f), anti-flow (→_a) and output (→_o) data dependencies with
// intervening-writer masking, their closures, and the instance-level view of
// static control dependence (→_c, →_c*).
//
// Because the log records the exact version every read observed, flow
// dependencies are exact rather than approximated from static read/write
// sets: t_i →_f t_j holds precisely when t_j read a version t_i wrote that
// no intervening task overwrote — the masked form of Definition 1.
package deps

import (
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Edge is one dependence edge between two task instances.
type Edge struct {
	From, To wlog.InstanceID
	Key      data.Key
}

// Graph holds the data-dependence relations extracted from a log prefix.
type Graph struct {
	log *wlog.Log

	flow    []Edge                                // t_i →_f t_j
	anti    []Edge                                // t_i →_a t_j
	output  []Edge                                // t_i →_o t_j
	readers map[wlog.InstanceID][]wlog.InstanceID // direct flow successors
}

// Build extracts all data-dependence relations from the log.
func Build(log *wlog.Log) *Graph {
	g := &Graph{log: log, readers: make(map[wlog.InstanceID][]wlog.InstanceID)}
	entries := log.Entries()

	// Writer chains per key in commit order, for anti and output deps.
	type write struct {
		lsn  int
		inst wlog.InstanceID
	}
	chains := make(map[data.Key][]write)
	for _, e := range entries {
		id := e.ID()
		for k := range e.Writes {
			chains[k] = append(chains[k], write{lsn: e.LSN, inst: id})
		}
	}
	keys := make([]data.Key, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Flow: reader observed a version written by a logged instance.
	for _, e := range entries {
		id := e.ID()
		for k, obs := range e.Reads {
			if obs.Writer == "" {
				continue // initial version or missing key
			}
			from := wlog.InstanceID(obs.Writer)
			g.flow = append(g.flow, Edge{From: from, To: id, Key: k})
			g.readers[from] = append(g.readers[from], id)
		}
	}

	// Output: consecutive writers of the same key (masked by definition:
	// non-consecutive writers are separated by an intervening write).
	for _, k := range keys {
		chain := chains[k]
		for i := 1; i < len(chain); i++ {
			g.output = append(g.output, Edge{From: chain[i-1].inst, To: chain[i].inst, Key: k})
		}
	}

	// Anti: t_i read version v of k; the first writer of k after t_i's
	// commit overwrites what t_i read (masked: only the next writer).
	for _, e := range entries {
		id := e.ID()
		for k := range e.Reads {
			chain := chains[k]
			i := sort.Search(len(chain), func(i int) bool { return chain[i].lsn > e.LSN })
			if i < len(chain) {
				g.anti = append(g.anti, Edge{From: id, To: chain[i].inst, Key: k})
			}
		}
	}
	return g
}

// Flow returns the →_f edges in deterministic order.
func (g *Graph) Flow() []Edge { return append([]Edge(nil), g.flow...) }

// Anti returns the →_a edges.
func (g *Graph) Anti() []Edge { return append([]Edge(nil), g.anti...) }

// Output returns the →_o edges.
func (g *Graph) Output() []Edge { return append([]Edge(nil), g.output...) }

// HasFlow reports from →_f to.
func (g *Graph) HasFlow(from, to wlog.InstanceID) bool {
	for _, r := range g.readers[from] {
		if r == to {
			return true
		}
	}
	return false
}

// ReadersClosure returns every instance that transitively read data written
// by an instance in seed: the →_f* closure, i.e. condition 3 of Theorem 1.
// Seed members are included in the result.
func (g *Graph) ReadersClosure(seed map[wlog.InstanceID]bool) map[wlog.InstanceID]bool {
	out := make(map[wlog.InstanceID]bool, len(seed))
	var stack []wlog.InstanceID
	for id := range seed {
		out[id] = true
		stack = append(stack, id)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range g.readers[cur] {
			if !out[r] {
				out[r] = true
				stack = append(stack, r)
			}
		}
	}
	return out
}

// ControlView maps static control dependence onto the instances of one run:
// guard →_c* dependent, restricted to instances where the guard committed
// before the dependent (only a decision already taken can have steered a
// later task onto the path).
type ControlView struct {
	// Deps maps each choice-node instance to the set of instances in the
	// same run transitively control dependent on it.
	Deps map[wlog.InstanceID]map[wlog.InstanceID]bool
}

// BuildControl computes the instance-level control-dependence view for a
// run executing spec.
func BuildControl(log *wlog.Log, run string, spec *wf.Spec) *ControlView {
	closure := spec.ControlClosure()
	trace := log.Trace(run, false)
	cv := &ControlView{Deps: make(map[wlog.InstanceID]map[wlog.InstanceID]bool)}
	for _, g := range trace {
		dep, ok := closure[g.Task]
		if !ok {
			continue
		}
		set := make(map[wlog.InstanceID]bool)
		for _, e := range trace {
			if e.LSN > g.LSN && dep[e.Task] {
				set[e.ID()] = true
			}
		}
		if len(set) > 0 {
			cv.Deps[g.ID()] = set
		}
	}
	return cv
}

// UnexecutedControlled returns, for a choice-node task guard in spec, the
// tasks transitively control dependent on the guard that never appear in the
// run's trace — the t_k ∉ L of condition 4 of Theorem 1.
func UnexecutedControlled(log *wlog.Log, run string, spec *wf.Spec, guard wf.TaskID) []wf.TaskID {
	closure := spec.ControlClosure()[guard]
	if len(closure) == 0 {
		return nil
	}
	executed := make(map[wf.TaskID]bool)
	for _, e := range log.Trace(run, false) {
		executed[e.Task] = true
	}
	var out []wf.TaskID
	for task := range closure {
		if !executed[task] {
			out = append(out, task)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PotentialFlowFromUnexecuted returns the logged instances that read a key
// in the static write set of the unexecuted task tk — the t_j of condition 4
// of Theorem 1 (t_k →_f* t_j is necessarily approximated by static write
// sets because t_k never ran). Only direct potential readers are returned;
// the repair engine closes transitively once actual values exist.
func PotentialFlowFromUnexecuted(log *wlog.Log, spec *wf.Spec, tk wf.TaskID) []wlog.InstanceID {
	task, ok := spec.Tasks[tk]
	if !ok {
		return nil
	}
	writes := make(map[data.Key]bool, len(task.Writes))
	for _, k := range task.Writes {
		writes[k] = true
	}
	var out []wlog.InstanceID
	for _, e := range log.Entries() {
		for k := range e.Reads {
			if writes[k] {
				out = append(out, e.ID())
				break
			}
		}
	}
	return out
}
