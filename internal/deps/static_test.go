package deps_test

import (
	"testing"

	"selfheal/internal/deps"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
)

func TestStaticFlowFig1(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()
	flow := deps.StaticFlow(wf1)
	// t1 writes a; t2 reads a.
	if !deps.HasStaticEdge(flow, "t1", "t2", "a") {
		t.Errorf("missing t1 →_f t2 via a: %v", flow)
	}
	// t2 writes b; t4 and t5 read b (on their respective paths).
	if !deps.HasStaticEdge(flow, "t2", "t4", "b") || !deps.HasStaticEdge(flow, "t2", "t5", "b") {
		t.Errorf("missing b flows from t2: %v", flow)
	}
	// t5 writes e; t6 reads e — the condition-4 potential flow.
	if !deps.HasStaticEdge(flow, "t5", "t6", "e") {
		t.Errorf("missing t5 →_f t6 via e: %v", flow)
	}
	// t3 writes c; t4 reads c.
	if !deps.HasStaticEdge(flow, "t3", "t4", "c") {
		t.Errorf("missing t3 →_f t4 via c")
	}
	// No flow within the linear wf2 beyond its actual reads.
	flow2 := deps.StaticFlow(wf2)
	if !deps.HasStaticEdge(flow2, "t7", "t8", "g") || !deps.HasStaticEdge(flow2, "t7", "t9", "g") {
		t.Errorf("wf2 flows missing: %v", flow2)
	}
	if !deps.HasStaticEdge(flow2, "t8", "t10", "h") {
		t.Errorf("missing t8 →_f t10 via h")
	}
}

func TestStaticFlowMasking(t *testing.T) {
	// a writes k; m overwrites k; r reads k: a→m is masked for the reader
	// beyond m, so a →_f r must NOT exist, but m →_f r must.
	spec, err := wf.NewBuilder("mask", "a").
		Task("a").Writes("k").Then("m").End().
		Task("m").Writes("k").Then("r").End().
		Task("r").Reads("k").Writes("o").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	flow := deps.StaticFlow(spec)
	if deps.HasStaticEdge(flow, "a", "r", "k") {
		t.Error("masked static flow reported")
	}
	if !deps.HasStaticEdge(flow, "m", "r", "k") {
		t.Error("unmasked static flow missing")
	}
	// The masking writer itself is a potential output dependence of a.
	output := deps.StaticOutput(spec)
	if !deps.HasStaticEdge(output, "a", "m", "k") {
		t.Error("a →_o m missing")
	}
}

func TestStaticFlowBranchSensitive(t *testing.T) {
	// On one branch k is overwritten before the join reads it; on the
	// other it is not. The static edge must exist (some path carries it).
	spec, err := wf.NewBuilder("branch", "w").
		Task("w").Writes("k").Then("c").End().
		Task("c").Reads("k").Writes("sel").Then("clobber", "pass").
		ChooseBy(wf.ThresholdChoose("k", 5, "clobber", "pass")).End().
		Task("clobber").Writes("k").Then("j").End().
		Task("pass").Writes("other").Then("j").End().
		Task("j").Reads("k").Writes("out").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	flow := deps.StaticFlow(spec)
	if !deps.HasStaticEdge(flow, "w", "j", "k") {
		t.Error("path-sensitive flow w →_f j missing (pass branch carries it)")
	}
	if !deps.HasStaticEdge(flow, "clobber", "j", "k") {
		t.Error("clobber →_f j missing")
	}
}

func TestStaticAnti(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	anti := deps.StaticAnti(wf1)
	// t2 reads a; nothing later writes a → no anti on a.
	for _, e := range anti {
		if e.Key == "a" {
			t.Errorf("unexpected anti dependence on a: %+v", e)
		}
	}
	// t4 reads b and c; nobody rewrites them. The loop workflow canon:
	spec, err := wf.NewBuilder("aw", "r").
		Task("r").Reads("k").Writes("o").Then("w").End().
		Task("w").Writes("k").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	anti = deps.StaticAnti(spec)
	if !deps.HasStaticEdge(anti, "r", "w", "k") {
		t.Errorf("r →_a w missing: %v", anti)
	}
}

// TestStaticSoundness is the key property: every dynamic flow edge observed
// in a run's log is predicted by the static analysis of its workflow —
// compile-time analysis (§IV.B) over-approximates, never misses.
func TestStaticSoundness(t *testing.T) {
	cfg := scenario.RandomConfig{
		Runs: 1,
		Gen: wf.GenConfig{
			Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.4,
			Cycles: 2, CycleBound: 2,
		},
		Attacks: 1,
	}
	checked := 0
	for seed := int64(0); seed < 60; seed++ {
		s, err := scenario.Random(seed, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		g := deps.Build(s.Log())
		static := make(map[string][]deps.StaticEdge)
		for run, spec := range s.Specs {
			static[run] = deps.StaticFlow(spec)
		}
		for _, e := range g.Flow() {
			fe, okF := s.Log().Get(e.From)
			te, okT := s.Log().Get(e.To)
			if !okF || !okT {
				t.Fatalf("seed %d: flow edge with unknown endpoint", seed)
			}
			if fe.Run != te.Run {
				continue // cross-run flow has no single-spec static form
			}
			if fe.Forged || te.Forged {
				continue
			}
			if !deps.HasStaticEdge(static[fe.Run], fe.Task, te.Task, e.Key) &&
				fe.Task != te.Task {
				t.Errorf("seed %d: dynamic flow %s→%s via %s not statically predicted",
					seed, fe.Task, te.Task, e.Key)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no dynamic flow edges checked; property vacuous")
	}
}
