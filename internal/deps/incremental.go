// Incremental dependence maintenance: the same flow/anti/output relations
// Build extracts, maintained as an O(Δ) Append hook at commit time instead
// of an O(log) rescan per analysis. An IncrementalGraph subscribes to the
// system log (wlog.Log.OnAppend) and folds every committed entry into
//
//   - the per-key writer chain tail (output deps and anti-dep resolution
//     need only the most recent writer and the readers since it),
//   - the flow/anti/output edge lists,
//   - the readers adjacency index (→_f successors) used by damage closures,
//   - a flow-edge set for O(1) HasFlow.
//
// Snapshot() returns an immutable *Graph view pinned to the epoch (the LSN
// of the last folded entry): edges and closure results never include work
// committed after the snapshot, so the recovery analyzer reads a consistent
// log prefix while normal processing keeps committing — the on-line
// discipline of §IV without per-alert rescans.
package deps

import (
	"sort"
	"sync"

	"selfheal/internal/data"
	"selfheal/internal/wlog"
)

// succRec is one adjacency record: the successor instance and the LSN of the
// entry whose commit created the edge (always the edge's To side), used to
// filter edges beyond a snapshot's epoch.
type succRec struct {
	to  wlog.InstanceID
	lsn int
}

// IncrementalGraph maintains the dependence relations of a growing log.
// Safe for concurrent use: Append (driven by the log's commit hook) takes
// the write lock, snapshot reads take the read lock.
type IncrementalGraph struct {
	mu    sync.RWMutex
	epoch int // LSN of the last folded entry

	flow, anti, output []Edge

	// Adjacency indexes, one record per edge (per-key multiplicity kept).
	flowBy map[wlog.InstanceID][]succRec // →_f successors (readers)
	antiBy map[wlog.InstanceID][]succRec // →_a successors
	outBy  map[wlog.InstanceID][]succRec // →_o successors

	// flowSet records the earliest LSN at which from →_f to appeared.
	flowSet map[wlog.InstanceID]map[wlog.InstanceID]int

	// lastWriter is the tail of each key's writer chain; pending holds the
	// readers of a key since its last write (the anti-dep frontier: the
	// key's next writer closes an anti edge from each of them).
	lastWriter map[data.Key]wlog.InstanceID
	pending    map[data.Key][]wlog.InstanceID
}

// NewIncremental returns an IncrementalGraph subscribed to log: entries
// already committed are folded in immediately and every future commit is
// folded at Append time, atomically and in LSN order.
func NewIncremental(log *wlog.Log) *IncrementalGraph {
	g := newIncremental()
	log.OnAppend(g.Append)
	return g
}

// Frontier is the minimal resumable state of an IncrementalGraph: the fold
// epoch plus the per-key writer-chain tails and pending-reader sets. A graph
// seeded from a frontier and fed the log suffix after Epoch produces exactly
// the edges that suffix generates — including flow/anti/output edges whose
// From side lies below the epoch — which is what durable snapshots persist
// so a restart never has to re-fold the compacted log prefix.
type Frontier struct {
	// Epoch is the LSN of the last entry folded into the frontier.
	Epoch int
	// LastWriter is the tail of each key's writer chain at the epoch.
	LastWriter map[data.Key]wlog.InstanceID
	// Pending holds, per key, the readers since the last write (in commit
	// order): the instances the key's next writer anti-depends on.
	Pending map[data.Key][]wlog.InstanceID
}

// Frontier returns a deep copy of the graph's resumable state.
func (ig *IncrementalGraph) Frontier() Frontier {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	f := Frontier{
		Epoch:      ig.epoch,
		LastWriter: make(map[data.Key]wlog.InstanceID, len(ig.lastWriter)),
		Pending:    make(map[data.Key][]wlog.InstanceID, len(ig.pending)),
	}
	for k, w := range ig.lastWriter {
		f.LastWriter[k] = w
	}
	for k, rs := range ig.pending {
		cp := make([]wlog.InstanceID, len(rs))
		copy(cp, rs)
		f.Pending[k] = cp
	}
	return f
}

// NewIncrementalFrom returns an IncrementalGraph seeded from a frontier and
// subscribed to log: entries already committed (the restored log suffix) are
// folded immediately and every future commit is folded at Append time. The
// log's entries must all carry LSNs above f.Epoch — the durable restore path
// guarantees this by rebuilding the log at base = snapshot epoch.
func NewIncrementalFrom(log *wlog.Log, f Frontier) *IncrementalGraph {
	g := newIncremental()
	g.epoch = f.Epoch
	for k, w := range f.LastWriter {
		g.lastWriter[k] = w
	}
	for k, rs := range f.Pending {
		cp := make([]wlog.InstanceID, len(rs))
		copy(cp, rs)
		g.pending[k] = cp
	}
	log.OnAppend(g.Append)
	return g
}

func newIncremental() *IncrementalGraph {
	return &IncrementalGraph{
		flowBy:     make(map[wlog.InstanceID][]succRec),
		antiBy:     make(map[wlog.InstanceID][]succRec),
		outBy:      make(map[wlog.InstanceID][]succRec),
		flowSet:    make(map[wlog.InstanceID]map[wlog.InstanceID]int),
		lastWriter: make(map[data.Key]wlog.InstanceID),
		pending:    make(map[data.Key][]wlog.InstanceID),
	}
}

// Append folds one committed entry into the graph: O(Δ) in the entry's
// read/write set sizes, independent of total log length. Entries must be
// appended in LSN order (the log's OnAppend hook guarantees this).
func (ig *IncrementalGraph) Append(e *wlog.Entry) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	id := e.ID()

	// Keys are visited in sorted order so the edge lists and adjacency
	// indexes are deterministic functions of the entry sequence (batch
	// Build and a live hook-fed graph produce identical structures).
	readKeys := make([]data.Key, 0, len(e.Reads))
	for k := range e.Reads {
		readKeys = append(readKeys, k)
	}
	sort.Slice(readKeys, func(i, j int) bool { return readKeys[i] < readKeys[j] })

	// Flow: the entry read a version written by a logged instance; the
	// recorded writer makes the masked dependence exact (Definition 1).
	for _, k := range readKeys {
		obs := e.Reads[k]
		if obs.Writer == "" {
			continue // initial version or missing key
		}
		from := wlog.InstanceID(obs.Writer)
		ig.flow = append(ig.flow, Edge{From: from, To: id, Key: k})
		ig.flowBy[from] = append(ig.flowBy[from], succRec{to: id, lsn: e.LSN})
		set := ig.flowSet[from]
		if set == nil {
			set = make(map[wlog.InstanceID]int)
			ig.flowSet[from] = set
		}
		if _, ok := set[id]; !ok {
			set[id] = e.LSN
		}
	}

	// Writes: each written key extends its writer chain, emitting an output
	// dep from the chain tail (consecutive writers only — masking) and
	// closing an anti dep from every reader since that tail. Writes are
	// resolved before the entry's own reads join the pending set, so a task
	// that reads and writes the same key anti-depends on the *next* writer,
	// never on itself.
	writeKeys := make([]data.Key, 0, len(e.Writes))
	for k := range e.Writes {
		writeKeys = append(writeKeys, k)
	}
	sort.Slice(writeKeys, func(i, j int) bool { return writeKeys[i] < writeKeys[j] })
	for _, k := range writeKeys {
		if prev, ok := ig.lastWriter[k]; ok {
			ig.output = append(ig.output, Edge{From: prev, To: id, Key: k})
			ig.outBy[prev] = append(ig.outBy[prev], succRec{to: id, lsn: e.LSN})
		}
		for _, r := range ig.pending[k] {
			ig.anti = append(ig.anti, Edge{From: r, To: id, Key: k})
			ig.antiBy[r] = append(ig.antiBy[r], succRec{to: id, lsn: e.LSN})
		}
		delete(ig.pending, k)
		ig.lastWriter[k] = id
	}

	for _, k := range readKeys {
		ig.pending[k] = append(ig.pending[k], id)
	}
	ig.epoch = e.LSN
}

// Epoch returns the LSN of the last folded entry.
func (ig *IncrementalGraph) Epoch() int {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return ig.epoch
}

// Snapshot returns an immutable view of the graph at the current epoch.
// Taking a snapshot is O(1); the view stays consistent (it never sees edges
// from entries committed later) while the graph keeps growing.
func (ig *IncrementalGraph) Snapshot() *Graph {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return &Graph{
		g:      ig,
		epoch:  ig.epoch,
		flow:   ig.flow[:len(ig.flow):len(ig.flow)],
		anti:   ig.anti[:len(ig.anti):len(ig.anti)],
		output: ig.output[:len(ig.output):len(ig.output)],
	}
}

// hasFlowAt reports from →_f to among entries with LSN ≤ epoch.
func (ig *IncrementalGraph) hasFlowAt(from, to wlog.InstanceID, epoch int) bool {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	lsn, ok := ig.flowSet[from][to]
	return ok && lsn <= epoch
}

// succAt invokes fn for every successor of from in idx with edge LSN ≤
// epoch, in insertion (commit) order, one call per edge (per-key
// multiplicity preserved).
func (ig *IncrementalGraph) succAt(idx map[wlog.InstanceID][]succRec, from wlog.InstanceID, epoch int, fn func(to wlog.InstanceID)) {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	for _, rec := range idx[from] {
		if rec.lsn > epoch {
			break // records are LSN-ordered: nothing later qualifies
		}
		fn(rec.to)
	}
}
