package deps

import (
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
)

// StaticEdge is a potential dependence between two tasks of one workflow,
// derived at compile time from the specification alone (§IV.B: "data and
// control dependence relations … can be calculated when compiling
// workflows"). A static edge means there exists an execution path on which
// the dependence can materialize; whether it does in a given run is decided
// by the log-based analysis.
type StaticEdge struct {
	From, To wf.TaskID
	Key      data.Key
}

// StaticFlow computes the potential flow dependences of a specification:
// From →_f To via Key holds when some execution path leads from From to To
// with Key ∈ W(From) ∩ R(To) and no intermediate task on that path writing
// Key (Definition 1's masking, lifted to paths). Edges are sorted.
func StaticFlow(s *wf.Spec) []StaticEdge {
	return staticReach(s, func(t *wf.Task) []data.Key { return t.Writes },
		func(t *wf.Task) []data.Key { return t.Reads })
}

// StaticAnti computes the potential anti-flow dependences: From reads Key
// and To, reachable from From without an intermediate writer of Key,
// overwrites it.
func StaticAnti(s *wf.Spec) []StaticEdge {
	return staticReach(s, func(t *wf.Task) []data.Key { return t.Reads },
		func(t *wf.Task) []data.Key { return t.Writes })
}

// StaticOutput computes the potential output dependences: From and To both
// write Key, with To reachable from From without an intermediate writer.
func StaticOutput(s *wf.Spec) []StaticEdge {
	return staticReach(s, func(t *wf.Task) []data.Key { return t.Writes },
		func(t *wf.Task) []data.Key { return t.Writes })
}

// staticReach finds pairs (from, to) such that `key` appears in srcSet(from)
// and dstSet(to), and to is reachable from from along edges whose interior
// nodes do not write key. The walk is per (from, key): BFS over successors,
// stopping at writers of key (the masking task itself can still be a `to`
// if key is in its dstSet — it is the first to touch the key again).
func staticReach(s *wf.Spec, srcSet, dstSet func(*wf.Task) []data.Key) []StaticEdge {
	var out []StaticEdge
	for fromID, from := range s.Tasks {
		for _, key := range srcSet(from) {
			// BFS from from's successors; interior writers of key mask
			// further propagation.
			seen := map[wf.TaskID]bool{}
			queue := append([]wf.TaskID(nil), from.Next...)
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				if seen[cur] {
					continue
				}
				seen[cur] = true
				task := s.Tasks[cur]
				if containsKeyIn(dstSet(task), key) {
					out = append(out, StaticEdge{From: fromID, To: cur, Key: key})
				}
				if containsKeyIn(task.Writes, key) {
					continue // masked beyond this writer
				}
				queue = append(queue, task.Next...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func containsKeyIn(keys []data.Key, k data.Key) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// HasStaticEdge reports whether the edge set contains (from, to) via key.
func HasStaticEdge(edges []StaticEdge, from, to wf.TaskID, key data.Key) bool {
	for _, e := range edges {
		if e.From == from && e.To == to && e.Key == key {
			return true
		}
	}
	return false
}
