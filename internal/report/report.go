// Package report renders damage analyses and recovery results as
// human-readable text with the paper's theorem citations, for operators
// reviewing what the self-healing system did and why.
package report

import (
	"fmt"
	"sort"
	"strings"

	"selfheal/internal/recovery"
	"selfheal/internal/wlog"
)

// Analysis renders the static damage assessment.
func Analysis(a *recovery.Analysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Damage assessment for B = %s\n", idList(a.Bad))
	fmt.Fprintf(&sb, "  malicious (Theorem 1 cond 1):            %s\n", idList(a.Bad))
	fmt.Fprintf(&sb, "  flow-infected (Theorem 1 cond 3, →f*):   %s\n", idList(a.FlowDamaged))
	for _, g := range sortedGuards(a.CandidateUndo) {
		fmt.Fprintf(&sb, "  candidate undo under redo(%s) (cond 2):  %s\n", g, idList(a.CandidateUndo[g]))
	}
	for _, c := range a.Cond4 {
		fmt.Fprintf(&sb, "  stale-read candidate (cond 4): %s, if %s ∈ succ(redo(%s))\n",
			c.Reader, c.Unexecuted, c.Guard)
	}
	fmt.Fprintf(&sb, "  definite redo (Theorem 2 cond 1):        %s\n", idList(a.DefiniteRedo))
	for _, g := range sortedGuards(a.CandidateRedo) {
		fmt.Fprintf(&sb, "  candidate redo under %s (Thm 2 cond 2):  %s\n", g, idList(a.CandidateRedo[g]))
	}
	if len(a.NeverRedo) > 0 {
		fmt.Fprintf(&sb, "  forged, never redone:                    %s\n", idList(a.NeverRedo))
	}
	fmt.Fprintf(&sb, "  partial-order edges (Theorem 3):         %d\n", len(a.Orders))
	return sb.String()
}

// Result renders a completed repair.
func Result(res *recovery.Result) string {
	var sb strings.Builder
	sb.WriteString("Recovery result\n")
	fmt.Fprintf(&sb, "  undone (Theorem 1):        %s\n", idList(res.Undone))
	fmt.Fprintf(&sb, "  redone (Theorem 2):        %s\n", idList(res.Redone))
	fmt.Fprintf(&sb, "  newly executed:            %s\n", idList(res.NewExecuted))
	fmt.Fprintf(&sb, "  dropped without redo:      %s\n", idList(res.DroppedNotRedone))
	fmt.Fprintf(&sb, "  kept instances verified:   %d\n", res.KeptVerified)
	fmt.Fprintf(&sb, "  fixpoint iterations:       %d\n", res.Iterations)
	sb.WriteString("  committed schedule (undo staged first, then by corrected position):\n")
	for _, a := range res.Schedule {
		if a.Kind == recovery.ActKeep {
			continue
		}
		if a.Kind == recovery.ActUndo {
			fmt.Fprintf(&sb, "    %-8s %s\n", a.Kind, a.Inst)
			continue
		}
		fmt.Fprintf(&sb, "    %-8s %-18s @ %.6g\n", a.Kind, a.Inst, a.Epos)
	}
	return sb.String()
}

// OrderEdges renders the Theorem-3 partial orders with their rule numbers.
func OrderEdges(a *recovery.Analysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Theorem 3 partial orders (%d edges)\n", len(a.Orders))
	for _, e := range a.Orders {
		fmt.Fprintf(&sb, "  rule %-2d  %s(%s) ≺ %s(%s)\n",
			e.Rule, e.Before.Kind, e.Before.Inst, e.After.Kind, e.After.Inst)
	}
	return sb.String()
}

func idList(ids []wlog.InstanceID) string {
	if len(ids) == 0 {
		return "∅"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

func sortedGuards[V any](m map[wlog.InstanceID]V) []wlog.InstanceID {
	out := make([]wlog.InstanceID, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
