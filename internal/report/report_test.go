package report_test

import (
	"strings"
	"testing"

	"selfheal/internal/recovery"
	"selfheal/internal/report"
	"selfheal/internal/scenario"
)

func fig1Result(t *testing.T) (*recovery.Analysis, *recovery.Result) {
	t.Helper()
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Analysis, res
}

func TestAnalysisReport(t *testing.T) {
	a, _ := fig1Result(t)
	out := report.Analysis(a)
	for _, want := range []string{
		"B = r1/t1#1",
		"Theorem 1 cond 3",
		"r1/t2#1",
		"candidate undo under redo(r1/t2#1)",
		"r1/t3#1",
		"stale-read candidate (cond 4): r1/t6#1, if t5 ∈ succ(redo(r1/t2#1))",
		"definite redo (Theorem 2 cond 1)",
		"partial-order edges (Theorem 3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis report missing %q:\n%s", want, out)
		}
	}
}

func TestResultReport(t *testing.T) {
	_, res := fig1Result(t)
	out := report.Result(res)
	for _, want := range []string{
		"undone (Theorem 1)",
		"redone (Theorem 2)",
		"newly executed:            r1/t5#1",
		"dropped without redo:",
		"fixpoint iterations:       2",
		"exec-new r1/t5#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("result report missing %q:\n%s", want, out)
		}
	}
	// Keeps are omitted from the schedule listing.
	if strings.Contains(out, "keep") {
		t.Error("schedule listing includes keep actions")
	}
}

func TestOrderEdgesReport(t *testing.T) {
	a, _ := fig1Result(t)
	out := report.OrderEdges(a)
	for _, want := range []string{"rule 1", "rule 3", "≺"} {
		if !strings.Contains(out, want) {
			t.Errorf("order report missing %q", want)
		}
	}
}

func TestEmptySetsRenderAsEmpty(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recovery.Repair(s.Store(), s.Log(), s.Specs, nil, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := report.Result(res)
	if !strings.Contains(out, "∅") {
		t.Errorf("empty sets not marked:\n%s", out)
	}
}
