package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/durable"
	"selfheal/internal/engine"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// durableDoc is chainSpec as a wfjson document: a linear workflow of n
// tasks where task i reads "<name>.k<i-1>", writes "<name>.k<i>" and adds
// bias i — so the terminal key deterministically ends at n(n+1)/2
// regardless of scheduling, and any corruption propagates visibly.
func durableDoc(name string, n int) *wfjson.SpecJSON {
	key := func(i int) string { return fmt.Sprintf("%s.k%d", name, i) }
	sj := &wfjson.SpecJSON{Name: name, Start: "t1"}
	for i := 1; i <= n; i++ {
		tj := wfjson.TaskJSON{ID: fmt.Sprintf("t%d", i), Writes: []string{key(i)}, Bias: int64(i)}
		if i > 1 {
			tj.Reads = []string{key(i - 1)}
		}
		if i < n {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	return sj
}

// durableVal is the benign terminal value of durableDoc(name, n)'s last key.
func durableVal(n int) data.Value { return data.Value(n * (n + 1) / 2) }

func newDurableSvc(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	svc, err := NewDurable(cfg, dir, durable.Options{})
	if err != nil {
		t.Fatalf("NewDurable(%s): %v", dir, err)
	}
	svc.Start()
	t.Cleanup(svc.Stop)
	return svc
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func drainRecovery(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.DrainRecovery(ctx); err != nil {
		t.Fatalf("DrainRecovery: %v (state %v)", err, svc.State())
	}
}

// TestDurableRestartResumesState: a clean stop/start cycle restores the
// exact service state — store chains, log, run statuses, graph frontier —
// and the restored service keeps accepting work.
func TestDurableRestartResumesState(t *testing.T) {
	dir := t.TempDir()
	svc := newDurableSvc(t, dir, Config{Shards: 2})
	for _, name := range []string{"a", "b", "c"} {
		if err := svc.SubmitRunSpec(name, durableDoc(name, 6)); err != nil {
			t.Fatal(err)
		}
	}
	waitIdle(t, svc)
	chains := svc.Store().ChainsCopy()
	logLen := svc.Log().Len()
	runs := svc.Runs()
	front := svc.graph.Frontier()
	svc.Stop()

	svc2 := newDurableSvc(t, dir, Config{Shards: 2})
	if !reflect.DeepEqual(chains, svc2.Store().ChainsCopy()) {
		t.Errorf("restored store differs:\n%s", data.Diff(svc.Store(), svc2.Store()))
	}
	if got := svc2.Log().Len(); got != logLen {
		t.Errorf("restored log length %d, want %d", got, logLen)
	}
	got := svc2.Runs()
	for i := range got {
		// Shard placement is scheduling state, not durable state: a restore
		// may re-place a run on any shard.
		got[i].Shard = 0
		runs[i].Shard = 0
	}
	if !reflect.DeepEqual(runs, got) {
		t.Errorf("restored runs %+v, want %+v", got, runs)
	}
	if got := svc2.graph.Frontier(); !reflect.DeepEqual(front, got) {
		t.Errorf("restored graph frontier differs:\n got  %+v\n want %+v", got, front)
	}
	if records, _ := svc2.ReplayStats(); records != logLen+3 {
		// 3 spec records + one record per committed entry, no snapshot.
		t.Errorf("replayed %d records, want %d", records, logLen+3)
	}
	// The restored service is live: new submissions execute to completion.
	if err := svc2.SubmitRunSpec("d", durableDoc("d", 4)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc2)
	if v, _ := svc2.Store().Get("d.k4"); v.Value != durableVal(4) {
		t.Errorf("d.k4 = %d, want %d", v.Value, durableVal(4))
	}
}

// TestDurableKillMidFlightRestores simulates kill -9 by copying the WAL
// directory while the service is executing (the copy can catch a torn tail
// and runs at arbitrary frontiers). A service booted from the copy must
// resume every registered run and finish with the benign terminal values.
func TestDurableKillMidFlightRestores(t *testing.T) {
	const runs, steps = 8, 10
	dir := t.TempDir()
	svc := newDurableSvc(t, dir, Config{Shards: 2})
	for i := 0; i < runs; i++ {
		if err := svc.SubmitRunSpec(fmt.Sprintf("r%d", i), durableDoc(fmt.Sprintf("r%d", i), steps)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the workload is demonstrably mid-flight, then "crash".
	deadline := time.Now().Add(30 * time.Second)
	for svc.Log().Len() < runs*steps/4 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)
	waitIdle(t, svc)
	svc.Stop()

	svc2 := newDurableSvc(t, crash, Config{Shards: 2})
	restored := svc2.Runs()
	if len(restored) == 0 {
		t.Fatal("crash copy restored no runs")
	}
	waitIdle(t, svc2)
	if err := svc2.Store().CheckIndex(); err != nil {
		t.Errorf("restored store index: %v", err)
	}
	active := 0
	for _, ri := range restored {
		if ri.Status != RunDone.String() {
			active++
		}
		k := data.Key(fmt.Sprintf("%s.k%d", ri.ID, steps))
		if v, ok := svc2.Store().Get(k); !ok || v.Value != durableVal(steps) {
			t.Errorf("run %s terminal %s = %d (present %v), want %d", ri.ID, k, v.Value, ok, durableVal(steps))
		}
		if info, err := svc2.RunInfo(ri.ID); err != nil || info.Status != RunDone.String() {
			t.Errorf("run %s status %q (%v), want done", ri.ID, info.Status, err)
		}
	}
	t.Logf("crash copy caught %d/%d runs mid-flight at log length %d", active, len(restored), svc2.Log().Base()+svc2.Log().Len())
}

// TestDurableRepairSurvivesRestart: a completed repair's adopt record is the
// only durable trace of the chain rewrite — after a restart the repaired
// store, not the attacked one, must come back.
func TestDurableRepairSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newDurableSvc(t, dir, Config{Shards: 2})
	if err := svc.SubmitRunSpec("v1", durableDoc("v1", 8)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	inst, err := svc.InjectForged("intruder", "evil", []data.Key{"v1.k8"},
		map[data.Key]data.Value{"v1.k8": -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	drainRecovery(t, svc)
	waitIdle(t, svc)
	if err := svc.LastRecoveryError(); err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	chains := svc.Store().ChainsCopy()
	svc.Stop()

	svc2 := newDurableSvc(t, dir, Config{Shards: 2})
	if !reflect.DeepEqual(chains, svc2.Store().ChainsCopy()) {
		t.Errorf("repair did not survive restart:\n%s", data.Diff(svc.Store(), svc2.Store()))
	}
	if v, _ := svc2.Store().Get("v1.k8"); v.Value != durableVal(8) {
		t.Errorf("v1.k8 = %d after restart, benign value is %d", v.Value, durableVal(8))
	}
	if n := len(svc2.restoredAlerts); n != 0 {
		t.Errorf("%d un-acked alerts restored after completed repair, want 0", n)
	}
}

// TestInterruptedRepairResumes: a crash after an alert is admitted (its
// record synced) but before the repair installs must re-queue the alert at
// the next boot and end in exactly the state of the uninterrupted repair.
func TestInterruptedRepairResumes(t *testing.T) {
	// Base state: completed run + forged entry, no alert yet.
	base := filepath.Join(t.TempDir(), "base")
	svc := newDurableSvc(t, base, Config{Shards: 2})
	if err := svc.SubmitRunSpec("v1", durableDoc("v1", 8)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	inst, err := svc.InjectForged("intruder", "evil", []data.Key{"v1.k8"},
		map[data.Key]data.Value{"v1.k8": -1})
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	svc.Stop()

	ref := filepath.Join(t.TempDir(), "ref")
	cut := filepath.Join(t.TempDir(), "cut")
	copyTree(t, base, ref)
	copyTree(t, base, cut)

	// Reference: report, repair, done.
	refSvc := newDurableSvc(t, ref, Config{Shards: 2})
	if err := refSvc.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	drainRecovery(t, refSvc)
	waitIdle(t, refSvc)
	if err := refSvc.LastRecoveryError(); err != nil {
		t.Fatalf("reference repair failed: %v", err)
	}
	want := refSvc.Store().ChainsCopy()

	// Interrupted: the service admits the alert (record synced by
	// ReportAlerts) and "crashes" before its recovery worker — never
	// started — can touch it.
	cutSvc, err := NewDurable(Config{Shards: 2}, cut, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cutSvc.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	if err := cutSvc.wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: the un-acked alert is re-queued and the repair re-runs.
	cutSvc2 := newDurableSvc(t, cut, Config{Shards: 2})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := cutSvc2.Metrics(); m.UnitsExecuted >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	drainRecovery(t, cutSvc2)
	waitIdle(t, cutSvc2)
	if err := cutSvc2.LastRecoveryError(); err != nil {
		t.Fatalf("resumed repair failed: %v", err)
	}
	if got := cutSvc2.Store().ChainsCopy(); !reflect.DeepEqual(want, got) {
		t.Errorf("resumed repair diverged from uninterrupted repair:\n%s",
			data.Diff(refSvc.Store(), cutSvc2.Store()))
	}
}

// TestCheckpointBoundsReplayAndHorizon: an explicit checkpoint truncates
// what a restart replays; afterwards, post-epoch damage repairs normally
// while damage reaching pre-epoch history is refused with ErrHorizon
// instead of installing a silently wrong repair against the truncated log.
func TestCheckpointBoundsReplayAndHorizon(t *testing.T) {
	dir := t.TempDir()
	svc := newDurableSvc(t, dir, Config{Shards: 2})
	if err := svc.SubmitRunSpec("a", durableDoc("a", 3)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	if err := svc.Checkpoint(context.Background()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := svc.SubmitRunSpec("b", durableDoc("b", 3)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	svc.Stop()

	svc2 := newDurableSvc(t, dir, Config{Shards: 2})
	if records, _ := svc2.ReplayStats(); records != 4 {
		// Post-snapshot tail: spec record for b + its 3 entries.
		t.Errorf("replayed %d records past the snapshot, want 4", records)
	}
	if base := svc2.Log().Base(); base != 3 {
		t.Errorf("restored log base %d, want 3", base)
	}
	for _, ri := range svc2.Runs() {
		if ri.Status != RunDone.String() {
			t.Errorf("run %s restored as %s, want done", ri.ID, ri.Status)
		}
	}

	// Post-epoch damage: normal repair.
	inst, err := svc2.InjectForged("intruder", "evil", []data.Key{"b.k3"},
		map[data.Key]data.Value{"b.k3": -7})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	drainRecovery(t, svc2)
	if err := svc2.LastRecoveryError(); err != nil {
		t.Fatalf("post-epoch repair failed: %v", err)
	}
	if v, _ := svc2.Store().Get("b.k3"); v.Value != durableVal(3) {
		t.Errorf("b.k3 = %d after repair, benign value is %d", v.Value, durableVal(3))
	}

	// Damage on run a's keys: a is retired with every entry beneath the
	// snapshot — frozen history. The undo exposes the checkpoint boundary
	// version, so the repair succeeds instead of refusing conservatively.
	inst, err = svc2.InjectForged("intruder", "evil2", []data.Key{"a.k1"},
		map[data.Key]data.Value{"a.k1": -9})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	drainRecovery(t, svc2)
	if err := svc2.LastRecoveryError(); err != nil {
		t.Errorf("repair over frozen run a failed: %v", err)
	}
	if v, _ := svc2.Store().Get("a.k1"); v.Value != durableVal(1) {
		t.Errorf("a.k1 = %d after repair, boundary value is %d", v.Value, durableVal(1))
	}
}

// TestAutoCheckpoint: Config.SnapshotEvery drives checkpoints without any
// explicit call, so a long-lived service's restart replays a bounded tail.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	svc := newDurableSvc(t, dir, Config{Shards: 2, SnapshotEvery: 16})
	total := 0
	for i := 0; i < 6; i++ {
		if err := svc.SubmitRunSpec(fmt.Sprintf("r%d", i), durableDoc(fmt.Sprintf("r%d", i), 8)); err != nil {
			t.Fatal(err)
		}
		total += 8
	}
	waitIdle(t, svc)
	deadline := time.Now().Add(30 * time.Second)
	for svc.wal.SnapshotEpoch() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	epoch := svc.wal.SnapshotEpoch()
	if epoch == 0 {
		t.Fatal("no automatic checkpoint happened")
	}
	svc.Stop()

	svc2 := newDurableSvc(t, dir, Config{Shards: 2, SnapshotEvery: 16})
	records, _ := svc2.ReplayStats()
	if records >= total {
		t.Errorf("replayed %d records despite a checkpoint at epoch %d (%d entries total)", records, epoch, total)
	}
	for i := 0; i < 6; i++ {
		k := data.Key(fmt.Sprintf("r%d.k8", i))
		if v, _ := svc2.Store().Get(k); v.Value != durableVal(8) {
			t.Errorf("%s = %d after restore, want %d", k, v.Value, durableVal(8))
		}
	}
}

// TestDurableRejectsBareSpec: the durable submission path requires the
// serializable wfjson document.
func TestDurableRejectsBareSpec(t *testing.T) {
	svc := newDurableSvc(t, t.TempDir(), Config{})
	if err := svc.SubmitRun("x", chainSpec("x", 2, 0)); !errors.Is(err, engine.ErrBadSpec) {
		t.Errorf("SubmitRun on durable service = %v, want ErrBadSpec", err)
	}
	if err := svc.SubmitRunSpec("x", durableDoc("x", 2)); err != nil {
		t.Errorf("SubmitRunSpec: %v", err)
	}
	waitIdle(t, svc)
}
