package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/engine"
	"selfheal/internal/selfheal"
	"selfheal/internal/stg"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// chainSpec builds a linear workflow of n tasks: task i reads the key task
// i-1 wrote and writes "<name>.k<i>". Each compute optionally sleeps,
// modelling a service call, and is value-sensitive (sums its reads) so
// corruption propagates visibly.
func chainSpec(name string, n int, delay time.Duration) *wf.Spec {
	b := wf.NewBuilder(name, "t1")
	key := func(i int) data.Key { return data.Key(fmt.Sprintf("%s.k%d", name, i)) }
	for i := 1; i <= n; i++ {
		id := wf.TaskID(fmt.Sprintf("t%d", i))
		tb := b.Task(id).Writes(key(i))
		if i > 1 {
			tb.Reads(key(i - 1))
		}
		bias := data.Value(i)
		sum := wf.SumCompute(bias, key(i))
		tb.Compute(func(reads map[data.Key]data.Value) map[data.Key]data.Value {
			if delay > 0 {
				time.Sleep(delay)
			}
			return sum(reads)
		})
		if i < n {
			tb.Then(wf.TaskID(fmt.Sprintf("t%d", i+1)))
		}
	}
	return b.MustBuild()
}

// sharedSpec is chainSpec over a key namespace shared by every run using it:
// runs built from it have overlapping footprints and must land on one shard.
func sharedSpec(group string, n int) *wf.Spec { return chainSpec(group, n, 0) }

func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(svc.Stop)
	return svc
}

func waitIdle(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v (state %v)", err, svc.State())
	}
}

// verifySerialInLSNOrder replays the log on a fresh store and checks that
// every entry's recorded reads name exactly the values the serial replay
// exposes — i.e. the concurrent execution is equivalent to the serial
// execution in LSN order.
func verifySerialInLSNOrder(t *testing.T, log *wlog.Log) *data.Store {
	t.Helper()
	st := data.NewStore()
	for _, e := range log.Entries() {
		for k, obs := range e.Reads {
			var cur data.Value
			if v, ok := st.Get(k); ok {
				cur = v.Value
			}
			if cur != obs.Value {
				t.Errorf("%s (LSN %d) read %s=%d, serial replay has %d — not serializable",
					e.ID(), e.LSN, k, obs.Value, cur)
			}
		}
		for k, v := range e.Writes {
			st.Write(k, v, float64(e.LSN), string(e.ID()), false)
		}
	}
	return st
}

// TestDispatcherPlacement exercises the key-ownership rules deterministically
// against an unstarted executor (no workers consume the inboxes).
func TestDispatcherPlacement(t *testing.T) {
	eng := engine.New(data.NewStore(), wlog.New())
	x := newExecutor(eng, newCommitter(eng, 1, 1), 2, 8, 1)

	if err := x.submit("A", chainSpec("a", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := x.submit("B", chainSpec("b", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if x.runs["A"].shard == x.runs["B"].shard {
		t.Fatalf("disjoint runs on the same shard %d despite free capacity", x.runs["A"].shard)
	}

	// C overlaps A: must land on A's shard, not the least-loaded one.
	specAC := chainSpec("a", 3, 0)
	if err := x.submit("C", specAC); err != nil {
		t.Fatal(err)
	}
	if got, want := x.runs["C"].shard, x.runs["A"].shard; got != want {
		t.Fatalf("overlapping run C on shard %d, want A's shard %d", got, want)
	}

	// D overlaps both shards: no sound placement, deferred.
	mixed := wf.NewBuilder("m", "t1").
		Task("t1").Reads("a.k3", "b.k3").Writes("m.k1").Compute(wf.SumCompute(1, "m.k1")).
		End().MustBuild()
	if err := x.submit("D", mixed); err != nil {
		t.Fatal(err)
	}
	if x.runs["D"].state != RunDeferred {
		t.Fatalf("cross-shard run D state %v, want deferred", x.runs["D"].state)
	}
	// E conflicts too; the deferred queue (capacity 1) is full.
	mixed2 := wf.NewBuilder("m2", "t1").
		Task("t1").Reads("a.k1", "b.k1").Writes("m2.k1").Compute(wf.SumCompute(1, "m2.k1")).
		End().MustBuild()
	if err := x.submit("E", mixed2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit E: err = %v, want ErrQueueFull", err)
	}
	if err := x.submit("A", chainSpec("a", 3, 0)); !errors.Is(err, engine.ErrRunExists) {
		t.Fatalf("duplicate submit: err = %v, want ErrRunExists", err)
	}

	// Retiring A and C frees the "a.*" keys: D becomes placeable on B's
	// shard (sole remaining owner of "b.*").
	x.finish(x.runs["A"], RunDone, nil)
	x.finish(x.runs["C"], RunDone, nil)
	if got, want := x.runs["D"].state, RunActive; got != want {
		t.Fatalf("deferred run D state %v after keys freed, want %v", got, want)
	}
	if got, want := x.runs["D"].shard, x.runs["B"].shard; got != want {
		t.Fatalf("redispatched run D on shard %d, want B's shard %d", got, want)
	}
}

// TestShardedSerializable runs a mixed workload (disjoint-key runs plus runs
// sharing a key namespace) across 4 shards and proves the three acceptance
// properties: the log is serializable in LSN order, the final store equals
// the serial replay, and the batch-built dependence graph agrees with the
// incrementally maintained one.
func TestShardedSerializable(t *testing.T) {
	svc := startService(t, Config{Shards: 4, BatchMax: 8})
	const chain = 12
	var ids []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("solo%d", i)
		if err := svc.SubmitRun(id, chainSpec(id, chain, 0)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for g := 0; g < 2; g++ {
		for r := 0; r < 2; r++ {
			id := fmt.Sprintf("grp%d-%d", g, r)
			if err := svc.SubmitRun(id, sharedSpec(fmt.Sprintf("shared%d", g), chain)); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	waitIdle(t, svc)

	for _, id := range ids {
		info, err := svc.RunInfo(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != "done" {
			t.Fatalf("run %s status %q (error %q), want done", id, info.Status, info.Error)
		}
	}
	if got, want := svc.Log().Len(), 10*chain; got != want {
		t.Fatalf("log has %d entries, want %d", got, want)
	}

	replay := verifySerialInLSNOrder(t, svc.Log())
	if !data.Equal(replay, svc.Store()) {
		t.Fatalf("final store differs from serial LSN-order replay:\n%s", data.Diff(replay, svc.Store()))
	}

	batch := deps.Build(svc.Log())
	inc := svc.graph.Snapshot()
	if batch.Epoch() != inc.Epoch() {
		t.Fatalf("graph epochs differ: batch %d vs incremental %d", batch.Epoch(), inc.Epoch())
	}
	type edges func(*deps.Graph) []deps.Edge
	for name, get := range map[string]edges{
		"flow":   (*deps.Graph).Flow,
		"anti":   (*deps.Graph).Anti,
		"output": (*deps.Graph).Output,
	} {
		b, i := get(batch), get(inc)
		if len(b) != len(i) {
			t.Fatalf("%s edge counts differ: batch %d vs incremental %d", name, len(b), len(i))
		}
		for j := range b {
			if b[j] != i[j] {
				t.Fatalf("%s edge %d differs: batch %v vs incremental %v", name, j, b[j], i[j])
			}
		}
	}

	m := svc.Metrics()
	if m.CommitEntries != 10*chain || m.CommitBatches > m.CommitEntries || m.CommitBatches == 0 {
		t.Fatalf("commit pipeline accounting: %d entries in %d batches", m.CommitEntries, m.CommitBatches)
	}
	if m.RunsCompleted != len(ids) || m.NormalSteps != 10*chain {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestSubmitAndLookupErrors checks the typed sentinels the API layer maps to
// status codes.
func TestSubmitAndLookupErrors(t *testing.T) {
	svc := startService(t, Config{Shards: 2})
	bad := &wf.Spec{Name: "bad", Start: "missing", Tasks: map[wf.TaskID]*wf.Task{}}
	if err := svc.SubmitRun("r", bad); !errors.Is(err, engine.ErrBadSpec) {
		t.Fatalf("bad spec: err = %v, want ErrBadSpec", err)
	}
	if err := svc.SubmitRun("r1", chainSpec("r1", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitRun("r1", chainSpec("r1", 3, 0)); !errors.Is(err, engine.ErrRunExists) {
		t.Fatalf("dup run: err = %v, want ErrRunExists", err)
	}
	if _, err := svc.RunInfo("nope"); !errors.Is(err, engine.ErrUnknownRun) {
		t.Fatalf("unknown run: err = %v, want ErrUnknownRun", err)
	}
	if err := svc.Report([]wlog.InstanceID{"ghost/t1#1"}); !errors.Is(err, engine.ErrUnknownRun) {
		t.Fatalf("unknown instance alert: err = %v, want ErrUnknownRun", err)
	}
	if err := svc.Report([]wlog.InstanceID{"ghost:t1:1"}); !errors.Is(err, engine.ErrBadSpec) {
		t.Fatalf("malformed instance alert: err = %v, want ErrBadSpec", err)
	}
	if err := svc.Report(nil); !errors.Is(err, engine.ErrBadSpec) {
		t.Fatalf("empty alert: err = %v, want ErrBadSpec", err)
	}
	waitIdle(t, svc)
}

// TestAlertBackpressure fills the bounded alert queue and checks the drop
// accounting: the overflowing Report returns ErrQueueFull and is counted
// lost, matching the CTMC loss edge.
func TestAlertBackpressure(t *testing.T) {
	svc, err := New(Config{Shards: 1, AlertBuf: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if err := svc.SubmitRun("r1", chainSpec("r1", 3, 0)); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	// Stop the service: the recovery worker no longer drains the queue, so
	// the bound is observable deterministically.
	svc.Stop()
	inst := wlog.FormatInstance("r1", "t1", 1)
	for i := 0; i < 2; i++ {
		if err := svc.Report([]wlog.InstanceID{inst}); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	if err := svc.Report([]wlog.InstanceID{inst}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow report: err = %v, want ErrQueueFull", err)
	}
	m := svc.Metrics()
	if m.AlertsReported != 3 || m.AlertsLost != 1 {
		t.Fatalf("drop accounting: reported %d lost %d, want 3/1", m.AlertsReported, m.AlertsLost)
	}
	if svc.State() != stg.Scan {
		t.Fatalf("state %v with alerts queued, want SCAN", svc.State())
	}
}

// TestDeferredBackpressure drives the bounded deferred queue to rejection
// with live workers: two slow runs pin disjoint namespaces to two shards,
// a cross-namespace run defers, a second one is rejected with ErrQueueFull.
func TestDeferredBackpressure(t *testing.T) {
	svc := startService(t, Config{Shards: 2, DeferMax: 1})
	if err := svc.SubmitRun("A", chainSpec("a", 30, 2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitRun("B", chainSpec("b", 30, 2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mixed := func(name string) *wf.Spec {
		return wf.NewBuilder(name, "t1").
			Task("t1").Reads("a.k30", "b.k30").Writes(data.Key(name + ".k1")).
			Compute(wf.SumCompute(1, data.Key(name+".k1"))).
			End().MustBuild()
	}
	if err := svc.SubmitRun("C", mixed("c")); err != nil {
		t.Fatal(err)
	}
	if info, err := svc.RunInfo("C"); err != nil || info.Status != "deferred" {
		t.Fatalf("run C: info %+v err %v, want deferred", info, err)
	}
	if err := svc.SubmitRun("D", mixed("d")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit D: err = %v, want ErrQueueFull", err)
	}
	waitIdle(t, svc)
	// C must eventually have been placed and completed — reading the final
	// values both A and B produced.
	info, err := svc.RunInfo("C")
	if err != nil || info.Status != "done" {
		t.Fatalf("run C after drain: info %+v err %v, want done", info, err)
	}
	verifySerialInLSNOrder(t, svc.Log())
}

// benignSnapshot computes the attack-free final values of the given specs by
// serial execution.
func benignSnapshot(t *testing.T, specs map[string]*wf.Spec) map[data.Key]data.Value {
	t.Helper()
	eng := engine.New(data.NewStore(), wlog.New())
	var runs []*engine.Run
	for id, sp := range specs {
		r, err := eng.NewRun(id, sp)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	if err := eng.RunAll(context.Background(), runs...); err != nil {
		t.Fatal(err)
	}
	return eng.Store().Snapshot()
}

// runRecoveryEquivalence drives the same attacked workload through the
// sharded service (alert delivered mid-flight) and through the single-
// threaded selfheal.System (alert after completion), and requires all three
// final stores — sharded, single-threaded, benign — to agree: recovery under
// sharded concurrency is equivalent to the serial loop.
func runRecoveryEquivalence(t *testing.T, strict bool) {
	specs := map[string]*wf.Spec{}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("w%d", i)
		specs[id] = chainSpec(id, 10, 500*time.Microsecond)
	}
	attack := engine.Attack{
		Run: "w0", Task: "t3", Visit: 1,
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"w0.k3": 9999}
		},
	}
	badInst := wlog.FormatInstance(attack.Run, attack.Task, attack.Visit)

	// Sharded, attacked, alerted while runs are still stepping.
	svc := startService(t, Config{Shards: 4, Strict: strict})
	svc.Engine().AddAttack(attack)
	for id, sp := range specs {
		if err := svc.SubmitRun(id, sp); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := svc.Log().Get(badInst); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("attacked instance never committed")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := svc.Report([]wlog.InstanceID{badInst}); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	m := svc.Metrics()
	if m.UnitsExecuted < 1 || m.RecoveryErrors > 0 {
		t.Fatalf("recovery did not execute cleanly: %+v (last err %v)", m, svc.LastRecoveryError())
	}

	// Single-threaded reference: same specs, same attack, alert after the
	// runs complete, drained by the Tick state machine.
	ref, err := selfheal.New(selfheal.Config{AlertBuf: 4, RecoveryBuf: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.Engine().AddAttack(attack)
	for id, sp := range specs {
		if err := ref.StartRun(id, sp); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := ref.RunToCompletion(ctx, 10000); err != nil {
		t.Fatal(err)
	}
	if !ref.Report(selfheal.Alert{Bad: []wlog.InstanceID{badInst}}) {
		t.Fatal("reference alert lost")
	}
	if err := ref.DrainRecovery(ctx, 10000); err != nil {
		t.Fatal(err)
	}

	want := benignSnapshot(t, specs)
	for name, got := range map[string]map[data.Key]data.Value{
		"sharded":         svc.Store().Snapshot(),
		"single-threaded": ref.Store().Snapshot(),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s final store has %d keys, want %d", name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s: %s = %d after recovery, benign value is %d", name, k, got[k], v)
			}
		}
	}
}

func TestRecoveryEquivalenceStrict(t *testing.T)     { runRecoveryEquivalence(t, true) }
func TestRecoveryEquivalenceConcurrent(t *testing.T) { runRecoveryEquivalence(t, false) }

// TestCleanShardsServeDuringRecovery is the §IV partial-quiescence property:
// while a slow repair replays a damaged component, a new run on clean keys is
// accepted AND completes with the service still in RECOVERY, while a new run
// touching the damaged keys is deferred until the repair lands — and the
// final store matches the ordered attack-free execution.
func TestCleanShardsServeDuringRecovery(t *testing.T) {
	svc := startService(t, Config{Shards: 2})
	// The damaged chain's computes sleep, so the repair's replay holds
	// RECOVERY open long enough to observe concurrent service.
	specD := chainSpec("d1", 10, 25*time.Millisecond)
	svc.Engine().AddAttack(engine.Attack{
		Run: "d1", Task: "t2", Visit: 1,
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"d1.k2": 9999}
		},
	})
	if err := svc.SubmitRun("d1", specD); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)

	if err := svc.Report([]wlog.InstanceID{wlog.FormatInstance("d1", "t2", 1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.State() != stg.Recovery {
		if time.Now().After(deadline) {
			t.Fatal("service never entered RECOVERY")
		}
		time.Sleep(100 * time.Microsecond)
	}

	specC := chainSpec("c1", 4, 0)
	if err := svc.SubmitRun("c1", specC); err != nil {
		t.Fatal(err)
	}
	specX := wf.NewBuilder("x", "t1").
		Task("t1").Reads("d1.k10").Writes("x.k1").Compute(wf.SumCompute(1, "x.k1")).
		End().MustBuild()
	if err := svc.SubmitRun("x1", specX); err != nil {
		t.Fatal(err)
	}

	for {
		info, err := svc.RunInfo("c1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clean run c1 stuck %q mid-recovery", info.Status)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := svc.State(); got != stg.Recovery {
		t.Fatalf("state %v after the clean run completed, want RECOVERY still active", got)
	}
	if info, err := svc.RunInfo("x1"); err != nil || info.Status != "deferred" {
		t.Fatalf("damaged-key run x1 mid-recovery: info %+v err %v, want deferred", info, err)
	}

	waitIdle(t, svc)
	if info, err := svc.RunInfo("x1"); err != nil || info.Status != "done" {
		t.Fatalf("run x1 after drain: info %+v err %v, want done", info, err)
	}
	m := svc.Metrics()
	if m.UnitsExecuted < 1 || m.RecoveryErrors > 0 {
		t.Fatalf("recovery accounting: %+v (last err %v)", m, svc.LastRecoveryError())
	}

	// Ordered attack-free reference: d1 alone first (x1 reads its final
	// key), then c1 and x1.
	ref := engine.New(data.NewStore(), wlog.New())
	ctx := context.Background()
	rd, err := ref.NewRun("d1", specD)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(ctx, rd); err != nil {
		t.Fatal(err)
	}
	rc, err := ref.NewRun("c1", specC)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := ref.NewRun("x1", specX)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(ctx, rc, rx); err != nil {
		t.Fatal(err)
	}
	want := ref.Store().Snapshot()
	got := svc.Store().Snapshot()
	if len(got) != len(want) {
		t.Fatalf("final store has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d after recovery, ordered benign value is %d", k, got[k], v)
		}
	}
}

// TestForgedInjectionRecovery injects a forged task through the commit
// pipeline of a live sharded service, reports it, and checks the repair
// restores the benign values while later runs proceed.
func TestForgedInjectionRecovery(t *testing.T) {
	specs := map[string]*wf.Spec{"v1": chainSpec("v1", 8, 0)}
	svc := startService(t, Config{Shards: 2})
	if err := svc.SubmitRun("v1", specs["v1"]); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	inst, err := svc.InjectForged("intruder", "evil", []data.Key{"v1.k8"},
		map[data.Key]data.Value{"v1.k8": -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Report([]wlog.InstanceID{inst}); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	want := benignSnapshot(t, specs)
	got := svc.Store().Snapshot()
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d after forged-injection recovery, benign value is %d", k, got[k], v)
		}
	}
	if m := svc.Metrics(); m.Undone < 1 {
		t.Fatalf("forged instance not undone: %+v", m)
	}
}

// TestConcurrentReportStress hammers Report from many goroutines while the
// shards execute and recovery drains — the -race proof that alert delivery,
// state classification and metrics are goroutine-safe.
func TestConcurrentReportStress(t *testing.T) {
	svc := startService(t, Config{Shards: 4, AlertBuf: 4})
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := svc.SubmitRun(id, chainSpec(id, 20, 200*time.Microsecond)); err != nil {
			t.Fatal(err)
		}
	}
	inst := wlog.FormatInstance("s0", "t1", 1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := svc.Log().Get(inst); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first instance never committed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	done := make(chan int)
	for g := 0; g < 8; g++ {
		go func() {
			delivered := 0
			for i := 0; i < 25; i++ {
				err := svc.Report([]wlog.InstanceID{inst})
				switch {
				case err == nil:
					delivered++
				case errors.Is(err, ErrQueueFull):
				default:
					t.Errorf("report: %v", err)
				}
				svc.State()
				svc.Metrics()
				svc.QueueLengths()
			}
			done <- delivered
		}()
	}
	delivered := 0
	for g := 0; g < 8; g++ {
		delivered += <-done
	}
	waitIdle(t, svc)
	m := svc.Metrics()
	if m.AlertsReported != 200 || m.AlertsAnalyzed != delivered || m.AlertsLost != 200-delivered {
		t.Fatalf("alert accounting: %+v, delivered %d", m, delivered)
	}
	if m.UnitsExecuted != delivered || m.RecoveryErrors > 0 {
		t.Fatalf("units executed %d want %d (errors %d, last %v)",
			m.UnitsExecuted, delivered, m.RecoveryErrors, svc.LastRecoveryError())
	}
}

// TestTriageStormConverges floods the service with one forged instance's
// alert fifty times over with the full triage front-end on (coalescing,
// prefilter, dedupe). The storm must fold into a small number of damage-cone
// analyses — nothing lost, duplicates absorbed at admission — while recovery
// still converges to the benign state.
func TestTriageStormConverges(t *testing.T) {
	specs := map[string]*wf.Spec{"v1": chainSpec("v1", 8, 0)}
	svc := startService(t, Config{Shards: 2, AlertBuf: 64, Triage: triage.All()})
	if err := svc.SubmitRun("v1", specs["v1"]); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	inst, err := svc.InjectForged("intruder", "evil", []data.Key{"v1.k8"},
		map[data.Key]data.Value{"v1.k8": -1})
	if err != nil {
		t.Fatal(err)
	}
	const storm = 50
	alerts := make([]triage.Alert, storm)
	for i := range alerts {
		alerts[i] = triage.Alert{Bad: []wlog.InstanceID{inst}}
	}
	admitted, dropped, err := svc.ReportAlerts(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if admitted != storm || dropped != 0 {
		t.Fatalf("admission under dedupe: admitted %d dropped %d, want %d/0",
			admitted, dropped, storm)
	}
	waitIdle(t, svc)

	want := benignSnapshot(t, specs)
	got := svc.Store().Snapshot()
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d after storm recovery, benign value is %d", k, got[k], v)
		}
	}
	m := svc.Metrics()
	if m.AlertsReported != storm || m.AlertsLost != 0 {
		t.Fatalf("storm accounting: reported %d lost %d, want %d/0",
			m.AlertsReported, m.AlertsLost, storm)
	}
	if m.AlertsDeduped == 0 {
		t.Error("no Report-time absorptions in a pure-duplicate storm")
	}
	if m.ConesAnalyzed == 0 || m.ConesAnalyzed*5 > storm {
		t.Errorf("storm did not fold: %d cone analyses for %d alerts (want ≥5× fold)",
			m.ConesAnalyzed, storm)
	}
	if m.Undone < 1 {
		t.Fatalf("forged instance not undone: %+v", m)
	}
}
