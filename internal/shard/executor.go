package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/durable"
	"selfheal/internal/engine"
	"selfheal/internal/obs"
	"selfheal/internal/wf"
)

// ErrQueueFull marks a submission rejected by a bounded queue: the deferred
// run queue (key-footprint conflict backlog) or the alert queue. The HTTP
// layer maps it to 429.
var ErrQueueFull = errors.New("queue full")

// RunStatus classifies a submitted run's lifecycle.
type RunStatus int

const (
	// RunActive: the run is assigned to a shard and stepping (or waiting
	// for its turn on that shard).
	RunActive RunStatus = iota
	// RunDeferred: the run's key footprint overlaps runs on more than one
	// shard; it waits in the bounded deferred queue for a sound placement.
	RunDeferred
	// RunDone: the run reached an end node.
	RunDone
	// RunFailed: a task of the run crashed before committing.
	RunFailed
)

// String returns the lowercase wire name used by the HTTP API.
func (s RunStatus) String() string {
	switch s {
	case RunActive:
		return "active"
	case RunDeferred:
		return "deferred"
	case RunDone:
		return "done"
	case RunFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// runState is the executor's bookkeeping for one submitted run.
type runState struct {
	run   *engine.Run
	keys  []data.Key // sorted unique key footprint of the spec
	shard int        // owning shard; -1 while deferred
	state RunStatus
	err   error // terminal error for RunFailed
}

// executor partitions runs across shard workers. The dispatcher invariant
// is key disjointness: at any moment, each data key is touched by runs of
// at most one shard. Combined with the engine's read-latest semantics and
// the single commit pipeline, this makes every concurrent execution
// trace-equivalent to the serial execution in LSN order — a task's recorded
// reads always name the latest versions committed before its LSN, exactly
// as if the steps had been executed one at a time (shard_test.go replays
// the log to verify this).
type executor struct {
	eng   *engine.Engine
	com   *committer
	gates []*gate // one quiesce gate per shard

	mu       sync.Mutex
	runs     map[string]*runState
	keyOwner map[data.Key]int  // shard currently owning the key
	keyRefs  map[data.Key]int  // active runs on the owner touching it
	recKeys  map[data.Key]bool // keys under recovery; placements touching them defer
	load     []int             // active runs per shard
	deferred []*runState       // bounded conflict backlog, FIFO
	deferMax int

	workers []*worker
	stopCh  chan struct{}
	wg      sync.WaitGroup

	steps     []atomic.Int64 // normal steps committed, per shard
	completed atomic.Int64
	failed    atomic.Int64
	obs       execObs // optional instrumentation; zero means off
}

// execObs mirrors the executor's counters into the obs registry. The obs
// handle types are nil-safe, so the zero value is a no-op.
type execObs struct {
	steps     []*obs.Counter
	active    []*obs.Gauge
	deferred  *obs.Gauge
	completed *obs.Counter
	failed    *obs.Counter
}

func (o execObs) step(shard int) {
	if shard < len(o.steps) {
		o.steps[shard].Inc()
	}
}

func (o execObs) load(shard, n int) {
	if shard < len(o.active) {
		o.active[shard].Set(int64(n))
	}
}

func newExecutor(eng *engine.Engine, com *committer, shards, inbox, deferMax int) *executor {
	if shards < 1 {
		shards = 1
	}
	if inbox < 1 {
		inbox = 16
	}
	if deferMax < 0 {
		deferMax = 0
	}
	x := &executor{
		eng:      eng,
		com:      com,
		runs:     make(map[string]*runState),
		keyOwner: make(map[data.Key]int),
		keyRefs:  make(map[data.Key]int),
		recKeys:  make(map[data.Key]bool),
		load:     make([]int, shards),
		deferMax: deferMax,
		stopCh:   make(chan struct{}),
		steps:    make([]atomic.Int64, shards),
	}
	for i := 0; i < shards; i++ {
		x.gates = append(x.gates, newGate())
		x.workers = append(x.workers, &worker{id: i, x: x, inbox: make(chan *runState, inbox)})
	}
	return x
}

func (x *executor) start() {
	for _, w := range x.workers {
		x.wg.Add(1)
		go w.loop()
	}
}

// stop halts the workers. The commit pipeline must still be running so
// in-flight commits can acknowledge.
func (x *executor) stop() {
	close(x.stopCh)
	for _, g := range x.gates {
		g.close()
	}
	x.wg.Wait()
}

// pauseAll quiesces every shard (Theorem-4 strict gating and full-quiesce
// repair); resumeAll lifts the pause. Both are idempotent per gate.
func (x *executor) pauseAll() {
	for _, g := range x.gates {
		g.pause()
	}
}

func (x *executor) resumeAll() {
	for _, g := range x.gates {
		g.resume()
	}
}

// beginRecovery marks keys as under recovery — new placements touching any
// of them defer until endRecovery — and pauses only the shards currently
// owning one, waiting for their in-flight steps to drain. Shards whose
// footprints are disjoint from the damage keep serving traffic through the
// whole RECOVERY window (§IV concurrent recovery). Returns the paused shard
// IDs for endRecovery.
func (x *executor) beginRecovery(keys map[data.Key]bool) []int {
	x.mu.Lock()
	pause := make(map[int]bool)
	for k := range keys {
		x.recKeys[k] = true
		if x.keyRefs[k] > 0 {
			pause[x.keyOwner[k]] = true
		}
	}
	x.mu.Unlock()
	ids := make([]int, 0, len(pause))
	for id := range pause {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		x.gates[id].pause()
	}
	return ids
}

// endRecovery clears the recovery key set, resumes the paused shards and
// redispatches any deferred runs that became placeable.
func (x *executor) endRecovery(paused []int) {
	x.mu.Lock()
	x.recKeys = make(map[data.Key]bool)
	dispatch := x.redispatchLocked()
	x.mu.Unlock()
	for _, id := range paused {
		x.gates[id].resume()
	}
	x.deliver(dispatch)
}

// footprint returns the sorted unique key set a spec can touch.
func footprint(spec *wf.Spec) []data.Key {
	set := make(map[data.Key]bool)
	for _, t := range spec.Tasks {
		for _, k := range t.Reads {
			set[k] = true
		}
		for _, k := range t.Writes {
			set[k] = true
		}
	}
	keys := make([]data.Key, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// submit registers a run and dispatches it to a shard — or defers it when
// its footprint conflicts across shards. Returns ErrRunExists, ErrBadSpec
// (via engine.NewRun) or ErrQueueFull.
func (x *executor) submit(id string, spec *wf.Spec) error {
	r, err := x.eng.NewRun(id, spec)
	if err != nil {
		return err
	}
	rs := &runState{run: r, keys: footprint(spec), shard: -1}

	x.mu.Lock()
	if _, dup := x.runs[id]; dup {
		x.mu.Unlock()
		return fmt.Errorf("shard: run %s: %w", id, engine.ErrRunExists)
	}
	shard, ok := x.placeLocked(rs)
	if !ok {
		if len(x.deferred) >= x.deferMax {
			x.mu.Unlock()
			return fmt.Errorf("shard: run %s conflicts across shards and the deferred queue is full: %w", id, ErrQueueFull)
		}
		rs.state = RunDeferred
		x.deferred = append(x.deferred, rs)
		x.runs[id] = rs
		x.obs.deferred.Set(int64(len(x.deferred)))
		x.mu.Unlock()
		return nil
	}
	x.claimLocked(rs, shard)
	x.runs[id] = rs
	x.mu.Unlock()

	// The inbox is sized for bursts; a full inbox only delays delivery,
	// never drops. A paused shard does not drain its inbox, so delivery
	// must never block the submitter.
	x.deliver([]*runState{rs})
	return nil
}

// canAdmit reports whether a run with the given footprint would be accepted
// right now: placeable on some shard, or deferrable within deferMax. The
// durable submit path checks this before writing the spec record, while
// holding the submit mutex — no other submission can run, and retiring runs
// only shrink conflicts and drain the deferred queue, so a true answer
// cannot turn false before the actual submit.
func (x *executor) canAdmit(keys []data.Key) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.placeLocked(&runState{keys: keys}); ok {
		return true
	}
	return len(x.deferred) < x.deferMax
}

// adoptRestored registers a run rebuilt from a durable snapshot and replay.
// Retired runs (done/failed) are registered for RunInfo lookups only; live
// runs are placed like fresh submissions, except that restore never
// rejects — a run that cannot be placed goes to the deferred queue even
// past deferMax, because it was already admitted in a previous life.
// Returns the run to deliver once the workers start (nil when retired or
// deferred).
func (x *executor) adoptRestored(r *engine.Run, spec *wf.Spec, status RunStatus, errMsg string) *runState {
	rs := &runState{run: r, keys: footprint(spec), shard: -1, state: status}
	if errMsg != "" {
		rs.err = errors.New(errMsg)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.runs[r.ID] = rs
	if status == RunDone || status == RunFailed {
		rs.shard = 0
		return nil
	}
	if shard, ok := x.placeLocked(rs); ok {
		x.claimLocked(rs, shard)
		return rs
	}
	rs.state = RunDeferred
	x.deferred = append(x.deferred, rs)
	x.obs.deferred.Set(int64(len(x.deferred)))
	return nil
}

// runSnapshots captures every submitted run's durable state. Callers must
// hold all shards quiesced: the run objects' frontiers and visit counters
// are read without their owning workers' cooperation.
func (x *executor) runSnapshots() map[string]durable.RunState {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]durable.RunState, len(x.runs))
	for id, rs := range x.runs {
		st := durable.RunState{
			Cur:    rs.run.Current(),
			Visits: rs.run.VisitCounts(),
			Status: rs.state.String(),
		}
		if rs.err != nil {
			st.Err = rs.err.Error()
		}
		out[id] = st
	}
	return out
}

// deliver hands placed runs to their shards' inboxes without ever blocking
// the caller: a full (or paused) inbox overflows to a goroutine.
func (x *executor) deliver(dispatch []*runState) {
	for _, d := range dispatch {
		select {
		case x.workers[d.shard].inbox <- d:
		default:
			go func(d *runState) { x.workers[d.shard].inbox <- d }(d)
		}
	}
}

// placeLocked picks a shard for rs per the ownership rule: zero owning
// shards → least loaded; one owning shard → that shard (keeps overlapping
// runs serialized); more than one → no sound placement (defer).
func (x *executor) placeLocked(rs *runState) (int, bool) {
	// Runs touching keys under recovery wait out the repair: their chains
	// are being rewritten, and reading them mid-repair would commit stale
	// observations past the repair's pinned epoch.
	for _, k := range rs.keys {
		if x.recKeys[k] {
			return 0, false
		}
	}
	owner := -1
	for _, k := range rs.keys {
		if x.keyRefs[k] == 0 {
			continue
		}
		o := x.keyOwner[k]
		if owner == -1 {
			owner = o
		} else if owner != o {
			return 0, false
		}
	}
	if owner >= 0 {
		return owner, true
	}
	least := 0
	for i := 1; i < len(x.load); i++ {
		if x.load[i] < x.load[least] {
			least = i
		}
	}
	return least, true
}

func (x *executor) claimLocked(rs *runState, shard int) {
	rs.shard = shard
	rs.state = RunActive
	for _, k := range rs.keys {
		x.keyOwner[k] = shard
		x.keyRefs[k]++
	}
	x.load[shard]++
	x.obs.load(shard, x.load[shard])
}

// finish retires a run, releases its key claims and redispatches any
// deferred runs that became placeable.
func (x *executor) finish(rs *runState, state RunStatus, err error) {
	x.mu.Lock()
	rs.state = state
	rs.err = err
	for _, k := range rs.keys {
		if x.keyRefs[k]--; x.keyRefs[k] == 0 {
			delete(x.keyRefs, k)
			delete(x.keyOwner, k)
		}
	}
	x.load[rs.shard]--
	x.obs.load(rs.shard, x.load[rs.shard])

	dispatch := x.redispatchLocked()
	x.mu.Unlock()

	if state == RunDone {
		x.completed.Add(1)
		x.obs.completed.Inc()
	} else {
		x.failed.Add(1)
		x.obs.failed.Inc()
	}
	// finish runs on a worker goroutine inside its gate; deliver never
	// blocks, so a send into a paused sibling's full inbox cannot deadlock
	// against that sibling's pause.
	x.deliver(dispatch)
}

// redispatchLocked re-places every deferred run that became placeable.
// Callers hold x.mu and deliver the returned runs after unlocking.
func (x *executor) redispatchLocked() []*runState {
	var dispatch []*runState
	kept := x.deferred[:0]
	for _, d := range x.deferred {
		if shard, ok := x.placeLocked(d); ok {
			x.claimLocked(d, shard)
			dispatch = append(dispatch, d)
		} else {
			kept = append(kept, d)
		}
	}
	x.deferred = kept
	x.obs.deferred.Set(int64(len(x.deferred)))
	return dispatch
}

// idle reports whether no run is active or deferred.
func (x *executor) idle() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.deferred) > 0 {
		return false
	}
	for _, n := range x.load {
		if n > 0 {
			return false
		}
	}
	return true
}

// waitIdle polls until every submitted run has retired or ctx expires.
func (x *executor) waitIdle(ctx context.Context) error {
	for {
		if x.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// activeRuns returns the runs currently assigned to shards (not deferred,
// not retired). Recovery resync mutates a run's frontier, so callers must
// hold the owning shard of every run they touch quiesced; runs on unpaused
// shards may only be skipped, never dereferenced into engine state.
func (x *executor) activeRuns() []*runState {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []*runState
	for _, rs := range x.runs {
		if rs.state == RunActive {
			out = append(out, rs)
		}
	}
	return out
}

// worker is one shard: a goroutine stepping its assigned runs round-robin,
// preparing locally and committing through the shared pipeline.
type worker struct {
	id     int
	x      *executor
	inbox  chan *runState
	active []*runState
	next   int
}

func (w *worker) loop() {
	defer w.x.wg.Done()
	for {
		w.drainInbox()
		// The shard's gate brackets every access to its runs' mutable
		// state (pick reads frontiers, step advances them): pausing a
		// shard's gate therefore guarantees recovery an exclusive,
		// quiescent view of that shard's runs for the store install and
		// the frontier resyncs — while other shards keep stepping.
		gt := w.x.gates[w.id]
		if !gt.enter() {
			return
		}
		rs := w.pick()
		if rs == nil {
			gt.exit()
			// Nothing runnable: block for new work or stop.
			select {
			case <-w.x.stopCh:
				return
			case got := <-w.inbox:
				w.active = append(w.active, got)
			}
			continue
		}
		w.step(rs)
		gt.exit()
	}
}

func (w *worker) drainInbox() {
	for {
		select {
		case rs := <-w.inbox:
			w.active = append(w.active, rs)
		default:
			return
		}
	}
}

// pick returns the next incomplete run round-robin, retiring finished ones.
func (w *worker) pick() *runState {
	for i := 0; i < len(w.active); {
		rs := w.active[i]
		if rs.run.Done() {
			// Completed (either by its own last step or by a recovery
			// resync that moved the frontier past the end).
			w.retire(i, rs, RunDone, nil)
			continue
		}
		i++
	}
	if len(w.active) == 0 {
		return nil
	}
	w.next %= len(w.active)
	rs := w.active[w.next]
	w.next++
	return rs
}

func (w *worker) retire(i int, rs *runState, state RunStatus, err error) {
	w.active = append(w.active[:i], w.active[i+1:]...)
	w.x.finish(rs, state, err)
}

// step prepares and commits one task of rs. Called inside the gate.
func (w *worker) step(rs *runState) {
	p, err := w.x.eng.Prepare(rs.run)
	var cerr error
	if err == nil && p != nil {
		cerr = w.x.com.commit(p)
	}

	idx := w.indexOf(rs)
	switch {
	case err != nil:
		// Prepare failures (task crash) are terminal for the run.
		w.retire(idx, rs, RunFailed, err)
	case cerr != nil:
		w.retire(idx, rs, RunFailed, cerr)
	default:
		if p != nil {
			w.x.steps[w.id].Add(1)
			w.x.obs.step(w.id)
		}
		if rs.run.Done() {
			w.retire(idx, rs, RunDone, nil)
		}
	}
}

func (w *worker) indexOf(rs *runState) int {
	for i, a := range w.active {
		if a == rs {
			return i
		}
	}
	return -1
}

// gate is one shard's quiesce barrier between normal stepping and
// recovery-unit execution: the worker enters before preparing and exits
// after its commit is acknowledged; pause blocks new entries and waits
// until every in-flight prepare→commit window has drained. Recovery pauses
// only the gates of shards whose key footprints intersect the damage
// (executor.beginRecovery) — clean shards, and damage analysis, run fully
// concurrent. Strict mode pauses every gate for the SCAN+RECOVERY period.
type gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	paused bool
	closed bool
	active int
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter blocks while the gate is paused; false means the gate closed
// (executor stopping).
func (g *gate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.paused && !g.closed {
		g.cond.Wait()
	}
	if g.closed {
		return false
	}
	g.active++
	return true
}

func (g *gate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.active--; g.active == 0 {
		g.cond.Broadcast()
	}
}

// pause stops new entries and waits for the active count to drain. The
// commit pipeline must keep running while pause waits (in-flight steps are
// blocked on commit acknowledgements).
func (g *gate) pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.paused = true
	for g.active > 0 && !g.closed {
		g.cond.Wait()
	}
}

func (g *gate) resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.paused = false
	g.cond.Broadcast()
}

// close releases every waiter permanently.
func (g *gate) close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	g.cond.Broadcast()
}
