// Package shard is the concurrent execution layer of the self-healing
// workflow system: normal processing is partitioned across N worker shards,
// each driving its own engine step loop against the shared versioned store,
// with all commits funneled through a batched, LSN-ordered group-commit
// pipeline into the system log — the paper's §IV claim that attack recovery
// can proceed concurrently with normal task processing, realized as a
// service.
//
// The layer has three pieces:
//
//   - committer: the single commit pipeline. Shards prepare task executions
//     in parallel (engine.Prepare) and submit them here; the committer
//     groups concurrent submissions into one engine.CommitBatch — a single
//     log-lock acquisition assigning dense LSNs and running the OnAppend
//     hooks in LSN order, so deps.IncrementalGraph observes exactly the
//     commit-order sequence it depends on. Exclusive jobs (recovery-unit
//     repairs, forged injections) run through the same pipeline, which
//     makes them atomic with respect to commits without extra locking.
//
//   - executor: the shard workers plus the dispatcher that assigns each
//     submitted run to a shard by data-key footprint. Runs whose footprints
//     overlap are serialized on the same shard, so every read a task
//     observes is the latest committed version of its keys and the
//     resulting trace is equivalent to a serial execution in LSN order
//     (the stress tests replay the log to prove it). Conflicting
//     cross-shard submissions are deferred in a bounded queue —
//     backpressure surfaces as ErrQueueFull, never as an unsound
//     placement.
//
//   - Service: the self-healing runtime over the executor. Alert reporting
//     is goroutine-safe with a bounded queue and explicit drop accounting
//     (the CTMC's loss model); a dedicated recovery worker analyzes alerts
//     against O(1) epoch-pinned snapshots of the incremental dependence
//     graph while normal shards keep stepping, and executes recovery units
//     under a brief commit-pipeline quiescence for the store swap.
package shard

import (
	"sync/atomic"

	"selfheal/internal/engine"
	"selfheal/internal/obs"
)

// commitReq is one submission to the commit pipeline: either a prepared
// task execution or an exclusive job.
type commitReq struct {
	p    *engine.Prepared
	fn   func() error
	resp chan error
}

// committer is the group-commit pipeline: a single goroutine draining a
// submission channel, batching concurrently submitted prepared steps into
// one CommitBatch and running exclusive jobs between batches.
type committer struct {
	eng      *engine.Engine
	batchMax int
	reqs     chan commitReq
	stopCh   chan struct{}
	doneCh   chan struct{}
	// sync, when set, is called after every applied batch and exclusive
	// job, before the submitters are acknowledged — the durable service
	// points it at WAL.Sync so an acknowledged commit is on disk (the
	// group-commit writer amortizes one fsync across the whole batch).
	sync func() error

	batches atomic.Int64 // group commits executed
	entries atomic.Int64 // entries committed through the pipeline
	obs     comObs       // optional instrumentation; zero means off
}

// comObs mirrors the committer's counters into the obs registry.
type comObs struct {
	batches, entries *obs.Counter
}

func (o comObs) record(entries int) {
	o.batches.Inc()
	o.entries.Add(int64(entries))
}

func newCommitter(eng *engine.Engine, batchMax, queue int) *committer {
	if batchMax < 1 {
		batchMax = 1
	}
	if queue < 1 {
		queue = 1
	}
	return &committer{
		eng:      eng,
		batchMax: batchMax,
		reqs:     make(chan commitReq, queue),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
}

func (c *committer) start() { go c.loop() }

// stop shuts the pipeline down after the queue drains. All submitters must
// have stopped before calling it.
func (c *committer) stop() {
	close(c.stopCh)
	<-c.doneCh
}

// commit submits one prepared step and blocks until the group commit that
// includes it has been applied.
func (c *committer) commit(p *engine.Prepared) error {
	resp := make(chan error, 1)
	c.reqs <- commitReq{p: p, resp: resp}
	return <-resp
}

// exec runs fn on the committer goroutine, exclusively with respect to all
// commits: every commit submitted before it is applied first, none
// submitted after runs until fn returns. Recovery repairs and forged
// injections use this to serialize store mutations without a second lock.
func (c *committer) exec(fn func() error) error {
	resp := make(chan error, 1)
	c.reqs <- commitReq{fn: fn, resp: resp}
	return <-resp
}

func (c *committer) loop() {
	defer close(c.doneCh)
	for {
		var req commitReq
		select {
		case req = <-c.reqs:
		case <-c.stopCh:
			// Drain what is already queued so no submitter stays blocked.
			for {
				select {
				case req = <-c.reqs:
					c.serve(req)
				default:
					return
				}
			}
		}
		c.serve(req)
	}
}

// serve handles one request, greedily folding further queued commit
// requests into the same batch up to batchMax. An exclusive job encountered
// while folding is deferred until after the batch commits.
func (c *committer) serve(req commitReq) {
	if req.fn != nil {
		req.resp <- c.runExclusive(req.fn)
		return
	}
	batch := []commitReq{req}
fold:
	for len(batch) < c.batchMax {
		select {
		case next := <-c.reqs:
			if next.fn != nil {
				c.commitBatch(batch)
				next.resp <- c.runExclusive(next.fn)
				return
			}
			batch = append(batch, next)
		default:
			break fold
		}
	}
	c.commitBatch(batch)
}

func (c *committer) commitBatch(batch []commitReq) {
	ps := make([]*engine.Prepared, len(batch))
	for i, r := range batch {
		ps[i] = r.p
	}
	err := c.eng.CommitBatch(ps)
	if err == nil {
		c.batches.Add(1)
		c.entries.Add(int64(len(ps)))
		c.obs.record(len(ps))
		// One durability wait for the whole batch: the WAL's writer
		// flushes every entry enqueued by the CommitBatch hook with a
		// single fsync. A sync failure is reported to every submitter —
		// the commit is applied in memory but no longer guaranteed to
		// survive a crash.
		serr := c.syncWAL()
		for _, r := range batch {
			r.resp <- serr
		}
		return
	}
	// The batch is atomic, so a single bad entry (a duplicate instance)
	// failed all of it. Retry the steps one by one so only the culprit's
	// submitter sees the error.
	for _, r := range batch {
		e := c.eng.Commit(r.p)
		if e == nil {
			c.batches.Add(1)
			c.entries.Add(1)
			c.obs.record(1)
			e = c.syncWAL()
		}
		r.resp <- e
	}
}

// runExclusive runs an exclusive job and, on success, waits for the WAL
// records it enqueued (repair adopt records, forged entries) to reach disk.
func (c *committer) runExclusive(fn func() error) error {
	if err := fn(); err != nil {
		return err
	}
	return c.syncWAL()
}

func (c *committer) syncWAL() error {
	if c.sync == nil {
		return nil
	}
	return c.sync()
}
